"""Churn workload generator: mutation traces for the dynamic subsystem.

Real clusters mutate: tasks finish and new ones arrive, processors fail
and rejoin, execution-time estimates drift.  :func:`churn_trace` turns a
static instance (e.g. one of the paper's Table I families) into such a
stream — a list of :class:`~repro.dynamic.Mutation` records that replay
cleanly onto :meth:`DynamicInstance.from_hypergraph
<repro.dynamic.DynamicInstance.from_hypergraph>` of the same baseline.

New arrivals are sampled from the baseline's own hyperedge statistics
(a random existing configuration serves as the template for pin-set
size and weight), so a long stream keeps the instance within the family
the paper measured rather than drifting to a different regime.
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleError
from ..core.hypergraph import TaskHypergraph
from ..dynamic.instance import DynamicInstance
from ..dynamic.journal import Mutation

__all__ = ["churn_trace"]


def churn_trace(
    baseline: TaskHypergraph,
    n_events: int,
    *,
    seed: int = 0,
    p_task_swap: float = 0.7,
    p_weight_drift: float = 0.2,
    p_proc_churn: float = 0.1,
) -> list[Mutation]:
    """Generate ``n_events`` feasibility-preserving mutations.

    Each event is one of (probabilities must sum to 1):

    * **task swap** — a uniformly random task departs and a fresh one
      arrives, its configurations templated on random baseline
      hyperedges (this is the paper's workload under turnover);
    * **weight drift** — one random configuration's execution time is
      rescaled by a uniform factor in ``[0.7, 1.4]``;
    * **processor churn** — a random processor fails (skipped in favour
      of a join when the failure would strand a task) or joins.

    Returns the mutation list; replay it with
    ``DynamicInstance.from_hypergraph(baseline).replay(trace)``.
    """
    if n_events < 0:
        raise ValueError("n_events must be non-negative")
    total = p_task_swap + p_weight_drift + p_proc_churn
    if not np.isclose(total, 1.0):
        raise ValueError(
            f"event probabilities must sum to 1, got {total:g}"
        )
    rng = np.random.default_rng(seed)
    scratch = DynamicInstance.from_hypergraph(baseline)
    # baseline templates for arrivals: (pin-set size, weight) pairs
    sizes = np.diff(baseline.hedge_ptr)
    weights = baseline.hedge_w
    mean_degree = max(
        1, int(round(baseline.n_hedges / max(baseline.n_tasks, 1)))
    )

    for _ in range(n_events):
        roll = rng.random()
        if roll < p_task_swap and scratch.n_tasks:
            _swap_task(scratch, rng, sizes, weights, mean_degree)
        elif roll < p_task_swap + p_weight_drift and scratch.n_tasks:
            _drift_weight(scratch, rng)
        else:
            _churn_processor(scratch, rng)
    return list(scratch.journal)


def _sample_task_configs(
    inst: DynamicInstance,
    rng: np.random.Generator,
    sizes: np.ndarray,
    weights: np.ndarray,
    mean_degree: int,
) -> list[tuple[list[int], float]]:
    procs = inst.procs()
    dv = int(rng.integers(1, 2 * mean_degree + 1))
    confs = []
    for _ in range(dv):
        template = int(rng.integers(0, len(sizes))) if len(sizes) else -1
        size = int(sizes[template]) if template >= 0 else 1
        size = max(1, min(size, len(procs)))
        pins = rng.choice(procs, size=size, replace=False)
        w = float(weights[template]) if template >= 0 else 1.0
        w *= float(rng.uniform(0.8, 1.25))
        confs.append(([int(u) for u in pins], w))
    return confs


def _swap_task(inst, rng, sizes, weights, mean_degree) -> None:
    tasks = inst.tasks()
    inst.remove_task(int(rng.choice(tasks)))
    inst.add_task(_sample_task_configs(inst, rng, sizes, weights, mean_degree))


def _drift_weight(inst, rng) -> None:
    task = int(rng.choice(inst.tasks()))
    configs = inst.task_configs(task)
    idx, _pins, w = configs[int(rng.integers(0, len(configs)))]
    inst.update_weight(task, idx, w * float(rng.uniform(0.7, 1.4)))


def _churn_processor(inst, rng) -> None:
    if inst.n_procs > 1 and rng.random() < 0.5:
        try:
            inst.remove_processor(int(rng.choice(inst.procs())))
            return
        except InfeasibleError:
            pass  # failure would strand a task: join instead
    inst.add_processor()
