"""Worst-case constructions from paper Section IV-B (Figures 1 and 3).

These families witness that the greedy heuristics carry no approximation
guarantee:

* :func:`fig1_toy` — the two-task example where basic-greedy can double
  the optimal makespan;
* :func:`fig3_family` — the factor-``k`` family on ``2^k - 1`` tasks and
  ``2^k`` processors where basic- and sorted-greedy reach makespan ``k``
  while the optimum is 1;
* :func:`double_sorted_fooler` — the Section IV-B3 extension (12 tasks,
  12 processors) that equalises processor in-degrees so double-sorted
  fails like sorted-greedy while expected-greedy still finds the optimum;
* :func:`expected_greedy_fooler` — the Section IV-B4 16-task/16-processor
  variant whose expected loads tie, defeating expected-greedy as well.

Greedy ties depend on edge order; each constructor orders edges the way
the paper's narrative assumes (the "wrong" processor is the one the tie
rule selects), so the stated makespans are reproduced deterministically —
the tests assert them.
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph

__all__ = [
    "fig1_toy",
    "fig3_family",
    "double_sorted_fooler",
    "expected_greedy_fooler",
]


def fig1_toy() -> BipartiteGraph:
    """Figure 1: ``T1 -> {P1, P2}``, ``T2 -> {P1}``.

    Basic-greedy (index order, first-edge ties) sends ``T1`` to ``P1`` and
    is then forced to stack ``T2`` on it: makespan 2 versus optimal 1.
    """
    return BipartiteGraph.from_neighbor_lists([[0, 1], [0]], n_procs=2)


def fig3_family(k: int) -> BipartiteGraph:
    """Figure 3 generalised: ``2^k - 1`` tasks over ``2^k`` processors.

    Level ``l`` (``0 <= l < k``) has tasks ``T_i^(l)`` for
    ``1 <= i <= 2^(k-1-l)``, eligible on ``P_i`` or ``P_(i + 2^(k-1-l))``.
    Assigning every task to its second option yields makespan 1; greedy
    first-option stacking piles level after level onto ``P_1`` for a
    makespan of ``k``.  Tasks are emitted level-major so index order is
    the order the paper's argument walks them.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    lists: list[list[int]] = []
    for level in range(k):
        span = 2 ** (k - 1 - level)
        for i in range(1, span + 1):
            lists.append([i - 1, i - 1 + span])  # P_i first: greedy's trap
    return BipartiteGraph.from_neighbor_lists(lists, n_procs=2**k)


def double_sorted_fooler() -> BipartiteGraph:
    """Section IV-B3: equal in-degrees neutralise double-sorted's tie-break.

    Extends :func:`fig3_family` with ``k = 3`` by a task ``T8`` on
    ``{P3, P4}`` and four degree-3 tasks ``T9..T12``, each eligible on two
    of ``P5..P8`` plus a private processor ``P9..P12``, so ``P1..P8`` all
    have in-degree 3 and the in-degree tie-break is useless.  Algorithm 2's
    ``<=`` comparison keeps the *last* edge among full ties, so the Fig. 3
    part lists the trap processor second; double-sorted then repeats
    sorted-greedy's wrong choices ("may take the same wrong decisions",
    makespan 3).  Expected-greedy sees smaller expected load on ``P5..P8``
    (the degree-3 helpers spread thinner) and reaches the optimum 1.
    """
    # Fig. 3 (k=3) with edges reversed: the stacking processor P_i last.
    fig3 = [[b, a] for a, b in _fig3_lists(3)]
    lists = fig3[:4]  # level 0
    lists.append([2, 3])  # T8 on {P3, P4}, assigned before the upper levels
    lists.extend(fig3[4:])  # levels 1 and 2
    # T9..T12: two consecutive of P5..P8 (wrap) + a private processor
    for j in range(4):
        lists.append([4 + j, 4 + ((j + 1) % 4), 8 + j])
    return BipartiteGraph.from_neighbor_lists(lists, n_procs=12)


def expected_greedy_fooler() -> BipartiteGraph:
    """Section IV-B4: 16 tasks, 16 processors, all degrees 2, tied ``o``.

    Extends :func:`fig3_family` with ``k = 3`` by ``T8`` on ``{P3, P4}``
    and eight degree-2 tasks ``T9..T16``, each on one of ``P5..P8`` plus a
    private processor ``P9..P16`` (two helpers per shared processor).  All
    tasks have degree 2, so sorting is vacuous; the initial expected loads
    of ``P1..P8`` all tie at 1.5, so expected-greedy falls back to first-
    edge ties and repeats the sorted-greedy mistakes: makespan 3 versus
    optimal 1.
    """
    lists = [list(nb) for nb in _fig3_lists(3)]
    lists.append([2, 3])  # T8 on {P3, P4}
    for j in range(8):
        lists.append([4 + j // 2, 8 + j])
    return BipartiteGraph.from_neighbor_lists(lists, n_procs=16)


def _fig3_lists(k: int) -> list[list[int]]:
    lists: list[list[int]] = []
    for level in range(k):
        span = 2 ** (k - 1 - level)
        for i in range(1, span + 1):
            lists.append([i - 1, i - 1 + span])
    return lists
