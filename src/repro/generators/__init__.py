"""Instance generators: random families, worst cases, reductions."""

from .churn import churn_trace
from .adversarial import (
    double_sorted_fooler,
    expected_greedy_fooler,
    fig1_toy,
    fig3_family,
)
from .fewgmanyg import fewgmanyg_bipartite, fewgmanyg_neighbor_lists
from .hilo import hilo_bipartite, hilo_neighbor_lists
from .multiproc import GENERATOR_FAMILIES, generate_multiproc
from .weights import (
    WEIGHT_SCHEMES,
    apply_weights,
    random_weights,
    related_weights,
)
from .x3c import (
    X3CInstance,
    cover_from_matching,
    is_exact_cover,
    planted_x3c,
    x3c_to_multiproc,
)

__all__ = [
    "churn_trace",
    "hilo_bipartite",
    "hilo_neighbor_lists",
    "fewgmanyg_bipartite",
    "fewgmanyg_neighbor_lists",
    "generate_multiproc",
    "GENERATOR_FAMILIES",
    "related_weights",
    "random_weights",
    "apply_weights",
    "WEIGHT_SCHEMES",
    "fig1_toy",
    "fig3_family",
    "double_sorted_fooler",
    "expected_greedy_fooler",
    "X3CInstance",
    "planted_x3c",
    "x3c_to_multiproc",
    "cover_from_matching",
    "is_exact_cover",
]
