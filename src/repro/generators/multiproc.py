"""The two-step MULTIPROC hypergraph generator (paper Section V-A2).

Step 1 draws the number of configurations ``d_v`` of every task from a
binomial with mean ``dv`` (clamped to at least 1), producing
``|N| ≈ n * dv`` hyperedges, each owned by one task.

Step 2 fills in the processor pin set of every hyperedge by calling one of
the bipartite generators with the *hyperedges* as left vertices:
``HiLo(|N|, p, g, dh)`` or ``FewgManyg(|N|, p, g, dh)`` — each hyperedge's
neighbour list becomes its ``h ∩ V2``.

The weight scheme is applied last (see :mod:`repro.generators.weights`).
"""

from __future__ import annotations

import numpy as np

from ..core.hypergraph import TaskHypergraph
from .._util import as_rng
from .fewgmanyg import fewgmanyg_neighbor_lists
from .hilo import hilo_neighbor_lists
from .weights import apply_weights

__all__ = ["generate_multiproc", "GENERATOR_FAMILIES"]

GENERATOR_FAMILIES = ("fewgmanyg", "hilo")


def generate_multiproc(
    n: int,
    p: int,
    *,
    family: str = "fewgmanyg",
    g: int = 32,
    dv: int = 5,
    dh: int = 10,
    weights: str = "unit",
    seed: int | np.random.Generator | None = None,
) -> TaskHypergraph:
    """Generate a random MULTIPROC instance.

    Parameters mirror the paper's: ``n`` tasks, ``p`` processors,
    ``family`` the step-2 generator (``"fewgmanyg"`` or ``"hilo"``),
    ``g`` groups, ``dv`` the mean number of configurations per task,
    ``dh`` the step-2 degree parameter, ``weights`` one of
    ``'unit' | 'related' | 'random'``.

    The paper's Table I instances use
    ``n ∈ {1280, 5120, 20480}``, ``p ∈ {256, 1024, 4096}`` with
    ``n >= 5p``, ``dv = 5``, ``dh = 10`` and ``g ∈ {32, 128}``.
    """
    if family not in GENERATOR_FAMILIES:
        raise ValueError(
            f"unknown family {family!r}; expected one of {GENERATOR_FAMILIES}"
        )
    if n < 1 or p < 1:
        raise ValueError("need at least one task and one processor")
    if dv < 1:
        raise ValueError("dv must be at least 1")
    rng = as_rng(seed)

    # Step 1: configuration counts, one owning task per hyperedge.
    # Hyperedges are ordered round-robin over tasks (all first
    # configurations, then all second configurations, ...).  Step 2's
    # generators assign pin neighbourhoods by hyperedge *index*, so this
    # interleaving is what spreads one task's configurations across
    # different processor groups — consecutive (task-major) ordering
    # would make a task's configurations near-identical windows and
    # collapse the algorithms' choices (see DESIGN.md and the Table III
    # HiLo discussion in EXPERIMENTS.md).
    d_v = np.maximum(1, rng.binomial(2 * dv, 0.5, size=n))
    max_dv = int(d_v.max())
    round_mask = (np.arange(max_dv)[:, None] < d_v[None, :]).ravel()
    hedge_task = np.tile(np.arange(n, dtype=np.int64), max_dv)[round_mask]
    n_hedges = int(d_v.sum())

    # Step 2: pin sets from the bipartite generator over hyperedges.
    if family == "hilo":
        pins = hilo_neighbor_lists(n_hedges, p, g, dh)
    else:
        pins = fewgmanyg_neighbor_lists(n_hedges, p, g, dh, rng)

    hg = TaskHypergraph.from_hyperedges(n, p, hedge_task, pins)
    return apply_weights(hg, weights, seed=rng)
