"""Hyperedge weight schemes for MULTIPROC instances (paper Section V-A2).

Three schemes, matching the paper's three experiment sets:

* ``unit`` — all weights 1 (MULTIPROC-UNIT, Table II);
* ``related`` — ``w_h = ceil(min_s * max_s / s_h)`` with ``s_h = |h ∩ V2|``
  and the min/max taken over the whole instance: a configuration on more
  processors runs proportionally faster on each (Table III).  The paper
  notes NP-completeness is preserved under related weights;
* ``random`` — independent uniform integers (the technical report's
  robustness check, Table 8 there).
"""

from __future__ import annotations

import numpy as np

from ..core.hypergraph import TaskHypergraph
from .._util import as_rng

__all__ = ["related_weights", "random_weights", "apply_weights", "WEIGHT_SCHEMES"]


def related_weights(hg: TaskHypergraph) -> np.ndarray:
    """The paper's related weights: ``w_h = ceil(min_s * max_s / s_h)``."""
    sizes = hg.hedge_sizes().astype(np.float64)
    if sizes.size == 0:
        return np.empty(0, dtype=np.float64)
    lo, hi = float(sizes.min()), float(sizes.max())
    return np.ceil(lo * hi / sizes - 1e-12)


def random_weights(
    hg: TaskHypergraph,
    *,
    low: int = 1,
    high: int = 100,
    seed: int | np.random.Generator | None = None,
) -> np.ndarray:
    """Independent uniform integer weights in ``[low, high]``."""
    if not 1 <= low <= high:
        raise ValueError(f"need 1 <= low <= high, got [{low}, {high}]")
    rng = as_rng(seed)
    return rng.integers(low, high + 1, size=hg.n_hedges).astype(np.float64)


def apply_weights(
    hg: TaskHypergraph,
    scheme: str,
    *,
    seed: int | np.random.Generator | None = None,
) -> TaskHypergraph:
    """Return ``hg`` reweighted under ``scheme`` ('unit'/'related'/'random')."""
    if scheme == "unit":
        return hg.unit()
    if scheme == "related":
        return hg.with_weights(related_weights(hg))
    if scheme == "random":
        return hg.with_weights(random_weights(hg, seed=seed))
    raise ValueError(
        f"unknown weight scheme {scheme!r}; expected one of {WEIGHT_SCHEMES}"
    )


WEIGHT_SCHEMES = ("unit", "related", "random")
