"""The HiLo structured bipartite-graph generator (paper Section V-A1).

HiLo graphs originate in the matching-benchmark suite of Cherkassky,
Goldberg, Martin, Setubal and Stolfi (ref [7]) and are the harder of the
paper's two instance families: with ``|V1| = |V2|`` they have a unique
maximum matching, and the paper uses them with many more tasks than
processors so the semi-matching structure is highly constrained.

Parameters ``HiLo(n, p, g, d)``: ``n`` tasks and ``p`` processors are
divided into ``g`` groups each; writing ``x_i^j`` for the ``i``-th task of
group ``j`` (1-based, as in the paper) and ``y_k^j`` likewise for
processors, task ``x_i^j`` is adjacent to

    ``y_k^j``      for ``k = max(1, min(i, p/g) - d), ..., min(i, p/g)``

and, when ``j < g``, to the same ``y_k^{j+1}`` range in the next group.
Every task therefore has at most ``2 (d + 1)`` neighbours.  The
construction is deterministic.
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph

__all__ = ["hilo_bipartite", "hilo_neighbor_lists"]


def _group_sizes(total: int, g: int) -> np.ndarray:
    """Near-equal group sizes (first ``total % g`` groups get one extra)."""
    base = total // g
    sizes = np.full(g, base, dtype=np.int64)
    sizes[: total % g] += 1
    return sizes


def hilo_neighbor_lists(n: int, p: int, g: int, d: int) -> list[np.ndarray]:
    """Neighbour list of every left vertex in ``HiLo(n, p, g, d)``.

    Exposed separately because the MULTIPROC generator reuses the rule
    with hyperedges as left vertices (each neighbour list becomes a pin
    set).  Requires ``g`` to divide ``p`` (the rule's ``p/g`` is a
    constant); left-group sizes may be uneven.
    """
    if g < 1:
        raise ValueError("g must be at least 1")
    if p % g != 0:
        raise ValueError(f"HiLo requires g | p, got p={p}, g={g}")
    if d < 0:
        raise ValueError("d must be non-negative")
    pg = p // g
    if pg == 0:
        raise ValueError("p/g must be at least 1")
    out: list[np.ndarray] = []
    left_sizes = _group_sizes(n, g)
    for j in range(g):  # 0-based group index; the paper's j-1
        for i in range(1, int(left_sizes[j]) + 1):
            top = min(i, pg)
            lo = max(1, top - d)
            ks = np.arange(lo, top + 1, dtype=np.int64)  # 1-based k
            nbrs = [j * pg + (ks - 1)]
            if j < g - 1:
                nbrs.append((j + 1) * pg + (ks - 1))
            out.append(np.concatenate(nbrs))
    return out


def hilo_bipartite(n: int, p: int, g: int, d: int) -> BipartiteGraph:
    """A ``HiLo(n, p, g, d)`` SINGLEPROC-UNIT instance."""
    lists = hilo_neighbor_lists(n, p, g, d)
    return BipartiteGraph.from_neighbor_lists(lists, n_procs=p)
