"""The FewgManyg random bipartite-graph generator (paper Section V-A1).

Also from the Cherkassky et al. matching benchmarks (ref [7]): left and
right vertex sets are divided into ``g`` groups; a left vertex in group
``j`` draws a binomial number of neighbours uniformly from the right
vertices of groups ``j-1``, ``j`` and ``j+1`` (with wrap-around).  The
paper's instances use ``g = 32`` ("Fewg", large groups, loose locality)
and ``g = 128`` ("Manyg", small groups, tight locality).

Sampling details the paper leaves open, resolved as follows (see
DESIGN.md):

* "binomial distribution with mean d" is ``Binomial(2d, 1/2)``, clamped to
  at least 1 so every task stays schedulable;
* when the draw exceeds the 3-group pool (``3p/g``), vertices are chosen
  with replacement — as the paper prescribes — and duplicates are then
  collapsed (neighbour sets are simple).
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph
from .._util import as_rng

__all__ = ["fewgmanyg_bipartite", "fewgmanyg_neighbor_lists"]


def fewgmanyg_neighbor_lists(
    n: int,
    p: int,
    g: int,
    d: int,
    seed: int | np.random.Generator | None = None,
) -> list[np.ndarray]:
    """Neighbour list of every left vertex in ``FewgManyg(n, p, g, d)``.

    Requires ``g | p`` so right-side groups are even; left-group sizes may
    be uneven.  Reused by the MULTIPROC generator with hyperedges as left
    vertices.
    """
    if g < 1:
        raise ValueError("g must be at least 1")
    if p % g != 0:
        raise ValueError(f"FewgManyg requires g | p, got p={p}, g={g}")
    if d < 1:
        raise ValueError("d must be at least 1")
    rng = as_rng(seed)
    pg = p // g
    pool = 3 * pg if g >= 3 else p  # fewer than 3 groups: whole right side

    degrees = np.maximum(1, rng.binomial(2 * d, 0.5, size=n))
    # group of each left vertex: near-equal contiguous blocks
    base = n // g
    extras = n % g
    left_group = np.repeat(
        np.arange(g, dtype=np.int64),
        np.where(np.arange(g) < extras, base + 1, base),
    )

    out: list[np.ndarray] = []
    for v in range(n):
        j = int(left_group[v])
        di = int(degrees[v])
        if g >= 3:
            groups = np.array([(j - 1) % g, j, (j + 1) % g], dtype=np.int64)
            candidates = (groups[:, None] * pg + np.arange(pg)).ravel()
        else:
            candidates = np.arange(p, dtype=np.int64)
        if di <= candidates.size:
            nbrs = rng.choice(candidates, size=di, replace=False)
        else:
            nbrs = np.unique(rng.choice(candidates, size=di, replace=True))
        out.append(np.unique(nbrs))
    return out


def fewgmanyg_bipartite(
    n: int,
    p: int,
    g: int,
    d: int,
    seed: int | np.random.Generator | None = None,
) -> BipartiteGraph:
    """A ``FewgManyg(n, p, g, d)`` SINGLEPROC-UNIT instance."""
    lists = fewgmanyg_neighbor_lists(n, p, g, d, seed)
    return BipartiteGraph.from_neighbor_lists(lists, n_procs=p)
