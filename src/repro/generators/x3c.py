"""Exact Cover by 3-Sets and the Theorem 1 reduction (paper Section III).

Theorem 1 proves MULTIPROC-UNIT NP-complete (and ``(2 - eps)``-hard to
approximate) by reduction from X3C: the ``3q`` elements become processors,
``q`` interchangeable tasks may each use any triple of the collection as a
configuration, and the deadline is 1 — met exactly when the chosen
triples form an exact cover.

This module provides the instance type, a planted-instance sampler, the
reduction, and the back-direction extraction used to round-trip the
equivalence in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from .._util import as_rng

__all__ = [
    "X3CInstance",
    "planted_x3c",
    "x3c_to_multiproc",
    "cover_from_matching",
    "is_exact_cover",
]


@dataclass(frozen=True)
class X3CInstance:
    """An X3C instance: ``3q`` elements and a collection of 3-subsets."""

    q: int
    triples: tuple[tuple[int, int, int], ...]

    def __post_init__(self) -> None:
        if self.q < 1:
            raise ValueError("q must be at least 1")
        n = 3 * self.q
        for t in self.triples:
            if len(t) != 3 or len(set(t)) != 3:
                raise ValueError(f"not a 3-subset: {t}")
            if min(t) < 0 or max(t) >= n:
                raise ValueError(f"element out of range in {t}")

    @property
    def n_elements(self) -> int:
        return 3 * self.q


def planted_x3c(
    q: int,
    extra_triples: int = 0,
    *,
    seed: int | np.random.Generator | None = None,
) -> X3CInstance:
    """Sample a yes-instance: a hidden exact cover plus random decoys.

    The first ``q`` triples of the returned collection are a random
    partition of the ``3q`` elements (so an exact cover always exists);
    ``extra_triples`` uniformly random distinct-element triples are
    appended and the collection is shuffled.
    """
    rng = as_rng(seed)
    perm = rng.permutation(3 * q)
    triples = [tuple(sorted(map(int, perm[3 * i : 3 * i + 3]))) for i in range(q)]
    for _ in range(extra_triples):
        t = tuple(sorted(map(int, rng.choice(3 * q, size=3, replace=False))))
        triples.append(t)
    order = rng.permutation(len(triples))
    return X3CInstance(q=q, triples=tuple(triples[i] for i in order))


def x3c_to_multiproc(instance: X3CInstance) -> TaskHypergraph:
    """Theorem 1's instance ``I2``: elements are processors, ``q`` tasks
    each offered every triple as a configuration, unit weights.

    The optimal makespan is 1 iff the X3C instance has an exact cover;
    otherwise it is at least 2 (which is where the ``(2 - eps)``
    inapproximability comes from).
    """
    q = instance.q
    hedge_task = np.repeat(
        np.arange(q, dtype=np.int64), len(instance.triples)
    )
    pins = [list(t) for _ in range(q) for t in instance.triples]
    return TaskHypergraph.from_hyperedges(
        q, instance.n_elements, hedge_task, pins
    )


def cover_from_matching(
    instance: X3CInstance, matching: HyperSemiMatching
) -> tuple[tuple[int, int, int], ...]:
    """Extract the chosen triples from a makespan-1 semi-matching."""
    chosen = []
    m = len(instance.triples)
    for i in range(instance.q):
        h = int(matching.hedge_of_task[i])
        chosen.append(instance.triples[h % m])
    return tuple(chosen)


def is_exact_cover(instance: X3CInstance, cover) -> bool:
    """Check that ``cover`` hits every element exactly once."""
    seen = [e for t in cover for e in t]
    return (
        len(cover) == instance.q
        and len(seen) == instance.n_elements
        and set(seen) == set(range(instance.n_elements))
    )
