"""repro.obs — cross-layer observability: spans, metrics, flight data.

Four dependency-free quarters:

* :mod:`repro.obs.trace` — the span tracer.  ``with span("name")``
  regions share a trace id carried through async tasks, executor
  threads, the engine's process pool *and the sharded service's worker
  hop* (spans piggyback on response envelopes, see :func:`collecting` /
  :func:`shippable`), landing in a bounded ring buffer with JSONL
  export and a slow-solve flight recorder.  Off by default;
  :func:`enable_tracing` costs one flag flip and the disabled path
  allocates nothing.
* :mod:`repro.obs.metrics` — the process-wide metrics registry
  (counters / gauges / histograms) with JSON and Prometheus-text
  exposition.  :mod:`repro.service.metrics` is a thin view over it.
* :mod:`repro.obs.fleet` — fleet aggregation: per-worker metrics
  snapshots fold into one view (counters sum, fixed-bucket histograms
  merge bucket-wise, gauges tag per worker).
* :mod:`repro.obs.health` — health/SLO scoring over the aggregated
  snapshot: typed ``ok | degraded | critical`` verdicts with
  machine-readable reasons, graded against a :class:`HealthBudget`.

See API.md's "Observability" and "Fleet observability" sections for
the naming scheme, the metrics-op scrape contract, stitching
semantics, and the ``semimatch trace`` / ``semimatch metrics`` /
``semimatch top`` CLI.
"""

from .fleet import aggregate_fleet, is_unreachable, unreachable_marker
from .health import SEVERITIES, HealthBudget, score_fleet
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
    merge_counter_maps,
    merge_histogram_snapshots,
)
from .trace import (
    PIGGYBACK_MAX_SPANS,
    RECORDER,
    Span,
    TraceRecorder,
    adopt,
    attached,
    carry,
    collect_timings,
    collecting,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    export_jsonl,
    format_trace_tree,
    ingest,
    measured_span,
    ship_context,
    shippable,
    span,
    tracing,
    tracing_enabled,
    wire_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "HealthBudget",
    "Histogram",
    "MetricsRegistry",
    "PIGGYBACK_MAX_SPANS",
    "RECORDER",
    "SEVERITIES",
    "Span",
    "TraceRecorder",
    "adopt",
    "aggregate_fleet",
    "attached",
    "carry",
    "collect_timings",
    "collecting",
    "current_trace_id",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "format_trace_tree",
    "ingest",
    "is_unreachable",
    "measured_span",
    "merge_counter_maps",
    "merge_histogram_snapshots",
    "score_fleet",
    "ship_context",
    "shippable",
    "span",
    "tracing",
    "tracing_enabled",
    "unreachable_marker",
    "wire_context",
]
