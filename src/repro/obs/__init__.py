"""repro.obs — cross-layer observability: spans, metrics, flight data.

Two dependency-free halves:

* :mod:`repro.obs.trace` — the span tracer.  ``with span("name")``
  regions share a trace id carried through async tasks, executor
  threads and the engine's process pool, landing in a bounded ring
  buffer with JSONL export and a slow-solve flight recorder.  Off by
  default; :func:`enable_tracing` costs one flag flip and the disabled
  path allocates nothing.
* :mod:`repro.obs.metrics` — the process-wide metrics registry
  (counters / gauges / histograms) with JSON and Prometheus-text
  exposition.  :mod:`repro.service.metrics` is a thin view over it.

See API.md's "Observability" section for the naming scheme, the
metrics-op scrape contract, and the ``semimatch trace`` / ``semimatch
metrics`` CLI.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from .trace import (
    RECORDER,
    Span,
    TraceRecorder,
    adopt,
    attached,
    carry,
    collect_timings,
    current_trace_id,
    disable_tracing,
    enable_tracing,
    export_jsonl,
    format_trace_tree,
    ingest,
    measured_span,
    ship_context,
    span,
    tracing,
    tracing_enabled,
    wire_context,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RECORDER",
    "Span",
    "TraceRecorder",
    "adopt",
    "attached",
    "carry",
    "collect_timings",
    "current_trace_id",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "format_trace_tree",
    "ingest",
    "measured_span",
    "ship_context",
    "span",
    "tracing",
    "tracing_enabled",
    "wire_context",
]
