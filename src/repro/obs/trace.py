"""Cross-layer span tracing for the solve stack.

A *span* is one named, timed region of the request path — ``with
span("engine.solve")`` records its name, start, duration and free-form
attributes.  Spans nest: every span opened inside another becomes its
child, and the whole tree shares one *trace id* carried in a
:mod:`contextvars` variable, so it follows ``await`` chains and
``asyncio.create_task`` for free.  Two hops contextvars do **not**
cross are handled explicitly:

* **executor threads** — wrap the callable with :func:`carry` before
  ``loop.run_in_executor`` (the repo's service idiom);
* **pool workers** — ship :func:`ship_context` alongside the chunk
  payload (the engine sends it next to the shm descriptors / pickled
  instances), adopt it worker-side with :func:`adopt`, and feed the
  spans it collected back through :func:`ingest` when the chunk lands.

Finished spans land in a bounded in-process ring buffer
(:class:`TraceRecorder`), exportable as JSONL; when a *root* span ends,
its complete trace is assembled and — if it exceeded the recorder's
latency threshold — retained by the built-in flight recorder (last K
slow traces, served by the service's ``trace`` op and ``semimatch
trace``).

Tracing is **off by default** and the disabled path is allocation-free:
:func:`span` checks one module-level flag and returns a shared no-op
object.  :func:`measured_span` is the variant for call sites that need
the duration even when tracing is off (the engine's ``wall_time_s``
derives from it) — it always runs one ``perf_counter`` pair, exactly
what the hand-rolled timing it replaced cost, and records only when
enabled.

The module is dependency-free (stdlib only) and importable before
numpy, like :mod:`repro.service.protocol`.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Any, Callable, Iterator

__all__ = [
    "PIGGYBACK_MAX_SPANS",
    "Span",
    "TraceRecorder",
    "RECORDER",
    "adopt",
    "attached",
    "carry",
    "collect_timings",
    "collecting",
    "current_trace_id",
    "disable_tracing",
    "enable_tracing",
    "export_jsonl",
    "format_trace_tree",
    "ingest",
    "measured_span",
    "ship_context",
    "shippable",
    "span",
    "tracing",
    "tracing_enabled",
    "wire_context",
]

#: Upper bound on spans piggybacked on one response envelope — a
#: worker that recorded more ships the newest ``cap`` (the structural
#: spine closes last, so leaves drop first).
PIGGYBACK_MAX_SPANS = 256

#: The module-level fast flag: checked before any allocation, so the
#: disabled path of :func:`span` costs one global load and one branch.
_ENABLED = False

#: ``(trace_id, active_span_id)`` of the calling context, or ``None``.
_TRACE: contextvars.ContextVar[tuple[str, str] | None] = (
    contextvars.ContextVar("repro_obs_trace", default=None)
)

#: Span sink override: when set (worker-side, see :func:`adopt`),
#: finished spans append here instead of the process recorder, so the
#: chunk can ship them back to the parent.
_SINK: contextvars.ContextVar[list | None] = contextvars.ContextVar(
    "repro_obs_sink", default=None
)

#: Per-context timing accumulator (see :func:`collect_timings`): every
#: recorded span adds its duration under its name, which is how the
#: engine attributes ``compile_s`` on ``SolveResult.stats`` without
#: threading timers through the kernel layer.
_TIMINGS: contextvars.ContextVar[dict | None] = contextvars.ContextVar(
    "repro_obs_timings", default=None
)

_IDS = itertools.count(1)


def _new_id() -> str:
    """Process-unique (and, via the pid, machine-unique) hex id."""
    return f"{os.getpid():x}-{next(_IDS):x}"


# ----------------------------------------------------------------------
# enable / disable
# ----------------------------------------------------------------------
def tracing_enabled() -> bool:
    """Whether spans are being recorded in this process."""
    return _ENABLED


def enable_tracing() -> None:
    """Turn span recording on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable_tracing() -> None:
    """Turn span recording off (process-wide)."""
    global _ENABLED
    _ENABLED = False


@contextmanager
def tracing(enabled: bool = True) -> Iterator[None]:
    """Scoped enable/disable (tests and benches)."""
    global _ENABLED
    prev = _ENABLED
    _ENABLED = bool(enabled)
    try:
        yield
    finally:
        _ENABLED = prev


# ----------------------------------------------------------------------
# spans
# ----------------------------------------------------------------------
class _NoopSpan:
    """The shared do-nothing span the disabled path hands out."""

    __slots__ = ()
    recording = False
    duration_s = 0.0

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass

    def start(self) -> "_NoopSpan":
        return self

    def end(self) -> None:
        pass


_NOOP = _NoopSpan()


class Span:
    """One live span.  Use as a context manager::

        with span("engine.solve") as sp:
            sp.set(digest=d)

    ``start()``/``end()`` exist for lifetimes that genuinely cannot be
    a ``with`` block, but the analyzer's ``span-hygiene`` rule flags
    manual pairs — an exception that escapes between them leaks the
    context token, exactly the bug ``with`` makes impossible.
    """

    __slots__ = (
        "name",
        "attrs",
        "recording",
        "local_root",
        "trace_id",
        "span_id",
        "parent_id",
        "start_s",
        "duration_s",
        "_token",
    )

    def __init__(
        self,
        name: str,
        attrs: dict,
        recording: bool,
        *,
        local_root: bool = False,
    ):
        self.name = name
        self.attrs = attrs
        self.recording = recording
        self.local_root = local_root
        self.trace_id: str | None = None
        self.span_id: str | None = None
        self.parent_id: str | None = None
        self.start_s = 0.0
        self.duration_s = 0.0
        self._token: contextvars.Token | None = None

    def set(self, **attrs: Any) -> None:
        """Attach attributes (recorded with the span)."""
        self.attrs.update(attrs)

    def start(self) -> "Span":
        return self.__enter__()

    def end(self) -> None:
        self.__exit__(None, None, None)

    def __enter__(self) -> "Span":
        if self.recording:
            ctx = _TRACE.get()
            if ctx is None:
                self.trace_id = _new_id()
            else:
                self.trace_id, self.parent_id = ctx
            self.span_id = _new_id()
            self._token = _TRACE.set((self.trace_id, self.span_id))
        self.start_s = time.perf_counter()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.duration_s = time.perf_counter() - self.start_s
        if self.recording:
            if self._token is not None:
                _TRACE.reset(self._token)
                self._token = None
            if exc_type is not None:
                # setdefault: a call site that already attributed the
                # failure (e.g. ``error="worker-lost"``) wins over the
                # raw exception class name
                self.attrs.setdefault("error", exc_type.__name__)
            timings = _TIMINGS.get()
            if timings is not None:
                timings[self.name] = (
                    timings.get(self.name, 0.0) + self.duration_s
                )
            rec = {
                "name": self.name,
                "trace": self.trace_id,
                "span": self.span_id,
                "parent": self.parent_id,
                "start": self.start_s,
                "dur": self.duration_s,
                "pid": os.getpid(),
                "attrs": self.attrs,
            }
            if self.local_root:
                rec["local_root"] = True
            _record(rec)
        return False


def span(
    name: str, *, local_root: bool = False, **attrs: Any
) -> Span | _NoopSpan:
    """A recorded span when tracing is enabled, else the shared no-op.

    The disabled path allocates nothing — call with no keyword
    attributes on hot paths (evaluating them costs even when disabled)
    and attach attributes inside, gated on ``sp.recording``.

    ``local_root=True`` marks a span that *completes its trace in this
    process* even when its parent lives elsewhere — the server's
    per-request span is one: its parent is the client's span, which
    will never report to this recorder, so the flight recorder treats
    the request span's end as trace completion.
    """
    if not _ENABLED:
        return _NOOP
    return Span(name, attrs, True, local_root=local_root)


def measured_span(name: str, **attrs: Any) -> Span:
    """A span that *always* times, recording only when enabled.

    This is the drop-in replacement for hand-rolled ``perf_counter``
    pairs: ``sp.duration_s`` is valid either way, so wall-time fields
    and trace timings derive from one measurement and cannot disagree.
    """
    return Span(name, attrs, _ENABLED)


# ----------------------------------------------------------------------
# context propagation
# ----------------------------------------------------------------------
def current_trace_id() -> str | None:
    """The trace id of the calling context, if any."""
    ctx = _TRACE.get()
    return ctx[0] if ctx is not None else None


def carry(fn: Callable, /, *args: Any, **kwargs: Any) -> Callable[[], Any]:
    """Bind ``fn(*args, **kwargs)`` to the caller's context.

    ``loop.run_in_executor`` runs its callable in a bare thread
    context; wrapping with ``carry`` makes the active trace (and the
    timing accumulator) follow the hop.  When tracing is disabled this
    degrades to a plain ``partial``-style binding — no context copy.
    """
    if not _ENABLED:
        if args or kwargs:
            return lambda: fn(*args, **kwargs)
        return fn
    ctx = contextvars.copy_context()
    return lambda: ctx.run(fn, *args, **kwargs)


def ship_context() -> tuple[str, str] | None:
    """The ``(trace_id, span_id)`` pair to ship alongside a worker
    payload (shm descriptor or pickle), or ``None`` when tracing is
    off / no span is active."""
    if not _ENABLED:
        return None
    return _TRACE.get()


def wire_context() -> dict | None:
    """The active trace context as the protocol envelope's optional
    ``trace`` field (``{"id": ..., "span": ...}``), or ``None``."""
    ctx = _TRACE.get() if _ENABLED else None
    if ctx is None:
        return None
    return {"id": ctx[0], "span": ctx[1]}


@contextmanager
def attached(ctx: Any) -> Iterator[None]:
    """Adopt a wire trace context (``{"id", "span"}``) for the block.

    The server calls this with whatever the request envelope carried;
    anything malformed (or ``None``, or tracing disabled) is a no-op —
    a client must never be able to break the server with a bad trace
    field.
    """
    if not _ENABLED or not isinstance(ctx, dict):
        yield
        return
    tid, sid = ctx.get("id"), ctx.get("span")
    if not isinstance(tid, str) or not isinstance(sid, str):
        yield
        return
    token = _TRACE.set((tid, sid))
    try:
        yield
    finally:
        _TRACE.reset(token)


@contextmanager
def adopt(ctx: tuple[str, str] | None) -> Iterator[list | None]:
    """Worker-side: run the block under a shipped trace context.

    Yields the list collecting every span the block records — return
    it with the chunk result and :func:`ingest` it in the parent.  With
    ``ctx=None`` (tracing was off when the chunk was submitted) the
    block runs untraced and ``None`` is yielded.

    Also enables recording locally: a pool worker is a fresh process
    whose module flag is off, and the shipped context is its signal
    that the parent wants spans.
    """
    if ctx is None:
        yield None
        return
    global _ENABLED
    collected: list[dict] = []
    trace_token = _TRACE.set((str(ctx[0]), str(ctx[1])))
    sink_token = _SINK.set(collected)
    prev = _ENABLED
    _ENABLED = True
    try:
        yield collected
    finally:
        _ENABLED = prev
        _SINK.reset(sink_token)
        _TRACE.reset(trace_token)


@contextmanager
def collecting(ctx: Any) -> Iterator[list | None]:
    """Server-side: collect the block's spans for piggybacking.

    ``ctx`` is the inbound envelope's ``trace`` field.  When tracing is
    enabled *and* the envelope carried a well-formed context, the
    block's finished spans divert into a fresh list (yielded) instead
    of the process recorder, so the handler can ship them back on the
    response — see :func:`shippable`.  Otherwise (tracing off, no
    context, malformed context) the block runs unchanged and ``None``
    is yielded: an untraced client never pays for collection.

    Unlike :func:`adopt` this does **not** set the trace context — pair
    it with :func:`attached`, which validates the same shape.
    """
    if not _ENABLED or not isinstance(ctx, dict):
        yield None
        return
    if not isinstance(ctx.get("id"), str) or not isinstance(
        ctx.get("span"), str
    ):
        yield None
        return
    collected: list[dict] = []
    token = _SINK.set(collected)
    try:
        yield collected
    finally:
        _SINK.reset(token)


def shippable(
    records: list[dict], *, cap: int = PIGGYBACK_MAX_SPANS
) -> list[dict]:
    """Prepare collected spans for the wire (size cap + root hygiene).

    Keeps the newest ``cap`` records and strips ``local_root`` from
    each: a shipped local-root span would complete the trace in the
    *receiving* recorder the moment it is ingested, splitting the
    stitched tree — completion belongs to whichever process owns the
    outermost span.
    """
    out = []
    for rec in records[-cap:] if len(records) > cap else records:
        if rec.get("local_root"):
            rec = {k: v for k, v in rec.items() if k != "local_root"}
        out.append(rec)
    return out


@contextmanager
def collect_timings() -> Iterator[dict]:
    """Accumulate recorded span durations by name for the block.

    The engine opens this around one solve and reads
    ``timings.get("kernels.compile")`` afterwards — per-layer timing
    without the kernel layer knowing who is asking.  Empty when tracing
    is disabled (no spans record).
    """
    timings: dict = {}
    token = _TIMINGS.set(timings)
    try:
        yield timings
    finally:
        _TIMINGS.reset(token)


# ----------------------------------------------------------------------
# recording
# ----------------------------------------------------------------------
class TraceRecorder:
    """Bounded ring buffer of finished spans + the flight recorder.

    Finished spans append to a ``deque(maxlen=capacity)``; spans of
    still-open traces are additionally grouped by trace id, and when a
    *root* span (no parent) ends, the assembled trace is complete — if
    its duration reached ``threshold_s`` it joins the flight recorder's
    last-``keep`` retained traces.  All state is guarded by one lock
    (the asyncio loop, executor threads and :func:`ingest` all report
    in).
    """

    def __init__(
        self,
        capacity: int = 4096,
        *,
        threshold_s: float = 0.05,
        keep: int = 32,
        max_open: int = 512,
    ):
        self._lock = threading.Lock()
        self._spans: deque[dict] = deque(maxlen=capacity)
        self._open: dict[str, list[dict]] = {}
        self._flight: deque[dict] = deque(maxlen=keep)
        self._max_open = int(max_open)
        self.threshold_s = float(threshold_s)
        self.keep = int(keep)
        self.completed = 0
        self.retained = 0

    def configure(
        self,
        *,
        threshold_s: float | None = None,
        keep: int | None = None,
    ) -> None:
        """Adjust the flight recorder's knobs (server startup)."""
        with self._lock:
            if threshold_s is not None:
                self.threshold_s = float(threshold_s)
            if keep is not None and int(keep) != self.keep:
                self.keep = int(keep)
                self._flight = deque(self._flight, maxlen=self.keep)

    def record(self, rec: dict) -> None:
        """File one finished span (called from ``Span.__exit__``)."""
        with self._lock:
            self._spans.append(rec)
            trace_id = rec["trace"]
            bucket = self._open.get(trace_id)
            if bucket is None:
                while len(self._open) >= self._max_open:
                    # shed the oldest never-completed trace (a crashed
                    # or abandoned root would otherwise leak forever)
                    self._open.pop(next(iter(self._open)))
                bucket = self._open[trace_id] = []
            bucket.append(rec)
            if rec["parent"] is None or rec.get("local_root"):
                spans = self._open.pop(trace_id)
                self.completed += 1
                if rec["dur"] >= self.threshold_s:
                    self.retained += 1
                    self._flight.append(
                        {
                            "trace": trace_id,
                            "root": rec["name"],
                            "duration_s": rec["dur"],
                            "spans": spans,
                        }
                    )

    # -- views -----------------------------------------------------------
    def spans(self) -> list[dict]:
        """The ring buffer's finished spans, oldest first (copies)."""
        with self._lock:
            return [dict(r) for r in self._spans]

    def flight(self, count: int | None = None) -> list[dict]:
        """The retained slow traces, most recent first."""
        with self._lock:
            traces = list(self._flight)
        traces.reverse()
        if count is not None:
            traces = traces[: max(int(count), 0)]
        return traces

    def trace(self, trace_id: str) -> list[dict]:
        """Every buffered span of one trace (open or finished)."""
        with self._lock:
            return [
                dict(r) for r in self._spans if r["trace"] == trace_id
            ]

    def stats(self) -> dict:
        with self._lock:
            return {
                "buffered": len(self._spans),
                "open_traces": len(self._open),
                "completed": self.completed,
                "retained": self.retained,
                "threshold_s": self.threshold_s,
                "keep": self.keep,
            }

    def clear(self) -> None:
        """Drop everything (test support)."""
        with self._lock:
            self._spans.clear()
            self._open.clear()
            self._flight.clear()
            self.completed = 0
            self.retained = 0

    def export_jsonl(self, path: Any) -> int:
        """Write the buffered spans as JSON Lines; returns the count."""
        spans = self.spans()
        with open(path, "w", encoding="utf-8") as fh:
            for rec in spans:
                fh.write(json.dumps(rec, sort_keys=True) + "\n")
        return len(spans)


#: The process recorder every span reports to.
RECORDER = TraceRecorder()


def _record(rec: dict) -> None:
    sink = _SINK.get()
    if sink is not None:
        sink.append(rec)
    else:
        RECORDER.record(rec)


def ingest(records: list[dict] | None) -> None:
    """File spans shipped back from a pool worker (see :func:`adopt`).

    Respects the caller's own sink, so a thread-pool chunk nested under
    another collection still ships upward correctly.
    """
    if not records:
        return
    for rec in records:
        _record(rec)


def export_jsonl(path: Any) -> int:
    """Module-level sugar for ``RECORDER.export_jsonl``."""
    return RECORDER.export_jsonl(path)


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def format_trace_tree(trace: dict) -> str:
    """A retained trace as an indented tree with offsets and durations.

    ``trace`` is one element of :meth:`TraceRecorder.flight` (also the
    wire shape of the service's ``trace`` op) — ``{"trace", "root",
    "duration_s", "spans": [...]}``.
    """
    spans = trace.get("spans", [])
    by_parent: dict[str | None, list[dict]] = {}
    ids = {rec["span"] for rec in spans}
    roots: list[dict] = []
    for rec in spans:
        parent = rec.get("parent")
        # spans whose parent fell out of the ring buffer (or lives in
        # another process hop that was not shipped) render as roots
        if parent is None or parent not in ids:
            roots.append(rec)
        else:
            by_parent.setdefault(parent, []).append(rec)
    t0 = min((rec["start"] for rec in spans), default=0.0)
    lines = [
        f"trace {trace.get('trace')}  "
        f"{trace.get('root')}  {trace.get('duration_s', 0.0) * 1e3:.3f} ms"
    ]

    def walk(rec: dict, depth: int) -> None:
        attrs = rec.get("attrs") or {}
        extra = (
            "  " + " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            if attrs
            else ""
        )
        lines.append(
            f"{'  ' * depth}+- {rec['name']}  "
            f"@{(rec['start'] - t0) * 1e3:+.3f} ms  "
            f"{rec['dur'] * 1e3:.3f} ms"
            f"  [pid {rec.get('pid', '?')}]{extra}"
        )
        for child in sorted(
            by_parent.get(rec["span"], []), key=lambda r: r["start"]
        ):
            walk(child, depth + 1)

    for root in sorted(roots, key=lambda r: r["start"]):
        walk(root, 1)
    return "\n".join(lines)
