"""Health/SLO scoring over the aggregated fleet snapshot.

:func:`score_fleet` turns the numbers the sharded front-end already
has — worker liveness, shed rate, client-visible p99 latency, restart
churn, pin/tombstone pressure — into one typed verdict
(``ok | degraded | critical``) with machine-readable reasons, served
by the service's ``health`` op and rendered by ``semimatch top``.

Thresholds live in the frozen :class:`HealthBudget` dataclass.  The
defaults suit the repo's loadtest profile; a caller overrides any
subset over the wire (``health`` op ``budget`` field), validated by
:meth:`HealthBudget.from_wire` — an unknown or non-numeric field is a
``ValueError``, which the server maps to ``bad-request``.

Every check is *optional*: a plain (non-sharded) server scores only
the inputs it has (shed rate, latency, uptime), and absent inputs are
simply skipped rather than defaulted — a missing signal is not a
healthy signal.

Dependency-free (stdlib only), mypy-clean.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields
from typing import Any, Mapping

__all__ = ["HealthBudget", "score_fleet", "SEVERITIES"]

#: Verdict levels, mildest first — a fleet's verdict is the worst
#: severity any check reported.
SEVERITIES = ("ok", "degraded", "critical")

_RANK = {name: i for i, name in enumerate(SEVERITIES)}


@dataclass(frozen=True)
class HealthBudget:
    """The SLO knobs every check grades against.

    ``latency_p99_s`` is the client-visible p99 budget; latency is
    critical at ``latency_critical_factor`` times it.  The remaining
    pairs are (degraded, critical) thresholds on ratios or rates.
    """

    latency_p99_s: float = 0.25
    latency_critical_factor: float = 4.0
    shed_ratio_degraded: float = 0.01
    shed_ratio_critical: float = 0.10
    restarts_per_worker_hour_degraded: float = 1.0
    restarts_per_worker_hour_critical: float = 6.0
    pin_ratio_degraded: float = 0.80
    pin_ratio_critical: float = 0.95
    tombstone_ratio_degraded: float = 0.50
    tombstone_ratio_critical: float = 0.90

    @classmethod
    def from_wire(cls, data: Any) -> "HealthBudget":
        """Build a budget from the ``health`` op's optional ``budget``
        field; raises ``ValueError`` on anything malformed."""
        if data is None:
            return cls()
        if not isinstance(data, Mapping):
            raise ValueError(
                "'budget' must be an object of budget fields"
            )
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown budget field(s) {unknown}; "
                f"known: {sorted(known)}"
            )
        values: dict[str, float] = {}
        for key, value in data.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                raise ValueError(
                    f"budget field {key!r} must be a number"
                )
            if float(value) <= 0:
                raise ValueError(
                    f"budget field {key!r} must be positive"
                )
            values[str(key)] = float(value)
        return cls(**values)


def _grade(value: float, degraded: float, critical: float) -> str:
    if value >= critical:
        return "critical"
    if value >= degraded:
        return "degraded"
    return "ok"


def score_fleet(
    inputs: Mapping[str, Any], budget: HealthBudget | None = None
) -> dict[str, Any]:
    """Score a fleet (or a single server) from observed inputs.

    Recognised ``inputs`` keys — every one optional, absent keys skip
    their check:

    * ``workers`` / ``workers_up`` — configured vs live worker count;
    * ``workers_unreachable`` — metrics scrapes that failed;
    * ``requests`` / ``load_shed`` — cumulative counters (shed ratio);
    * ``latency_p99_s`` — the client-visible p99 (the front-end's own
      request histogram, *not* a worker aggregate — double-counting a
      request on both sides of the hop would skew the SLO);
    * ``workers_lost`` / ``uptime_s`` — restart churn per worker-hour
      (uptime clamped to ten minutes so a fresh fleet's first crash
      grades as degraded churn, not instant criticality);
    * ``pins_open`` / ``pins_capacity`` — session-pin pressure;
    * ``tombstones`` / ``tombstones_capacity`` — relocation-tombstone
      pressure.

    Returns ``{"verdict", "reasons", "checks", "budget"}`` where
    ``reasons`` holds one machine-readable entry per non-ok check,
    worst first.
    """
    b = budget if budget is not None else HealthBudget()
    checks: dict[str, str] = {}
    reasons: list[dict[str, Any]] = []

    def note(
        check: str,
        severity: str,
        value: float,
        threshold: float,
        detail: str,
    ) -> None:
        checks[check] = severity
        if severity != "ok":
            reasons.append(
                {
                    "check": check,
                    "severity": severity,
                    "value": value,
                    "threshold": threshold,
                    "detail": detail,
                }
            )

    workers = inputs.get("workers")
    if workers is not None:
        total = int(workers)
        up = int(inputs.get("workers_up", 0))
        if total and up == 0:
            note("workers", "critical", up, total, "no worker is up")
        elif up < total:
            note(
                "workers",
                "degraded",
                up,
                total,
                f"{total - up} of {total} workers not up",
            )
        else:
            note("workers", "ok", up, total, "")

    unreachable = inputs.get("workers_unreachable")
    if unreachable is not None:
        n = int(unreachable)
        note(
            "unreachable",
            "degraded" if n else "ok",
            n,
            0,
            f"{n} worker metrics scrape(s) failed" if n else "",
        )

    requests = inputs.get("requests")
    if requests is not None:
        shed = int(inputs.get("load_shed", 0))
        ratio = shed / max(int(requests), 1)
        note(
            "shed",
            _grade(ratio, b.shed_ratio_degraded, b.shed_ratio_critical)
            if shed
            else "ok",
            round(ratio, 6),
            b.shed_ratio_degraded,
            f"{shed} of {requests} requests shed" if shed else "",
        )

    p99 = inputs.get("latency_p99_s")
    if p99 is not None:
        observed = float(p99)
        critical_at = b.latency_p99_s * b.latency_critical_factor
        severity = (
            "critical"
            if observed >= critical_at
            else "degraded"
            if observed >= b.latency_p99_s
            else "ok"
        )
        note(
            "latency",
            severity,
            observed,
            b.latency_p99_s,
            f"p99 {observed:.4f}s vs budget {b.latency_p99_s:.4f}s"
            if severity != "ok"
            else "",
        )

    lost = inputs.get("workers_lost")
    if lost is not None and workers:
        hours = max(float(inputs.get("uptime_s", 0.0)), 600.0) / 3600.0
        rate = int(lost) / max(int(workers), 1) / hours
        note(
            "restarts",
            _grade(
                rate,
                b.restarts_per_worker_hour_degraded,
                b.restarts_per_worker_hour_critical,
            )
            if lost
            else "ok",
            round(rate, 4),
            b.restarts_per_worker_hour_degraded,
            f"{lost} worker(s) lost "
            f"(~{rate:.2f}/worker/hour)"
            if lost
            else "",
        )

    for check, open_key, cap_key, deg, crit in (
        (
            "pins",
            "pins_open",
            "pins_capacity",
            b.pin_ratio_degraded,
            b.pin_ratio_critical,
        ),
        (
            "tombstones",
            "tombstones",
            "tombstones_capacity",
            b.tombstone_ratio_degraded,
            b.tombstone_ratio_critical,
        ),
    ):
        open_n = inputs.get(open_key)
        cap = inputs.get(cap_key)
        if open_n is None or not cap:
            continue
        ratio = int(open_n) / int(cap)
        note(
            check,
            _grade(ratio, deg, crit),
            round(ratio, 4),
            deg,
            f"{open_n} of {cap} {check} slots used"
            if _grade(ratio, deg, crit) != "ok"
            else "",
        )

    verdict = "ok"
    for severity in checks.values():
        if _RANK[severity] > _RANK[verdict]:
            verdict = severity
    reasons.sort(key=lambda r: -_RANK[str(r["severity"])])
    return {
        "verdict": verdict,
        "reasons": reasons,
        "checks": checks,
        "budget": asdict(b),
    }
