"""Fleet-level aggregation of per-worker metrics snapshots.

The sharded front-end scrapes each worker's ``metrics`` op and hands
the per-worker snapshots to :func:`aggregate_fleet`, which folds them
into **one** fleet view:

* counters sum key-wise;
* the fixed-bucket ``request_latency_s`` / ``batch_size`` histograms
  merge bucket-wise (:func:`~repro.obs.metrics.merge_histogram_snapshots`),
  so fleet p50/p99 come out of the merged cumulative walk — never from
  averaging per-worker percentiles;
* point-in-time values (pending depth, open sessions, uptime) are kept
  as gauges tagged by worker name — summing them would hide exactly
  the per-worker skew a dashboard wants to show.

A worker that cannot be scraped is represented by the typed
:func:`unreachable_marker` (never a silent ``None``) and listed in the
fleet view's ``workers_unreachable`` — a hung worker must be visible,
not blank.

Dependency-free (stdlib only), mypy-clean.
"""

from __future__ import annotations

from typing import Any, Mapping

from .metrics import merge_counter_maps, merge_histogram_snapshots

__all__ = ["aggregate_fleet", "is_unreachable", "unreachable_marker"]

#: The two fixed-bucket service histograms every worker snapshot carries.
_HISTOGRAMS = ("request_latency_s", "batch_size")

#: Worker-snapshot scalars surfaced as per-worker-tagged fleet gauges.
_GAUGES = ("pending", "uptime_s")


def unreachable_marker(reason: str) -> dict[str, Any]:
    """The typed stand-in for a worker whose scrape failed."""
    return {"unreachable": True, "reason": str(reason)}


def is_unreachable(snap: Any) -> bool:
    """Whether ``snap`` is an :func:`unreachable_marker` (or junk)."""
    return not isinstance(snap, Mapping) or bool(snap.get("unreachable"))


def aggregate_fleet(workers: Mapping[str, Any]) -> dict[str, Any]:
    """Fold per-worker ``metrics`` snapshots into one fleet view.

    ``workers`` maps worker name (``w0``, ``w1``, ...) to that worker's
    ``metrics`` op result — or an :func:`unreachable_marker` for
    workers that could not be scraped, which are excluded from every
    merge and listed under ``workers_unreachable``.

    The merged histograms satisfy the count identity: the fleet
    ``count`` equals the sum of the per-worker ``count`` values, bucket
    by bucket.
    """
    reachable: dict[str, Mapping[str, Any]] = {}
    unreachable: list[str] = []
    for name in sorted(workers):
        snap = workers[name]
        if is_unreachable(snap):
            unreachable.append(name)
        else:
            reachable[name] = snap
    gauges: dict[str, float] = {}
    for name, snap in reachable.items():
        for key in _GAUGES:
            value = snap.get(key)
            if isinstance(value, (int, float)) and not isinstance(
                value, bool
            ):
                gauges[f"{name}.{key}"] = float(value)
        sessions = snap.get("sessions")
        if isinstance(sessions, Mapping) and isinstance(
            sessions.get("open"), int
        ):
            gauges[f"{name}.sessions_open"] = float(sessions["open"])
    out: dict[str, Any] = {
        "workers": sorted(reachable),
        "workers_unreachable": unreachable,
        "counters": merge_counter_maps(
            [dict(snap.get("counters") or {}) for snap in reachable.values()]
        ),
        "gauges": dict(sorted(gauges.items())),
    }
    for key in _HISTOGRAMS:
        snaps = [
            dict(snap[key])
            for snap in reachable.values()
            if isinstance(snap.get(key), Mapping)
        ]
        out[key] = merge_histogram_snapshots(snaps) if snaps else None
    return out
