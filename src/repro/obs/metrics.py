"""Process-wide metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds every named instrument behind a
single lock and exposes the whole set two ways:

* :meth:`MetricsRegistry.snapshot` — plain ints/floats/lists, JSON-ready
  (what the service's ``metrics`` op returns);
* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text
  exposition format (``repro_`` prefix, dots become underscores,
  cumulative ``le`` buckets, ``_sum``/``_count`` series).

**Scrape contract** (documented in API.md): nothing resets on read.
Counters and histogram ``count``/``sum``/``buckets`` are monotonic
cumulative — two scrapers polling concurrently each compute their own
deltas and cannot corrupt each other.  The only windowed values are the
``window`` block a histogram snapshot carries alongside the cumulative
bucket data: exact p50/p99 over the most recent observations, for
humans who want "how slow is it *now*" without delta arithmetic.

Instruments are created on first use and live for the registry's
lifetime.  :func:`default_registry` is the process-wide instance for
library code; the service deliberately builds private registries (one
per server) so two servers in one process — the test harness norm —
keep independent counts.

Dependency-free (stdlib only), like :mod:`repro.obs.trace`.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from collections import deque
from typing import Callable, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "merge_counter_maps",
    "merge_histogram_snapshots",
]


class Counter:
    """A monotonically increasing integer.

    Not locked by itself: the owning registry serialises access.
    """

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        if n < 0:
            raise ValueError("counters only go up")
        self.value += n


class Gauge:
    """A point-in-time value — set directly, or computed at snapshot
    time by a callback (``fn``), which is how the registry exposes
    live state like cache sizes without polling loops."""

    __slots__ = ("name", "value", "fn")

    def __init__(self, name: str, fn: Callable[[], float] | None = None):
        self.name = name
        self.value = 0.0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = float(value)

    def read(self) -> float:
        if self.fn is not None:
            return float(self.fn())
        return self.value


class Histogram:
    """Fixed upper-bound buckets plus count/sum, Prometheus-style.

    ``observe`` files a value into the first bucket whose bound is
    ``>= value`` (the last, unbounded bucket catches the rest);
    ``quantile`` answers p50/p99 queries by walking the cumulative
    counts and reporting the matched bucket's upper bound — an upper
    estimate, which is the conservative side for latency reporting.

    ``count``/``total``/``counts`` are monotonic cumulative and never
    reset; a bounded ``recent`` window additionally keeps the last
    ``window`` raw observations so :meth:`snapshot` can report exact
    recent quantiles alongside the cumulative buckets.

    Not locked by itself: the owning registry (or the service
    ``Metrics`` wrapper) serialises access.
    """

    def __init__(self, bounds: Sequence[float], *, window: int = 512):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.recent: deque[float] = deque(maxlen=int(window))

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.recent.append(value)

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile
        (``0 <= q <= 1``); 0.0 when empty, the last finite bound for
        overflow observations."""
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else self.bounds[-1]
                )
        return self.bounds[-1]

    def window_quantile(self, q: float) -> float:
        """Exact ``q``-quantile of the recent-observation window."""
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        if not self.recent:
            return 0.0
        ordered = sorted(self.recent)
        idx = min(int(q * len(ordered)), len(ordered) - 1)
        return ordered[idx]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-ready form: ``le``/count pairs (``null`` = +inf).

        ``count``/``sum``/``buckets`` are cumulative since process
        start; the additive ``window`` block holds exact quantiles over
        the recent observations only.
        """
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": [
                [self.bounds[i] if i < len(self.bounds) else None, c]
                for i, c in enumerate(self.counts)
            ],
            "window": {
                "size": len(self.recent),
                "p50": self.window_quantile(0.50),
                "p99": self.window_quantile(0.99),
            },
        }


# ----------------------------------------------------------------------
# snapshot merging (fleet aggregation)
# ----------------------------------------------------------------------
def merge_counter_maps(maps: Sequence[dict]) -> dict:
    """Sum counter maps key-wise (missing keys count as zero)."""
    out: dict[str, int] = {}
    for counters in maps:
        for name, value in counters.items():
            out[name] = out.get(name, 0) + int(value)
    return dict(sorted(out.items()))


def merge_histogram_snapshots(snaps: Sequence[dict]) -> dict:
    """Merge :meth:`Histogram.snapshot` dicts bucket-wise.

    The whole point of fixed upper-bound buckets: snapshots from
    different processes merge by summing bucket counts, and fleet
    p50/p99 come out of the *merged* cumulative walk — never from
    averaging per-process percentiles, which has no statistical
    meaning.  All snapshots must share identical bucket bounds
    (``ValueError`` otherwise); the per-process ``window`` blocks are
    raw-observation views that cannot be merged, so the fleet snapshot
    is cumulative-only.
    """
    if not snaps:
        raise ValueError("nothing to merge")
    bounds = [b for b, _ in snaps[0]["buckets"]]
    counts = [0] * len(bounds)
    count = 0
    total = 0.0
    for snap in snaps:
        if [b for b, _ in snap["buckets"]] != bounds:
            raise ValueError(
                "histogram snapshots with differing bucket bounds "
                "cannot be merged"
            )
        for i, (_, c) in enumerate(snap["buckets"]):
            counts[i] += int(c)
        count += int(snap["count"])
        total += float(snap["sum"])

    def quantile(q: float) -> float:
        # the same cumulative walk as Histogram.quantile, over the
        # merged counts (finite bounds exclude the +inf slot)
        finite = [b for b in bounds if b is not None]
        if count == 0 or not finite:
            return 0.0
        rank = q * count
        seen = 0
        for i, c in enumerate(counts):
            seen += c
            if seen >= rank and c:
                return bounds[i] if bounds[i] is not None else finite[-1]
        return finite[-1]

    return {
        "count": count,
        "sum": total,
        "mean": total / count if count else 0.0,
        "p50": quantile(0.50),
        "p99": quantile(0.99),
        "buckets": [[b, c] for b, c in zip(bounds, counts)],
        "merged_from": len(snaps),
    }


def _prom_name(name: str) -> str:
    """``engine.cache.hits`` -> ``repro_engine_cache_hits``."""
    safe = "".join(c if c.isalnum() else "_" for c in name)
    return f"repro_{safe}"


class MetricsRegistry:
    """Every named instrument of one scope behind one lock.

    Instrument names are dotted (``service.requests``,
    ``engine.cache.hits``): the JSON snapshot keeps the dots, the
    Prometheus exposition maps them to underscores under a ``repro_``
    prefix.  Accessors create on first use; re-requesting a name
    returns the same instrument (with a type check — one name, one
    kind).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- accessors -------------------------------------------------------
    def counter(self, name: str) -> Counter:
        with self._lock:
            c = self._counters.get(name)
            if c is None:
                self._check_free(name, self._counters)
                c = self._counters[name] = Counter(name)
            return c

    def gauge(self, name: str, fn: Callable[[], float] | None = None) -> Gauge:
        with self._lock:
            g = self._gauges.get(name)
            if g is None:
                self._check_free(name, self._gauges)
                g = self._gauges[name] = Gauge(name, fn)
            elif fn is not None:
                g.fn = fn
            return g

    def histogram(
        self,
        name: str,
        bounds: Sequence[float] | None = None,
        *,
        window: int = 512,
    ) -> Histogram:
        with self._lock:
            h = self._histograms.get(name)
            if h is None:
                if bounds is None:
                    raise ValueError(
                        f"histogram {name!r} does not exist yet; "
                        "pass bounds to create it"
                    )
                self._check_free(name, self._histograms)
                h = self._histograms[name] = Histogram(bounds, window=window)
            return h

    def _check_free(self, name: str, own: dict) -> None:
        # caller holds the lock
        for kind in (self._counters, self._gauges, self._histograms):
            if kind is not own and name in kind:
                raise ValueError(
                    f"metric name {name!r} already registered "
                    "as a different instrument kind"
                )

    # -- recording sugar -------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        counter = self.counter(name)
        with self._lock:
            counter.inc(n)

    def set_gauge(self, name: str, value: float) -> None:
        gauge = self.gauge(name)
        with self._lock:
            gauge.set(value)

    def observe(self, name: str, value: float) -> None:
        """Observe into an existing histogram (create it first)."""
        hist = self.histogram(name)
        with self._lock:
            hist.observe(value)

    def counter_value(self, name: str) -> int:
        with self._lock:
            c = self._counters.get(name)
            return c.value if c is not None else 0

    # -- exposition ------------------------------------------------------
    def snapshot(self) -> dict:
        """Everything, JSON-ready, names sorted."""
        with self._lock:
            return {
                "counters": {
                    name: c.value
                    for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.read()
                    for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: h.snapshot()
                    for name, h in sorted(self._histograms.items())
                },
            }

    def prometheus_text(self) -> str:
        """The Prometheus text exposition format, ``\\n``-terminated."""
        with self._lock:
            lines: list[str] = []
            for name, c in sorted(self._counters.items()):
                prom = _prom_name(name)
                lines.append(f"# TYPE {prom} counter")
                lines.append(f"{prom} {c.value}")
            for name, g in sorted(self._gauges.items()):
                prom = _prom_name(name)
                lines.append(f"# TYPE {prom} gauge")
                lines.append(f"{prom} {_fmt(g.read())}")
            for name, h in sorted(self._histograms.items()):
                prom = _prom_name(name)
                lines.append(f"# TYPE {prom} histogram")
                cumulative = 0
                for i, count in enumerate(h.counts):
                    cumulative += count
                    le = (
                        _fmt(h.bounds[i])
                        if i < len(h.bounds)
                        else "+Inf"
                    )
                    lines.append(
                        f'{prom}_bucket{{le="{le}"}} {cumulative}'
                    )
                lines.append(f"{prom}_sum {_fmt(h.total)}")
                lines.append(f"{prom}_count {h.count}")
            return "\n".join(lines) + "\n"


def _fmt(value: float) -> str:
    """Floats without trailing noise (``0.05`` not ``0.05000...``)."""
    return repr(float(value))


_DEFAULT: MetricsRegistry | None = None
_DEFAULT_LOCK = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for library-level instruments."""
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry()
        return _DEFAULT
