"""A mutable overlay over :class:`~repro.core.hypergraph.TaskHypergraph`.

The core instance types are immutable CSR arrays — ideal for solver
kernels, hostile to churn.  :class:`DynamicInstance` keeps the *logical*
MULTIPROC instance in handle-indexed dictionaries instead: tasks and
processors get stable integer handles that survive arbitrary arrivals
and departures, every mutation appends to a :class:`~repro.dynamic.journal.DeltaJournal`
(giving ``snapshot()``/``rollback()``/``replay()``), and the frozen CSR
form is *compiled on demand* — and cached by version — whenever a
solver, digest or serialisation needs it.

The content digest is the engine's own
:func:`~repro.engine.cache.instance_digest` of the compiled hypergraph.
Compilation is *canonical* (hyperedges grouped by task handle), so any
two dynamic spellings of the same logical content — different mutation
histories, a rollback, a trace replay — produce the same digest and
share :class:`~repro.engine.cache.ResultCache` entries, and any
mutation re-keys the cache precisely: equal content, equal key —
nothing else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..core.errors import GraphStructureError, InfeasibleError
from ..core.hypergraph import TaskHypergraph
from .journal import DeltaJournal, Mutation

__all__ = ["DynamicInstance", "CompiledInstance"]


@dataclass(frozen=True)
class _Config:
    """One configuration of one task: a pin set, a weight, and whether a
    processor failure has disabled it.  Config indices are stable for the
    lifetime of their task (disabled entries keep their slot)."""

    pins: tuple[int, ...]
    weight: float
    alive: bool = True


@dataclass(frozen=True, eq=False)
class CompiledInstance:
    """The frozen CSR snapshot of a :class:`DynamicInstance`.

    Dense ids are contiguous and ordered by handle, so the mapping
    arrays translate between the solver's world (dense) and the dynamic
    world (handles):

    * ``task_handles[i]`` / ``proc_handles[u]`` — dense → handle;
    * ``hedge_handles[h]`` / ``hedge_slots[h]`` — the task handle and
      config index a dense hyperedge was compiled from;
    * ``task_index`` / ``proc_index`` / ``hedge_index`` /
      ``hedge_origin`` — dict views of the above, built lazily (the
      patched-compilation path hands over bare arrays; most consumers
      never need the dicts).
    """

    hypergraph: TaskHypergraph
    task_handles: tuple[int, ...]
    proc_handles: tuple[int, ...]
    hedge_handles: np.ndarray
    hedge_slots: np.ndarray

    def _lazy(self, name: str, build):
        cached = self.__dict__.get(name)
        if cached is None:
            cached = build()
            object.__setattr__(self, name, cached)
        return cached

    @property
    def hedge_origin(self) -> tuple[tuple[int, int], ...]:
        """``(task handle, config index)`` per dense hyperedge."""
        return self._lazy(
            "_hedge_origin",
            lambda: tuple(
                zip(
                    self.hedge_handles.tolist(),
                    self.hedge_slots.tolist(),
                )
            ),
        )

    @property
    def task_index(self) -> dict[int, int]:
        return self._lazy(
            "_task_index",
            lambda: {t: d for d, t in enumerate(self.task_handles)},
        )

    @property
    def proc_index(self) -> dict[int, int]:
        return self._lazy(
            "_proc_index",
            lambda: {u: d for d, u in enumerate(self.proc_handles)},
        )

    @property
    def hedge_index(self) -> dict[tuple[int, int], int]:
        return self._lazy(
            "_hedge_index",
            lambda: {
                origin: h for h, origin in enumerate(self.hedge_origin)
            },
        )

    def assignment_to_dense(
        self, assignment: dict[int, int]
    ) -> np.ndarray:
        """Translate a handle-level assignment (task → config index)
        into the ``hedge_of_task`` array of the compiled hypergraph."""
        out = np.empty(len(self.task_handles), dtype=np.int64)
        index = self.hedge_index
        for dense, handle in enumerate(self.task_handles):
            out[dense] = index[(handle, assignment[handle])]
        return out

    def assignment_from_dense(
        self, hedge_of_task: np.ndarray
    ) -> dict[int, int]:
        """Inverse of :meth:`assignment_to_dense`."""
        hedges = np.asarray(hedge_of_task, dtype=np.int64)
        return dict(
            zip(
                self.hedge_handles[hedges].tolist(),
                self.hedge_slots[hedges].tolist(),
            )
        )


class DynamicInstance:
    """A MULTIPROC instance that mutates.

    Tasks and processors are addressed by stable integer *handles*
    (assigned sequentially, never reused), so references held by an
    :class:`~repro.dynamic.IncrementalSolver` stay valid across any
    interleaving of arrivals and departures.

    Mutations — :meth:`add_task`, :meth:`remove_task`,
    :meth:`add_processor`, :meth:`remove_processor`,
    :meth:`update_weight` — append to the delta journal.
    :meth:`snapshot` marks a point in time, :meth:`rollback` restores
    it, and :meth:`replay` applies recorded mutations (e.g. a loaded
    trace file).
    """

    def __init__(self, *, patching: bool = True) -> None:
        self._tasks: dict[int, list[_Config]] = {}
        self._procs: set[int] = set()
        self._next_task = 0
        self._next_proc = 0
        self.journal = DeltaJournal()
        self._version = 0
        self._compiled: tuple[int, CompiledInstance] | None = None
        self._digest: tuple[int, str] | None = None
        self._listeners: list = []
        # incremental compilation (see repro.kernels.patch): the
        # patcher trails the journal; its emitted artifact is cached by
        # version and re-keyed by chain digests for cross-instance reuse
        self._patching = bool(patching)
        self._patcher = None
        self._patcher_pos = 0
        self._artifact = None  # (version, PatchedCompilation)
        self._chain: list[str] | None = None
        self._chain_base = 0
        self._compile_stats = {
            "full_builds": 0,
            "compactions": 0,
            "alias_hits": 0,
        }

    # ------------------------------------------------------------------
    # change notification
    # ------------------------------------------------------------------
    def subscribe(self, listener) -> None:
        """Register a zero-argument callable invoked after every state
        change (mutation or rollback).

        An :class:`~repro.dynamic.IncrementalSolver` subscribes so its
        repair runs in lockstep with the journal: repairing a mutation
        needs the instance *as of that mutation*, which only the moment
        of the change can provide.
        """
        self._listeners.append(listener)

    def unsubscribe(self, listener) -> None:
        """Remove a previously subscribed listener (no-op if absent)."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            pass

    def _notify(self) -> None:
        for listener in tuple(self._listeners):
            listener()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_hypergraph(
        hg: TaskHypergraph, *, patching: bool = True
    ) -> "DynamicInstance":
        """Seed a dynamic instance from a static one.

        Task ``i`` gets handle ``i``, processor ``u`` handle ``u``, and
        task ``i``'s ``j``-th incident hyperedge becomes its config
        ``j`` — a fresh compile therefore round-trips to an equivalent
        hypergraph with the hyperedges in canonical task-grouped order.
        The seeding is *not* journaled: the baseline is the state a
        trace's mutations apply to.
        """
        inst = DynamicInstance(patching=patching)
        inst._procs = set(range(hg.n_procs))
        inst._next_proc = hg.n_procs
        for i in range(hg.n_tasks):
            # pins are stored sorted, exactly as add_task stores them:
            # the digest's equal-content-equal-key guarantee needs one
            # canonical pin order whatever the source spelled
            confs = [
                _Config(
                    tuple(sorted(int(u) for u in hg.hedge_proc_set(int(h)))),
                    float(hg.hedge_w[int(h)]),
                )
                for h in hg.task_hedge_ids(i)
            ]
            if not confs:
                raise GraphStructureError(
                    f"task {i} has no configuration; no semi-matching exists"
                )
            inst._tasks[i] = confs
        inst._next_task = hg.n_tasks
        return inst

    # ------------------------------------------------------------------
    # inspection
    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self._tasks)

    @property
    def n_procs(self) -> int:
        return len(self._procs)

    @property
    def version(self) -> int:
        """Monotone mutation counter (rollback moves it forward too:
        every state change invalidates derived snapshots)."""
        return self._version

    def tasks(self) -> list[int]:
        """Alive task handles, ascending."""
        return sorted(self._tasks)

    def procs(self) -> list[int]:
        """Alive processor handles, ascending."""
        return sorted(self._procs)

    def has_task(self, task: int) -> bool:
        return task in self._tasks

    def has_proc(self, proc: int) -> bool:
        return proc in self._procs

    def task_configs(
        self, task: int
    ) -> list[tuple[int, tuple[int, ...], float]]:
        """Alive ``(config index, pins, weight)`` triples of ``task``."""
        return [
            (j, c.pins, c.weight)
            for j, c in enumerate(self._task(task))
            if c.alive
        ]

    def config(self, task: int, index: int) -> tuple[tuple[int, ...], float]:
        """``(pins, weight)`` of one alive configuration."""
        confs = self._task(task)
        if not 0 <= index < len(confs) or not confs[index].alive:
            raise GraphStructureError(
                f"task {task} has no alive configuration {index}"
            )
        c = confs[index]
        return c.pins, c.weight

    def config_any(
        self, task: int, index: int
    ) -> tuple[tuple[int, ...], float, bool]:
        """``(pins, weight, alive)`` of a configuration, disabled ones
        included — the repair path needs the pins of a configuration a
        processor failure just killed."""
        confs = self._task(task)
        if not 0 <= index < len(confs):
            raise GraphStructureError(
                f"task {task} has no configuration {index}"
            )
        c = confs[index]
        return c.pins, c.weight, c.alive

    def _task(self, task: int) -> list[_Config]:
        try:
            return self._tasks[task]
        except KeyError:
            raise GraphStructureError(f"unknown task handle {task}") from None

    # ------------------------------------------------------------------
    # mutations
    # ------------------------------------------------------------------
    def _bump(self) -> None:
        self._version += 1
        self._compiled = None
        self._digest = None

    def add_task(
        self,
        configurations: Sequence[tuple[Iterable[int], float]],
    ) -> int:
        """A task arrives with its configuration set ``S_i``; returns
        its handle.  ``configurations`` is a sequence of
        ``(processor handles, weight)`` pairs."""
        confs: list[_Config] = []
        for procs, w in configurations:
            pins = tuple(sorted({int(u) for u in procs}))
            if not pins:
                raise GraphStructureError("empty processor set")
            missing = [u for u in pins if u not in self._procs]
            if missing:
                raise GraphStructureError(
                    f"unknown processor handle(s) {missing}"
                )
            w = float(w)
            if not (w > 0 and np.isfinite(w)):
                raise GraphStructureError(f"bad weight {w!r}")
            confs.append(_Config(pins, w))
        if not confs:
            raise GraphStructureError(
                "a task needs at least one configuration"
            )
        task = self._next_task
        self._next_task += 1
        self._tasks[task] = confs
        self._bump()
        self.journal.append(
            Mutation(
                "add_task",
                {
                    "task": task,
                    "configs": [
                        [list(c.pins), c.weight] for c in confs
                    ],
                },
            )
        )
        self._notify()
        return task

    def remove_task(self, task: int) -> None:
        """The task finishes (or is cancelled) and leaves the instance."""
        confs = self._task(task)
        del self._tasks[task]
        self._bump()
        self.journal.append(
            Mutation(
                "remove_task",
                {"task": task},
                undo={"configs": confs},
            )
        )
        self._notify()

    def add_processor(self) -> int:
        """A processor joins; returns its handle.  It starts with no
        incident configurations — later arrivals (or re-added tasks)
        may reference it."""
        proc = self._next_proc
        self._next_proc += 1
        self._procs.add(proc)
        self._bump()
        self.journal.append(Mutation("add_processor", {"proc": proc}))
        self._notify()
        return proc

    def remove_processor(self, proc: int) -> None:
        """The processor fails: every configuration pinned to it is
        disabled.  Raises :class:`InfeasibleError` (and changes
        nothing) if some task would be left with no alive
        configuration."""
        if proc not in self._procs:
            raise GraphStructureError(f"unknown processor handle {proc}")
        killed: list[tuple[int, int]] = []
        for task, confs in self._tasks.items():
            survivors = 0
            for j, c in enumerate(confs):
                if not c.alive:
                    continue
                if proc in c.pins:
                    killed.append((task, j))
                else:
                    survivors += 1
            if survivors == 0:
                raise InfeasibleError(
                    f"removing processor {proc} leaves task {task} with "
                    "no configuration"
                )
        for task, j in killed:
            confs = self._tasks[task]
            confs[j] = _Config(confs[j].pins, confs[j].weight, alive=False)
        self._procs.discard(proc)
        self._bump()
        self.journal.append(
            Mutation(
                "remove_processor",
                {"proc": proc},
                undo={"killed": killed},
            )
        )
        self._notify()

    def update_weight(self, task: int, config: int, weight: float) -> None:
        """The execution time of one configuration drifts."""
        confs = self._task(task)
        if not 0 <= config < len(confs) or not confs[config].alive:
            raise GraphStructureError(
                f"task {task} has no alive configuration {config}"
            )
        weight = float(weight)
        if not (weight > 0 and np.isfinite(weight)):
            raise GraphStructureError(f"bad weight {weight!r}")
        old = confs[config].weight
        confs[config] = _Config(confs[config].pins, weight)
        self._bump()
        self.journal.append(
            Mutation(
                "update_weight",
                {"task": task, "config": config, "weight": weight},
                undo={"old": old},
            )
        )
        self._notify()

    def apply(self, mutation: Mutation) -> Any:
        """Apply one recorded :class:`Mutation` (trace replay).

        ``add_task``/``add_processor`` records carry the handle the
        original run assigned; replay verifies the instance assigns the
        same one, so a trace is only applicable to the baseline it was
        recorded against.
        """
        p = mutation.payload
        if mutation.op == "add_task":
            # verify the handle *before* mutating: the error path must
            # leave the instance (and its subscribers) untouched
            if self._next_task != int(p["task"]):
                raise GraphStructureError(
                    f"trace expected task handle {p['task']}, "
                    f"instance would assign {self._next_task}; "
                    "wrong baseline?"
                )
            return self.add_task(
                [(pins, w) for pins, w in p["configs"]]
            )
        if mutation.op == "remove_task":
            return self.remove_task(int(p["task"]))
        if mutation.op == "add_processor":
            if self._next_proc != int(p["proc"]):
                raise GraphStructureError(
                    f"trace expected processor handle {p['proc']}, "
                    f"instance would assign {self._next_proc}; "
                    "wrong baseline?"
                )
            return self.add_processor()
        if mutation.op == "remove_processor":
            return self.remove_processor(int(p["proc"]))
        if mutation.op == "update_weight":
            return self.update_weight(
                int(p["task"]), int(p["config"]), float(p["weight"])
            )
        raise ValueError(f"unknown mutation op {mutation.op!r}")

    def replay(self, mutations: Iterable[Mutation]) -> int:
        """Apply a sequence of mutations; returns how many were applied."""
        count = 0
        for m in mutations:
            self.apply(m)
            count += 1
        return count

    # ------------------------------------------------------------------
    # snapshot / rollback
    # ------------------------------------------------------------------
    def snapshot(self) -> int:
        """An opaque marker for the current state (a journal position)."""
        return self.journal.snapshot()

    def rollback(self, marker: int) -> int:
        """Undo every mutation applied after ``marker``; returns how
        many were undone.  The journal is truncated back to the marker,
        so a solver whose cursor is past it performs a full re-sync."""
        undone = 0
        for m in self.journal.truncate(marker):
            self._undo(m)
            undone += 1
        if undone:
            # mutations the patcher already consumed cannot be
            # un-applied (it keeps no undo state) — drop it and rebuild
            # lazily; a patcher that had not caught up yet stays valid
            if self._patcher is not None and self._patcher_pos > marker:
                self._patcher = None
            # chain digests past the marker describe rewritten history
            if self._chain is not None:
                keep = marker - self._chain_base + 1
                if keep < 1:
                    self._chain = None
                elif len(self._chain) > keep:
                    del self._chain[keep:]
            self._bump()
            self._notify()
        return undone

    def _undo(self, m: Mutation) -> None:
        p = m.payload
        if m.op == "add_task":
            task = int(p["task"])
            del self._tasks[task]
            if task == self._next_task - 1:
                self._next_task -= 1  # keep replay-determinism of handles
        elif m.op == "remove_task":
            self._tasks[int(p["task"])] = list(m.undo["configs"])
        elif m.op == "add_processor":
            proc = int(p["proc"])
            self._procs.discard(proc)
            if proc == self._next_proc - 1:
                self._next_proc -= 1
        elif m.op == "remove_processor":
            self._procs.add(int(p["proc"]))
            for task, j in m.undo["killed"]:
                confs = self._tasks[task]
                confs[j] = _Config(confs[j].pins, confs[j].weight)
        elif m.op == "update_weight":
            task, j = int(p["task"]), int(p["config"])
            confs = self._tasks[task]
            confs[j] = _Config(confs[j].pins, float(m.undo["old"]))
        else:  # pragma: no cover - journal only holds known ops
            raise ValueError(f"cannot undo mutation op {m.op!r}")

    # ------------------------------------------------------------------
    # full-fidelity state serialisation
    # ------------------------------------------------------------------
    def to_state(self) -> dict:
        """The complete mutable state as a JSON-friendly dict.

        Unlike :meth:`to_hypergraph` this preserves *everything* replay
        depends on: task/processor handles, disabled configuration
        slots, and the handle counters.  ``from_state(to_state())`` is
        an exact clone (minus the journal), so a trace's recorded
        handles and config indices stay valid against it.
        """
        return {
            "kind": "dynamic-instance",
            "version": 1,
            "procs": sorted(self._procs),
            "next_task": self._next_task,
            "next_proc": self._next_proc,
            "tasks": {
                str(t): [
                    [list(c.pins), c.weight, c.alive] for c in confs
                ]
                for t, confs in sorted(self._tasks.items())
            },
        }

    @staticmethod
    def from_state(
        data: dict, *, patching: bool = True
    ) -> "DynamicInstance":
        """Inverse of :meth:`to_state` (journal starts empty)."""
        if data.get("kind") != "dynamic-instance":
            raise GraphStructureError(
                f"expected kind 'dynamic-instance', got {data.get('kind')!r}"
            )
        inst = DynamicInstance(patching=patching)
        inst._procs = {int(u) for u in data["procs"]}
        for t, confs in data["tasks"].items():
            parsed = [
                _Config(
                    tuple(sorted(int(u) for u in pins)),
                    float(w),
                    bool(alive),
                )
                for pins, w, alive in confs
            ]
            if not any(c.alive for c in parsed):
                raise GraphStructureError(
                    f"task {t} has no alive configuration"
                )
            for c in parsed:
                if c.alive and not set(c.pins) <= inst._procs:
                    raise GraphStructureError(
                        f"task {t} has a configuration pinned to an "
                        "unknown processor"
                    )
                if not (c.weight > 0 and np.isfinite(c.weight)):
                    raise GraphStructureError(f"bad weight {c.weight!r}")
            inst._tasks[int(t)] = parsed
        inst._next_task = int(data["next_task"])
        inst._next_proc = int(data["next_proc"])
        if inst._tasks and max(inst._tasks) >= inst._next_task:
            raise GraphStructureError("next_task collides with a live handle")
        if inst._procs and max(inst._procs) >= inst._next_proc:
            raise GraphStructureError("next_proc collides with a live handle")
        return inst

    # ------------------------------------------------------------------
    # compilation, digest, cache integration
    # ------------------------------------------------------------------
    def compile(self) -> CompiledInstance:
        """The frozen CSR snapshot of the current state (cached by
        version).  Dense ids are handle-ordered and hyperedges grouped
        by task — a *canonical* form, so equal logical content always
        compiles to identical arrays (and hence an identical digest)
        whatever the mutation history.

        With patching enabled (the default) the snapshot is produced by
        the :class:`~repro.kernels.KernelPatcher`: one full build, then
        bounded array edits per mutation — bit-identical to
        :meth:`_compile_full` (the retained from-scratch oracle)."""
        if self._compiled is not None and self._compiled[0] == self._version:
            return self._compiled[1]
        if self._patching:
            art = self._patched()
            compiled = CompiledInstance(
                hypergraph=art.hypergraph,
                task_handles=tuple(art.task_handles.tolist()),
                proc_handles=tuple(art.proc_handles.tolist()),
                hedge_handles=art.hedge_handles,
                hedge_slots=art.hedge_slots,
            )
        else:
            compiled = self._compile_full()
        self._compiled = (self._version, compiled)
        return compiled

    def _compile_full(self) -> CompiledInstance:
        """From-scratch canonical compilation (the patcher's oracle:
        the differential tests hold :meth:`compile` to its arrays)."""
        task_handles = tuple(sorted(self._tasks))
        proc_handles = tuple(sorted(self._procs))
        proc_index = {u: d for d, u in enumerate(proc_handles)}
        hedge_task: list[int] = []
        plists: list[list[int]] = []
        weights: list[float] = []
        hedge_handles: list[int] = []
        hedge_slots: list[int] = []
        for dense, task in enumerate(task_handles):
            for j, c in enumerate(self._tasks[task]):
                if not c.alive:
                    continue
                hedge_task.append(dense)
                plists.append([proc_index[u] for u in c.pins])
                weights.append(c.weight)
                hedge_handles.append(task)
                hedge_slots.append(j)
        hg = TaskHypergraph.from_hyperedges(
            len(task_handles),
            len(proc_handles),
            np.asarray(hedge_task, dtype=np.int64),
            plists,
            np.asarray(weights, dtype=np.float64),
        )
        return CompiledInstance(
            hypergraph=hg,
            task_handles=task_handles,
            proc_handles=proc_handles,
            hedge_handles=np.asarray(hedge_handles, dtype=np.int64),
            hedge_slots=np.asarray(hedge_slots, dtype=np.int64),
        )

    # -- incremental compilation ----------------------------------------
    def _patcher_state(self):
        return (
            (t, [(c.pins, c.weight, c.alive) for c in confs])
            for t, confs in sorted(self._tasks.items())
        )

    def _rebuild_patcher(self) -> None:
        from ..kernels.patch import KernelPatcher

        self._patcher = KernelPatcher(self._patcher_state(), self._procs)
        self._patcher_pos = len(self.journal)
        self._compile_stats["full_builds"] += 1

    def _patched(self):
        """The current :class:`~repro.kernels.PatchedCompilation`
        (cached by version): catch the patcher up with the journal,
        rebuild it when compaction pressure or a rollback demands, and
        answer from the chain-alias cache when another instance already
        emitted this exact content."""
        if self._artifact is not None and self._artifact[0] == self._version:
            return self._artifact[1]
        from ..engine.cache import patched_digest
        from ..kernels.patch import lookup_patched, register_patched

        journal = self.journal
        if self._patcher is None or self._patcher_pos > len(journal):
            self._rebuild_patcher()
        else:
            for m in journal.entries_since(self._patcher_pos):
                self._patcher.apply(m)
            self._patcher_pos = len(journal)
            if self._patcher.needs_compaction:
                self._compile_stats["compactions"] += 1
                self._rebuild_patcher()
        # extend the chain to the journal head (chain digests depend on
        # the base content and the mutation records alone, so this is
        # independent of patcher state)
        if self._chain is not None:
            covered = self._chain_base + len(self._chain) - 1
            for m in journal.entries_since(covered):
                self._chain.append(patched_digest(self._chain[-1], (m,)))
        chain_key = self._chain[-1] if self._chain else None
        artifact = (
            lookup_patched(chain_key) if chain_key is not None else None
        )
        if artifact is not None:
            self._patcher.adopt(artifact)
            self._compile_stats["alias_hits"] += 1
        else:
            artifact = self._patcher.emit()
            if chain_key is not None:
                register_patched(chain_key, artifact)
        if self._chain is None:
            # (re)anchor the chain at the current content: chain[0] is
            # the handle-aware anchor digest, so equal baselines on
            # other instances produce the same chain values
            anchor = artifact.anchor_digest()
            self._chain = [anchor]
            self._chain_base = len(journal)
            register_patched(anchor, artifact)
        self._artifact = (self._version, artifact)
        return artifact

    def compiled_kernels(self):
        """The :class:`~repro.kernels.CompiledKernels` of the current
        state — patched, not recompiled, and pre-registered in the
        kernel compile cache so any solver's ``compile_instance`` of
        :meth:`to_hypergraph` is a hit."""
        if self._patching:
            return self._patched().kernels
        from ..kernels import compile_instance

        return compile_instance(self.to_hypergraph())

    def compile_stats(self) -> dict[str, int]:
        """Observable compile-path counters: ``full_builds`` (patcher
        builds from state), ``compactions``, ``alias_hits`` (chain-alias
        cache answers), plus the patcher's own emission counters."""
        out = dict(self._compile_stats)
        if self._patcher is not None:
            out.update(self._patcher.stats.as_dict())
        else:
            out.update(
                {
                    "mutations": 0,
                    "emits_full": 0,
                    "emits_weight": 0,
                    "emits_delta": 0,
                    "reused": 0,
                    "adopted": 0,
                }
            )
        return out

    def to_hypergraph(self) -> TaskHypergraph:
        """The current state as an immutable :class:`TaskHypergraph`."""
        return self.compile().hypergraph

    def digest(self) -> str:
        """Content digest of the current state (cached by version).

        This is :func:`repro.engine.cache.instance_digest` of the
        (canonical) compiled hypergraph, so any two spellings of the
        same logical content share
        :class:`~repro.engine.cache.ResultCache` entries, and every
        mutation re-keys precisely.
        """
        if self._digest is not None and self._digest[0] == self._version:
            return self._digest[1]
        from ..engine.cache import instance_digest

        d = instance_digest(self.to_hypergraph())
        self._digest = (self._version, d)
        return d

    def cache_key(self, options=None) -> tuple:
        """The :class:`ResultCache` key for solving the current state
        under ``options`` (a :class:`~repro.api.SolveOptions`; defaults
        to ``SolveOptions()``)."""
        from ..api.options import SolveOptions

        if options is None:
            options = SolveOptions()
        return (self.digest(), *options.cache_token())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DynamicInstance(n_tasks={self.n_tasks}, "
            f"n_procs={self.n_procs}, version={self._version}, "
            f"journal={len(self.journal)})"
        )
