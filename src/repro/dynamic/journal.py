"""Delta-journal types for mutating instances.

Every change applied to a :class:`~repro.dynamic.DynamicInstance` is
recorded as one :class:`Mutation` — a small, JSON-friendly record of the
*logical* operation (op name + payload).  The journal is the common
currency of the dynamic subsystem:

* :class:`~repro.dynamic.DynamicInstance` appends one entry per mutation
  and uses the private undo payload for ``rollback()``;
* :class:`~repro.dynamic.IncrementalSolver` consumes the journal tail to
  repair its assignment instead of re-solving;
* mutation traces (:mod:`repro.dynamic.trace`) are journals serialised
  one JSON object per line;
* :class:`~repro.algorithms.online.OnlineScheduler` journals its
  arrivals with the same records, so an online stream can be replayed
  into the dynamic engine verbatim.

The module is dependency-free on purpose (no numpy, no core types): the
records must be cheap to create, pickle and serialise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = ["Mutation", "DeltaJournal", "MUTATION_OPS"]

#: The op vocabulary of the dynamic subsystem (trace files are rejected
#: when they name anything else).
MUTATION_OPS = (
    "add_task",
    "remove_task",
    "add_processor",
    "remove_processor",
    "update_weight",
)


@dataclass(frozen=True)
class Mutation:
    """One logical change to a dynamic instance.

    Attributes
    ----------
    op:
        One of :data:`MUTATION_OPS`.
    payload:
        The operation's arguments, JSON-friendly (ints, floats, lists).
        ``add_task`` carries ``task`` (the handle assigned) and
        ``configs`` (``[[pins...], weight]`` pairs); ``remove_task`` /
        ``remove_processor`` carry the handle; ``add_processor`` carries
        ``proc``; ``update_weight`` carries ``task``, ``config`` and
        ``weight``.
    undo:
        Private payload recorded by the instance so ``rollback()`` can
        invert the operation.  Not serialised into traces.
    """

    op: str
    payload: dict[str, Any]
    undo: dict[str, Any] = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        if self.op not in MUTATION_OPS:
            raise ValueError(
                f"unknown mutation op {self.op!r}; expected one of "
                f"{MUTATION_OPS}"
            )

    def to_dict(self) -> dict[str, Any]:
        """The trace-file form: op + payload, no undo information."""
        return {"op": self.op, **self.payload}

    @staticmethod
    def from_dict(data: dict[str, Any]) -> "Mutation":
        """Inverse of :meth:`to_dict` (used by the trace loader)."""
        payload = dict(data)
        op = payload.pop("op", None)
        if op is None:
            raise ValueError(f"mutation record lacks an 'op' field: {data!r}")
        return Mutation(op=str(op), payload=payload)


class DeltaJournal:
    """An append-only mutation log with snapshot markers.

    ``snapshot()`` returns an opaque marker (the current length);
    ``entries_since(marker)`` yields the tail — how the incremental
    solver catches up — and ``truncate(marker)`` drops entries past the
    marker (the rollback primitive; the *owner* is responsible for
    undoing their effects first).
    """

    def __init__(self) -> None:
        self._entries: list[Mutation] = []
        #: Bumped by every :meth:`truncate` that dropped entries, so a
        #: consumer holding a cursor can tell "the journal grew past my
        #: cursor" apart from "history was rewritten under me".
        self.truncations = 0

    def append(self, mutation: Mutation) -> Mutation:
        self._entries.append(mutation)
        return mutation

    def snapshot(self) -> int:
        """An opaque marker for the current journal position."""
        return len(self._entries)

    def entries_since(self, marker: int) -> list[Mutation]:
        """Entries appended after ``marker`` (oldest first)."""
        return self._entries[marker:]

    def truncate(self, marker: int) -> list[Mutation]:
        """Drop and return entries past ``marker`` (newest first, i.e.
        undo order)."""
        if not 0 <= marker <= len(self._entries):
            raise ValueError(
                f"invalid journal marker {marker!r} "
                f"(journal has {len(self._entries)} entries)"
            )
        dropped = self._entries[marker:]
        del self._entries[marker:]
        if dropped:
            self.truncations += 1
        return dropped[::-1]

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[Mutation]:
        return iter(self._entries)

    def __getitem__(self, idx):
        return self._entries[idx]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DeltaJournal({len(self._entries)} entries)"
