"""Incremental solving: repair the assignment, don't re-solve the world.

:class:`IncrementalSolver` maintains a semi-matching (and the full load
vector) over a mutating :class:`~repro.dynamic.DynamicInstance`.  It
subscribes to the instance, repairing the assignment in lockstep with
the delta journal —

* **arrivals** place the new task greedily (the configuration with the
  smallest resulting bottleneck, the online-greedy rule);
* **departures** free the task's load;
* **processor failures** re-place exactly the tasks whose chosen
  configuration died;
* **weight drift** adjusts the loads in place and reconsiders the one
  affected task;

and every direct fix is followed by a *bounded local search*: the
vector-improving single-task moves of
:func:`repro.algorithms.local_search`, restricted to tasks assigned
inside the repair region and capped by a move budget.  Candidate moves
are screened by their affected maxima and the residual ties resolved
through the kernels' batched move evaluation
(:func:`repro.kernels.batch_lex_signs`) — the same primitive the
static local search runs on.  Accepted moves strictly improve the
multiset-lexicographic load vector, so the global bottleneck never
worsens through repair.

When one mutation displaces more than ``max(min_fallback_region,
fallback_ratio * n_tasks)`` tasks the solver gives up on locality
and re-solves from scratch through :func:`repro.api.solve` — which runs
the registry method it was configured with *and* hits the engine's
shared :class:`~repro.engine.cache.ResultCache` keyed by the instance's
content digest (so rolling back to previously-seen content is answered
from cache).  ``fallback_ratio=0`` with ``min_fallback_region=0``
degenerates to a full re-solve per mutation — bit-identical to solving
the final instance from scratch, which the equivalence tests exploit.

:meth:`compact` is the periodic global re-optimisation valve: it runs a
from-scratch solve and adopts it unless the incrementally repaired
assignment is already at least as good, guaranteeing the solver never
drifts above from-scratch quality.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..kernels import first_lex_improving
from ..obs.trace import span
from .instance import DynamicInstance
from .journal import Mutation

__all__ = ["IncrementalSolver", "RepairStats", "incremental_solve"]


@dataclass
class RepairStats:
    """Observable counters of one solver's lifetime."""

    mutations: int = 0
    local_repairs: int = 0
    full_solves: int = 0
    ls_moves: int = 0
    fallbacks: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "mutations": self.mutations,
            "local_repairs": self.local_repairs,
            "full_solves": self.full_solves,
            "ls_moves": self.ls_moves,
            "fallbacks": self.fallbacks,
        }


@dataclass
class _Cursor:
    """Where in the journal the solver has caught up to."""

    position: int = 0
    truncations: int = 0


class IncrementalSolver:
    """Maintain a semi-matching across mutations of a dynamic instance.

    Parameters
    ----------
    instance:
        A :class:`DynamicInstance` (tracked in place), a
        :class:`TaskHypergraph` (seeded via
        :meth:`DynamicInstance.from_hypergraph`) or ``None`` (a fresh
        empty instance).
    method:
        Registry method used for the initial solve and every full
        re-solve (any :func:`repro.api.parse_method` string).
    fallback_ratio, min_fallback_region:
        A mutation that displaces more than ``max(min_fallback_region,
        fallback_ratio * n_tasks)`` tasks (a heavily-shared processor
        failing, say) triggers a full re-solve.  Both zero means
        "always re-solve".
    ls_moves:
        Local-search move budget per repaired mutation.
    """

    def __init__(
        self,
        instance: DynamicInstance | TaskHypergraph | None = None,
        *,
        method: str = "auto",
        fallback_ratio: float = 0.25,
        min_fallback_region: int = 4,
        ls_moves: int = 64,
    ):
        if instance is None:
            instance = DynamicInstance()
        elif isinstance(instance, TaskHypergraph):
            instance = DynamicInstance.from_hypergraph(instance)
        elif not isinstance(instance, DynamicInstance):
            raise TypeError(
                "instance must be a DynamicInstance, TaskHypergraph or "
                f"None, got {type(instance).__name__}"
            )
        if fallback_ratio < 0:
            raise ValueError("fallback_ratio must be non-negative")
        if min_fallback_region < 0:
            raise ValueError("min_fallback_region must be non-negative")
        if ls_moves < 0:
            raise ValueError("ls_moves must be non-negative")
        self.instance = instance
        self.method = method
        self.fallback_ratio = float(fallback_ratio)
        self.min_fallback_region = int(min_fallback_region)
        self.ls_budget = int(ls_moves)
        self.stats = RepairStats()
        self._assign: dict[int, int] = {}
        self._loads: dict[int, float] = {}
        self._on_proc: dict[int, set[int]] = {}
        self._cursor = _Cursor()
        self._full_resolve()
        # repair must run in lockstep with the journal: fixing mutation
        # k needs the instance *as of k*, which only the moment of the
        # change can provide.  The accessors still sync() defensively.
        self.instance.subscribe(self.sync)

    def detach(self) -> None:
        """Stop tracking the instance (the solver keeps its last state)."""
        self.instance.unsubscribe(self.sync)

    def compile_stats(self) -> dict[str, int]:
        """Compile-path counters of the tracked instance (see
        :meth:`DynamicInstance.compile_stats`).  Every full re-solve and
        :meth:`matching` call compiles through the instance's patcher,
        so under churn the patched/reused counters grow while
        ``full_builds`` stays at the initial build — the service
        surfaces these per session."""
        return self.instance.compile_stats()

    # ------------------------------------------------------------------
    # accessors (all sync first)
    # ------------------------------------------------------------------
    def loads(self) -> dict[int, float]:
        """Per-processor loads, keyed by processor *handle* (a copy)."""
        self.sync()
        return dict(self._loads)

    def bottleneck(self) -> float:
        """``max_u l(u)`` — the maintained objective value."""
        self.sync()
        return max(self._loads.values(), default=0.0)

    def assignment(self) -> dict[int, int]:
        """Chosen configuration index per task handle (a copy)."""
        self.sync()
        return dict(self._assign)

    def matching(self) -> HyperSemiMatching:
        """The maintained assignment as a validated
        :class:`HyperSemiMatching` over the compiled current state."""
        self.sync()
        compiled = self.instance.compile()
        return HyperSemiMatching(
            compiled.hypergraph,
            compiled.assignment_to_dense(self._assign),
        )

    # ------------------------------------------------------------------
    # synchronisation
    # ------------------------------------------------------------------
    def sync(self) -> int:
        """Catch up with the instance's journal; returns how many
        mutations were processed.  A rollback (journal truncation)
        forces one full re-solve."""
        journal = self.instance.journal
        if self._cursor.truncations != journal.truncations:
            self._full_resolve()
            return 0
        processed = 0
        # a fallback re-solve inside _repair fast-forwards the cursor to
        # the journal's end, which terminates this loop naturally
        while self._cursor.position < len(journal):
            m = journal[self._cursor.position]
            self._cursor.position += 1
            self.stats.mutations += 1
            self._repair(m)
            processed += 1
        return processed

    def _displacement_limit(self) -> float:
        return max(
            self.min_fallback_region,
            self.fallback_ratio * max(self.instance.n_tasks, 1),
        )

    # ------------------------------------------------------------------
    # repair
    # ------------------------------------------------------------------
    def _repair(self, m: Mutation) -> None:
        # per-mutation boundary: one span per journal record, wrapping
        # whichever tier (local repair or fallback re-solve) runs
        with span("dynamic.repair") as sp:  # repro: ignore[span-hygiene] — repair boundary, one span per journal mutation, outside the local-search inner loop
            if sp.recording:
                sp.set(op=m.op)
            limit = self._displacement_limit()
            if limit <= 0:
                self.stats.fallbacks += 1
                self._full_resolve()
                return
            repair = self._apply_direct(m)
            if repair is None:
                return  # nothing to repair (e.g. a processor joined)
            region, displaced = repair
            if displaced > limit:
                self.stats.fallbacks += 1
                self._full_resolve()
                return
            self.stats.local_repairs += 1
            self._bounded_local_search(region)

    def _apply_direct(
        self, m: Mutation
    ) -> tuple[set[int], int] | None:
        """Apply the mutation's direct consequences to the assignment.

        Returns ``(repair region, displaced task count)`` — the seed
        processors for the bounded local search and the damage measure
        the fallback thresholds on — or ``None`` when no rebalancing
        can help."""
        p = m.payload
        if m.op == "add_processor":
            self._loads[int(p["proc"])] = 0.0
            # an empty processor cannot worsen anything, but tasks may
            # profitably migrate onto it once it gains configurations —
            # which only happens through later mutations
            return None

        if m.op == "add_task":
            task = int(p["task"])
            pins = self._place_greedy(task)
            return set(pins), 1

        if m.op == "remove_task":
            task = int(p["task"])
            cfg = self._assign.pop(task)
            conf = m.undo["configs"][cfg]
            self._unload(task, conf.pins, conf.weight)
            return set(conf.pins), 0

        if m.op == "remove_processor":
            proc = int(p["proc"])
            region: set[int] = set()
            displaced = 0
            for task in sorted(self._on_proc.get(proc, set())):
                cfg = self._assign[task]
                pins, w, _alive = self.instance.config_any(task, cfg)
                self._unload(task, pins, w)
                del self._assign[task]
                region.update(pins)
                region.update(self._place_greedy(task))
                displaced += 1
            self._on_proc.pop(proc, None)
            self._loads.pop(proc, None)
            region.discard(proc)
            return (region, displaced) if region else None

        if m.op == "update_weight":
            task, cfg = int(p["task"]), int(p["config"])
            new_w, old_w = float(p["weight"]), float(m.undo["old"])
            pins, _, _ = self.instance.config_any(task, cfg)
            if self._assign.get(task) == cfg:
                for u in pins:
                    self._loads[u] += new_w - old_w
                return set(pins), 1
            # a non-chosen configuration changed price: only a decrease
            # can make the affected task want to move
            if new_w < old_w:
                current = self._assign[task]
                cur_pins, _, _ = self.instance.config_any(task, current)
                return set(pins) | set(cur_pins), 1
            return None

        raise ValueError(f"unknown mutation op {m.op!r}")

    # -- primitive load/assignment updates ------------------------------
    def _load(self, task: int, pins: tuple[int, ...], w: float) -> None:
        for u in pins:
            self._loads[u] += w
            self._on_proc.setdefault(u, set()).add(task)

    def _unload(self, task: int, pins: tuple[int, ...], w: float) -> None:
        for u in pins:
            if u in self._loads:
                self._loads[u] -= w
            procs = self._on_proc.get(u)
            if procs is not None:
                procs.discard(task)

    def _place_greedy(self, task: int) -> tuple[int, ...]:
        """Assign ``task`` the configuration with the smallest resulting
        bottleneck (ties: least added work, then config order) and
        return its pins."""
        best_cfg = -1
        best_key: tuple[float, float] | None = None
        best_pins: tuple[int, ...] = ()
        best_w = 0.0
        for cfg, pins, w in self.instance.task_configs(task):
            peak = max(self._loads[u] for u in pins) + w
            key = (peak, w * len(pins))
            if best_key is None or key < best_key:
                best_cfg, best_key, best_pins, best_w = cfg, key, pins, w
        self._assign[task] = best_cfg
        self._load(task, best_pins, best_w)
        return best_pins

    # -- bounded local search -------------------------------------------
    #: candidate moves evaluated per kernel batch during repair
    _MOVE_CHUNK = 32

    @staticmethod
    def _first_improving_of(pending) -> tuple | None:
        """Kernel-evaluate buffered maybe-moves; first improving or
        None.  ``pending`` holds ``(move, before, after)`` rows in scan
        order, padded here with ``-inf`` to a rectangle."""
        if not pending:
            return None
        kmax = max(len(before) for _, before, _ in pending)
        pad = [-np.inf] * kmax
        b = np.array([r + pad[len(r) :] for _, r, _ in pending])
        a = np.array([r + pad[len(r) :] for _, _, r in pending])
        i = first_lex_improving(a, b)
        return pending[i][0] if i is not None else None

    def _first_improving_move(self, region: set[int], peak: float):
        """The first vector-improving move in scan order (region procs
        ascending, their tasks ascending, configurations in index
        order).

        Most moves are decided by their affected maxima alone (the
        first entry of the descending multisets): a larger maximum
        cannot improve, a smaller one certainly does.  Only
        equal-maxima moves need the full comparison, and those buffer
        up for the batched move-evaluation kernel
        (:func:`repro.kernels.batch_lex_signs`) instead of one
        comparison call per candidate move.
        """
        loads = self._loads
        seen: set[tuple[int, int]] = set()
        pending: list[tuple[tuple, list, list]] = []
        for u in sorted(region):
            if loads.get(u, -1.0) < peak - 1e-12:
                continue
            for task in sorted(self._on_proc.get(u, set())):
                cur = self._assign[task]
                cur_pins, cur_w, _ = self.instance.config_any(task, cur)
                old_set = set(cur_pins)
                for cfg, pins, w in self.instance.task_configs(task):
                    if cfg == cur or (task, cfg) in seen:
                        continue
                    seen.add((task, cfg))
                    affected = sorted(old_set | set(pins))
                    before = [loads[x] for x in affected]
                    new_set = set(pins)
                    after = list(before)
                    for i, x in enumerate(affected):
                        if x in old_set:
                            after[i] -= cur_w
                        if x in new_set:
                            after[i] += w
                    ma, mb = max(after), max(before)
                    if ma > mb:
                        continue  # lex-larger for sure: not a move
                    move = (task, cfg, cur_pins, cur_w, pins, w)
                    if ma < mb:
                        # improving for sure — but an earlier buffered
                        # maybe-move may improve too and must win
                        first = self._first_improving_of(pending)
                        return first if first is not None else move
                    pending.append((move, before, after))
                    if len(pending) >= self._MOVE_CHUNK:
                        first = self._first_improving_of(pending)
                        if first is not None:
                            return first
                        pending = []
        return self._first_improving_of(pending)

    def _bounded_local_search(self, region: set[int]) -> None:
        """Vector-improving single-task moves off the region's
        bottleneck processors (the restriction
        :func:`repro.algorithms.local_search` uses globally).

        Accepted moves pull the region outward (their new pins join
        it); the move budget — not the region size — bounds the work,
        so a repair ripples as far as it is productive and no further.
        """
        budget = self.ls_budget
        while budget > 0:
            peak = max(
                (self._loads.get(u, 0.0) for u in region), default=0.0
            )
            # only tasks on a region-bottleneck processor can host the
            # move that lowers it
            mv = self._first_improving_move(region, peak)
            if mv is None:
                break
            task, cfg, cur_pins, cur_w, pins, w = mv
            self._unload(task, cur_pins, cur_w)
            self._assign[task] = cfg
            self._load(task, pins, w)
            region.update(pins)
            self.stats.ls_moves += 1
            budget -= 1

    # ------------------------------------------------------------------
    # full solves
    # ------------------------------------------------------------------
    def _full_resolve(self) -> None:
        """Drop the incremental state and solve the current instance
        from scratch with the configured registry method (through the
        default engine, so the content digest keys the shared cache)."""
        inst = self.instance
        self.stats.full_solves += 1
        self._loads = {u: 0.0 for u in inst.procs()}
        self._on_proc = {}
        self._assign = {}
        if inst.n_tasks:
            from ..api import solve as api_solve

            compiled = inst.compile()
            result = api_solve(compiled.hypergraph, method=self.method)
            self._assign = compiled.assignment_from_dense(
                result.matching.hedge_of_task
            )
            for task, cfg in self._assign.items():
                pins, w = inst.config(task, cfg)
                self._load(task, pins, w)
        self._cursor = _Cursor(
            position=inst.journal.snapshot(),
            truncations=inst.journal.truncations,
        )

    def compact(self) -> float:
        """Periodic global re-optimisation: solve from scratch and keep
        the better of (maintained, fresh).  Returns the resulting
        bottleneck — by construction never above what a from-scratch
        registry solve of the current content yields."""
        current = self.bottleneck()  # syncs
        inst = self.instance
        if not inst.n_tasks:
            return current
        from ..api import solve as api_solve

        # compaction boundary: runs on the owner's cadence (periodic),
        # never inside a repair loop
        with span("dynamic.compact"):  # repro: ignore[span-hygiene] — periodic global re-optimisation boundary, one span per compaction, not a hot loop
            compiled = inst.compile()
            result = api_solve(compiled.hypergraph, method=self.method)
        if result.makespan < current:
            self._loads = {u: 0.0 for u in inst.procs()}
            self._on_proc = {}
            self._assign = compiled.assignment_from_dense(
                result.matching.hedge_of_task
            )
            for task, cfg in self._assign.items():
                pins, w = inst.config(task, cfg)
                self._load(task, pins, w)
            self.stats.full_solves += 1
            return result.makespan
        return current


def incremental_solve(hg: TaskHypergraph) -> HyperSemiMatching:
    """From-scratch entry point of the incremental engine (the
    registry's ``incremental`` solver): seed a dynamic overlay and
    return its maintained matching.

    On a static instance this equals the engine's ``auto`` pick; its
    point is reachability — ``SolveOptions(method="incremental")``,
    portfolio entries and the CLI all address the dynamic subsystem's
    pipeline through the one registry.
    """
    solver = IncrementalSolver(hg)
    assignment = solver.assignment()
    # the maintained assignment speaks (task handle, config index);
    # translate to *this* hypergraph's hyperedge ids — the dynamic
    # overlay's canonical compilation may order hyperedges differently,
    # and the engine caches/validates against the caller's instance
    hedges = np.empty(hg.n_tasks, dtype=np.int64)
    for i in range(hg.n_tasks):
        hedges[i] = hg.task_hedge_ids(i)[assignment[i]]
    return HyperSemiMatching(hg, hedges)
