"""Mutation traces: churn workloads as JSONL files.

A *trace* is a baseline instance plus an ordered list of mutations —
exactly what it takes to reproduce a stream of cluster churn.  The
on-disk format is JSON-lines:

* line 1 — a header: ``{"kind": "mutation-trace", "version": 1,
  "baseline": ...}`` where the baseline is ``null``, a hypergraph dict
  (:func:`repro.io.serialize.hypergraph_to_dict`) or a full dynamic
  state dict (:meth:`DynamicInstance.to_state` — required fidelity when
  the baseline has churned, since its handles are no longer dense);
* every further line — one mutation record
  (:meth:`~repro.dynamic.journal.Mutation.to_dict`).

Traces are the interchange currency of the dynamic subsystem: the churn
generator (:func:`repro.generators.churn_trace`) emits them, ``semimatch
replay`` consumes them, and ``benchmarks/bench_dynamic_churn.py`` races
incremental repair against from-scratch re-solving over one.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from ..core.errors import GraphStructureError
from ..core.hypergraph import TaskHypergraph
from .instance import DynamicInstance
from .journal import Mutation

__all__ = ["save_trace", "load_trace", "trace_of"]

_TRACE_KIND = "mutation-trace"
_TRACE_VERSION = 1


def trace_of(instance: DynamicInstance) -> list[Mutation]:
    """The instance's full journal as a trace (a copy)."""
    return list(instance.journal)


def save_trace(
    path: str | Path,
    mutations: Sequence[Mutation],
    *,
    baseline: DynamicInstance | TaskHypergraph | None = None,
) -> None:
    """Write a mutation trace (and optionally its baseline) as JSONL.

    A :class:`DynamicInstance` baseline is stored through
    :meth:`~DynamicInstance.to_state`, which preserves its exact handles
    and disabled configuration slots — compiling it to a hypergraph
    would renumber both and silently re-target the mutations.
    """
    from ..io.serialize import hypergraph_to_dict

    if isinstance(baseline, DynamicInstance):
        base_dict = baseline.to_state()
    elif baseline is not None:
        base_dict = hypergraph_to_dict(baseline)
    else:
        base_dict = None
    header = {
        "kind": _TRACE_KIND,
        "version": _TRACE_VERSION,
        "baseline": base_dict,
    }
    lines = [json.dumps(header)]
    lines.extend(json.dumps(m.to_dict()) for m in mutations)
    Path(path).write_text("\n".join(lines) + "\n")


def load_trace(
    path: str | Path,
) -> tuple[DynamicInstance | None, list[Mutation]]:
    """Read a trace; returns ``(baseline instance or None, mutations)``.

    The baseline (when present) is re-seeded through
    :meth:`DynamicInstance.from_hypergraph`, so the mutations' recorded
    handles line up and :meth:`DynamicInstance.replay` applies cleanly.
    """
    from ..io.serialize import hypergraph_from_dict

    raw = Path(path).read_text().strip()
    if not raw:
        raise GraphStructureError(f"empty trace file {str(path)!r}")
    lines = raw.split("\n")
    header = json.loads(lines[0])
    if header.get("kind") != _TRACE_KIND:
        raise GraphStructureError(
            f"expected kind {_TRACE_KIND!r}, got {header.get('kind')!r}"
        )
    baseline = None
    base_dict = header.get("baseline")
    if base_dict is not None:
        if base_dict.get("kind") == "dynamic-instance":
            baseline = DynamicInstance.from_state(base_dict)
        else:
            baseline = DynamicInstance.from_hypergraph(
                hypergraph_from_dict(base_dict)
            )
    mutations = [
        Mutation.from_dict(json.loads(line))
        for line in lines[1:]
        if line.strip()
    ]
    return baseline, mutations
