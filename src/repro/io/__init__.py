"""Serialisation of instances and results."""

from .matrixmarket import (
    read_bipartite_mm,
    read_hypergraph_mm,
    write_bipartite_mm,
    write_hypergraph_mm,
)
from .serialize import (
    bipartite_from_dict,
    bipartite_to_dict,
    hypergraph_from_dict,
    hypergraph_to_dict,
    load_instance,
    matching_to_dict,
    save_instance,
)

__all__ = [
    "bipartite_to_dict",
    "bipartite_from_dict",
    "hypergraph_to_dict",
    "hypergraph_from_dict",
    "matching_to_dict",
    "save_instance",
    "load_instance",
    "write_bipartite_mm",
    "read_bipartite_mm",
    "write_hypergraph_mm",
    "read_hypergraph_mm",
]
