"""Matrix Market interop (extension).

The matching literature the paper builds on (MatchMaker, the Cherkassky
et al. generators) exchanges bipartite graphs as sparse matrices.  These
helpers export/import the task-processor biadjacency matrix in Matrix
Market format via :mod:`scipy.io`, so instances can move between this
library and standard sparse-matrix tooling.

Weights are stored as the matrix entries; a SINGLEPROC-UNIT instance is
a pattern-like matrix of ones.  Hypergraphs are exported as the
``|N| x |V2|`` pin matrix plus a companion ``.tasks`` file holding each
hyperedge's task id and weight.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import GraphStructureError
from ..core.hypergraph import TaskHypergraph

__all__ = [
    "write_bipartite_mm",
    "read_bipartite_mm",
    "write_hypergraph_mm",
    "read_hypergraph_mm",
]


def write_bipartite_mm(graph: BipartiteGraph, path: str | Path) -> None:
    """Write the ``n_tasks x n_procs`` weighted biadjacency matrix."""
    from scipy.io import mmwrite

    mmwrite(str(path), graph.to_biadjacency())


def read_bipartite_mm(path: str | Path) -> BipartiteGraph:
    """Read a bipartite instance from a Matrix Market file.

    Rows are tasks, columns processors, entries execution times.
    """
    from scipy.io import mmread

    m = mmread(str(path)).tocoo()
    return BipartiteGraph.from_edges(
        m.shape[0],
        m.shape[1],
        m.row.astype(np.int64),
        m.col.astype(np.int64),
        m.data.astype(np.float64),
    )


def _tasks_path(path: str | Path) -> Path:
    p = Path(path)
    return p.with_suffix(p.suffix + ".tasks")


def write_hypergraph_mm(hg: TaskHypergraph, path: str | Path) -> None:
    """Write the pin matrix plus the ``.tasks`` companion file.

    The pin matrix is ``n_hedges x n_procs`` with the hyperedge weight as
    every pin's entry; the companion lists ``task_id weight`` per
    hyperedge line (the weight is repeated for robust round-trips of
    hyperedges whose pins were deduplicated by sparse conversion).
    """
    from scipy.io import mmwrite
    from scipy.sparse import csr_matrix

    sizes = np.diff(hg.hedge_ptr)
    rows = np.repeat(np.arange(hg.n_hedges, dtype=np.int64), sizes)
    vals = np.repeat(hg.hedge_w, sizes)
    pins = csr_matrix(
        (vals, (rows, hg.hedge_procs)), shape=(hg.n_hedges, hg.n_procs)
    )
    mmwrite(str(path), pins)
    with open(_tasks_path(path), "w") as fh:
        fh.write(f"% tasks {hg.n_tasks}\n")
        for h in range(hg.n_hedges):
            fh.write(f"{int(hg.hedge_task[h])} {float(hg.hedge_w[h])!r}\n")


def read_hypergraph_mm(path: str | Path) -> TaskHypergraph:
    """Read a hypergraph written by :func:`write_hypergraph_mm`."""
    from scipy.io import mmread

    pins = mmread(str(path)).tocsr()
    tasks_file = _tasks_path(path)
    if not tasks_file.exists():
        raise GraphStructureError(
            f"missing companion file {tasks_file} with hyperedge tasks"
        )
    lines = tasks_file.read_text().strip().splitlines()
    header = lines[0].split()
    if len(header) != 3 or header[:2] != ["%", "tasks"]:
        raise GraphStructureError("malformed .tasks header")
    n_tasks = int(header[2])
    hedge_task = []
    weights = []
    for line in lines[1:]:
        t, w = line.split()
        hedge_task.append(int(t))
        weights.append(float(w))
    if len(hedge_task) != pins.shape[0]:
        raise GraphStructureError(
            f"{pins.shape[0]} hyperedges in the matrix but "
            f"{len(hedge_task)} task entries"
        )
    proc_lists = [
        pins.indices[pins.indptr[h] : pins.indptr[h + 1]].astype(np.int64)
        for h in range(pins.shape[0])
    ]
    return TaskHypergraph.from_hyperedges(
        n_tasks,
        pins.shape[1],
        np.asarray(hedge_task, dtype=np.int64),
        proc_lists,
        np.asarray(weights, dtype=np.float64),
    )
