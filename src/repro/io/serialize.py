"""JSON-friendly serialisation of graphs, hypergraphs and matchings.

Instances round-trip through plain dictionaries (lists of ints/floats
only), so they can be stored with :mod:`json`, shipped between processes,
or checked into a repository as fixtures.  Files written by
:func:`save_instance` carry a ``kind`` tag and a format version.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import GraphStructureError
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching, SemiMatching

__all__ = [
    "bipartite_to_dict",
    "bipartite_from_dict",
    "hypergraph_to_dict",
    "hypergraph_from_dict",
    "matching_to_dict",
    "save_instance",
    "load_instance",
]

_FORMAT_VERSION = 1


def bipartite_to_dict(graph: BipartiteGraph) -> dict[str, Any]:
    """Serialise a bipartite graph (CSR edge list form)."""
    owner = np.repeat(
        np.arange(graph.n_tasks, dtype=np.int64), np.diff(graph.task_ptr)
    )
    return {
        "kind": "bipartite",
        "version": _FORMAT_VERSION,
        "n_tasks": graph.n_tasks,
        "n_procs": graph.n_procs,
        "task_ids": owner.tolist(),
        "proc_ids": graph.task_adj.tolist(),
        "weights": graph.weights.tolist(),
    }


def bipartite_from_dict(data: dict[str, Any]) -> BipartiteGraph:
    """Inverse of :func:`bipartite_to_dict`."""
    if data.get("kind") != "bipartite":
        raise GraphStructureError(
            f"expected kind 'bipartite', got {data.get('kind')!r}"
        )
    return BipartiteGraph.from_edges(
        int(data["n_tasks"]),
        int(data["n_procs"]),
        np.asarray(data["task_ids"], dtype=np.int64),
        np.asarray(data["proc_ids"], dtype=np.int64),
        np.asarray(data["weights"], dtype=np.float64),
    )


def hypergraph_to_dict(hg: TaskHypergraph) -> dict[str, Any]:
    """Serialise a hypergraph (task + pin list per hyperedge)."""
    pins = [
        hg.hedge_proc_set(h).tolist() for h in range(hg.n_hedges)
    ]
    return {
        "kind": "hypergraph",
        "version": _FORMAT_VERSION,
        "n_tasks": hg.n_tasks,
        "n_procs": hg.n_procs,
        "hedge_task": hg.hedge_task.tolist(),
        "pins": pins,
        "weights": hg.hedge_w.tolist(),
    }


def hypergraph_from_dict(data: dict[str, Any]) -> TaskHypergraph:
    """Inverse of :func:`hypergraph_to_dict`."""
    if data.get("kind") != "hypergraph":
        raise GraphStructureError(
            f"expected kind 'hypergraph', got {data.get('kind')!r}"
        )
    return TaskHypergraph.from_hyperedges(
        int(data["n_tasks"]),
        int(data["n_procs"]),
        np.asarray(data["hedge_task"], dtype=np.int64),
        data["pins"],
        np.asarray(data["weights"], dtype=np.float64),
    )


def matching_to_dict(matching: SemiMatching | HyperSemiMatching) -> dict[str, Any]:
    """Serialise a matching result (assignment + makespan)."""
    if isinstance(matching, SemiMatching):
        return {
            "kind": "semi-matching",
            "version": _FORMAT_VERSION,
            "edge_of_task": matching.edge_of_task.tolist(),
            "makespan": matching.makespan,
        }
    return {
        "kind": "hyper-semi-matching",
        "version": _FORMAT_VERSION,
        "hedge_of_task": matching.hedge_of_task.tolist(),
        "makespan": matching.makespan,
    }


def save_instance(
    obj: BipartiteGraph | TaskHypergraph, path: str | Path
) -> None:
    """Write an instance to ``path`` as JSON."""
    if isinstance(obj, BipartiteGraph):
        data = bipartite_to_dict(obj)
    elif isinstance(obj, TaskHypergraph):
        data = hypergraph_to_dict(obj)
    else:
        raise TypeError(f"cannot serialise {type(obj).__name__}")
    Path(path).write_text(json.dumps(data))


def load_instance(path: str | Path) -> BipartiteGraph | TaskHypergraph:
    """Read an instance written by :func:`save_instance`."""
    data = json.loads(Path(path).read_text())
    kind = data.get("kind")
    if kind == "bipartite":
        return bipartite_from_dict(data)
    if kind == "hypergraph":
        return hypergraph_from_dict(data)
    raise GraphStructureError(f"unknown instance kind {kind!r}")
