"""Small shared utilities: RNG normalisation, timing, array helpers."""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

__all__ = ["as_rng", "Timer", "check_1d_int", "stable_argsort"]


def as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Normalise ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (fresh entropy), an integer seed, or an existing
    generator (returned unchanged, so callers can thread one RNG through a
    pipeline of generators for reproducibility).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


@dataclass
class Timer:
    """Accumulating wall-clock timer used by the experiment runner.

    Use as a context manager; ``elapsed`` accumulates over repeated entries
    so a single Timer can measure a loop body.
    """

    elapsed: float = 0.0
    _t0: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed += time.perf_counter() - self._t0

    @contextmanager
    def pause(self):
        """Temporarily stop the clock inside a ``with timer:`` block."""
        self.elapsed += time.perf_counter() - self._t0
        try:
            yield self
        finally:
            self._t0 = time.perf_counter()


def check_1d_int(a: np.ndarray, name: str) -> np.ndarray:
    """Return ``a`` as a contiguous 1-D int64 array, validating shape."""
    arr = np.ascontiguousarray(a, dtype=np.int64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    return arr


def stable_argsort(keys: np.ndarray) -> np.ndarray:
    """Stable argsort (mergesort) — deterministic tie order matters for
    reproducing the paper's greedy visit orders."""
    return np.argsort(keys, kind="stable")
