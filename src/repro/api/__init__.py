"""repro.api — the unified, capability-aware solver API.

One declarative :class:`SolverRegistry` replaces the old pair of
name→callable dicts and the if/elif dispatch chains: every algorithm
self-registers with :func:`register_solver`, declaring its domain,
capabilities and auto-selection traits, and ``known_methods()`` /
``DEFAULT_PORTFOLIO`` are *generated* from that metadata.

Requests are typed: a frozen :class:`SolveOptions` (method expression,
refinement, seed, portfolio, time budget) normalizes to one canonical
:class:`MethodExpr`, which also feeds the engine's cache key.  Results
are rich: :class:`SolveResult` wraps the matching with provenance —
winning solver, wall time, lower bound and optimality gap, cache-hit
flag, per-entry portfolio statistics.

Quick start
-----------
>>> from repro.api import solve, SolveOptions, Portfolio, Refine
>>> result = solve(problem, method="EVG+ls")          # doctest: +SKIP
>>> result = solve(problem, options=SolveOptions(     # doctest: +SKIP
...     method=Portfolio("SGH", Refine("EVG")), seed=7))
>>> result.makespan, result.winner, result.gap        # doctest: +SKIP

``solve`` routes through the shared default engine, so single calls hit
the same content-addressed result cache as batch runs and sweeps.
"""

from __future__ import annotations

from typing import Any

from . import solvers as _builtin_solvers  # noqa: F401  (registers)
from .errors import CapabilityError, UnknownSolverError
from .methods import (
    AUTO,
    Auto,
    EntryStat,
    MethodExpr,
    Portfolio,
    Refine,
    Solver,
    parse_method,
)
from .options import SolveOptions
from .registry import (
    SolverRegistry,
    SolverSpec,
    get_registry,
    register_solver,
)
from .result import SolveResult

__all__ = [
    "solve",
    "SolveOptions",
    "SolveResult",
    "SolverRegistry",
    "SolverSpec",
    "register_solver",
    "get_registry",
    "known_methods",
    "registry_table",
    "MethodExpr",
    "Solver",
    "Refine",
    "Portfolio",
    "Auto",
    "AUTO",
    "parse_method",
    "EntryStat",
    "UnknownSolverError",
    "CapabilityError",
]


def solve(
    instance: Any, *, options: SolveOptions | None = None, **kwargs: Any
) -> SolveResult:
    """Solve one instance through the default engine.

    ``instance`` is a :class:`~repro.sched.model.SchedulingProblem` or a
    :class:`~repro.core.hypergraph.TaskHypergraph`.  Pass a prepared
    :class:`SolveOptions` via ``options=`` or its fields as keyword
    arguments (``method=``, ``refine=``, ``seed=``, ``portfolio=``,
    ``time_budget=``).  Returns a :class:`SolveResult`.
    """
    from ..engine.batch import default_engine

    return default_engine().solve(instance, options=options, **kwargs)


def known_methods() -> list[str]:
    """Every method name ``solve`` accepts (generated from the
    registry, plus the ``auto``/``portfolio`` pseudo-methods)."""
    return get_registry().known_methods()


def registry_table() -> str:
    """Markdown table of every registered solver (used by API.md and
    the ``semimatch solvers`` CLI command)."""
    return get_registry().table_markdown()
