"""Built-in solver registrations.

Importing this module (which :mod:`repro.api` does) populates the
process-wide :class:`~repro.api.SolverRegistry` with every algorithm of
the paper plus the extensions.  The functions themselves live in
:mod:`repro.algorithms`; the decorators below only attach metadata.

The metadata *is* the dispatch policy:

* ``recommended_for`` drives ``method="auto"`` (e.g. SINGLEPROC-UNIT
  instances get the exact polynomial algorithm);
* ``portfolio=True`` puts a solver into the generated default portfolio
  line-up;
* ``domain="bipartite"`` makes the engine lift the solver through
  :meth:`TaskHypergraph.to_bipartite` and guard it against MULTIPROC
  instances.
"""

from __future__ import annotations

from typing import Any

from ..algorithms.exact_unit import exact_singleproc_unit
from ..algorithms.exhaustive import exhaustive_multiproc
from ..algorithms.greedy_bipartite import (
    basic_greedy,
    double_sorted,
    expected_greedy,
    sorted_greedy,
)
from ..algorithms.greedy_hypergraph import (
    expected_greedy_hyp,
    expected_vector_greedy_hyp,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)
from ..algorithms.harvey import harvey_optimal_semi_matching
from .registry import register_solver

__all__: list[str] = []


# -- MULTIPROC (hypergraph) greedies of Section IV-D ------------------------
register_solver(
    name="SGH",
    domain="hypergraph",
    needs_backend=True,
    aliases=("sorted-greedy-hyp",),
    capabilities={"greedy", "weighted"},
    portfolio=True,
    summary="Sorted greedy on hyperedges (paper SGH).",
)(sorted_greedy_hyp)

register_solver(
    name="VGH",
    domain="hypergraph",
    needs_backend=True,
    aliases=("vector-greedy-hyp",),
    capabilities={"greedy", "weighted"},
    recommended_for={"hypergraph:unit"},
    portfolio=True,
    summary="Vector greedy, lexicographic load vectors (paper VGH).",
)(vector_greedy_hyp)

register_solver(
    name="EGH",
    domain="hypergraph",
    needs_backend=True,
    aliases=("expected-greedy-hyp",),
    capabilities={"greedy", "weighted"},
    portfolio=True,
    summary="Expected-load greedy on hyperedges (paper EGH).",
)(expected_greedy_hyp)

register_solver(
    name="EVG",
    domain="hypergraph",
    needs_backend=True,
    aliases=("expected-vector-greedy-hyp",),
    capabilities={"greedy", "weighted"},
    recommended_for={"hypergraph:weighted"},
    portfolio=True,
    summary="Expected vector greedy — the paper's best heuristic (EVG).",
)(expected_vector_greedy_hyp)


# -- MULTIPROC metaheuristic and oracle -------------------------------------
@register_solver(
    name="grasp",
    domain="hypergraph",
    capabilities={"randomized", "weighted"},
    portfolio=True,
    needs_seed=True,
    needs_backend=True,
    summary="Multi-start randomized greedy + local search (GRASP).",
)
def _grasp(hg: Any, *, seed: int = 0, backend: str = "numpy") -> Any:
    from ..algorithms.grasp import grasp

    return grasp(hg, seed=seed, backend=backend).matching


register_solver(
    name="exhaustive",
    domain="hypergraph",
    capabilities={"exact", "weighted"},
    summary="Branch-and-bound oracle (tiny instances only).",
)(exhaustive_multiproc)


# -- the dynamic subsystem's from-scratch entry point -----------------------
@register_solver(
    name="incremental",
    domain="hypergraph",
    aliases=("dynamic",),
    capabilities={"weighted", "dynamic"},
    summary="Incremental engine (repro.dynamic): repairs across mutations.",
)
def _incremental(hg: Any) -> Any:
    from ..dynamic.solver import incremental_solve

    return incremental_solve(hg)


# -- SINGLEPROC (bipartite) greedies of Section IV-B ------------------------
register_solver(
    name="basic-greedy",
    domain="bipartite",
    capabilities={"greedy", "weighted"},
    summary="First-eligible greedy baseline.",
)(basic_greedy)

register_solver(
    name="sorted-greedy",
    domain="bipartite",
    capabilities={"greedy", "weighted"},
    summary="Greedy over weight-sorted edges.",
)(sorted_greedy)

register_solver(
    name="double-sorted",
    domain="bipartite",
    capabilities={"greedy", "weighted"},
    summary="Greedy with secondary degree sorting.",
)(double_sorted)

register_solver(
    name="expected-greedy",
    domain="bipartite",
    capabilities={"greedy", "weighted"},
    recommended_for={"bipartite:weighted"},
    summary="Expected-load greedy — best bipartite heuristic.",
)(expected_greedy)


@register_solver(
    name="exact",
    domain="bipartite",
    capabilities={"exact", "unit_only"},
    recommended_for={"bipartite:unit"},
    summary="Exact polynomial algorithm for SINGLEPROC-UNIT (Sec. IV-A).",
)
def _exact(graph: Any) -> Any:
    return exact_singleproc_unit(graph).matching


register_solver(
    name="harvey",
    domain="bipartite",
    capabilities={"exact", "unit_only"},
    summary="Harvey et al.'s optimal semi-matching, O(|V1||E|).",
)(harvey_optimal_semi_matching)
