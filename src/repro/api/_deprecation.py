"""Warn-once helper for the API's deprecation shims.

Every legacy entry point kept alive by this PR funnels through
:func:`warn_once`, so a long-running process logs each migration hint a
single time instead of on every call.  The gating set is keyed by shim
name; tests reset it via :func:`_reset_warned` to assert the
exactly-once contract in isolation.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_once"]

_WARNED: set[str] = set()

#: Frames belonging to the shim machinery itself; the warning must be
#: attributed to the first frame *outside* these, so the
#: ``error::DeprecationWarning:repro...`` filter in pyproject makes any
#: internal repro caller fail loudly while external callers (tests,
#: downstream code) just see the hint.
_SKIP_PREFIXES = ("repro.algorithms", "repro.api")


def warn_once(key: str, message: str) -> None:
    """Emit ``DeprecationWarning`` for ``key`` on its first use only.

    The warning is attributed to the nearest caller outside the shim
    modules (module ``__getattr__`` chains add a variable number of
    frames, so the depth is computed, not hard-coded).
    """
    if key in _WARNED:
        return
    # mark before warning: under -W error the raised warning still counts
    # as the one emission, keeping the contract deterministic
    _WARNED.add(key)
    level = 1
    while True:
        try:
            mod = sys._getframe(level).f_globals.get("__name__", "")
        except ValueError:  # pragma: no cover - ran off the stack
            break
        if not mod.startswith(_SKIP_PREFIXES):
            break
        level += 1
    # stacklevel is relative to the warnings.warn() call: 1 == here,
    # level frames up == the first non-shim caller
    warnings.warn(message, DeprecationWarning, stacklevel=level + 1)


def _reset_warned() -> None:
    """Forget every emitted warning (test helper)."""
    _WARNED.clear()
