"""Composable method expressions: ``Solver``, ``Refine``, ``Portfolio``,
``Auto`` — plus the string parser that keeps ``"EVG+ls"`` and every CLI
name working.

A *method expression* is a small immutable tree describing **how** to
solve an instance:

>>> Refine("EVG")                       # EVG, then local search
>>> Portfolio("SGH", Refine("EVG"))     # race, keep the best makespan
>>> parse_method("portfolio(SGH,EVG+ls)")  # the same thing, from a string

Expressions compare equal by canonical form, so the parsed and the
hand-built spelling of a method are interchangeable — in solver options,
in cache keys, and in test assertions.

Evaluation reproduces the historical dispatch exactly: ``Auto`` is the
registry query for the instance's trait (exact algorithm for
SINGLEPROC-UNIT, the paper's recommended heuristic otherwise), bipartite
solvers are lifted through :meth:`TaskHypergraph.to_bipartite`, portfolio
ties keep the earliest entry, and local-search refinement is skipped when
auto-selection already produced an optimal matching.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from .errors import CapabilityError
from .registry import SolverRegistry, SolverSpec, get_registry

__all__ = [
    "MethodExpr",
    "Solver",
    "Refine",
    "Portfolio",
    "Auto",
    "AUTO",
    "parse_method",
    "EntryStat",
    "EvalContext",
    "Outcome",
    "evaluate",
]


# ---------------------------------------------------------------------------
# evaluation plumbing
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class EvalContext:
    """Everything an expression needs at evaluation time."""

    registry: SolverRegistry
    seed: int = 0
    deadline: float | None = None  # perf_counter() deadline, or None
    backend: str = "numpy"  # kernel backend for backend-aware solvers


@dataclass(frozen=True)
class EntryStat:
    """Per-entry provenance of one portfolio race."""

    method: str
    makespan: float
    time_s: float


@dataclass(frozen=True)
class Outcome:
    """An evaluated expression: the matching plus provenance.

    ``refine_noop`` marks results a local-search pass cannot improve
    (the matching is already optimal), letting :class:`Refine` skip the
    pass — this mirrors the historical early return of ``method="auto"``
    on SINGLEPROC-UNIT instances.
    """

    matching: HyperSemiMatching
    winner: str | None
    refine_noop: bool = False
    entries: tuple[EntryStat, ...] | None = None


def _lift_bipartite(
    hg: TaskHypergraph, spec: SolverSpec, ctx: "EvalContext"
) -> HyperSemiMatching:
    """Run a bipartite solver on a SINGLEPROC hypergraph.

    ``hg.to_bipartite()`` feeds the hyperedges to
    :meth:`BipartiteGraph.from_edges` in hyperedge order, whose stable
    CSR build maps CSR edge ``j`` back to hyperedge
    ``argsort(hedge_task, stable)[j]``.
    """
    graph = hg.to_bipartite()
    sm = spec.run(graph, seed=ctx.seed, backend=ctx.backend)
    edge_to_hedge = np.argsort(hg.hedge_task, kind="stable")
    return HyperSemiMatching(hg, edge_to_hedge[sm.edge_of_task])


def _instance_trait(hg: TaskHypergraph) -> str:
    shape = "bipartite" if hg.is_bipartite_graph() else "hypergraph"
    weights = "unit" if hg.is_unit else "weighted"
    return f"{shape}:{weights}"


def _run_spec(
    hg: TaskHypergraph, spec: SolverSpec, ctx: "EvalContext"
) -> HyperSemiMatching:
    if spec.domain == "bipartite":
        if not hg.is_bipartite_graph():
            raise CapabilityError(
                f"{spec.name!r} is a SINGLEPROC algorithm but the problem "
                "has parallel tasks"
            )
        return _lift_bipartite(hg, spec, ctx)
    return spec.run(hg, seed=ctx.seed, backend=ctx.backend)


def evaluate(
    hg: TaskHypergraph, expr: "MethodExpr", ctx: EvalContext
) -> Outcome:
    """Evaluate ``expr`` on ``hg`` (the engine's unit of work)."""
    if hg.n_tasks == 0:
        empty = HyperSemiMatching(hg, np.empty(0, dtype=np.int64))
        return Outcome(empty, winner=None, refine_noop=True)
    return expr._evaluate(hg, ctx)


# ---------------------------------------------------------------------------
# the expression tree
# ---------------------------------------------------------------------------
class MethodExpr:
    """Base class of all method expressions.

    Expressions are immutable, picklable (they travel to pool workers
    inside :class:`~repro.api.SolveOptions`), and compare equal by
    canonical string — ``parse_method("EVG+ls") == Refine("EVG")``.
    """

    __slots__ = ()

    def canonical(self) -> str:
        raise NotImplementedError

    def resolved(
        self, registry: SolverRegistry, *, context: str = "method"
    ) -> "MethodExpr":
        """A copy with every solver name resolved to its primary
        spelling (raises :class:`UnknownSolverError` on a bad name)."""
        raise NotImplementedError

    def is_randomized(self, registry: SolverRegistry) -> bool:
        """Whether evaluation depends on the seed (drives cache keys)."""
        raise NotImplementedError

    def _evaluate(self, hg: TaskHypergraph, ctx: EvalContext) -> Outcome:
        raise NotImplementedError

    # canonical-form equality: the parsed and constructed spellings of a
    # method are the same method
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MethodExpr):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash((MethodExpr, self.canonical()))

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.canonical()!r})"


def _coerce(entry: "MethodExpr | str") -> "MethodExpr":
    if isinstance(entry, MethodExpr):
        return entry
    if isinstance(entry, str):
        return parse_method(entry)
    raise TypeError(
        f"method expressions are built from strings or MethodExpr, "
        f"got {type(entry).__name__}"
    )


class Solver(MethodExpr):
    """A single registered solver, referenced by any accepted name."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        object.__setattr__(self, "name", str(name))

    def __setattr__(self, *_: object) -> None:  # pragma: no cover - defensive
        raise AttributeError("method expressions are immutable")

    def __reduce__(self) -> tuple:  # __slots__ + immutability: rebuild via ctor
        return (Solver, (self.name,))

    def canonical(self) -> str:
        return self.name

    def resolved(
        self, registry: SolverRegistry, *, context: str = "method"
    ) -> "MethodExpr":
        return Solver(registry.resolve(self.name, context=context).name)

    def is_randomized(self, registry: SolverRegistry) -> bool:
        return registry.resolve(self.name).is_randomized

    def _evaluate(self, hg: TaskHypergraph, ctx: EvalContext) -> Outcome:
        spec = ctx.registry.resolve(self.name)
        return Outcome(
            _run_spec(hg, spec, ctx),
            winner=spec.name,
        )


class Refine(MethodExpr):
    """Evaluate the inner expression, then improve it with
    :func:`repro.algorithms.local_search` (never worsens the makespan;
    skipped when the inner result is already optimal)."""

    __slots__ = ("inner",)

    def __init__(self, inner: "MethodExpr | str") -> None:
        object.__setattr__(self, "inner", _coerce(inner))

    def __setattr__(self, *_: object) -> None:  # pragma: no cover - defensive
        raise AttributeError("method expressions are immutable")

    def __reduce__(self) -> tuple:
        return (Refine, (self.inner,))

    def canonical(self) -> str:
        return f"{self.inner.canonical()}+ls"

    def resolved(
        self, registry: SolverRegistry, *, context: str = "method"
    ) -> "MethodExpr":
        return Refine(self.inner.resolved(registry, context=context))

    def is_randomized(self, registry: SolverRegistry) -> bool:
        return self.inner.is_randomized(registry)

    def _evaluate(self, hg: TaskHypergraph, ctx: EvalContext) -> Outcome:
        from ..algorithms.local_search import local_search

        outcome = self.inner._evaluate(hg, ctx)
        if outcome.refine_noop:
            return outcome
        return Outcome(
            local_search(outcome.matching, backend=ctx.backend).matching,
            winner=outcome.winner,
            entries=outcome.entries,
        )


class Portfolio(MethodExpr):
    """Race several expressions and keep the best makespan.

    By construction never worse than any single entry; ties keep the
    earliest entry, so the outcome is deterministic for a fixed line-up
    and seed.  ``Portfolio()`` (no entries) stands for the registry's
    :meth:`~repro.api.SolverRegistry.default_portfolio`, filled in when
    options are normalized.
    """

    __slots__ = ("entries",)

    def __init__(self, *entries: Any) -> None:
        if len(entries) == 1 and not isinstance(
            entries[0], (str, MethodExpr)
        ):
            entries = tuple(entries[0])  # Portfolio(iterable) convenience
        object.__setattr__(
            self, "entries", tuple(_coerce(e) for e in entries)
        )

    def __setattr__(self, *_: object) -> None:  # pragma: no cover - defensive
        raise AttributeError("method expressions are immutable")

    def __reduce__(self) -> tuple:
        return (Portfolio, tuple(self.entries))

    def canonical(self) -> str:
        if not self.entries:
            return "portfolio"
        return (
            "portfolio("
            + ",".join(e.canonical() for e in self.entries)
            + ")"
        )

    def resolved(
        self, registry: SolverRegistry, *, context: str = "method"
    ) -> "MethodExpr":
        return Portfolio(
            *(
                e.resolved(registry, context="portfolio entry")
                for e in self.entries
            )
        )

    def is_randomized(self, registry: SolverRegistry) -> bool:
        return any(e.is_randomized(registry) for e in self.entries)

    def _evaluate(self, hg: TaskHypergraph, ctx: EvalContext) -> Outcome:
        if not self.entries:
            raise ValueError("portfolio needs at least one algorithm")
        best: Outcome | None = None
        best_entry = ""
        stats: list[EntryStat] = []
        for entry in self.entries:
            t0 = time.perf_counter()
            outcome = entry._evaluate(hg, ctx)
            dt = time.perf_counter() - t0
            stats.append(
                EntryStat(
                    entry.canonical(), outcome.matching.makespan, dt
                )
            )
            if (
                best is None
                or outcome.matching.makespan < best.matching.makespan
            ):
                best, best_entry = outcome, entry.canonical()
            if (
                ctx.deadline is not None
                and time.perf_counter() >= ctx.deadline
            ):
                break  # time budget spent; keep the best so far
        assert best is not None  # entries is non-empty
        return Outcome(
            best.matching, winner=best_entry, entries=tuple(stats)
        )


class Auto(MethodExpr):
    """Instance-driven selection: the registry query for the instance's
    trait (``"bipartite:unit"`` gets the exact polynomial algorithm,
    everything else the heuristic the paper recommends for its class)."""

    __slots__ = ()

    def __reduce__(self) -> tuple:
        return (Auto, ())

    def canonical(self) -> str:
        return "auto"

    def resolved(
        self, registry: SolverRegistry, *, context: str = "method"
    ) -> "MethodExpr":
        return self

    def is_randomized(self, registry: SolverRegistry) -> bool:
        return any(
            s.is_randomized for s in registry if s.recommended_for
        )

    def _evaluate(self, hg: TaskHypergraph, ctx: EvalContext) -> Outcome:
        spec = ctx.registry.recommended(_instance_trait(hg))
        return Outcome(
            _run_spec(hg, spec, ctx),
            winner=spec.name,
            # an exact auto-pick is already optimal: Refine skips it
            refine_noop="exact" in spec.capabilities,
        )


#: The shared ``Auto()`` instance (expressions are stateless).
AUTO = Auto()


# ---------------------------------------------------------------------------
# the string parser
# ---------------------------------------------------------------------------
def _split_top_level(body: str) -> list[str]:
    parts: list[str] = []
    depth, start = 0, 0
    for i, ch in enumerate(body):
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        elif ch == "," and depth == 0:
            parts.append(body[start:i])
            start = i + 1
    parts.append(body[start:])
    return parts


def parse_method(text: "str | MethodExpr") -> MethodExpr:
    """Parse a method string into its expression.

    Accepted forms (composable)::

        "EVG"                        -> Solver("EVG")
        "EVG+ls"                     -> Refine(Solver("EVG"))
        "auto"                       -> Auto()
        "portfolio"                  -> Portfolio()        (default line-up)
        "portfolio(SGH,EVG+ls)"      -> Portfolio("SGH", Refine("EVG"))

    Solver names are *not* validated here (the parser has no registry);
    resolution happens when options are normalized, which is also where
    unknown names get their did-you-mean error.
    """
    if isinstance(text, MethodExpr):
        return text
    if not isinstance(text, str):
        raise TypeError(
            f"method must be a string or MethodExpr, got "
            f"{type(text).__name__}"
        )
    s = text.strip()
    if not s:
        raise ValueError("method string is empty")
    if s == "auto":
        return AUTO
    if s == "portfolio":
        return Portfolio()
    if s.startswith("portfolio(") and s.endswith(")"):
        body = s[len("portfolio(") : -1].strip()
        if not body:
            return Portfolio()
        return Portfolio(*(parse_method(p) for p in _split_top_level(body)))
    if s.endswith("+ls"):
        return Refine(parse_method(s[: -len("+ls")]))
    base, sep, suffix = s.rpartition("+")
    if sep and base and not base.endswith("("):
        raise ValueError(
            f"unknown method suffix {suffix!r} in {text!r}; only '+ls' "
            "(local-search refinement) is supported"
        )
    return Solver(s)
