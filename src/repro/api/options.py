"""Typed, frozen solve options with canonical normalization.

:class:`SolveOptions` is the single request object for every solve path
(``repro.sched.solve``, ``repro.engine.solve_many``, the experiment
harness).  It accepts the historical keyword spellings (``method=`` as a
string, ``refine=``, ``portfolio=`` as a name tuple) and *normalizes*
them to one canonical :class:`~repro.api.methods.MethodExpr`:

* ``portfolio=`` (or ``method="portfolio"``) becomes a
  :class:`~repro.api.methods.Portfolio`, defaulting to the registry's
  generated line-up;
* ``refine=True`` folds into the expression (``Refine`` around the
  method, or around every portfolio entry — exactly the historical
  semantics, including the no-op on the exhaustive oracle);
* aliases resolve to primary solver names.

Two spellings of the same request therefore normalize to the same
expression, which is what the engine's cache key hashes — ``"EVG+ls"``,
``method="EVG", refine=True`` and ``Refine("EVG")`` share one cache
entry.  The seed enters the key only for seed-sensitive (randomized)
expressions.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence, Union

from .methods import (
    MethodExpr,
    Portfolio,
    Refine,
    Solver,
    parse_method,
)
from .registry import SolverRegistry, get_registry
from ..kernels import check_backend

__all__ = ["SolveOptions"]

MethodLike = Union[str, MethodExpr]


@dataclass(frozen=True)
class SolveOptions:
    """Everything that determines *how* an instance is solved.

    Parameters
    ----------
    method:
        A method name, method string (``"EVG+ls"``,
        ``"portfolio(SGH,grasp)"``) or :class:`MethodExpr`.
    refine:
        Post-process with local search (folded into the expression on
        normalization; never worsens the makespan).
    seed:
        Seed for randomized methods; deterministic methods ignore it.
    portfolio:
        Legacy spelling: a tuple of entry names/expressions races them
        and keeps the best makespan, overriding ``method``.  ``None``
        means "no portfolio requested" (an empty tuple is an error).
    time_budget:
        Wall-clock budget in seconds for portfolio races: once spent, no
        further entries start (at least one always runs).  ``None``
        disables the budget.  Budgeted portfolio results depend on
        machine speed and are therefore excluded from result caching
        only through the key (the budget is part of it).
    backend:
        Kernel execution backend for backend-aware solvers:
        ``"numpy"`` (default, the vectorized CSR kernels of
        :mod:`repro.kernels`) or ``"python"`` (the original loops, the
        conformance oracle).  Matchings are bit-identical either way;
        the backend still enters the cache key so timing-sensitive
        sweeps can pin one.
    """

    method: MethodLike = "auto"
    refine: bool = False
    seed: int = 0
    portfolio: tuple[MethodLike, ...] | None = None
    time_budget: float | None = None
    backend: str = "numpy"

    def __post_init__(self) -> None:
        if not isinstance(self.method, (str, MethodExpr)):
            raise TypeError(
                "method must be a string or MethodExpr, got "
                f"{type(self.method).__name__}"
            )
        if self.portfolio is not None:
            if isinstance(self.portfolio, (str, MethodExpr)):
                raise TypeError(
                    "portfolio must be a sequence of entries, not a "
                    "single method; wrap it in a tuple"
                )
            object.__setattr__(self, "portfolio", tuple(self.portfolio))
        if self.time_budget is not None and self.time_budget <= 0:
            raise ValueError("time_budget must be positive")
        check_backend(self.backend)
        object.__setattr__(self, "seed", int(self.seed))

    # ------------------------------------------------------------------
    @property
    def is_normalized(self) -> bool:
        return (
            isinstance(self.method, MethodExpr)
            and self.portfolio is None
            and not self.refine
            # an entry-less Portfolio still needs the default line-up
            and not (
                isinstance(self.method, Portfolio)
                and not self.method.entries
            )
        )

    def expression(
        self, registry: SolverRegistry | None = None
    ) -> MethodExpr:
        """The canonical expression this request denotes."""
        registry = registry if registry is not None else get_registry()
        expr = parse_method(self.method)
        if self.portfolio is not None:
            # legacy precedence: an explicit portfolio wins over method
            if len(self.portfolio) == 0:
                raise ValueError("portfolio needs at least one algorithm")
            expr = Portfolio(*self.portfolio)
        if isinstance(expr, Portfolio):
            entries = expr.entries or tuple(
                parse_method(name)
                for name in registry.default_portfolio()
            )
            if self.refine:
                entries = tuple(Refine(e) for e in entries)
            expr = Portfolio(*entries)
        elif self.refine:
            skip = False
            if isinstance(expr, Solver):
                spec = registry.resolve(expr.name)
                # refining the exhaustive oracle is pointless by
                # construction (result already optimal); historical
                # dispatch skipped it, so normalization does too
                skip = (
                    spec.domain == "hypergraph"
                    and "exact" in spec.capabilities
                )
            if not skip:
                expr = Refine(expr)
        return expr.resolved(registry)

    def normalized(
        self, registry: SolverRegistry | None = None
    ) -> "SolveOptions":
        """Canonical form: ``refine``/``portfolio`` folded into one
        resolved :class:`MethodExpr`.  Idempotent."""
        if self.is_normalized:
            expr = self.method.resolved(
                registry if registry is not None else get_registry()
            )
            if expr is self.method:
                return self
            return replace(self, method=expr)
        return replace(
            self,
            method=self.expression(registry),
            refine=False,
            portfolio=None,
        )

    def cache_token(
        self, registry: SolverRegistry | None = None
    ) -> tuple:
        """The options' contribution to the engine cache key.

        Canonical method string, plus the seed only when the expression
        is seed-sensitive, plus the time budget only when set.
        """
        registry = registry if registry is not None else get_registry()
        # resolve even pre-normalized expressions: an alias-built
        # MethodExpr must key identically to its primary-name spelling
        expr = (
            self.method.resolved(registry)
            if self.is_normalized
            else self.expression(registry)
        )
        return (
            expr.canonical(),
            self.seed if expr.is_randomized(registry) else None,
            self.time_budget,
            self.backend,
        )

    def describe(self) -> str:
        """One-line human-readable form."""
        expr = self.expression()
        bits = [expr.canonical()]
        if expr.is_randomized(get_registry()):
            bits.append(f"seed={self.seed}")
        if self.time_budget is not None:
            bits.append(f"time_budget={self.time_budget:g}s")
        if self.backend != "numpy":
            bits.append(f"backend={self.backend}")
        return " ".join(bits)
