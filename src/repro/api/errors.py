"""Errors raised by the solver API.

Historically the registry getters raised :class:`KeyError` while the
dispatch chain raised :class:`ValueError` for the very same mistake (a
method name nobody registered).  :class:`UnknownSolverError` unifies the
two: it derives from *both*, so every pre-existing ``except`` clause and
``pytest.raises`` pattern keeps working, and it carries a did-you-mean
suggestion plus the full list of known methods.

Like the :mod:`repro.core.errors` hierarchy, each class carries a
stable machine-readable ``code`` attribute, so transports (the
:mod:`repro.service` wire protocol) map exceptions to typed error codes
without string matching.
"""

from __future__ import annotations

import difflib

__all__ = ["UnknownSolverError", "CapabilityError"]


class UnknownSolverError(KeyError, ValueError):
    """A method/solver name that no registered solver answers to.

    Attributes
    ----------
    name:
        The name that failed to resolve.
    suggestions:
        Close matches from the registry (difflib), best first.
    known:
        Every name the registry would have accepted.
    """

    #: Stable machine-readable identifier (see :mod:`repro.core.errors`).
    code = "unknown-solver"

    def __init__(
        self,
        name: str,
        *,
        known: list[str] | tuple[str, ...] = (),
        context: str = "method",
    ):
        self.name = name
        self.known = list(known)
        self.suggestions = difflib.get_close_matches(
            str(name), self.known, n=3, cutoff=0.5
        )
        hint = (
            f" (did you mean {', '.join(map(repr, self.suggestions))}?)"
            if self.suggestions
            else ""
        )
        self.message = (
            f"unknown {context} {name!r}{hint}; known: {self.known}"
        )
        super().__init__(self.message)

    def __str__(self) -> str:  # KeyError would repr-quote the message
        return self.message


class CapabilityError(ValueError):
    """A registered solver was asked to run outside its capabilities
    (e.g. a SINGLEPROC algorithm on a problem with parallel tasks)."""

    code = "capability"
