"""Rich solve results: the matching plus its provenance.

:class:`SolveResult` is what every solve path returns since the unified
API landed: the chosen matching, the schedule view when the input was a
named :class:`~repro.sched.model.SchedulingProblem`, and provenance —
which solver won, how long the solve took, whether the engine cache
answered, the combined lower bound and the optimality gap, and per-entry
portfolio statistics.

It intentionally *feels like* the objects it wraps: ``makespan``,
``hedge_of_task``, ``loads()``, ``allocation()``, ``timeline()``,
``gantt()`` and friends all work directly, so pre-refactor call sites
keep reading naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..core.semimatching import HyperSemiMatching
from .methods import EntryStat
from .options import SolveOptions

__all__ = ["SolveResult"]


@dataclass
class SolveResult:
    """A solved instance with full provenance.

    Attributes
    ----------
    matching:
        The chosen :class:`HyperSemiMatching` (bit-identical to what the
        underlying algorithm produces when called directly).
    options:
        The *normalized* :class:`SolveOptions` the engine executed.
    schedule:
        The named :class:`~repro.sched.schedule.Schedule` view when the
        input was a :class:`SchedulingProblem`, else ``None``.
    winner:
        The solver (or portfolio entry) that produced the matching —
        auto-selection and portfolio races record their pick here.
    wall_time_s:
        Wall-clock seconds spent solving (≈0 on a cache hit).
    cache_hit:
        Whether the engine's result cache answered.
    portfolio:
        Per-entry :class:`EntryStat` tuples for portfolio races, else
        ``None``.
    stats:
        Span-attributed timing breakdown of *this* solve: ``solve_s``
        and ``cache_hit`` always; ``compile_s`` when a kernel compile
        happened inside the solve (requires tracing enabled — the
        engine reads it off the span timings); ``queue_s`` when the
        solve went through the service's micro-batcher.  Empty only for
        results built outside the engine.
    """

    matching: HyperSemiMatching
    options: SolveOptions
    schedule: object | None = None
    winner: str | None = None
    wall_time_s: float = 0.0
    cache_hit: bool = False
    portfolio: tuple[EntryStat, ...] | None = None
    stats: dict = field(default_factory=dict)
    _lower_bound: float | None = field(
        default=None, repr=False, compare=False
    )

    # -- identity ------------------------------------------------------
    @property
    def method(self) -> str:
        """Canonical method string (parseable by ``parse_method``)."""
        m = self.options.method
        return m if isinstance(m, str) else m.canonical()

    @property
    def makespan(self) -> float:
        """``max_u l(u)`` — the objective value."""
        return self.matching.makespan

    @property
    def hedge_of_task(self) -> np.ndarray:
        """The chosen hyperedge (configuration) per task."""
        return self.matching.hedge_of_task

    # -- bounds ---------------------------------------------------------
    @property
    def lower_bound(self) -> float:
        """Combined lower bound on the optimal makespan (computed lazily
        and cached; 0 for empty instances)."""
        if self._lower_bound is None:
            from ..algorithms.lower_bounds import combined_bound

            hg = self.matching.hypergraph
            self._lower_bound = (
                combined_bound(hg) if hg.n_tasks else 0.0
            )
        return self._lower_bound

    @property
    def gap(self) -> float:
        """``makespan - lower_bound`` — an upper bound on the distance
        to optimal.  Always ``>= 0`` (the bound is valid)."""
        return self.makespan - self.lower_bound

    @property
    def quality(self) -> float:
        """``makespan / lower_bound``, the paper's quality ratio
        (``1.0`` for empty instances, ``inf`` when the bound is 0)."""
        lb = self.lower_bound
        if lb > 0:
            return self.makespan / lb
        return 1.0 if self.makespan == 0 else float("inf")

    # -- ergonomics ------------------------------------------------------
    def __getattr__(self, name: str) -> Any:
        # delegate the remaining surface of Schedule / HyperSemiMatching
        # (allocation(), timeline(), gantt(), loads(), alloc(), ...)
        if name.startswith("_"):
            raise AttributeError(name)
        schedule = self.__dict__.get("schedule")
        if schedule is not None and hasattr(schedule, name):
            return getattr(schedule, name)
        matching = self.__dict__.get("matching")
        if matching is not None and hasattr(matching, name):
            return getattr(matching, name)
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )

    def summary(self) -> str:
        """Multi-line human-readable description with provenance."""
        head = (
            self.schedule.summary()
            if self.schedule is not None
            else self.matching.summary()
        )
        lines = [
            head,
            f"  LB / gap  : {self.lower_bound:g} / {self.gap:g}",
            f"  method    : {self.method}"
            + (f" -> {self.winner}" if self.winner else ""),
            f"  wall time : {self.wall_time_s:.6f}s"
            + ("  [cache hit]" if self.cache_hit else ""),
        ]
        if self.portfolio:
            for e in self.portfolio:
                marker = "*" if e.method == self.winner else " "
                lines.append(
                    f"  {marker} {e.method:<24} makespan={e.makespan:<10g}"
                    f" {e.time_s:.6f}s"
                )
        return "\n".join(lines)
