"""The capability-aware solver registry.

Every algorithm the package can dispatch to self-registers here via the
:func:`register_solver` decorator, declaring

* its **primary name** (the paper's abbreviation where one exists) and
  any **aliases** (long names, historical spellings);
* its **domain** — ``"hypergraph"`` (MULTIPROC) or ``"bipartite"``
  (SINGLEPROC; the engine lifts these onto bipartite-shaped
  hypergraphs);
* its **capabilities** — free-form tags such as ``"weighted"``,
  ``"unit_only"``, ``"exact"``, ``"randomized"``, ``"greedy"`` that
  drive guards and auto-selection as *queries* instead of if/elif
  chains;
* what instance trait it is **recommended for** (``"hypergraph:unit"``,
  ``"bipartite:weighted"``, ...) — ``method="auto"`` is exactly the
  registry query for the instance's trait;
* whether it belongs in the **default portfolio**.

``known_methods()`` and ``DEFAULT_PORTFOLIO`` are generated from the
registry, so registering a solver makes it instantly usable in
``solve``, portfolio mode, sweeps and the CLI with no dispatch edits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator

from .errors import UnknownSolverError

__all__ = [
    "SolverSpec",
    "SolverRegistry",
    "register_solver",
    "get_registry",
]

#: Pseudo-methods handled by the expression layer, not by any one solver.
PSEUDO_METHODS = ("auto", "portfolio")


@dataclass(frozen=True)
class SolverSpec:
    """Declarative metadata for one registered solver.

    ``fn`` takes the domain's instance type as its single positional
    argument (plus ``seed=`` when ``needs_seed``) and returns a matching
    object for that domain.
    """

    name: str
    fn: Callable
    domain: str  # "hypergraph" | "bipartite"
    aliases: tuple[str, ...] = ()
    capabilities: frozenset[str] = frozenset()
    recommended_for: frozenset[str] = frozenset()
    in_default_portfolio: bool = False
    needs_seed: bool = False
    needs_backend: bool = False
    summary: str = ""

    def __post_init__(self) -> None:
        if self.domain not in ("hypergraph", "bipartite"):
            raise ValueError(
                f"domain must be 'hypergraph' or 'bipartite', "
                f"got {self.domain!r}"
            )
        object.__setattr__(self, "aliases", tuple(self.aliases))
        object.__setattr__(
            self, "capabilities", frozenset(self.capabilities)
        )
        object.__setattr__(
            self, "recommended_for", frozenset(self.recommended_for)
        )

    def run(
        self, instance: Any, *, seed: int = 0, backend: str = "numpy"
    ) -> Any:
        """Invoke the solver, passing ``seed``/``backend`` only when the
        registration declared it wants them."""
        kwargs = {}
        if self.needs_seed:
            kwargs["seed"] = seed
        if self.needs_backend:
            kwargs["backend"] = backend
        return self.fn(instance, **kwargs)

    @property
    def is_randomized(self) -> bool:
        return "randomized" in self.capabilities


class SolverRegistry:
    """Name -> :class:`SolverSpec` mapping with capability queries.

    Resolution accepts primary names, aliases, case-insensitive
    spellings and unique abbreviations (prefixes); failures raise
    :class:`UnknownSolverError` with did-you-mean suggestions and the
    full method list.
    """

    def __init__(self) -> None:
        self._specs: dict[str, SolverSpec] = {}  # primary name -> spec
        self._index: dict[str, str] = {}  # every accepted name -> primary

    # -- registration ---------------------------------------------------
    def register(self, spec: SolverSpec) -> SolverSpec:
        for name in (spec.name, *spec.aliases):
            owner = self._index.get(name)
            if owner is not None and owner != spec.name:
                raise ValueError(
                    f"name {name!r} already registered by solver {owner!r}"
                )
        self._specs[spec.name] = spec
        for name in (spec.name, *spec.aliases):
            self._index[name] = spec.name
        return spec

    def unregister(self, name: str) -> None:
        """Remove a solver (test/plugin support)."""
        spec = self._specs.pop(self._index[name])
        for n in (spec.name, *spec.aliases):
            self._index.pop(n, None)

    # -- lookup ---------------------------------------------------------
    def __contains__(self, name: str) -> bool:
        try:
            self.resolve(name)
        except UnknownSolverError:
            return False
        return True

    def __iter__(self) -> Iterator[SolverSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        """Primary names, in registration order."""
        return list(self._specs)

    def known_methods(self) -> list[str]:
        """Every name :func:`repro.api.solve` accepts (sorted), including
        aliases and the pseudo-methods ``auto``/``portfolio``."""
        return sorted({*PSEUDO_METHODS, *self._index})

    def resolve(
        self,
        name: str,
        *,
        domain: str | None = None,
        context: str = "method",
    ) -> SolverSpec:
        """Resolve ``name`` to its spec.

        Tries, in order: exact primary/alias match, case-insensitive
        match, unique-prefix abbreviation.  ``domain`` restricts the
        answer (a miss there is reported as unknown, listing only that
        domain's methods).
        """
        candidates = (
            self._index
            if domain is None
            else {
                n: p
                for n, p in self._index.items()
                if self._specs[p].domain == domain
            }
        )
        primary = candidates.get(name)
        if primary is None and isinstance(name, str):
            folded = [
                p for n, p in candidates.items() if n.lower() == name.lower()
            ]
            if len(set(folded)) == 1:
                primary = folded[0]
            else:
                prefixed = {
                    p
                    for n, p in candidates.items()
                    if n.lower().startswith(name.lower())
                }
                if len(prefixed) == 1 and name:
                    primary = next(iter(prefixed))
        if primary is None:
            known = sorted(candidates)
            if domain is None:
                known = self.known_methods()
            raise UnknownSolverError(name, known=known, context=context)
        return self._specs[primary]

    def get(self, name: str) -> SolverSpec:
        """Exact-or-alias lookup (no abbreviation magic)."""
        try:
            return self._specs[self._index[name]]
        except KeyError:
            raise UnknownSolverError(
                name, known=self.known_methods(), context="solver"
            ) from None

    # -- capability queries ---------------------------------------------
    def query(
        self,
        *,
        domain: str | None = None,
        capabilities: Iterable[str] = (),
        without: Iterable[str] = (),
    ) -> list[SolverSpec]:
        """Specs matching the filters, in registration order."""
        need = frozenset(capabilities)
        veto = frozenset(without)
        return [
            s
            for s in self._specs.values()
            if (domain is None or s.domain == domain)
            and need <= s.capabilities
            and not (veto & s.capabilities)
        ]

    def recommended(self, trait: str) -> SolverSpec:
        """The solver recommended for an instance trait, e.g.
        ``"hypergraph:weighted"`` — the ``method="auto"`` query."""
        hits = [
            s for s in self._specs.values() if trait in s.recommended_for
        ]
        if not hits:
            raise UnknownSolverError(
                trait,
                known=sorted(
                    t for s in self._specs.values() for t in s.recommended_for
                ),
                context="instance trait",
            )
        return hits[0]

    def default_portfolio(self) -> tuple[str, ...]:
        """The line-up raced by ``method="portfolio"``, generated from
        solver metadata: every deterministic hypergraph solver flagged
        for the portfolio (registration order), then the recommended
        weighted heuristic with local-search refinement, then the
        flagged randomized solvers."""
        deterministic = [
            s.name
            for s in self._specs.values()
            if s.in_default_portfolio
            and s.domain == "hypergraph"
            and not s.is_randomized
        ]
        randomized = [
            s.name
            for s in self._specs.values()
            if s.in_default_portfolio
            and s.domain == "hypergraph"
            and s.is_randomized
        ]
        refined = []
        try:
            best = self.recommended("hypergraph:weighted").name
            if best in deterministic:
                refined = [f"{best}+ls"]
        except UnknownSolverError:  # pragma: no cover - degenerate registry
            pass
        return tuple([*deterministic, *refined, *randomized])

    # -- documentation --------------------------------------------------
    def table_markdown(self) -> str:
        """A markdown table of every registered solver (drives API.md
        and the ``semimatch solvers`` CLI command)."""
        rows = [
            "| Name | Aliases | Domain | Capabilities | Auto-selected for "
            "| Portfolio | Kernels | Summary |",
            "|---|---|---|---|---|---|---|---|",
        ]
        for s in self._specs.values():
            rows.append(
                "| `{}` | {} | {} | {} | {} | {} | {} | {} |".format(
                    s.name,
                    ", ".join(f"`{a}`" for a in s.aliases) or "—",
                    s.domain,
                    ", ".join(sorted(s.capabilities)) or "—",
                    ", ".join(sorted(s.recommended_for)) or "—",
                    "yes" if s.in_default_portfolio else "no",
                    "yes" if s.needs_backend else "no",
                    s.summary or "—",
                )
            )
        return "\n".join(rows)


#: The process-wide registry every built-in solver registers into.
_REGISTRY = SolverRegistry()


def get_registry() -> SolverRegistry:
    """The process-wide default :class:`SolverRegistry`."""
    return _REGISTRY


def register_solver(
    *,
    name: str,
    domain: str,
    aliases: Iterable[str] = (),
    capabilities: Iterable[str] = (),
    recommended_for: Iterable[str] = (),
    portfolio: bool = False,
    needs_seed: bool = False,
    needs_backend: bool = False,
    summary: str = "",
    registry: SolverRegistry | None = None,
) -> Callable[[Callable], Callable]:
    """Decorator: register the wrapped callable as a solver.

    >>> @register_solver(name="my-heuristic", domain="hypergraph",
    ...                  capabilities={"weighted"}, summary="demo")
    ... def my_heuristic(hg):
    ...     ...

    ``needs_backend=True`` declares the callable accepts a
    ``backend=`` keyword ("numpy"/"python") and is held to bit-equal
    results across backends by the conformance suite.  The callable is
    returned unchanged, so modules can still export and call it
    directly.
    """

    def decorate(fn: Callable) -> Callable:
        reg = registry if registry is not None else _REGISTRY
        reg.register(
            SolverSpec(
                name=name,
                fn=fn,
                domain=domain,
                aliases=tuple(aliases),
                capabilities=frozenset(capabilities),
                recommended_for=frozenset(recommended_for),
                in_default_portfolio=portfolio,
                needs_seed=needs_seed,
                needs_backend=needs_backend,
                summary=summary or (fn.__doc__ or "").strip().split("\n")[0],
            )
        )
        return fn

    return decorate
