"""Batch-solving engine: pooled execution, portfolio racing, result cache.

* :class:`BatchSolver` / :func:`solve_many` — solve many instances
  concurrently on a process or thread pool, with chunked distribution;
* portfolio mode — race several registry algorithms per instance and
  keep the best makespan;
* :class:`ResultCache` — content-addressed LRU so repeated sweeps never
  recompute;
* :func:`solve_hypergraph` — the shared hypergraph-level dispatch that
  both :func:`repro.sched.solve` and the pool workers execute.
"""

from .batch import BatchSolver, default_cache, default_engine, solve_many
from .cache import ResultCache, instance_digest, solve_key
from .dispatch import (
    DEFAULT_PORTFOLIO,
    known_methods,
    solve_hypergraph,
    solve_portfolio,
)

__all__ = [
    "BatchSolver",
    "solve_many",
    "default_engine",
    "default_cache",
    "ResultCache",
    "instance_digest",
    "solve_key",
    "DEFAULT_PORTFOLIO",
    "known_methods",
    "solve_hypergraph",
    "solve_portfolio",
]
