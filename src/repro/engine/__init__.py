"""Batch-solving engine: pooled execution, portfolio racing, result cache.

* :class:`BatchSolver` / :func:`solve_many` — solve many instances
  concurrently on a process or thread pool, with chunked distribution;
  every solve returns a rich :class:`~repro.api.SolveResult`;
* portfolio mode — race several registered algorithms per instance and
  keep the best makespan;
* :class:`ResultCache` — content-addressed LRU so repeated sweeps never
  recompute;
* :func:`solve_hypergraph` — the shared hypergraph-level dispatch that
  both :func:`repro.sched.solve` and the pool workers execute, driven by
  the :mod:`repro.api` solver registry.

``DEFAULT_PORTFOLIO`` and ``known_methods()`` are generated from the
registry, so a newly registered solver is instantly usable here.
"""

from .batch import BatchSolver, default_cache, default_engine, solve_many
from .cache import (
    CachedSolve,
    ResultCache,
    instance_digest,
    patched_digest,
    solve_key,
)
from .dispatch import (
    known_methods,
    solve_hypergraph,
    solve_hypergraph_outcome,
    solve_portfolio,
)

__all__ = [
    "BatchSolver",
    "solve_many",
    "default_engine",
    "default_cache",
    "ResultCache",
    "CachedSolve",
    "instance_digest",
    "patched_digest",
    "solve_key",
    "DEFAULT_PORTFOLIO",
    "known_methods",
    "solve_hypergraph",
    "solve_hypergraph_outcome",
    "solve_portfolio",
]


def __getattr__(name: str):
    if name == "DEFAULT_PORTFOLIO":
        # generated from solver metadata on every access (see dispatch)
        from . import dispatch

        return dispatch.DEFAULT_PORTFOLIO
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
