"""Hypergraph-level solve dispatch: the single place that turns a
:class:`~repro.core.hypergraph.TaskHypergraph` plus a method name into a
:class:`~repro.core.semimatching.HyperSemiMatching`.

Both the user-facing :func:`repro.sched.solve` and the batch engine's
worker processes call :func:`solve_hypergraph`, so sequential and pooled
solving are guaranteed to agree bit-for-bit.  The dispatch rules mirror
the paper's Section IV structure:

* ``method="auto"`` — SINGLEPROC-UNIT instances get the exact polynomial
  algorithm; everything else gets the strongest heuristic the paper
  recommends for its weight class (EVG for weighted hypergraphs, VGH for
  unit hypergraphs, expected/sorted greedy for bipartite);
* any registry name (``"SGH"``, ``"EVG"``, ``"sorted-greedy"``, ...)
  forces that algorithm;
* ``method="grasp"`` runs the multi-start metaheuristic (slowest, best);
* ``method="exhaustive"`` runs the branch-and-bound oracle (tiny
  instances only);
* ``method="portfolio"`` races several algorithms and keeps the best
  makespan (see :func:`solve_portfolio`).

Everything here operates on hypergraphs only — SINGLEPROC instances are
recognised structurally (:meth:`TaskHypergraph.is_bipartite_graph`) and
lifted through the bipartite algorithms, which keeps the worker payload
free of the named :class:`~repro.sched.model.SchedulingProblem` layer.
"""

from __future__ import annotations

import numpy as np

from ..algorithms.exhaustive import exhaustive_multiproc
from ..algorithms.local_search import local_search
from ..algorithms.registry import (
    BIPARTITE_ALGORITHMS,
    HYPERGRAPH_ALGORITHMS,
)
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching

__all__ = [
    "DEFAULT_PORTFOLIO",
    "known_methods",
    "solve_hypergraph",
    "solve_portfolio",
]

#: Portfolio raced by ``method="portfolio"`` when no explicit line-up is
#: given: the paper's four hypergraph greedies, EVG with local-search
#: refinement, and GRASP.  ``"<name>+ls"`` means "run <name>, then refine
#: with local search".
DEFAULT_PORTFOLIO = ("SGH", "VGH", "EGH", "EVG", "EVG+ls", "grasp")


def known_methods() -> list[str]:
    """Every name :func:`solve_hypergraph` accepts."""
    return sorted(
        {"auto", "exhaustive", "grasp", "portfolio"}
        | set(HYPERGRAPH_ALGORITHMS)
        | set(BIPARTITE_ALGORITHMS)
    )


def _empty(hg: TaskHypergraph) -> HyperSemiMatching:
    return HyperSemiMatching(hg, np.empty(0, dtype=np.int64))


def _lift_bipartite(hg: TaskHypergraph, name: str) -> HyperSemiMatching:
    """Run a bipartite algorithm on a SINGLEPROC hypergraph.

    ``hg.to_bipartite()`` feeds the hyperedges to
    :meth:`BipartiteGraph.from_edges` in hyperedge order, whose stable CSR
    build maps CSR edge ``j`` back to hyperedge
    ``argsort(hedge_task, stable)[j]``.
    """
    graph = hg.to_bipartite()
    sm = BIPARTITE_ALGORITHMS[name](graph)
    edge_to_hedge = np.argsort(hg.hedge_task, kind="stable")
    return HyperSemiMatching(hg, edge_to_hedge[sm.edge_of_task])


def _require_singleproc(hg: TaskHypergraph, method: str) -> None:
    if not hg.is_bipartite_graph():
        raise ValueError(
            f"{method!r} is a SINGLEPROC algorithm but the problem "
            "has parallel tasks"
        )


def solve_hypergraph(
    hg: TaskHypergraph,
    *,
    method: str = "auto",
    refine: bool = False,
    portfolio: tuple[str, ...] | None = None,
    seed: int = 0,
) -> HyperSemiMatching:
    """Solve one hypergraph instance; the engine's unit of work.

    ``refine=True`` post-processes heuristic solutions with
    :func:`repro.algorithms.local_search` (never worsens the makespan).
    ``seed`` only affects the randomised methods (``"grasp"`` and any
    portfolio entry using it); every other method is deterministic.
    """
    if portfolio is not None or method == "portfolio":
        return solve_portfolio(
            hg,
            algorithms=portfolio if portfolio is not None else DEFAULT_PORTFOLIO,
            refine=refine,
            seed=seed,
        )
    if hg.n_tasks == 0:
        return _empty(hg)

    if method == "auto":
        if hg.is_bipartite_graph() and hg.is_unit:
            return _lift_bipartite(hg, "exact")
        if hg.is_bipartite_graph():
            matching = _lift_bipartite(hg, "expected-greedy")
        elif hg.is_unit:
            matching = HYPERGRAPH_ALGORITHMS["VGH"](hg)
        else:
            matching = HYPERGRAPH_ALGORITHMS["EVG"](hg)
    elif method == "exhaustive":
        matching = exhaustive_multiproc(hg)
    elif method == "grasp":
        from ..algorithms.grasp import grasp

        matching = grasp(hg, seed=seed).matching
    elif method in HYPERGRAPH_ALGORITHMS:
        matching = HYPERGRAPH_ALGORITHMS[method](hg)
    elif method in BIPARTITE_ALGORITHMS:
        _require_singleproc(hg, method)
        matching = _lift_bipartite(hg, method)
    else:
        raise ValueError(
            f"unknown method {method!r}; known: {known_methods()}"
        )

    if refine and method != "exhaustive":
        matching = local_search(matching).matching
    return matching


def _run_portfolio_entry(
    hg: TaskHypergraph, entry: str, seed: int
) -> HyperSemiMatching:
    base, _, suffix = entry.partition("+")
    if suffix and suffix != "ls":
        raise ValueError(
            f"unknown portfolio suffix {suffix!r} in {entry!r}; "
            "only '+ls' (local-search refinement) is supported"
        )
    if base == "grasp":
        from ..algorithms.grasp import grasp

        matching = grasp(hg, seed=seed).matching
    elif base == "exhaustive":
        matching = exhaustive_multiproc(hg)
    elif base in HYPERGRAPH_ALGORITHMS:
        matching = HYPERGRAPH_ALGORITHMS[base](hg)
    elif base in BIPARTITE_ALGORITHMS:
        _require_singleproc(hg, base)
        matching = _lift_bipartite(hg, base)
    else:
        raise ValueError(
            f"unknown portfolio entry {entry!r}; entries are registry "
            f"names, 'grasp' or 'exhaustive', optionally with '+ls'"
        )
    if suffix:
        matching = local_search(matching).matching
    return matching


def solve_portfolio(
    hg: TaskHypergraph,
    *,
    algorithms: tuple[str, ...] = DEFAULT_PORTFOLIO,
    refine: bool = False,
    seed: int = 0,
) -> HyperSemiMatching:
    """Race ``algorithms`` on one instance and keep the best makespan.

    By construction the result is never worse than any single constituent
    algorithm; ties keep the earliest entry, so the outcome is
    deterministic for a fixed line-up and seed.
    """
    if not algorithms:
        raise ValueError("portfolio needs at least one algorithm")
    if hg.n_tasks == 0:
        return _empty(hg)
    best: HyperSemiMatching | None = None
    for entry in algorithms:
        matching = _run_portfolio_entry(hg, entry, seed)
        if refine:
            matching = local_search(matching).matching
        if best is None or matching.makespan < best.makespan:
            best = matching
    return best
