"""Hypergraph-level solve dispatch, driven by the solver registry.

Both the user-facing :func:`repro.sched.solve` and the batch engine's
worker processes call :func:`solve_hypergraph`, so sequential and pooled
solving are guaranteed to agree bit-for-bit.  Since the unified API
landed, this module is a thin execution shim: method strings parse into
:class:`~repro.api.MethodExpr` trees (``Solver``/``Refine``/
``Portfolio``/``Auto``), options normalize into a canonical
:class:`~repro.api.SolveOptions`, and evaluation walks the expression
against the capability-aware registry — the old if/elif chains are gone.

Dispatch semantics (unchanged, now registry queries):

* ``method="auto"`` — the registry's recommended solver for the
  instance trait: SINGLEPROC-UNIT instances get the exact polynomial
  algorithm, everything else the strongest heuristic the paper
  recommends for its weight class (EVG weighted, VGH unit,
  expected-greedy bipartite);
* any registered name or alias (``"SGH"``, ``"EVG"``,
  ``"sorted-greedy"``, ...) forces that solver; bipartite solvers are
  lifted and guarded against MULTIPROC instances;
* composable strings work everywhere: ``"EVG+ls"``,
  ``"portfolio(SGH,grasp)"``;
* ``method="portfolio"`` races the generated default line-up and keeps
  the best makespan (see :func:`solve_portfolio`).

``known_methods()`` and ``DEFAULT_PORTFOLIO`` are generated from the
registry — registering a solver makes it instantly available here, in
portfolio mode, in sweeps and in the CLI.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..api.methods import EvalContext, Outcome, evaluate
from ..api.options import SolveOptions
from ..api.registry import get_registry
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..obs.trace import span

__all__ = [
    "DEFAULT_PORTFOLIO",
    "known_methods",
    "solve_hypergraph",
    "solve_hypergraph_outcome",
    "solve_portfolio",
]


def known_methods() -> list[str]:
    """Every name :func:`solve_hypergraph` accepts (registry-generated)."""
    return get_registry().known_methods()


def __getattr__(name: str):
    # DEFAULT_PORTFOLIO is generated from solver metadata on every
    # access, so solvers registered at runtime join the line-up without
    # any dispatch edits.
    if name == "DEFAULT_PORTFOLIO":
        return get_registry().default_portfolio()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def _context(options: SolveOptions) -> EvalContext:
    deadline = (
        time.perf_counter() + options.time_budget
        if options.time_budget is not None
        else None
    )
    return EvalContext(
        registry=get_registry(),
        seed=options.seed,
        deadline=deadline,
        backend=options.backend,
    )


def solve_hypergraph_outcome(
    hg: TaskHypergraph, options: SolveOptions
) -> Outcome:
    """Evaluate normalized ``options`` on ``hg``, with provenance.

    The engine's unit of work: returns the matching plus the winning
    solver and per-entry portfolio statistics.  Accepts a
    :class:`~repro.dynamic.DynamicInstance` in place of a hypergraph
    (duck-typed to avoid an import cycle): its patched compilation is
    taken as the snapshot, so the solve itself compiles nothing.
    """
    if not isinstance(hg, TaskHypergraph) and hasattr(hg, "to_hypergraph"):
        hg = hg.to_hypergraph()
    options = options.normalized()
    with span("engine.dispatch") as sp:
        outcome = evaluate(hg, options.method, _context(options))
        if sp.recording:
            sp.set(method=str(options.method), winner=outcome.winner)
    return outcome


def solve_hypergraph(
    hg: TaskHypergraph,
    *,
    method: str = "auto",
    refine: bool = False,
    portfolio: Sequence[str] | None = None,
    seed: int = 0,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """Solve one hypergraph instance and return the bare matching.

    ``refine=True`` post-processes heuristic solutions with
    :func:`repro.algorithms.local_search` (never worsens the makespan).
    ``seed`` only affects the randomised methods (``"grasp"`` and any
    portfolio entry using it); every other method is deterministic.
    ``backend`` selects the kernel execution path for backend-aware
    solvers ("numpy" kernels vs the "python" oracle — bit-identical).
    """
    options = SolveOptions(
        method=method,
        refine=refine,
        portfolio=tuple(portfolio) if portfolio is not None else None,
        seed=seed,
        backend=backend,
    )
    return solve_hypergraph_outcome(hg, options).matching


def solve_portfolio(
    hg: TaskHypergraph,
    *,
    algorithms: Sequence[str] | None = None,
    refine: bool = False,
    seed: int = 0,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """Race ``algorithms`` on one instance and keep the best makespan.

    ``algorithms`` defaults to the registry-generated
    :data:`DEFAULT_PORTFOLIO`.  By construction the result is never
    worse than any single constituent algorithm; ties keep the earliest
    entry, so the outcome is deterministic for a fixed line-up and seed.
    """
    lineup = (
        tuple(algorithms)
        if algorithms is not None
        else get_registry().default_portfolio()
    )
    options = SolveOptions(
        portfolio=lineup, refine=refine, seed=seed, backend=backend
    )
    return solve_hypergraph_outcome(hg, options).matching
