"""Zero-copy instance transport for the process pool.

Pickling a :class:`~repro.core.hypergraph.TaskHypergraph` into a pool
worker serialises every CSR array through a pipe — twice (submit and
the executor's internal bookkeeping) — which at n=10240 costs more
than the dispatch it feeds.  This module ships instances through
:mod:`multiprocessing.shared_memory` instead: the parent copies the
eight defining arrays into one digest-keyed segment, workers map the
segment and rebuild the instance as *views* — no serialisation, no
copy, and repeated batches over the same instance reuse both the
segment and the worker's cached attachment (so its kernel compilation
survives across batches, too).

Lifecycle:

* parent side — an :class:`ExportRegistry` per
  :class:`~repro.engine.BatchSolver`: segments are created once per
  content digest, refcounted while batches are in flight, LRU-evicted
  when idle and unlinked on engine close (a finalizer covers engines
  that are never closed);
* worker side — a bounded attachment cache keyed by segment name.
  Attachments stay mapped until evicted (views may sit in the worker's
  kernel compile cache, so eviction also purges that digest via
  :func:`repro.kernels.evict_compiled` before unmapping).

Everything degrades to pickling: platforms without POSIX shared memory,
segment-creation failure (``/dev/shm`` full), or instances below the
size floor where a memcpy + syscall loses to a small pickle.  The
fallback is per-instance, so one oversized batch member never forces a
whole call onto one path.
"""

from __future__ import annotations

import threading
import weakref
from typing import Any

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..obs.trace import span

try:  # pragma: no cover - import guard exercised only off-POSIX
    from multiprocessing import shared_memory as _shm

    _HAVE_SHM = True
except ImportError:  # pragma: no cover
    _shm = None
    _HAVE_SHM = False

__all__ = [
    "ExportRegistry",
    "attach_instance",
    "transport_available",
    "instance_nbytes",
]

#: The arrays that define an instance, in segment layout order.
#: ``hedge_w`` is float64, everything else int64 — all 8-byte dtypes,
#: so natural alignment holds at any offset the layout produces.
_FIELDS = (
    "hedge_task",
    "hedge_ptr",
    "hedge_procs",
    "hedge_w",
    "task_ptr",
    "task_hedges",
    "proc_ptr",
    "proc_hedges",
)


def transport_available() -> bool:
    """Whether shared-memory transport can be used at all here."""
    return _HAVE_SHM


def instance_nbytes(hg: TaskHypergraph) -> int:
    """Payload size of ``hg`` under shared-memory transport."""
    return sum(getattr(hg, f).nbytes for f in _FIELDS)


def _attach_segment(name: str):
    """Attach to an existing segment without tracking it.

    An attaching process must not own the segment's lifetime — the
    creator unlinks it — but ``SharedMemory(name=...)`` registers with
    the resource tracker anyway on Python < 3.13.  Under ``spawn`` that
    makes worker exit unlink a segment the parent still serves; under
    ``fork`` (shared tracker process) a later unregister collides with
    the parent's own and the tracker logs KeyError tracebacks.
    Python 3.13+ has ``track=False`` for exactly this; earlier versions
    get it by suppressing ``register`` around the attach (chunk
    execution is single-threaded per worker, so the swap is safe).
    """
    try:
        return _shm.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        from multiprocessing import resource_tracker

        original = resource_tracker.register
        resource_tracker.register = lambda *a, **k: None
        try:
            return _shm.SharedMemory(name=name)
        finally:
            resource_tracker.register = original


class _Export:
    """One parent-side segment: the shm handle plus bookkeeping."""

    __slots__ = ("shm", "descriptor", "refs")

    def __init__(self, shm, descriptor: dict[str, Any]):
        self.shm = shm
        self.descriptor = descriptor
        self.refs = 0


def _close_all(segments: dict) -> None:
    for export in segments.values():
        try:
            export.shm.close()
            export.shm.unlink()
        except Exception:  # pragma: no cover - already gone
            pass
    segments.clear()


class ExportRegistry:
    """Digest-keyed, refcounted shared-memory exports (parent side)."""

    def __init__(self, max_segments: int = 64):
        if max_segments < 1:
            raise ValueError("max_segments must be at least 1")
        self.max_segments = int(max_segments)
        self._segments: dict[str, _Export] = {}
        self._order: list[str] = []  # LRU, oldest first
        self._lock = threading.Lock()
        self.exports = 0
        self.reuses = 0
        self.failures = 0
        # unlink segments even if the engine is never close()d —
        # /dev/shm outlives the process otherwise
        self._finalizer = weakref.finalize(
            self, _close_all, self._segments
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._segments)

    # ------------------------------------------------------------------
    def export(self, hg: TaskHypergraph, digest: str) -> dict | None:
        """A wire descriptor for ``hg``, creating (or reusing) its
        segment and taking one reference; ``None`` when shared memory
        is unavailable or creation failed (caller falls back to
        pickling).  Balance with :meth:`release`."""
        if not _HAVE_SHM:
            return None
        with self._lock:
            export = self._segments.get(digest)
            if export is not None:
                export.refs += 1
                self.reuses += 1
                self._order.remove(digest)
                self._order.append(digest)
                return export.descriptor
        try:
            with span("engine.transport.export") as sp:
                export = self._create(hg, digest)
                if sp.recording:
                    sp.set(digest=digest[:12])
        except Exception:
            with self._lock:
                self.failures += 1
            return None
        with self._lock:
            raced = self._segments.get(digest)
            if raced is not None:  # another thread won: keep theirs
                raced.refs += 1
                self.reuses += 1
                try:
                    export.shm.close()
                    export.shm.unlink()
                except Exception:  # pragma: no cover
                    pass
                return raced.descriptor
            export.refs = 1
            self._segments[digest] = export
            self._order.append(digest)
            self.exports += 1
            self._evict_idle_locked()
            return export.descriptor

    def _create(self, hg: TaskHypergraph, digest: str) -> _Export:
        layout = []
        offset = 0
        for f in _FIELDS:
            arr = getattr(hg, f)
            layout.append((f, offset, int(arr.shape[0])))
            offset += arr.nbytes
        shm = _shm.SharedMemory(create=True, size=max(offset, 1))
        for (f, off, n) in layout:
            arr = getattr(hg, f)
            dst = np.ndarray(
                (n,), dtype=arr.dtype, buffer=shm.buf, offset=off
            )
            np.copyto(dst, arr, casting="no")
        descriptor = {
            "__shm__": shm.name,
            "digest": digest,
            "counts": (hg.n_tasks, hg.n_procs, hg.n_hedges),
            "layout": layout,
        }
        return _Export(shm, descriptor)

    def release(self, digest: str) -> None:
        """Drop one reference taken by :meth:`export`."""
        with self._lock:
            export = self._segments.get(digest)
            if export is not None and export.refs > 0:
                export.refs -= 1
            self._evict_idle_locked()

    def _evict_idle_locked(self) -> None:
        while len(self._segments) > self.max_segments:
            victim = next(
                (
                    d
                    for d in self._order
                    if self._segments[d].refs == 0
                ),
                None,
            )
            if victim is None:  # everything in flight: over-cap is fine
                break
            export = self._segments.pop(victim)
            self._order.remove(victim)
            try:
                export.shm.close()
                export.shm.unlink()
            except Exception:  # pragma: no cover
                pass

    def close(self) -> None:
        """Unlink every segment (engine shutdown)."""
        with self._lock:
            _close_all(self._segments)
            self._order.clear()

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "segments": len(self._segments),
                "exports": self.exports,
                "reuses": self.reuses,
                "failures": self.failures,
            }


# ---------------------------------------------------------------------------
# worker side
# ---------------------------------------------------------------------------
#: name -> (shm, hypergraph); bounded, insertion-ordered (LRU via
#: re-insert).  Worker processes are single-threaded with respect to
#: chunk execution, so no lock.
_ATTACHED: dict[str, tuple[Any, TaskHypergraph]] = {}
_ATTACH_MAX = 32


def is_descriptor(obj) -> bool:
    """Whether a chunk item is a shared-memory descriptor."""
    return isinstance(obj, dict) and "__shm__" in obj


def attach_instance(descriptor: dict) -> TaskHypergraph:
    """Rebuild the instance a descriptor names, as views over its
    shared segment (worker side; attachments are cached by name)."""
    name = descriptor["__shm__"]
    hit = _ATTACHED.pop(name, None)
    if hit is not None:
        _ATTACHED[name] = hit  # re-insert: LRU refresh
        return hit[1]
    with span("engine.transport.attach") as sp:
        shm = _attach_segment(name)
        n_tasks, n_procs, n_hedges = descriptor["counts"]
        arrays = {}
        for f, off, n in descriptor["layout"]:
            dtype = np.float64 if f == "hedge_w" else np.int64
            arr = np.ndarray((n,), dtype=dtype, buffer=shm.buf, offset=off)
            arr.setflags(write=False)
            arrays[f] = arr
        hg = TaskHypergraph(
            n_tasks=int(n_tasks),
            n_procs=int(n_procs),
            n_hedges=int(n_hedges),
            **arrays,
        )
        # the parent computed the digest already; pre-seeding the memo
        # makes the worker's cache lookups free *and* keeps the frozen-
        # arrays invariant instance_digest would have established
        object.__setattr__(hg, "_digest_cache", descriptor["digest"])
        if sp.recording:
            sp.set(digest=descriptor["digest"][:12])
    _ATTACHED[name] = (shm, hg)
    while len(_ATTACHED) > _ATTACH_MAX:
        victim_name, (vshm, vhg) = next(iter(_ATTACHED.items()))
        del _ATTACHED[victim_name]
        # a cached kernel compilation may hold views into the segment;
        # purge it before unmapping so nothing dangles
        from ..kernels import evict_compiled

        evict_compiled(getattr(vhg, "_digest_cache", ""))
        try:
            vshm.close()
        except Exception:  # pragma: no cover
            pass
    return hg
