"""Content-addressed result cache for the batch engine.

Instances are keyed by a SHA-256 digest of their defining arrays, so two
structurally identical hypergraphs hit the same entry regardless of how
they were built (``from_configurations``, ``to_hypergraph``, JSON
round-trip, ...).  The cached value is the chosen ``hedge_of_task``
assignment — small, picklable, and enough to reconstruct an identical
:class:`~repro.core.semimatching.HyperSemiMatching` against any equal
instance — plus the result's provenance metadata (winning solver,
portfolio statistics), so cache hits return fully populated
:class:`~repro.api.SolveResult` objects.

A cache entry is only valid for the exact request it was computed under,
so the full key is ``(instance digest, canonical options token)``.  The
token comes from :meth:`SolveOptions.cache_token`: the *canonical method
expression* (aliases resolved, ``refine`` folded in), the seed only when
the expression is seed-sensitive, and the time budget.  Equivalent
spellings — ``method="EVG", refine=True`` vs ``"EVG+ls"`` — therefore
share one entry.  The cache is a bounded LRU and is thread-safe; the
default shared instance lives in :mod:`repro.engine.batch` so repeated
sweeps (``experiments.sweep``, the Table I–III harness) never recompute.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from typing import Iterable, NamedTuple, Sequence

import numpy as np

from ..api.options import SolveOptions
from ..core.hypergraph import TaskHypergraph
from ..obs.trace import span

__all__ = [
    "CachedSolve",
    "ResultCache",
    "instance_digest",
    "patched_digest",
    "solve_key",
]


def instance_digest(hg: TaskHypergraph) -> str:
    """SHA-256 digest of the arrays that define ``hg``.

    ``task_ptr``/``proc_ptr`` and friends are derived from the hyperedge
    arrays, so hashing ``hedge_task``, ``hedge_ptr``, ``hedge_procs`` and
    ``hedge_w`` (plus the vertex counts) identifies the instance.

    The digest is memoized on the (immutable) instance: both the result
    cache and the kernel compile cache key on it, so one solve would
    otherwise hash the same arrays several times.
    """
    cached = getattr(hg, "_digest_cache", None)
    if cached is not None:
        return cached
    h = hashlib.sha256()
    h.update(f"{hg.n_tasks}|{hg.n_procs}|{hg.n_hedges}|".encode())
    for arr in (hg.hedge_task, hg.hedge_ptr, hg.hedge_procs):
        # hash the buffer directly — tobytes() would copy megabytes per
        # call, and this sits on the patcher's per-mutation emit path
        h.update(np.ascontiguousarray(arr, dtype=np.int64).data)
        h.update(b"#")
    h.update(np.ascontiguousarray(hg.hedge_w, dtype=np.float64).data)
    digest = h.hexdigest()
    # freeze the hashed arrays so the memoized digest cannot go stale
    # through in-place mutation (which would also desynchronize the
    # result cache and the kernel compile cache)
    for arr in (hg.hedge_task, hg.hedge_ptr, hg.hedge_procs, hg.hedge_w):
        arr.setflags(write=False)
    object.__setattr__(hg, "_digest_cache", digest)
    return digest


def patched_digest(base_digest: str, mutations: Iterable) -> str:
    """Digest of *base content + a mutation suffix* — the patch-aware
    compile-cache key.

    Equal base digests plus equal mutation records imply equal patched
    content, so the kernel layer's chain-alias cache
    (:mod:`repro.kernels.patch`) can answer a patched compilation
    without emitting it — e.g. two sessions replaying one trace over
    the same baseline.  Mutations hash through their canonical wire
    form (``Mutation.to_dict()``; plain dicts pass through), sorted-key
    JSON, so replay and in-process histories agree.

    This digest names a *derivation*, not content alone — never use it
    to key the :class:`ResultCache`, whose equal-content-equal-key
    guarantee requires pure content digests.
    """
    h = hashlib.sha256()
    h.update(b"patch:")
    h.update(base_digest.encode())
    for m in mutations:
        rec = m.to_dict() if hasattr(m, "to_dict") else m
        h.update(b"|")
        h.update(
            json.dumps(rec, sort_keys=True, separators=(",", ":")).encode()
        )
    return h.hexdigest()


def solve_key(
    hg: TaskHypergraph,
    method: str | None = None,
    refine: bool = False,
    portfolio: Sequence[str] | None = None,
    seed: int = 0,
    *,
    options: SolveOptions | None = None,
) -> tuple:
    """The full cache key for solving ``hg`` under these options.

    Pass a prepared :class:`SolveOptions` via ``options=`` (preferred)
    or the historical positional fields; both canonicalize identically.
    """
    if options is None:
        options = SolveOptions(
            method=method if method is not None else "auto",
            refine=refine,
            portfolio=tuple(portfolio) if portfolio is not None else None,
            seed=seed,
        )
    return (instance_digest(hg), *options.cache_token())


class CachedSolve(NamedTuple):
    """One cache hit: the assignment plus its provenance metadata."""

    assignment: np.ndarray
    meta: dict


class ResultCache:
    """Bounded, thread-safe LRU cache of solve results.

    Values are ``hedge_of_task`` arrays (stored and returned as copies, so
    neither side can mutate the other's view) plus a small provenance
    dict.  ``hits``/``misses`` make cache effectiveness observable in
    benchmarks and sweeps.

    Concurrency contract (exercised by the thread-pool path of
    :meth:`BatchSolver.solve_many` and the service's executor threads,
    pinned by a stress regression test in ``tests/test_engine.py``):
    every structural operation — lookup + LRU ``move_to_end``, insert +
    eviction loop, ``clear`` — and every counter update runs under
    ``_lock``, so concurrent get/put/evict can never corrupt the
    ``OrderedDict``, overshoot ``maxsize``, or drop counter increments.
    ``get``/``put`` copy their arrays *inside* the lock; the only
    unlocked work is building the candidate value in :meth:`put`, which
    touches no shared state.  Note the contract is per-operation: a
    get-miss followed by a put is *not* atomic, which is exactly why
    concurrent identical requests need the service's single-flight
    layer (:mod:`repro.service.dedup`) to share one solve.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.maxsize = maxsize
        self._data: OrderedDict[tuple, CachedSolve] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple) -> CachedSolve | None:
        """The cached solve for ``key``, or None (counts a miss)."""
        with span("engine.cache.get") as sp:
            with self._lock:
                stored = self._data.get(key)
                if stored is None:
                    self.misses += 1
                    value = None
                else:
                    self._data.move_to_end(key)
                    self.hits += 1
                    value = CachedSolve(
                        stored.assignment.copy(), dict(stored.meta)
                    )
            if sp.recording:
                sp.set(hit=value is not None)
            return value

    def put(
        self, key: tuple, assignment: np.ndarray, meta: dict | None = None
    ) -> None:
        """Store an assignment (+ provenance), evicting the LRU entry."""
        value = CachedSolve(
            np.ascontiguousarray(assignment, dtype=np.int64).copy(),
            dict(meta) if meta else {},
        )
        with span("engine.cache.put"):
            with self._lock:
                self._data[key] = value
                self._data.move_to_end(key)
                if len(self._data) > self.maxsize:
                    with span("engine.cache.evict") as esp:
                        evicted = 0
                        while len(self._data) > self.maxsize:
                            self._data.popitem(last=False)
                            evicted += 1
                        if esp.recording:
                            esp.set(count=evicted)

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> dict[str, int]:
        """``{"entries", "hits", "misses"}`` snapshot."""
        with self._lock:
            return {
                "entries": len(self._data),
                "hits": self.hits,
                "misses": self.misses,
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ResultCache(entries={len(self._data)}, hits={self.hits}, "
            f"misses={self.misses}, maxsize={self.maxsize})"
        )
