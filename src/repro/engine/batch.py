"""Throughput-oriented batch solving: :class:`BatchSolver` and
:func:`solve_many`.

The paper's harness (and the seed's :func:`repro.sched.solve`) works one
instance at a time.  This module turns the same dispatch into an engine:

* **batching** — hand over many :class:`~repro.sched.model.SchedulingProblem`
  or :class:`~repro.core.hypergraph.TaskHypergraph` instances at once;
* **pooling** — instances are solved concurrently on a
  :mod:`concurrent.futures` process (or thread) pool, distributed in
  chunks so per-task pickling overhead amortises;
* **portfolio mode** — race several algorithms per instance and keep the
  best makespan (never worse than any single constituent);
* **caching** — a content-addressed LRU of solved assignments, so
  repeated sweeps over the same instances (``experiments.sweep``, the
  Table I–III harness) never recompute.

Results come back in input order and are bit-identical to a sequential
loop over :func:`repro.sched.solve`: workers run the very same
:func:`repro.engine.dispatch.solve_hypergraph`, all methods are
deterministic for a fixed ``seed``, and the pool layout (worker count,
chunk size, executor kind) can only change *where* an instance is solved,
never *what* is computed.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence, Union

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..sched.model import SchedulingProblem
from ..sched.schedule import Schedule
from .cache import ResultCache, solve_key
from .dispatch import solve_hypergraph

__all__ = ["BatchSolver", "solve_many", "default_engine", "default_cache"]

Instance = Union[SchedulingProblem, TaskHypergraph]
Solved = Union[Schedule, HyperSemiMatching]

_EXECUTORS = ("process", "thread", "serial")

#: Cache shared by every engine created with ``cache=True`` (including
#: the default engine behind :func:`repro.sched.solve`).
_DEFAULT_CACHE = ResultCache()

_DEFAULT_ENGINE: "BatchSolver | None" = None


def default_cache() -> ResultCache:
    """The process-wide shared result cache."""
    return _DEFAULT_CACHE


def _solve_chunk(
    hgs: list[TaskHypergraph], opts: dict
) -> list[np.ndarray]:
    """Worker payload: solve a chunk, return the chosen assignments.

    Returning bare ``hedge_of_task`` arrays (rather than full matchings)
    keeps the result pickle small; the parent rebuilds — and thereby
    re-validates — each :class:`HyperSemiMatching` against its own copy
    of the instance.
    """
    return [
        solve_hypergraph(hg, **opts).hedge_of_task for hg in hgs
    ]


class BatchSolver:
    """Solve many scheduling instances concurrently.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``1`` solves inline
        (no pool, no pickling).
    executor:
        ``"process"`` (default; real parallelism for these CPU-bound,
        GIL-holding algorithms), ``"thread"`` (cheap to spin up, useful
        for tests and IO-adjacent callers) or ``"serial"`` (always
        inline, whatever ``max_workers`` says).
    chunk_size:
        Instances per pool task; defaults to ``ceil(pending / (4 *
        max_workers))`` so each worker sees a handful of chunks (good
        load balance) without per-instance round-trips.
    cache:
        ``True`` (default) — share the process-wide
        :func:`default_cache`; a :class:`ResultCache` — use that
        instance; ``False``/``None`` — never cache.
    method, refine, portfolio, seed:
        Default solve options, overridable per :meth:`solve_many` call.
        ``portfolio`` (a tuple of registry names, ``"grasp"``,
        ``"exhaustive"``, optionally suffixed ``"+ls"``) switches an
        instance to portfolio mode, as does ``method="portfolio"``.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        executor: str = "process",
        chunk_size: int | None = None,
        cache: ResultCache | bool | None = True,
        method: str = "auto",
        refine: bool = False,
        portfolio: Sequence[str] | None = None,
        seed: int = 0,
    ):
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {_EXECUTORS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.executor = executor
        self.chunk_size = chunk_size
        # identity checks: an empty ResultCache is falsy (it has __len__)
        if cache is True:
            self.cache: ResultCache | None = _DEFAULT_CACHE
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.method = method
        self.refine = refine
        self.portfolio = tuple(portfolio) if portfolio is not None else None
        self.seed = seed
        self._pool = None  # lazily created, reused across solve_many calls

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(
        instance: Instance,
    ) -> tuple[SchedulingProblem | None, TaskHypergraph]:
        if isinstance(instance, SchedulingProblem):
            return instance, instance.to_hypergraph()
        if isinstance(instance, TaskHypergraph):
            return None, instance
        raise TypeError(
            "instances must be SchedulingProblem or TaskHypergraph, "
            f"got {type(instance).__name__}"
        )

    def _options(
        self,
        method: str | None,
        refine: bool | None,
        portfolio: Sequence[str] | None,
        seed: int | None,
    ) -> dict:
        # The engine-level portfolio default only applies when the call
        # names no strategy at all: an explicit per-call ``method`` must
        # win (dispatch gives portfolio precedence over method, so
        # inheriting self.portfolio here would silently shadow it).
        if portfolio is None and method is None:
            portfolio = self.portfolio
        return {
            "method": method if method is not None else self.method,
            "refine": refine if refine is not None else self.refine,
            "portfolio": tuple(portfolio) if portfolio is not None else None,
            "seed": seed if seed is not None else self.seed,
        }

    # ------------------------------------------------------------------
    def solve(self, instance: Instance, **overrides) -> Solved:
        """Solve one instance (serial fast path; still cached)."""
        return self.solve_many([instance], **overrides)[0]

    def solve_many(
        self,
        instances: Iterable[Instance],
        *,
        method: str | None = None,
        refine: bool | None = None,
        portfolio: Sequence[str] | None = None,
        seed: int | None = None,
    ) -> list[Solved]:
        """Solve every instance; results come back in input order.

        :class:`SchedulingProblem` inputs yield :class:`Schedule` results,
        :class:`TaskHypergraph` inputs yield :class:`HyperSemiMatching`.
        """
        opts = self._options(method, refine, portfolio, seed)
        pairs = [self._coerce(x) for x in instances]
        results: list[HyperSemiMatching | None] = [None] * len(pairs)

        # 1. serve what the cache already knows
        keys: list[tuple | None] = [None] * len(pairs)
        pending: list[int] = []
        for i, (_, hg) in enumerate(pairs):
            if self.cache is not None:
                key = solve_key(
                    hg, opts["method"], opts["refine"], opts["portfolio"],
                    opts["seed"],
                )
                keys[i] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = HyperSemiMatching(hg, hit)
                    continue
            pending.append(i)

        # 2. solve the rest, pooled when it pays off
        if pending:
            if (
                self.executor == "serial"
                or self.max_workers == 1
                or len(pending) == 1
            ):
                for i in pending:
                    results[i] = solve_hypergraph(pairs[i][1], **opts)
            else:
                self._solve_pooled(pairs, pending, opts, results)
            if self.cache is not None:
                for i in pending:
                    results[i] = _checked(results[i])
                    self.cache.put(keys[i], results[i].hedge_of_task)

        return [
            Schedule(problem, _checked(matching)) if problem is not None
            else _checked(matching)
            for (problem, _), matching in zip(pairs, results)
        ]

    # ------------------------------------------------------------------
    def _solve_pooled(
        self,
        pairs: list[tuple[SchedulingProblem | None, TaskHypergraph]],
        pending: list[int],
        opts: dict,
        results: list[HyperSemiMatching | None],
    ) -> None:
        n_workers = min(self.max_workers, len(pending))
        chunk = self.chunk_size or -(-len(pending) // (4 * n_workers))
        chunks = [
            pending[lo : lo + chunk] for lo in range(0, len(pending), chunk)
        ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(_solve_chunk, [pairs[i][1] for i in idxs], opts)
            for idxs in chunks
        ]
        for idxs, future in zip(chunks, futures):
            for i, assignment in zip(idxs, future.result()):
                results[i] = HyperSemiMatching(pairs[i][1], assignment)

    def _ensure_pool(self):
        """The solver's executor, created once and reused.

        Spawning a process pool costs more than solving a small batch, so
        callers like the experiment runner — one ``solve_many`` per
        (spec, algorithm) — must not pay it every call.  The pool is shut
        down by :meth:`close` (or interpreter exit via
        :mod:`concurrent.futures`' own atexit hook).
        """
        if self._pool is None:
            pool_cls = (
                ProcessPoolExecutor if self.executor == "process"
                else ThreadPoolExecutor
            )
            self._pool = pool_cls(max_workers=self.max_workers)
        return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; solver stays usable —
        the next pooled call recreates it)."""
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _checked(matching: HyperSemiMatching | None) -> HyperSemiMatching:
    assert matching is not None  # every index is cached or pending
    return matching


def solve_many(
    instances: Iterable[Instance],
    *,
    method: str = "auto",
    refine: bool = False,
    portfolio: Sequence[str] | None = None,
    seed: int = 0,
    max_workers: int | None = None,
    executor: str = "process",
    chunk_size: int | None = None,
    cache: ResultCache | bool | None = True,
) -> list[Solved]:
    """One-call batch solve (see :class:`BatchSolver` for the knobs).

    >>> from repro import SchedulingProblem, solve_many
    >>> probs = []
    >>> for k in range(3):
    ...     p = SchedulingProblem(processors=["a", "b"])
    ...     _ = p.add_sequential_task("t", [("a", 1.0 + k), ("b", 2.0)])
    ...     probs.append(p)
    >>> [s.makespan for s in solve_many(probs, max_workers=1)]
    [1.0, 2.0, 2.0]
    """
    engine = BatchSolver(
        max_workers=max_workers,
        executor=executor,
        chunk_size=chunk_size,
        cache=cache,
        method=method,
        refine=refine,
        portfolio=portfolio,
        seed=seed,
    )
    return engine.solve_many(instances)


def default_engine() -> BatchSolver:
    """The lazily-created engine behind :func:`repro.sched.solve`.

    Serial (single-instance calls gain nothing from a pool) but sharing
    the process-wide result cache, so ``solve()`` calls, batch runs and
    sweeps all feed one another.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = BatchSolver(
            max_workers=1, executor="serial", cache=True
        )
    return _DEFAULT_ENGINE
