"""Throughput-oriented batch solving: :class:`BatchSolver` and
:func:`solve_many`.

The paper's harness (and the seed's :func:`repro.sched.solve`) works one
instance at a time.  This module turns the same dispatch into an engine:

* **batching** — hand over many :class:`~repro.sched.model.SchedulingProblem`
  or :class:`~repro.core.hypergraph.TaskHypergraph` instances at once;
* **pooling** — instances are solved concurrently on a
  :mod:`concurrent.futures` process (or thread) pool, distributed in
  chunks so per-task pickling overhead amortises;
* **portfolio mode** — race several algorithms per instance and keep the
  best makespan (never worse than any single constituent);
* **caching** — a content-addressed LRU of solved assignments, so
  repeated sweeps over the same instances (``experiments.sweep``, the
  Table I–III harness) never recompute.

Every solve returns a :class:`~repro.api.SolveResult`: the matching
(bit-identical to a sequential loop over the underlying algorithms — the
workers run the very same expression evaluation, all methods are
deterministic for a fixed ``seed``, and the pool layout only changes
*where* an instance is solved, never *what* is computed), the named
:class:`~repro.sched.schedule.Schedule` view for problem inputs, and
provenance: winning solver, wall time, cache-hit flag, per-entry
portfolio statistics.  Results come back in input order.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence, Union

from ..api.methods import EntryStat, Outcome
from ..api.options import SolveOptions
from ..api.result import SolveResult
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..obs.trace import (
    adopt,
    collect_timings,
    ingest,
    measured_span,
    ship_context,
    span,
)
from ..sched.model import SchedulingProblem
from ..sched.schedule import Schedule
from .cache import ResultCache, instance_digest
from .dispatch import solve_hypergraph_outcome
from .transport import (
    ExportRegistry,
    attach_instance,
    instance_nbytes,
    is_descriptor,
    transport_available,
)

__all__ = ["BatchSolver", "solve_many", "default_engine", "default_cache"]

Instance = Union[SchedulingProblem, TaskHypergraph]

_EXECUTORS = ("process", "thread", "serial")
_TRANSPORTS = ("auto", "shm", "pickle")

#: Below this payload size a pickle through the pipe beats the shm
#: round-trip (segment syscall + memcpy + descriptor pickle), so
#: ``transport="auto"`` keeps small instances on the pickle path.
_SHM_MIN_BYTES = 64 * 1024

#: Cache shared by every engine created with ``cache=True`` (including
#: the default engine behind :func:`repro.sched.solve`).
_DEFAULT_CACHE = ResultCache()

_DEFAULT_ENGINE: "BatchSolver | None" = None


def default_cache() -> ResultCache:
    """The process-wide shared result cache."""
    return _DEFAULT_CACHE


def _outcome_meta(outcome: Outcome, wall_s: float) -> dict:
    """Flatten an evaluation outcome to a small, picklable dict."""
    meta = {"winner": outcome.winner, "time_s": wall_s}
    if outcome.entries is not None:
        meta["entries"] = [
            (e.method, e.makespan, e.time_s) for e in outcome.entries
        ]
    return meta


def _solve_stats(solve_s: float, timings: dict | None) -> dict:
    """The ``SolveResult.stats`` breakdown for one fresh solve."""
    stats = {"solve_s": solve_s, "cache_hit": False}
    if timings:
        compile_s = timings.get("kernels.compile")
        if compile_s is not None:
            stats["compile_s"] = compile_s
    return stats


def _solve_chunk(
    items: list, options: SolveOptions, trace_ctx: tuple | None = None
) -> tuple[list[tuple], list[dict] | None]:
    """Worker payload: solve a chunk, return (assignment, meta) pairs
    plus any spans recorded under the shipped trace context.

    Each item is either a pickled :class:`TaskHypergraph` or a
    shared-memory descriptor (see :mod:`repro.engine.transport`); the
    two may be mixed within one chunk, since the transport decision is
    per-instance.  Returning bare ``hedge_of_task`` arrays plus a small
    provenance dict (rather than full matchings) keeps the result
    pickle small; the parent rebuilds — and thereby re-validates — each
    :class:`HyperSemiMatching` against its own copy of the instance.

    ``trace_ctx`` is the parent's ``(trace_id, span_id)`` (or ``None``
    when tracing is off): worker-side spans join that trace, come back
    as the second return element, and the parent ``ingest``\\ s them —
    the process hop contextvars cannot cross.
    """
    out = []
    with adopt(trace_ctx) as shipped:
        for item in items:
            hg = attach_instance(item) if is_descriptor(item) else item
            with collect_timings() as timings:
                with measured_span("engine.solve") as sp:
                    outcome = solve_hypergraph_outcome(hg, options)
            meta = _outcome_meta(outcome, sp.duration_s)
            meta["stats"] = _solve_stats(sp.duration_s, timings)
            out.append((outcome.matching.hedge_of_task, meta))
    return out, shipped


class BatchSolver:
    """Solve many scheduling instances concurrently.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``1`` solves inline
        (no pool, no pickling).
    executor:
        ``"process"`` (default; real parallelism for these CPU-bound,
        GIL-holding algorithms), ``"thread"`` (cheap to spin up, useful
        for tests and IO-adjacent callers) or ``"serial"`` (always
        inline, whatever ``max_workers`` says).
    chunk_size:
        Instances per pool task; defaults to ``ceil(pending / (4 *
        max_workers))`` so each worker sees a handful of chunks (good
        load balance) without per-instance round-trips.
    cache:
        ``True`` (default) — share the process-wide
        :func:`default_cache`; a :class:`ResultCache` — use that
        instance; ``False``/``None`` — never cache.
    options:
        Default :class:`~repro.api.SolveOptions`, overridable per
        :meth:`solve_many` call.
    method, refine, portfolio, seed, time_budget:
        Historical field-by-field spelling of ``options`` (ignored when
        ``options`` is passed).  ``portfolio`` (a tuple of method
        expressions/names, optionally suffixed ``"+ls"``) switches an
        instance to portfolio mode, as does ``method="portfolio"``.
    transport:
        How instances travel to process-pool workers.  ``"auto"``
        (default) ships instances at or above ``shm_min_bytes`` through
        :mod:`multiprocessing.shared_memory` (digest-keyed segments,
        attached as zero-copy views in the worker) and pickles the
        rest; ``"shm"`` forces shared memory regardless of size;
        ``"pickle"`` disables it.  Shared memory silently degrades to
        pickling per instance when the platform lacks it or segment
        creation fails, so results never depend on the transport.
        Thread and serial executors always hand over references.
    shm_min_bytes:
        The ``"auto"`` size floor (default 64 KiB): below it a pickle
        beats the segment syscall + memcpy.
    idle_timeout:
        Seconds of inactivity after which the worker pool is shut down
        (``None`` — keep it until :meth:`close`).  The next pooled call
        transparently respawns it; shared-memory segments survive the
        pool, only worker-side attachments are re-established.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        executor: str = "process",
        chunk_size: int | None = None,
        cache: ResultCache | bool | None = True,
        options: SolveOptions | None = None,
        method: str = "auto",
        refine: bool = False,
        portfolio: Sequence[str] | None = None,
        seed: int = 0,
        time_budget: float | None = None,
        backend: str = "numpy",
        transport: str = "auto",
        shm_min_bytes: int = _SHM_MIN_BYTES,
        idle_timeout: float | None = None,
    ):
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {_EXECUTORS}"
            )
        if transport not in _TRANSPORTS:
            raise ValueError(
                f"unknown transport {transport!r}; choose from {_TRANSPORTS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        if idle_timeout is not None and idle_timeout <= 0:
            raise ValueError("idle_timeout must be positive")
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.executor = executor
        self.chunk_size = chunk_size
        # identity checks: an empty ResultCache is falsy (it has __len__)
        if cache is True:
            self.cache: ResultCache | None = _DEFAULT_CACHE
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.defaults = (
            options
            if options is not None
            else SolveOptions(
                method=method,
                refine=refine,
                portfolio=(
                    tuple(portfolio) if portfolio is not None else None
                ),
                seed=seed,
                time_budget=time_budget,
                backend=backend,
            )
        )
        self.transport = transport
        self.shm_min_bytes = int(shm_min_bytes)
        self.idle_timeout = idle_timeout
        self._exports = ExportRegistry()
        self._pool = None  # lazily created, reused across solve_many calls
        # one engine may serve several threads (the service's batcher
        # flushes different option-groups concurrently): guard the
        # lazy pool creation so a race cannot leak a second executor
        self._pool_lock = threading.Lock()
        self._busy = 0  # pooled calls in flight (idle-timeout gate)
        self._idle_timer: threading.Timer | None = None

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(
        instance: Instance,
    ) -> tuple[SchedulingProblem | None, TaskHypergraph]:
        if isinstance(instance, SchedulingProblem):
            return instance, instance.to_hypergraph()
        if isinstance(instance, TaskHypergraph):
            return None, instance
        if hasattr(instance, "to_hypergraph"):
            # DynamicInstance (duck-typed: repro.dynamic imports the
            # engine's cache, so naming the class here would cycle).
            # Under patching its snapshot arrives pre-compiled — the
            # kernels are already registered under the hypergraph's
            # digest, so the solve pays no compile.
            return None, instance.to_hypergraph()
        raise TypeError(
            "instances must be SchedulingProblem, TaskHypergraph or "
            f"DynamicInstance, got {type(instance).__name__}"
        )

    def _options(
        self,
        method,
        refine,
        portfolio,
        seed,
        time_budget,
        backend,
        options: SolveOptions | None,
    ) -> SolveOptions:
        if options is not None:
            return options
        d = self.defaults
        # The engine-level portfolio default only applies when the call
        # names no strategy at all: an explicit per-call ``method`` must
        # win (normalization gives portfolio precedence over method, so
        # inheriting the default portfolio here would silently shadow it).
        if portfolio is None and method is None:
            portfolio = d.portfolio
        return SolveOptions(
            method=method if method is not None else d.method,
            refine=refine if refine is not None else d.refine,
            portfolio=tuple(portfolio) if portfolio is not None else None,
            seed=seed if seed is not None else d.seed,
            time_budget=(
                time_budget if time_budget is not None else d.time_budget
            ),
            backend=backend if backend is not None else d.backend,
        )

    # ------------------------------------------------------------------
    def solve(self, instance: Instance, **overrides) -> SolveResult:
        """Solve one instance (serial fast path; still cached)."""
        return self.solve_many([instance], **overrides)[0]

    def solve_many(
        self,
        instances: Iterable[Instance],
        *,
        method: str | None = None,
        refine: bool | None = None,
        portfolio: Sequence[str] | None = None,
        seed: int | None = None,
        time_budget: float | None = None,
        backend: str | None = None,
        options: SolveOptions | None = None,
    ) -> list[SolveResult]:
        """Solve every instance; results come back in input order.

        Every result is a :class:`~repro.api.SolveResult`;
        :class:`SchedulingProblem` inputs additionally carry their
        :class:`Schedule` view in ``result.schedule``.
        """
        opts = self._options(
            method, refine, portfolio, seed, time_budget, backend, options
        ).normalized()
        token = opts.cache_token()
        pairs = [self._coerce(x) for x in instances]
        results: list[SolveResult | None] = [None] * len(pairs)

        with span("engine.solve_many") as many_sp:
            # 1. serve what the cache already knows
            keys: list[tuple | None] = [None] * len(pairs)
            pending: list[int] = []
            for i, (_, hg) in enumerate(pairs):
                if self.cache is not None:
                    key = (instance_digest(hg), *token)
                    keys[i] = key
                    hit = self.cache.get(key)
                    if hit is not None:
                        results[i] = self._result(
                            hg,
                            hit.assignment,
                            hit.meta,
                            opts,
                            cache_hit=True,
                        )
                        continue
                pending.append(i)
            if many_sp.recording:
                many_sp.set(
                    instances=len(pairs),
                    cache_hits=len(pairs) - len(pending),
                    executor=self.executor,
                )

            # 2. solve the rest, pooled when it pays off
            if pending:
                if (
                    self.executor == "serial"
                    or self.max_workers == 1
                    or len(pending) == 1
                ):
                    for i in pending:
                        with collect_timings() as timings:
                            with measured_span("engine.solve") as sp:
                                outcome = solve_hypergraph_outcome(
                                    pairs[i][1], opts
                                )
                        results[i] = SolveResult(
                            matching=outcome.matching,
                            options=opts,
                            winner=outcome.winner,
                            wall_time_s=sp.duration_s,
                            portfolio=outcome.entries,
                            stats=_solve_stats(sp.duration_s, timings),
                        )
                else:
                    self._solve_pooled(pairs, pending, opts, results)
                if self.cache is not None:
                    for i in pending:
                        res = _checked(results[i])
                        self.cache.put(
                            keys[i],
                            res.matching.hedge_of_task,
                            {
                                "winner": res.winner,
                                "entries": (
                                    [
                                        (e.method, e.makespan, e.time_s)
                                        for e in res.portfolio
                                    ]
                                    if res.portfolio is not None
                                    else None
                                ),
                            },
                        )

        out = []
        for (problem, _), result in zip(pairs, results):
            result = _checked(result)
            if problem is not None:
                result.schedule = Schedule(problem, result.matching)
            out.append(result)
        return out

    # ------------------------------------------------------------------
    def _result(
        self,
        hg: TaskHypergraph,
        assignment,
        meta: dict,
        opts: SolveOptions,
        *,
        cache_hit: bool = False,
    ) -> SolveResult:
        entries = meta.get("entries")
        stats = meta.get("stats")
        if cache_hit or stats is None:
            stats = {
                "solve_s": 0.0 if cache_hit else meta.get("time_s", 0.0),
                "cache_hit": cache_hit,
            }
        return SolveResult(
            matching=HyperSemiMatching(hg, assignment),
            options=opts,
            winner=meta.get("winner"),
            wall_time_s=0.0 if cache_hit else meta.get("time_s", 0.0),
            cache_hit=cache_hit,
            portfolio=(
                tuple(EntryStat(*e) for e in entries)
                if entries
                else None
            ),
            stats=dict(stats),
        )

    def _payloads(
        self,
        pairs: list[tuple[SchedulingProblem | None, TaskHypergraph]],
        pending: list[int],
    ) -> tuple[dict[int, dict], list[str]]:
        """Shared-memory descriptors for the pending instances that
        should travel by segment, plus the digests whose export refs the
        caller must release when the batch lands."""
        use_shm = (
            self.executor == "process"
            and self.transport != "pickle"
            and transport_available()
        )
        payloads: dict[int, dict] = {}
        held: list[str] = []
        if not use_shm:
            return payloads, held
        for i in pending:
            hg = pairs[i][1]
            if (
                self.transport == "auto"
                and instance_nbytes(hg) < self.shm_min_bytes
            ):
                continue
            descriptor = self._exports.export(hg, instance_digest(hg))
            if descriptor is not None:  # None: creation failed → pickle
                payloads[i] = descriptor
                held.append(descriptor["digest"])
        return payloads, held

    def _solve_pooled(
        self,
        pairs: list[tuple[SchedulingProblem | None, TaskHypergraph]],
        pending: list[int],
        opts: SolveOptions,
        results: list[SolveResult | None],
    ) -> None:
        n_workers = min(self.max_workers, len(pending))
        chunk = self.chunk_size or -(-len(pending) // (4 * n_workers))
        chunks = [
            pending[lo : lo + chunk] for lo in range(0, len(pending), chunk)
        ]
        payloads, held = self._payloads(pairs, pending)
        trace_ctx = ship_context()
        pool = self._acquire_pool()
        try:
            futures = [
                pool.submit(
                    _solve_chunk,
                    [payloads.get(i, pairs[i][1]) for i in idxs],
                    opts,
                    trace_ctx,
                )
                for idxs in chunks
            ]
            for idxs, future in zip(chunks, futures):
                chunk_out, shipped = future.result()
                ingest(shipped)
                for i, (assignment, meta) in zip(idxs, chunk_out):
                    results[i] = self._result(
                        pairs[i][1], assignment, meta, opts
                    )
        finally:
            for digest in held:
                self._exports.release(digest)
            self._release_pool()

    def _acquire_pool(self):
        """The solver's executor, created once and reused while warm.

        Spawning a process pool costs more than solving a small batch, so
        callers like the experiment runner — one ``solve_many`` per
        (spec, algorithm) — must not pay it every call.  The pool lives
        until :meth:`close`, ``idle_timeout`` seconds of inactivity, or
        interpreter exit (:mod:`concurrent.futures`' own atexit hook).
        Balance with :meth:`_release_pool`.
        """
        with self._pool_lock:
            self._busy += 1
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
            if self._pool is None:
                pool_cls = (
                    ProcessPoolExecutor if self.executor == "process"
                    else ThreadPoolExecutor
                )
                self._pool = pool_cls(max_workers=self.max_workers)
            return self._pool

    def _release_pool(self) -> None:
        with self._pool_lock:
            self._busy -= 1
            if (
                self._busy == 0
                and self.idle_timeout is not None
                and self._pool is not None
            ):
                timer = threading.Timer(self.idle_timeout, self._idle_close)
                timer.daemon = True
                self._idle_timer = timer
                timer.start()

    def _idle_close(self) -> None:
        """Idle-timeout expiry: drop the pool if still quiescent.

        Segments in the export registry are kept — they are the cheap
        half of warmth, bounded by its LRU, and the respawned pool's
        workers re-attach to them by name.
        """
        with self._pool_lock:
            if self._busy:
                return
            pool, self._pool = self._pool, None
            self._idle_timer = None
        if pool is not None:
            pool.shutdown(wait=False)

    def worker_pids(self) -> list[int]:
        """PIDs of the live process-pool workers (empty for thread or
        serial executors, or while no pool exists).  Lets tests and
        diagnostics observe pool reuse across calls."""
        with self._pool_lock:
            pool = self._pool
        if pool is None or self.executor != "process":
            return []
        return sorted(getattr(pool, "_processes", None) or ())

    def transport_stats(self) -> dict[str, int]:
        """Export-registry counters: ``segments`` currently mapped,
        ``exports`` created, ``reuses`` served, ``failures``."""
        return self._exports.stats()

    def close(self) -> None:
        """Shut down the worker pool and unlink every shared-memory
        segment (idempotent; solver stays usable — the next pooled call
        recreates both)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
            if self._idle_timer is not None:
                self._idle_timer.cancel()
                self._idle_timer = None
        if pool is not None:
            pool.shutdown()
        self._exports.close()

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _checked(result: SolveResult | None) -> SolveResult:
    assert result is not None  # every index is cached or pending
    return result


#: Warm engines behind the module-level :func:`solve_many`, keyed by
#: pool-shaping parameters.  Each keeps its executor alive for
#: ``_WARM_IDLE_TIMEOUT`` seconds between calls, so back-to-back batch
#: calls (the experiment runner's per-(spec, algorithm) loop) reuse
#: workers — and their warmed kernel caches — instead of paying a pool
#: spawn per call.
_SHARED_ENGINES: dict[tuple, BatchSolver] = {}
_SHARED_LOCK = threading.Lock()
_WARM_IDLE_TIMEOUT = 60.0


def _shared_engine(
    executor: str,
    max_workers: int | None,
    chunk_size: int | None,
    cache: ResultCache | bool | None,
    transport: str,
    shm_min_bytes: int,
) -> BatchSolver | None:
    """The warm engine for this pool shape, or ``None`` when the call
    needs a private one (a caller-owned :class:`ResultCache` must not
    leak into other calls through a shared engine)."""
    if not (cache is True or cache is False or cache is None):
        return None
    key = (
        executor,
        max_workers,
        chunk_size,
        bool(cache),
        transport,
        shm_min_bytes,
    )
    with _SHARED_LOCK:
        engine = _SHARED_ENGINES.get(key)
        if engine is None:
            engine = BatchSolver(
                max_workers=max_workers,
                executor=executor,
                chunk_size=chunk_size,
                cache=bool(cache),
                transport=transport,
                shm_min_bytes=shm_min_bytes,
                idle_timeout=_WARM_IDLE_TIMEOUT,
            )
            _SHARED_ENGINES[key] = engine
        return engine


def solve_many(
    instances: Iterable[Instance],
    *,
    method: str = "auto",
    refine: bool = False,
    portfolio: Sequence[str] | None = None,
    seed: int = 0,
    time_budget: float | None = None,
    backend: str = "numpy",
    options: SolveOptions | None = None,
    max_workers: int | None = None,
    executor: str = "process",
    chunk_size: int | None = None,
    cache: ResultCache | bool | None = True,
    transport: str = "auto",
    shm_min_bytes: int = _SHM_MIN_BYTES,
) -> list[SolveResult]:
    """One-call batch solve (see :class:`BatchSolver` for the knobs).

    Calls with plain-flag caching (``cache=True/False/None``) are served
    by a process-wide warm engine per pool shape: its worker pool stays
    up for 60 s of inactivity, so consecutive calls reuse the same
    workers (and their warmed caches) instead of respawning a pool each
    time.  Passing your own :class:`ResultCache` opts out — such calls
    get a private engine torn down on return.

    >>> from repro import SchedulingProblem, solve_many
    >>> probs = []
    >>> for k in range(3):
    ...     p = SchedulingProblem(processors=["a", "b"])
    ...     _ = p.add_sequential_task("t", [("a", 1.0 + k), ("b", 2.0)])
    ...     probs.append(p)
    >>> [s.makespan for s in solve_many(probs, max_workers=1)]
    [1.0, 2.0, 2.0]
    """
    opts = (
        options
        if options is not None
        else SolveOptions(
            method=method,
            refine=refine,
            portfolio=tuple(portfolio) if portfolio is not None else None,
            seed=seed,
            time_budget=time_budget,
            backend=backend,
        )
    )
    engine = _shared_engine(
        executor, max_workers, chunk_size, cache, transport, shm_min_bytes
    )
    if engine is not None:
        return engine.solve_many(instances, options=opts)
    with BatchSolver(
        max_workers=max_workers,
        executor=executor,
        chunk_size=chunk_size,
        cache=cache,
        transport=transport,
        shm_min_bytes=shm_min_bytes,
    ) as private:
        # the pool is private to this call, so shut it down eagerly
        # rather than leaving it to the interpreter-exit hooks
        return private.solve_many(instances, options=opts)


def default_engine() -> BatchSolver:
    """The lazily-created engine behind :func:`repro.sched.solve` and
    :func:`repro.api.solve`.

    Serial (single-instance calls gain nothing from a pool) but sharing
    the process-wide result cache, so ``solve()`` calls, batch runs and
    sweeps all feed one another.
    """
    global _DEFAULT_ENGINE
    # same double-create shape as the PR 5 _ensure_pool race: two first
    # callers on different threads must not each publish an engine
    with _SHARED_LOCK:
        if _DEFAULT_ENGINE is None:
            _DEFAULT_ENGINE = BatchSolver(
                max_workers=1, executor="serial", cache=True
            )
        return _DEFAULT_ENGINE
