"""Throughput-oriented batch solving: :class:`BatchSolver` and
:func:`solve_many`.

The paper's harness (and the seed's :func:`repro.sched.solve`) works one
instance at a time.  This module turns the same dispatch into an engine:

* **batching** — hand over many :class:`~repro.sched.model.SchedulingProblem`
  or :class:`~repro.core.hypergraph.TaskHypergraph` instances at once;
* **pooling** — instances are solved concurrently on a
  :mod:`concurrent.futures` process (or thread) pool, distributed in
  chunks so per-task pickling overhead amortises;
* **portfolio mode** — race several algorithms per instance and keep the
  best makespan (never worse than any single constituent);
* **caching** — a content-addressed LRU of solved assignments, so
  repeated sweeps over the same instances (``experiments.sweep``, the
  Table I–III harness) never recompute.

Every solve returns a :class:`~repro.api.SolveResult`: the matching
(bit-identical to a sequential loop over the underlying algorithms — the
workers run the very same expression evaluation, all methods are
deterministic for a fixed ``seed``, and the pool layout only changes
*where* an instance is solved, never *what* is computed), the named
:class:`~repro.sched.schedule.Schedule` view for problem inputs, and
provenance: winning solver, wall time, cache-hit flag, per-entry
portfolio statistics.  Results come back in input order.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Iterable, Sequence, Union

from ..api.methods import EntryStat, Outcome
from ..api.options import SolveOptions
from ..api.result import SolveResult
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..sched.model import SchedulingProblem
from ..sched.schedule import Schedule
from .cache import ResultCache, instance_digest
from .dispatch import solve_hypergraph_outcome

__all__ = ["BatchSolver", "solve_many", "default_engine", "default_cache"]

Instance = Union[SchedulingProblem, TaskHypergraph]

_EXECUTORS = ("process", "thread", "serial")

#: Cache shared by every engine created with ``cache=True`` (including
#: the default engine behind :func:`repro.sched.solve`).
_DEFAULT_CACHE = ResultCache()

_DEFAULT_ENGINE: "BatchSolver | None" = None


def default_cache() -> ResultCache:
    """The process-wide shared result cache."""
    return _DEFAULT_CACHE


def _outcome_meta(outcome: Outcome, wall_s: float) -> dict:
    """Flatten an evaluation outcome to a small, picklable dict."""
    meta = {"winner": outcome.winner, "time_s": wall_s}
    if outcome.entries is not None:
        meta["entries"] = [
            (e.method, e.makespan, e.time_s) for e in outcome.entries
        ]
    return meta


def _solve_chunk(
    hgs: list[TaskHypergraph], options: SolveOptions
) -> list[tuple]:
    """Worker payload: solve a chunk, return (assignment, meta) pairs.

    Returning bare ``hedge_of_task`` arrays plus a small provenance dict
    (rather than full matchings) keeps the result pickle small; the
    parent rebuilds — and thereby re-validates — each
    :class:`HyperSemiMatching` against its own copy of the instance.
    """
    out = []
    for hg in hgs:
        t0 = time.perf_counter()
        outcome = solve_hypergraph_outcome(hg, options)
        wall = time.perf_counter() - t0
        out.append(
            (outcome.matching.hedge_of_task, _outcome_meta(outcome, wall))
        )
    return out


class BatchSolver:
    """Solve many scheduling instances concurrently.

    Parameters
    ----------
    max_workers:
        Pool size; defaults to ``os.cpu_count()``.  ``1`` solves inline
        (no pool, no pickling).
    executor:
        ``"process"`` (default; real parallelism for these CPU-bound,
        GIL-holding algorithms), ``"thread"`` (cheap to spin up, useful
        for tests and IO-adjacent callers) or ``"serial"`` (always
        inline, whatever ``max_workers`` says).
    chunk_size:
        Instances per pool task; defaults to ``ceil(pending / (4 *
        max_workers))`` so each worker sees a handful of chunks (good
        load balance) without per-instance round-trips.
    cache:
        ``True`` (default) — share the process-wide
        :func:`default_cache`; a :class:`ResultCache` — use that
        instance; ``False``/``None`` — never cache.
    options:
        Default :class:`~repro.api.SolveOptions`, overridable per
        :meth:`solve_many` call.
    method, refine, portfolio, seed, time_budget:
        Historical field-by-field spelling of ``options`` (ignored when
        ``options`` is passed).  ``portfolio`` (a tuple of method
        expressions/names, optionally suffixed ``"+ls"``) switches an
        instance to portfolio mode, as does ``method="portfolio"``.
    """

    def __init__(
        self,
        *,
        max_workers: int | None = None,
        executor: str = "process",
        chunk_size: int | None = None,
        cache: ResultCache | bool | None = True,
        options: SolveOptions | None = None,
        method: str = "auto",
        refine: bool = False,
        portfolio: Sequence[str] | None = None,
        seed: int = 0,
        time_budget: float | None = None,
        backend: str = "numpy",
    ):
        if executor not in _EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {_EXECUTORS}"
            )
        if max_workers is not None and max_workers < 1:
            raise ValueError("max_workers must be at least 1")
        if chunk_size is not None and chunk_size < 1:
            raise ValueError("chunk_size must be at least 1")
        self.max_workers = (
            max_workers if max_workers is not None else (os.cpu_count() or 1)
        )
        self.executor = executor
        self.chunk_size = chunk_size
        # identity checks: an empty ResultCache is falsy (it has __len__)
        if cache is True:
            self.cache: ResultCache | None = _DEFAULT_CACHE
        elif cache is False or cache is None:
            self.cache = None
        else:
            self.cache = cache
        self.defaults = (
            options
            if options is not None
            else SolveOptions(
                method=method,
                refine=refine,
                portfolio=(
                    tuple(portfolio) if portfolio is not None else None
                ),
                seed=seed,
                time_budget=time_budget,
                backend=backend,
            )
        )
        self._pool = None  # lazily created, reused across solve_many calls
        # one engine may serve several threads (the service's batcher
        # flushes different option-groups concurrently): guard the
        # lazy pool creation so a race cannot leak a second executor
        self._pool_lock = threading.Lock()

    # ------------------------------------------------------------------
    @staticmethod
    def _coerce(
        instance: Instance,
    ) -> tuple[SchedulingProblem | None, TaskHypergraph]:
        if isinstance(instance, SchedulingProblem):
            return instance, instance.to_hypergraph()
        if isinstance(instance, TaskHypergraph):
            return None, instance
        raise TypeError(
            "instances must be SchedulingProblem or TaskHypergraph, "
            f"got {type(instance).__name__}"
        )

    def _options(
        self,
        method,
        refine,
        portfolio,
        seed,
        time_budget,
        backend,
        options: SolveOptions | None,
    ) -> SolveOptions:
        if options is not None:
            return options
        d = self.defaults
        # The engine-level portfolio default only applies when the call
        # names no strategy at all: an explicit per-call ``method`` must
        # win (normalization gives portfolio precedence over method, so
        # inheriting the default portfolio here would silently shadow it).
        if portfolio is None and method is None:
            portfolio = d.portfolio
        return SolveOptions(
            method=method if method is not None else d.method,
            refine=refine if refine is not None else d.refine,
            portfolio=tuple(portfolio) if portfolio is not None else None,
            seed=seed if seed is not None else d.seed,
            time_budget=(
                time_budget if time_budget is not None else d.time_budget
            ),
            backend=backend if backend is not None else d.backend,
        )

    # ------------------------------------------------------------------
    def solve(self, instance: Instance, **overrides) -> SolveResult:
        """Solve one instance (serial fast path; still cached)."""
        return self.solve_many([instance], **overrides)[0]

    def solve_many(
        self,
        instances: Iterable[Instance],
        *,
        method: str | None = None,
        refine: bool | None = None,
        portfolio: Sequence[str] | None = None,
        seed: int | None = None,
        time_budget: float | None = None,
        backend: str | None = None,
        options: SolveOptions | None = None,
    ) -> list[SolveResult]:
        """Solve every instance; results come back in input order.

        Every result is a :class:`~repro.api.SolveResult`;
        :class:`SchedulingProblem` inputs additionally carry their
        :class:`Schedule` view in ``result.schedule``.
        """
        opts = self._options(
            method, refine, portfolio, seed, time_budget, backend, options
        ).normalized()
        token = opts.cache_token()
        pairs = [self._coerce(x) for x in instances]
        results: list[SolveResult | None] = [None] * len(pairs)

        # 1. serve what the cache already knows
        keys: list[tuple | None] = [None] * len(pairs)
        pending: list[int] = []
        for i, (_, hg) in enumerate(pairs):
            if self.cache is not None:
                key = (instance_digest(hg), *token)
                keys[i] = key
                hit = self.cache.get(key)
                if hit is not None:
                    results[i] = self._result(
                        hg,
                        hit.assignment,
                        hit.meta,
                        opts,
                        cache_hit=True,
                    )
                    continue
            pending.append(i)

        # 2. solve the rest, pooled when it pays off
        if pending:
            if (
                self.executor == "serial"
                or self.max_workers == 1
                or len(pending) == 1
            ):
                for i in pending:
                    t0 = time.perf_counter()
                    outcome = solve_hypergraph_outcome(pairs[i][1], opts)
                    wall = time.perf_counter() - t0
                    results[i] = SolveResult(
                        matching=outcome.matching,
                        options=opts,
                        winner=outcome.winner,
                        wall_time_s=wall,
                        portfolio=outcome.entries,
                    )
            else:
                self._solve_pooled(pairs, pending, opts, results)
            if self.cache is not None:
                for i in pending:
                    res = _checked(results[i])
                    self.cache.put(
                        keys[i],
                        res.matching.hedge_of_task,
                        {
                            "winner": res.winner,
                            "entries": (
                                [
                                    (e.method, e.makespan, e.time_s)
                                    for e in res.portfolio
                                ]
                                if res.portfolio is not None
                                else None
                            ),
                        },
                    )

        out = []
        for (problem, _), result in zip(pairs, results):
            result = _checked(result)
            if problem is not None:
                result.schedule = Schedule(problem, result.matching)
            out.append(result)
        return out

    # ------------------------------------------------------------------
    def _result(
        self,
        hg: TaskHypergraph,
        assignment,
        meta: dict,
        opts: SolveOptions,
        *,
        cache_hit: bool = False,
    ) -> SolveResult:
        entries = meta.get("entries")
        return SolveResult(
            matching=HyperSemiMatching(hg, assignment),
            options=opts,
            winner=meta.get("winner"),
            wall_time_s=0.0 if cache_hit else meta.get("time_s", 0.0),
            cache_hit=cache_hit,
            portfolio=(
                tuple(EntryStat(*e) for e in entries)
                if entries
                else None
            ),
        )

    def _solve_pooled(
        self,
        pairs: list[tuple[SchedulingProblem | None, TaskHypergraph]],
        pending: list[int],
        opts: SolveOptions,
        results: list[SolveResult | None],
    ) -> None:
        n_workers = min(self.max_workers, len(pending))
        chunk = self.chunk_size or -(-len(pending) // (4 * n_workers))
        chunks = [
            pending[lo : lo + chunk] for lo in range(0, len(pending), chunk)
        ]
        pool = self._ensure_pool()
        futures = [
            pool.submit(_solve_chunk, [pairs[i][1] for i in idxs], opts)
            for idxs in chunks
        ]
        for idxs, future in zip(chunks, futures):
            for i, (assignment, meta) in zip(idxs, future.result()):
                results[i] = self._result(pairs[i][1], assignment, meta, opts)

    def _ensure_pool(self):
        """The solver's executor, created once and reused.

        Spawning a process pool costs more than solving a small batch, so
        callers like the experiment runner — one ``solve_many`` per
        (spec, algorithm) — must not pay it every call.  The pool is shut
        down by :meth:`close` (or interpreter exit via
        :mod:`concurrent.futures`' own atexit hook).
        """
        with self._pool_lock:
            if self._pool is None:
                pool_cls = (
                    ProcessPoolExecutor if self.executor == "process"
                    else ThreadPoolExecutor
                )
                self._pool = pool_cls(max_workers=self.max_workers)
            return self._pool

    def close(self) -> None:
        """Shut down the worker pool (idempotent; solver stays usable —
        the next pooled call recreates it)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown()

    def __enter__(self) -> "BatchSolver":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _checked(result: SolveResult | None) -> SolveResult:
    assert result is not None  # every index is cached or pending
    return result


def solve_many(
    instances: Iterable[Instance],
    *,
    method: str = "auto",
    refine: bool = False,
    portfolio: Sequence[str] | None = None,
    seed: int = 0,
    time_budget: float | None = None,
    backend: str = "numpy",
    options: SolveOptions | None = None,
    max_workers: int | None = None,
    executor: str = "process",
    chunk_size: int | None = None,
    cache: ResultCache | bool | None = True,
) -> list[SolveResult]:
    """One-call batch solve (see :class:`BatchSolver` for the knobs).

    >>> from repro import SchedulingProblem, solve_many
    >>> probs = []
    >>> for k in range(3):
    ...     p = SchedulingProblem(processors=["a", "b"])
    ...     _ = p.add_sequential_task("t", [("a", 1.0 + k), ("b", 2.0)])
    ...     probs.append(p)
    >>> [s.makespan for s in solve_many(probs, max_workers=1)]
    [1.0, 2.0, 2.0]
    """
    with BatchSolver(
        max_workers=max_workers,
        executor=executor,
        chunk_size=chunk_size,
        cache=cache,
        options=options,
        method=method,
        refine=refine,
        portfolio=portfolio,
        seed=seed,
        time_budget=time_budget,
        backend=backend,
    ) as engine:
        # the pool is private to this call, so shut it down eagerly
        # rather than leaving it to the interpreter-exit hooks
        return engine.solve_many(instances)


def default_engine() -> BatchSolver:
    """The lazily-created engine behind :func:`repro.sched.solve` and
    :func:`repro.api.solve`.

    Serial (single-instance calls gain nothing from a pool) but sharing
    the process-wide result cache, so ``solve()`` calls, batch runs and
    sweeps all feed one another.
    """
    global _DEFAULT_ENGINE
    if _DEFAULT_ENGINE is None:
        _DEFAULT_ENGINE = BatchSolver(
            max_workers=1, executor="serial", cache=True
        )
    return _DEFAULT_ENGINE
