"""Vectorized kernels over :class:`~repro.kernels.CompiledKernels` arrays.

Each kernel batches the exact floating-point operations of the Python
loop it replaces (same values, same accumulation order), so results are
bit-identical — the conformance harness holds every solver to that.

Ranking kernels compare candidates over the *task's full pin-union*
instead of pairwise unions; by the multiset lemma of
:mod:`repro.core.loadvec` (untouched loads cancel) the descending-lex
order is unchanged.  The lemma holds for any totally ordered values, so
it applies verbatim to the IEEE doubles being compared.

The sequential frontier
-----------------------
The greedy heuristics (SGH/VGH/EGH/EVG) carry a loop these kernels
cannot absorb: task ``v``'s decision reads the loads committed by every
earlier task, so the per-task dependency chain is irreducible — there is
no batched formulation over tasks without changing the algorithm (and
hence the matching).  What the numpy backend vectorizes is the *inner*
dimension (all of a task's candidates and pins at once); the outer loop
keeps a fixed per-task cost of a few ufunc dispatches (gather, reduceat,
argmin, scatter-add), about 3-4 µs/task regardless of instance size.

The Python oracle pays ~3 µs *per candidate pin list*, so the speedup of
the numpy path approaches (mean pins per task) x (dispatch ratio) and
measures ~3x on the benchmark families (g=16: 69 ms → 22 ms at n=5120)
— not the 10-50x of the batch kernels below, whose work has no
cross-item dependency.  Squeezing the remaining per-step constant means
removing interpreter dispatch itself (a native/compiled loop), not more
vectorization; the micro-optimisations that *are* worthwhile at this
frontier (Python-list pointer indexing, precomputed reduceat offsets,
in-place key updates) live in ``_sgh_numpy`` and are annotated there.
"""

from __future__ import annotations

import numpy as np

from .compiled import flat_ranges

__all__ = [
    "loads_from_assignment",
    "lex_best_row",
    "batch_lex_signs",
    "first_lex_improving",
    "lex_move_sign",
]


def loads_from_assignment(hg, hedge_of_task: np.ndarray) -> np.ndarray:
    """Per-processor loads of an assignment, accumulated in task order.

    The batched form of ``for h in hedge_of_task: loads[pins(h)] += w[h]``
    (``np.add.at`` applies elementwise in index order, so the float
    accumulation order — and therefore every bit of the result — matches
    the loop).
    """
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedges = np.ascontiguousarray(hedge_of_task, dtype=np.int64)
    if hedges.size == 0:
        return loads
    sizes = np.diff(hg.hedge_ptr)[hedges]
    idx = flat_ranges(hg.hedge_ptr[:-1][hedges], sizes)
    np.add.at(
        loads, hg.hedge_procs[idx], np.repeat(hg.hedge_w[hedges], sizes)
    )
    return loads


#: Sign bit of the IEEE-754 binary64 layout.
_SIGN = np.uint64(0x8000000000000000)


def _inv_sort_keys(rows: np.ndarray) -> np.ndarray:
    """Each row of (m, k) ``rows`` → one byte string whose ``memcmp``
    order is the *reverse* of the row's descending-lex multiset order
    (memcmp-larger == lex-smaller).

    Each double maps through the inverted IEEE total-order trick
    (``~(bits | sign)`` for non-negatives, raw bits for negatives) — a
    strictly *decreasing* uint64 key for NaN-free floats (the kernels
    never produce NaN, and ``-0.0`` cannot arise from sums and
    differences of finite operands).  Sorting the inverted keys
    ascending therefore sorts the values descending in place, and the
    concatenated big-endian key bytes compare rows in one ``memcmp``
    instead of a per-column loop.
    """
    rows = np.asarray(rows, dtype=np.float64)
    m, k = rows.shape
    if k == 0:
        return np.zeros(m, dtype="S1")
    u = np.ascontiguousarray(rows).view(np.uint64)
    inv = np.where(rows < 0, u, ~(u | _SIGN))
    inv.sort(axis=1)
    return inv.astype(">u8").view(f"S{8 * k}").ravel()


def lex_best_row(rows: np.ndarray) -> int:
    """Index of the descending-lex smallest row of ``rows`` (m, k).

    Rows are value multisets (unsorted); ties keep the smallest index,
    matching the strict-``<`` incumbent rule of the Python loops.
    """
    keys = _inv_sort_keys(rows)
    best = 0
    bk = keys[0]
    for i in range(1, keys.shape[0]):
        if keys[i] > bk:  # inverted keys: memcmp-larger == lex-smaller
            best, bk = i, keys[i]
    return best


def batch_lex_signs(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Rowwise descending-lex multiset comparison of ``a`` vs ``b``.

    Both are (m, k) matrices; rows may be padded with ``-inf`` (padding
    must match between ``a`` and ``b``, which maps to identical key
    bytes on both sides and cancels).  Returns an int array of
    -1/0/+1 per row — the batched
    :func:`repro.core.loadvec.lex_compare_multisets`.
    """
    ka = _inv_sort_keys(a)
    kb = _inv_sort_keys(b)
    # inverted keys: a memcmp-larger key means a lex-smaller multiset
    return (ka < kb).astype(np.int8) - (ka > kb).astype(np.int8)


def first_lex_improving(
    after: np.ndarray, before: np.ndarray
) -> int | None:
    """Index of the first row where ``after`` lex-improves on
    ``before`` (sign < 0), or ``None``.

    The shared acceptance rule of every first-improving-move scan
    (static local search and incremental repair): rows are candidate
    moves in scan order, padded identically with ``-inf``, and the
    earliest improving one wins.
    """
    improving = np.flatnonzero(batch_lex_signs(after, before) < 0)
    return int(improving[0]) if improving.size else None


def lex_move_sign(after: np.ndarray, before: np.ndarray) -> int:
    """Single-move evaluation: -1 when ``after`` improves on ``before``
    in descending-lex multiset order (the move-evaluation kernel; the
    incremental repair loop calls this per candidate move)."""
    return int(
        batch_lex_signs(
            np.asarray(after, dtype=np.float64)[None, :],
            np.asarray(before, dtype=np.float64)[None, :],
        )[0]
    )
