"""repro.kernels — vectorized CSR kernel core for the hot paths.

The paper's heuristics were first implemented as per-candidate Python
loops over :class:`~repro.core.hypergraph.TaskHypergraph` views.  This
package compiles an instance once into :class:`CompiledKernels` — a
set of flat NumPy arrays grouped by task (candidate weights, pin lists,
and each pin's precomputed position inside its task's sorted
pin-union) — and provides array kernels for everything the greedy
heuristics, the local search and the incremental repair loop do per
candidate:

* batched load-vector accumulation (:func:`loads_from_assignment`);
* per-task candidate bottlenecks via ``np.maximum.reduceat``;
* descending-lexicographic candidate ranking (:func:`lex_best_row`),
  sound by the affected-multiset lemma of :mod:`repro.core.loadvec`;
* batched local-search move evaluation (:func:`batch_lex_signs`).

Every kernel performs *the same floating-point operations in the same
order* as the Python loops it replaces, so ``backend="numpy"`` returns
bit-identical matchings to ``backend="python"`` — asserted for every
registered solver by ``tests/test_conformance.py``.

Compilations are cached by the engine's content digest
(:func:`repro.engine.cache.instance_digest`), so one instance is
compiled once no matter how many solvers race over it.
"""

from __future__ import annotations

from .compiled import (
    CompiledKernels,
    compile_cache_stats,
    compile_instance,
    clear_compile_cache,
    evict_compiled,
    flat_ranges,
    register_compiled,
)
from .patch import (
    KernelPatcher,
    PatchedCompilation,
    clear_patch_cache,
    patch_cache_stats,
)
from .ops import (
    batch_lex_signs,
    first_lex_improving,
    lex_best_row,
    lex_move_sign,
    loads_from_assignment,
)

__all__ = [
    "KNOWN_BACKENDS",
    "CompiledKernels",
    "KernelPatcher",
    "PatchedCompilation",
    "compile_instance",
    "register_compiled",
    "evict_compiled",
    "clear_compile_cache",
    "clear_patch_cache",
    "compile_cache_stats",
    "patch_cache_stats",
    "flat_ranges",
    "loads_from_assignment",
    "lex_best_row",
    "batch_lex_signs",
    "first_lex_improving",
    "lex_move_sign",
    "check_backend",
]

#: The execution backends every kernel-aware solver accepts.
KNOWN_BACKENDS = ("numpy", "python")


def check_backend(backend: str) -> str:
    """Validate a backend name, returning it unchanged."""
    if backend not in KNOWN_BACKENDS:
        raise ValueError(
            f"backend must be one of {KNOWN_BACKENDS}, got {backend!r}"
        )
    return backend
