"""Delta-patchable compilation: :class:`KernelPatcher`.

:func:`~repro.kernels.compile_instance` rebuilds every grouped array
from scratch; under churn that full recompile dominates the solve
itself (BENCH_kernels.json: 0.123s compile vs 0.070s SGH at n=10240).
A :class:`KernelPatcher` instead *maintains* the compilation across
:class:`~repro.dynamic.journal.Mutation` records as bounded array
edits:

* ``update_weight`` patches weights in place (copy-on-write — emitted
  arrays are immutable and may sit in the compile cache);
* ``add_task`` appends rows into capacity-doubling slack storage.
  Task handles are monotone (never reused), so append order *is*
  canonical handle order and emission never sorts rows;
* ``remove_task`` / ``remove_processor`` tombstone rows behind an
  alive mask; once dead pins exceed ``compact_threshold`` the patcher
  reports :attr:`needs_compaction` and the owner rebuilds from state
  (the bounded fall-back to a full recompile);
* ``add_processor`` / ``remove_processor`` re-derive the dense
  processor ids.  Dense ids are ranks among the sorted alive handles,
  so per-task pin-unions and every pin's position inside them —
  maintained at *handle* level — are invariant under the remap.

:meth:`emit` lowers the handle-level stores to the exact arrays a
from-scratch :func:`compile_instance` of the canonically compiled
instance produces — bit-identical, dtype-identical (asserted by the
differential harness and a Hypothesis property test), so digests,
result-cache keys and solver outputs cannot tell a patched compilation
from a fresh one.

The module deliberately does not import :mod:`repro.dynamic` (which
imports the kernels back); mutation records are consumed through their
``op``/``payload`` attributes only.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..obs.trace import span
from .compiled import CompiledKernels, flat_ranges, register_compiled

__all__ = [
    "KernelPatcher",
    "PatchedCompilation",
    "lookup_patched",
    "register_patched",
    "clear_patch_cache",
    "patch_cache_stats",
]

# dirty levels, monotone: weight edits can ride the cheap path only
# while no structural edit happened since the last emission
_CLEAN, _WEIGHTS, _STRUCT = 0, 1, 2


@dataclass(frozen=True)
class PatchedCompilation:
    """One emitted compilation artifact plus its handle mappings.

    ``hedge_handles``/``hedge_slots`` name, per dense hyperedge, the
    (task handle, config slot) it was compiled from — what
    :class:`~repro.dynamic.CompiledInstance` translates assignments
    with.
    """

    hypergraph: TaskHypergraph
    kernels: CompiledKernels
    task_handles: np.ndarray
    proc_handles: np.ndarray
    hedge_handles: np.ndarray
    hedge_slots: np.ndarray

    @property
    def digest(self) -> str:
        return self.kernels.digest

    def anchor_digest(self) -> str:
        """Content digest *including the handle mappings* — the chain
        anchor.  The bare content digest is not enough to key artifact
        reuse across instances: equal dense arrays can carry different
        handle worlds, and adopting across them would mistranslate
        every assignment."""
        cached = self.__dict__.get("_anchor")
        if cached is None:
            import hashlib

            h = hashlib.sha256()
            h.update(b"anchor:")
            h.update(self.kernels.digest.encode())
            for arr in (
                self.task_handles,
                self.proc_handles,
                self.hedge_handles,
                self.hedge_slots,
            ):
                h.update(b"#")
                # hash the buffer view directly — tobytes() would copy
                # every handle table on each anchor computation
                h.update(np.ascontiguousarray(arr, dtype=np.int64).data)
            cached = h.hexdigest()
            object.__setattr__(self, "_anchor", cached)
        return cached


@dataclass
class PatchStats:
    """Observable counters of one patcher's lifetime."""

    mutations: int = 0
    emits_full: int = 0
    emits_weight: int = 0
    emits_delta: int = 0
    reused: int = 0
    adopted: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "mutations": self.mutations,
            "emits_full": self.emits_full,
            "emits_weight": self.emits_weight,
            "emits_delta": self.emits_delta,
            "reused": self.reused,
            "adopted": self.adopted,
        }


def _grown(arr: np.ndarray, need: int) -> np.ndarray:
    """``arr`` with capacity >= ``need`` (doubling; contents kept)."""
    cap = arr.shape[0]
    if need <= cap:
        return arr
    new_cap = max(need, 2 * cap, 16)
    out = np.empty(new_cap, dtype=arr.dtype)
    out[:cap] = arr
    return out


class KernelPatcher:
    """Maintains a compilable flat-array image of a mutating instance.

    ``tasks`` is the instance state — ``(task handle, configs)`` pairs
    in ascending handle order, each config a ``(pins, weight, alive)``
    triple with sorted pin tuples — and ``procs`` the alive processor
    handles.  Building from state costs one full compile; every
    subsequent :meth:`apply` is a bounded edit.
    """

    def __init__(self, tasks, procs, *, compact_threshold: float = 0.5):
        if not 0.0 < compact_threshold <= 1.0:
            raise ValueError("compact_threshold must be in (0, 1]")
        self.compact_threshold = float(compact_threshold)
        self.stats = PatchStats()
        self._procs: set[int] = {int(u) for u in procs}
        self._proc_sorted: np.ndarray | None = None
        # row stores: one row per configuration slot, dead slots kept
        # in place so ``update_weight(task, cfg)`` addresses row
        # ``task_lo + cfg`` directly
        row_task: list[int] = []
        row_slot: list[int] = []
        row_w: list[float] = []
        row_len: list[int] = []
        row_alive: list[bool] = []
        pin_parts: list[tuple[int, ...]] = []
        self._task_rows: dict[int, tuple[int, int]] = {}
        r = 0
        for t, confs in tasks:
            lo = r
            for j, (pins, w, alive) in enumerate(confs):
                row_task.append(int(t))
                row_slot.append(j)
                row_w.append(float(w))
                row_len.append(len(pins))
                row_alive.append(bool(alive))
                pin_parts.append(pins)
                r += 1
            self._task_rows[int(t)] = (lo, r)
        self._nrows = r
        self._row_task = np.asarray(row_task, dtype=np.int64)
        self._row_slot = np.asarray(row_slot, dtype=np.int64)
        self._row_w = np.asarray(row_w, dtype=np.float64)
        self._row_len = np.asarray(row_len, dtype=np.int64)
        self._row_alive = np.asarray(row_alive, dtype=bool)
        self._row_ptr = np.zeros(r, dtype=np.int64)
        if r:
            np.cumsum(self._row_len[:-1], out=self._row_ptr[1:])
        flat = [u for pins in pin_parts for u in pins]
        self._pins = np.asarray(flat, dtype=np.int64)
        self._pin_pos = np.zeros(self._pins.shape[0], dtype=np.int64)
        self._pin_row = np.repeat(
            np.arange(r, dtype=np.int64), self._row_len[:r]
        )
        self._pin_used = self._pins.shape[0]
        self._dead_pins = 0
        # handle-level per-task sorted pin-unions (dense-remap invariant)
        self._union: dict[int, np.ndarray] = {}
        self._build_unions()
        # dead pins of tombstoned rows existing at build time still
        # count toward compaction pressure
        if r:
            self._dead_pins = int(
                self._row_len[: r][~self._row_alive[: r]].sum()
            )
        self._dirty = _STRUCT
        self._weight_rows: list[int] = []
        self._last: PatchedCompilation | None = None
        self._row_dense: np.ndarray | None = None
        # structural records since the last emission, while the window
        # stays simple enough for delta emission (one task add/remove
        # over an up-to-date baseline); ``None`` = window poisoned,
        # fall back to a full structural emit
        self._pending: list[tuple[str, int]] | None = []

    # ------------------------------------------------------------------
    # union maintenance (handle level)
    # ------------------------------------------------------------------
    def _build_unions(self) -> None:
        """Recompute every task's pin-union and each alive pin's
        position inside it, in one vectorized pass.

        Alongside the per-task dict this maintains the *flat* image the
        emitter needs — ``_u_tasks`` (alive handles ascending),
        ``_u_lens`` and ``_u_flat`` (concatenated unions in that order)
        — kept incrementally by the mutation hooks so emission never
        re-concatenates thousands of small arrays.
        """
        self._u_tasks = np.empty(0, dtype=np.int64)
        self._u_lens = np.empty(0, dtype=np.int64)
        self._u_flat = np.empty(0, dtype=np.int64)
        n = self._nrows
        if n == 0:
            return
        alive_rows = np.flatnonzero(self._row_alive[:n])
        if alive_rows.size == 0:
            return
        sizes = self._row_len[alive_rows]
        idx = flat_ranges(self._row_ptr[alive_rows], sizes)
        apins = self._pins[idx]
        atask = np.repeat(self._row_task[alive_rows], sizes)
        order = np.lexsort((apins, atask))
        sp, stt = apins[order], atask[order]
        total = sp.shape[0]
        new = np.ones(total, dtype=bool)
        if total > 1:
            new[1:] = (sp[1:] != sp[:-1]) | (stt[1:] != stt[:-1])
        rank = np.cumsum(new) - 1
        uniq_task = stt[new]
        uniq_pin = sp[new]
        starts = np.flatnonzero(
            np.concatenate(([True], uniq_task[1:] != uniq_task[:-1]))
        )
        bounds = np.append(starts, uniq_task.shape[0])
        for k, t in enumerate(uniq_task[starts].tolist()):
            self._union[t] = np.ascontiguousarray(
                uniq_pin[bounds[k] : bounds[k + 1]]
            )
        self._u_tasks = np.ascontiguousarray(uniq_task[starts])
        self._u_lens = np.diff(bounds)
        self._u_flat = np.ascontiguousarray(uniq_pin)
        # rank is global over the sorted pins; subtract each task's
        # first rank (propagated forward — rank is non-decreasing) to
        # get the within-union position
        task_start = np.ones(total, dtype=bool)
        if total > 1:
            task_start[1:] = stt[1:] != stt[:-1]
        first_rank = np.maximum.accumulate(
            np.where(task_start, rank, 0)
        )
        pos = np.empty(total, dtype=np.int64)
        pos[order] = rank - first_rank
        self._pin_pos[idx] = pos

    def _refresh_task(self, t: int) -> None:
        """Recompute one task's union + pin positions from its alive
        rows (after a processor removal killed some of them)."""
        lo, hi = self._task_rows[t]
        rows = [
            r for r in range(lo, hi) if self._row_alive[r]
        ]
        parts = [
            self._pins[self._row_ptr[r] : self._row_ptr[r] + self._row_len[r]]
            for r in rows
        ]
        union = np.unique(np.concatenate(parts))
        self._union[t] = union
        for r, part in zip(rows, parts):
            p0 = self._row_ptr[r]
            self._pin_pos[p0 : p0 + self._row_len[r]] = np.searchsorted(
                union, part
            )

    def _u_rebuild(self) -> None:
        """Reconcatenate the flat union image from the per-task dict
        (one pass after a batch of union changes — a processor removal
        touches hundreds of tasks, and per-task splicing would copy the
        whole image once per task)."""
        parts = [self._union[t] for t in self._u_tasks.tolist()]
        if parts:
            self._u_lens = np.fromiter(
                (p.shape[0] for p in parts),
                dtype=np.int64,
                count=len(parts),
            )
            self._u_flat = np.concatenate(parts)
        else:
            self._u_lens = np.empty(0, dtype=np.int64)
            self._u_flat = np.empty(0, dtype=np.int64)

    # ------------------------------------------------------------------
    # mutation application
    # ------------------------------------------------------------------
    @property
    def needs_compaction(self) -> bool:
        """True once tombstoned pins exceed the compaction threshold —
        the owner should rebuild from state (a full recompile) instead
        of patching on."""
        if self._pin_used == 0:
            return False
        return self._dead_pins / self._pin_used > self.compact_threshold

    def apply(self, mutation) -> None:
        """Apply one journal record (anything with ``op``/``payload``).

        The record must come from a validated journal: the patcher
        trusts handles and feasibility exactly as the journal's owner
        established them.
        """
        # per-journal-record boundary, not a per-pin loop
        with span("kernels.patch.apply") as sp:  # repro: ignore[span-hygiene] — mutation-apply boundary, one span per journal record, outside the vectorized splice loops
            self._apply(mutation)
            if sp.recording:
                sp.set(op=mutation.op)

    def _apply(self, mutation) -> None:
        op, p = mutation.op, mutation.payload
        self.stats.mutations += 1
        if op == "update_weight":
            lo, _hi = self._task_rows[int(p["task"])]
            r = lo + int(p["config"])
            self._row_w[r] = float(p["weight"])
            if self._dirty == _CLEAN:
                self._dirty = _WEIGHTS
            if self._dirty == _WEIGHTS:
                self._weight_rows.append(r)
            else:
                # a weight edit landing *after* a structural op voids the
                # delta-splice baseline too: _delta_add/_delta_remove
                # splice the last emission's arrays, which predate this
                # edit (the mirror image of the _WEIGHTS guard below)
                self._pending = None
            return
        if op in ("add_task", "remove_task"):
            # delta emission needs the last emission as its baseline:
            # un-emitted weight edits would be spliced through stale
            if self._dirty == _WEIGHTS:
                self._pending = None
            elif self._pending is not None:
                self._pending.append((op, int(p["task"])))
            if op == "add_task":
                self._add_task(int(p["task"]), p["configs"])
            else:
                self._remove_task(int(p["task"]))
        elif op == "add_processor":
            self._procs.add(int(p["proc"]))
            self._proc_sorted = None
            self._pending = None
        elif op == "remove_processor":
            self._remove_processor(int(p["proc"]))
            self._pending = None
        else:
            raise ValueError(f"unknown mutation op {op!r}")
        self._dirty = _STRUCT
        self._weight_rows = []

    def _add_task(self, t: int, configs) -> None:
        n_new = len(configs)
        lo = self._nrows
        need_rows = lo + n_new
        self._row_task = _grown(self._row_task, need_rows)
        self._row_slot = _grown(self._row_slot, need_rows)
        self._row_w = _grown(self._row_w, need_rows)
        self._row_len = _grown(self._row_len, need_rows)
        self._row_alive = _grown(self._row_alive, need_rows)
        self._row_ptr = _grown(self._row_ptr, need_rows)
        pins_flat: list[int] = []
        for j, (pins, w) in enumerate(configs):
            r = lo + j
            sorted_pins = sorted(int(u) for u in pins)
            self._row_task[r] = t
            self._row_slot[r] = j
            self._row_w[r] = float(w)
            self._row_len[r] = len(sorted_pins)
            self._row_alive[r] = True
            self._row_ptr[r] = self._pin_used + len(pins_flat)
            pins_flat.extend(sorted_pins)
        need_pins = self._pin_used + len(pins_flat)
        self._pins = _grown(self._pins, need_pins)
        self._pin_pos = _grown(self._pin_pos, need_pins)
        self._pin_row = _grown(self._pin_row, need_pins)
        new_pins = np.asarray(pins_flat, dtype=np.int64)
        self._pins[self._pin_used : need_pins] = new_pins
        self._pin_row[self._pin_used : need_pins] = np.repeat(
            np.arange(lo, lo + n_new, dtype=np.int64),
            self._row_len[lo : lo + n_new],
        )
        union = np.unique(new_pins)
        self._union[t] = union
        # handles are monotone, so the new task's union lands at the
        # end of the flat image
        self._u_tasks = np.append(self._u_tasks, t)
        self._u_lens = np.append(self._u_lens, union.shape[0])
        self._u_flat = np.concatenate((self._u_flat, union))
        self._pin_pos[self._pin_used : need_pins] = np.searchsorted(
            union, new_pins
        )
        self._pin_used = need_pins
        self._nrows = need_rows
        self._task_rows[t] = (lo, need_rows)

    def _remove_task(self, t: int) -> None:
        lo, hi = self._task_rows.pop(t)
        alive = self._row_alive[lo:hi]
        self._dead_pins += int(self._row_len[lo:hi][alive].sum())
        self._row_alive[lo:hi] = False
        self._union.pop(t, None)
        i = int(np.searchsorted(self._u_tasks, t))
        if i < self._u_tasks.shape[0] and self._u_tasks[i] == t:
            start = int(self._u_lens[:i].sum())
            ln = int(self._u_lens[i])
            self._u_tasks = np.delete(self._u_tasks, i)
            self._u_lens = np.delete(self._u_lens, i)
            self._u_flat = np.concatenate(
                (self._u_flat[:start], self._u_flat[start + ln :])
            )

    def _remove_processor(self, u: int) -> None:
        used = self._pin_used
        hits = self._pin_row[:used][self._pins[:used] == u]
        rows = np.unique(hits)
        rows = rows[self._row_alive[rows]]
        if rows.size:
            self._row_alive[rows] = False
            self._dead_pins += int(self._row_len[rows].sum())
            for t in np.unique(self._row_task[rows]).tolist():
                self._refresh_task(t)
            self._u_rebuild()
        self._procs.discard(u)
        self._proc_sorted = None

    # ------------------------------------------------------------------
    # emission
    # ------------------------------------------------------------------
    def _proc_handles_sorted(self) -> np.ndarray:
        if self._proc_sorted is None:
            self._proc_sorted = np.array(
                sorted(self._procs), dtype=np.int64
            )
        return self._proc_sorted

    def adopt(self, artifact: PatchedCompilation) -> None:
        """Take an equal-content artifact (a chain-alias cache hit) as
        the current emission without recomputing it.  The caller
        guarantees the artifact's content equals this patcher's state."""
        self._last = artifact
        self._refresh_row_dense()
        self._dirty = _CLEAN
        self._weight_rows = []
        self._pending = []
        self.stats.adopted += 1

    def _refresh_row_dense(self) -> None:
        n = self._nrows
        self._row_dense = np.full(n, -1, dtype=np.int64)
        alive_rows = np.flatnonzero(self._row_alive[:n])
        self._row_dense[alive_rows] = np.arange(
            alive_rows.size, dtype=np.int64
        )

    def emit(self) -> PatchedCompilation:
        """The compilation of the current state (cached while clean;
        weight-only edits take a copy-on-write fast path, a single
        task add/remove a splice of the previous emission)."""
        # emission boundary: one span per journal sync, covering
        # whichever tier (reuse / weights / delta splice / struct) runs
        with span("kernels.patch.emit") as sp:  # repro: ignore[span-hygiene] — emission boundary, one span per sync, wraps the tier dispatch rather than any inner array loop
            if sp.recording:
                sp.set(tier=("clean", "weights", "struct")[self._dirty])
            return self._emit()

    def _emit(self) -> PatchedCompilation:
        if self._last is not None:
            if self._dirty == _CLEAN:
                self.stats.reused += 1
                return self._last
            if self._dirty == _WEIGHTS:
                return self._emit_weights()
            if self._pending is not None and len(self._pending) == 1:
                op, t = self._pending[0]
                with span("kernels.patch.splice") as dsp:  # repro: ignore[span-hygiene] — delta-splice tier boundary, one span per single-op emission, wraps the whole splice not its array ops
                    if dsp.recording:
                        dsp.set(op=op)
                    artifact = (
                        self._delta_add(t)
                        if op == "add_task"
                        else self._delta_remove(t)
                    )
                if artifact is not None:
                    return artifact
        return self._emit_struct()

    def _emit_weights(self) -> PatchedCompilation:
        last = self._last
        assert last is not None and self._row_dense is not None
        rows = np.unique(np.asarray(self._weight_rows, dtype=np.int64))
        dense = self._row_dense[rows]
        old = last.hypergraph
        w = old.hedge_w.copy()
        w[dense] = self._row_w[rows]
        hg = TaskHypergraph(
            n_tasks=old.n_tasks,
            n_procs=old.n_procs,
            n_hedges=old.n_hedges,
            hedge_task=old.hedge_task,
            hedge_ptr=old.hedge_ptr,
            hedge_procs=old.hedge_procs,
            hedge_w=w,
            task_ptr=old.task_ptr,
            task_hedges=old.task_hedges,
            proc_ptr=old.proc_ptr,
            proc_hedges=old.proc_hedges,
        )
        ok = last.kernels
        g_pin_w = np.repeat(w, ok.g_size)
        artifact = self._finish(
            hg,
            CompiledKernels(
                hypergraph=hg,
                digest="",  # filled by _finish
                g_hedge=ok.g_hedge,
                g_w=w,
                g_size=ok.g_size,
                g_ptr=ok.g_ptr,
                g_pins=ok.g_pins,
                g_pin_w=g_pin_w,
                g_pin_row=ok.g_pin_row,
                g_pin_pos=ok.g_pin_pos,
                u_ptr=ok.u_ptr,
                u_procs=ok.u_procs,
                hedge_gpos=ok.hedge_gpos,
            ),
            last.task_handles,
            last.proc_handles,
            last.hedge_handles,
            last.hedge_slots,
        )
        self.stats.emits_weight += 1
        return artifact

    def _delta_add(self, t: int) -> PatchedCompilation | None:
        """Emission after a single ``add_task``: handles are monotone,
        so the new task's rows land at the *end* of every canonical
        array — emission appends segments instead of rebuilding, and
        the processor CSR takes the new hedges by one ``np.insert``
        (each processor's hedge list is sorted, and the new dense
        hedge ids exceed every existing one)."""
        last = self._last
        assert last is not None
        bounds = self._task_rows.get(t)
        if bounds is None or bounds[0] == bounds[1]:
            return None
        lo, hi = bounds
        kcfg = hi - lo
        hg0, k0 = last.hypergraph, last.kernels
        sizes_new = self._row_len[lo:hi]
        p0 = int(self._row_ptr[lo])
        pn = int(sizes_new.sum())
        pins_h = self._pins[p0 : p0 + pn]
        proc_sorted = self._proc_handles_sorted()
        n_procs = hg0.n_procs
        if proc_sorted.shape[0] != n_procs:
            return None
        new_gpins = np.searchsorted(proc_sorted, pins_h)
        nh0, n_tasks0 = hg0.n_hedges, hg0.n_tasks
        nh = nh0 + kcfg
        w_new = np.ascontiguousarray(self._row_w[lo:hi])

        hedge_task = np.concatenate(
            (hg0.hedge_task, np.full(kcfg, n_tasks0, dtype=np.int64))
        )
        hedge_ptr = np.concatenate(
            (hg0.hedge_ptr, hg0.hedge_ptr[-1] + np.cumsum(sizes_new))
        )
        hedge_procs = np.concatenate((hg0.hedge_procs, new_gpins))
        w = np.concatenate((hg0.hedge_w, w_new))
        task_ptr = np.concatenate(
            (hg0.task_ptr, np.array([nh], dtype=np.int64))
        )
        task_hedges = np.arange(nh, dtype=np.int64)
        pin_hedge = np.repeat(
            np.arange(nh0, nh, dtype=np.int64), sizes_new
        )
        order = np.argsort(new_gpins, kind="stable")
        proc_hedges = np.insert(
            hg0.proc_hedges,
            hg0.proc_ptr[new_gpins[order] + 1],
            pin_hedge[order],
        )
        proc_ptr = hg0.proc_ptr + np.concatenate(
            (
                np.zeros(1, dtype=np.int64),
                np.cumsum(np.bincount(new_gpins, minlength=n_procs)),
            )
        )
        hg = TaskHypergraph(
            n_tasks=n_tasks0 + 1,
            n_procs=n_procs,
            n_hedges=nh,
            hedge_task=hedge_task,
            hedge_ptr=hedge_ptr,
            hedge_procs=hedge_procs,
            hedge_w=w,
            task_ptr=task_ptr,
            task_hedges=task_hedges,
            proc_ptr=proc_ptr,
            proc_hedges=proc_hedges,
        )
        union = self._union[t]
        kernels = CompiledKernels(
            hypergraph=hg,
            digest="",  # filled by _finish
            g_hedge=task_hedges,
            g_w=w,
            g_size=np.concatenate((k0.g_size, sizes_new)),
            g_ptr=hedge_ptr,
            g_pins=hedge_procs,
            g_pin_w=np.concatenate(
                (k0.g_pin_w, np.repeat(w_new, sizes_new))
            ),
            g_pin_row=np.concatenate(
                (
                    k0.g_pin_row,
                    np.repeat(
                        np.arange(kcfg, dtype=np.int64), sizes_new
                    ),
                )
            ),
            g_pin_pos=np.concatenate(
                (k0.g_pin_pos, self._pin_pos[p0 : p0 + pn])
            ),
            u_ptr=np.concatenate(
                (
                    k0.u_ptr,
                    np.array(
                        [int(k0.u_ptr[-1]) + union.shape[0]],
                        dtype=np.int64,
                    ),
                )
            ),
            u_procs=np.concatenate(
                (k0.u_procs, np.searchsorted(proc_sorted, union))
            ),
            hedge_gpos=task_hedges,
        )
        artifact = self._finish(
            hg,
            kernels,
            np.concatenate(
                (last.task_handles, np.array([t], dtype=np.int64))
            ),
            last.proc_handles,
            np.concatenate(
                (last.hedge_handles, np.full(kcfg, t, dtype=np.int64))
            ),
            np.concatenate(
                (
                    last.hedge_slots,
                    np.ascontiguousarray(self._row_slot[lo:hi]),
                )
            ),
        )
        self._refresh_row_dense()
        self.stats.emits_delta += 1
        return artifact

    def _delta_remove(self, t: int) -> PatchedCompilation | None:
        """Emission after a single ``remove_task``: rows are grouped by
        task in the canonical ordering, so the removed task occupies a
        contiguous hedge range — every array is the previous emission
        with one slice cut out (dense ids after the cut shift down
        uniformly, which preserves each processor's sorted order)."""
        last = self._last
        assert last is not None
        hg0, k0 = last.hypergraph, last.kernels
        handles = last.task_handles
        dt = int(np.searchsorted(handles, t))
        if dt >= handles.shape[0] or handles[dt] != t:
            return None
        a, b = int(hg0.task_ptr[dt]), int(hg0.task_ptr[dt + 1])
        pa, pb = int(hg0.hedge_ptr[a]), int(hg0.hedge_ptr[b])
        seg_h, seg_p = b - a, pb - pa
        nh = hg0.n_hedges - seg_h

        hedge_task = np.concatenate(
            (hg0.hedge_task[:a], hg0.hedge_task[b:] - 1)
        )
        hedge_ptr = np.concatenate(
            (hg0.hedge_ptr[: a + 1], hg0.hedge_ptr[b + 1 :] - seg_p)
        )
        hedge_procs = np.concatenate(
            (hg0.hedge_procs[:pa], hg0.hedge_procs[pb:])
        )
        w = np.concatenate((hg0.hedge_w[:a], hg0.hedge_w[b:]))
        task_ptr = np.concatenate(
            (hg0.task_ptr[:dt], hg0.task_ptr[dt + 1 :] - seg_h)
        )
        task_hedges = np.arange(nh, dtype=np.int64)
        keep = (hg0.proc_hedges < a) | (hg0.proc_hedges >= b)
        proc_hedges = hg0.proc_hedges[keep]
        proc_hedges[proc_hedges >= b] -= seg_h
        removed = np.bincount(
            hg0.hedge_procs[pa:pb], minlength=hg0.n_procs
        )
        proc_ptr = hg0.proc_ptr - np.concatenate(
            (np.zeros(1, dtype=np.int64), np.cumsum(removed))
        )
        hg = TaskHypergraph(
            n_tasks=hg0.n_tasks - 1,
            n_procs=hg0.n_procs,
            n_hedges=nh,
            hedge_task=hedge_task,
            hedge_ptr=hedge_ptr,
            hedge_procs=hedge_procs,
            hedge_w=w,
            task_ptr=task_ptr,
            task_hedges=task_hedges,
            proc_ptr=proc_ptr,
            proc_hedges=proc_hedges,
        )
        ua, ub = int(k0.u_ptr[dt]), int(k0.u_ptr[dt + 1])
        kernels = CompiledKernels(
            hypergraph=hg,
            digest="",  # filled by _finish
            g_hedge=task_hedges,
            g_w=w,
            g_size=np.concatenate((k0.g_size[:a], k0.g_size[b:])),
            g_ptr=hedge_ptr,
            g_pins=hedge_procs,
            g_pin_w=np.concatenate(
                (k0.g_pin_w[:pa], k0.g_pin_w[pb:])
            ),
            g_pin_row=np.concatenate(
                (k0.g_pin_row[:pa], k0.g_pin_row[pb:])
            ),
            g_pin_pos=np.concatenate(
                (k0.g_pin_pos[:pa], k0.g_pin_pos[pb:])
            ),
            u_ptr=np.concatenate(
                (k0.u_ptr[:dt], k0.u_ptr[dt + 1 :] - (ub - ua))
            ),
            u_procs=np.concatenate(
                (k0.u_procs[:ua], k0.u_procs[ub:])
            ),
            hedge_gpos=task_hedges,
        )
        artifact = self._finish(
            hg,
            kernels,
            np.concatenate((handles[:dt], handles[dt + 1 :])),
            last.proc_handles,
            np.concatenate(
                (last.hedge_handles[:a], last.hedge_handles[b:])
            ),
            np.concatenate(
                (last.hedge_slots[:a], last.hedge_slots[b:])
            ),
        )
        self._refresh_row_dense()
        self.stats.emits_delta += 1
        return artifact

    def _emit_struct(self) -> PatchedCompilation:
        # the expensive tier (full rebuild of the grouped arrays): worth
        # its own span so traces separate it from the splice fast paths
        with span("kernels.patch.struct"):  # repro: ignore[span-hygiene] — full-rebuild tier boundary, runs once per struct emission, not per pin
            return self._emit_struct_inner()

    def _emit_struct_inner(self) -> PatchedCompilation:
        n = self._nrows
        alive_rows = np.flatnonzero(self._row_alive[:n])
        nh = alive_rows.size
        sizes = np.ascontiguousarray(self._row_len[alive_rows])
        hedge_ptr = np.zeros(nh + 1, dtype=np.int64)
        np.cumsum(sizes, out=hedge_ptr[1:])
        idx = flat_ranges(self._row_ptr[alive_rows], sizes)
        pins_h = self._pins[idx]
        pos = np.ascontiguousarray(self._pin_pos[idx])
        w = np.ascontiguousarray(self._row_w[alive_rows])
        th = self._row_task[alive_rows]
        hedge_slots = np.ascontiguousarray(self._row_slot[alive_rows])

        # dense task ids from handle boundaries (rows are stored in
        # handle order — handles are monotone — so no sort is needed)
        new_task = np.ones(nh, dtype=bool)
        if nh > 1:
            new_task[1:] = th[1:] != th[:-1]
        hedge_task = np.cumsum(new_task, dtype=np.int64) - 1
        task_handles = np.ascontiguousarray(th[new_task])
        n_tasks = task_handles.shape[0]
        task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        if nh:
            np.cumsum(
                np.bincount(hedge_task, minlength=n_tasks),
                out=task_ptr[1:],
            )
        task_hedges = np.arange(nh, dtype=np.int64)

        # dense processor ids: rank among sorted alive handles
        proc_sorted = self._proc_handles_sorted()
        n_procs = proc_sorted.shape[0]
        if n_procs:
            remap = np.full(
                int(proc_sorted[-1]) + 1, -1, dtype=np.int64
            )
            remap[proc_sorted] = np.arange(n_procs, dtype=np.int64)
            hedge_procs = remap[pins_h]
        else:
            remap = np.empty(0, dtype=np.int64)
            hedge_procs = np.empty(0, dtype=np.int64)

        # processor CSR via a stable sort of the dense proc keys; the
        # paths are ordered by measured cost at bench sizes
        npins = hedge_procs.shape[0]
        pin_owner = np.repeat(np.arange(nh, dtype=np.int64), sizes)
        if npins:
            if n_procs <= 1 << 16:
                # numpy's stable sort is an O(n) radix sort for <=16-bit
                # integer keys — ~2x the combined-key trick below
                order_p = np.argsort(
                    hedge_procs.astype(np.uint16), kind="stable"
                )
            elif n_procs < (2**62) // max(npins, 1):
                # unique combined keys make a plain sort reproduce the
                # stable argsort permutation at a fraction of its cost
                combined = hedge_procs * npins + np.arange(
                    npins, dtype=np.int64
                )
                combined.sort()
                order_p = combined % npins
            else:
                order_p = np.argsort(hedge_procs, kind="stable")
            proc_hedges = pin_owner[order_p]
        else:
            proc_hedges = np.empty(0, dtype=np.int64)
        proc_ptr = np.zeros(n_procs + 1, dtype=np.int64)
        if npins:
            np.cumsum(
                np.bincount(hedge_procs, minlength=n_procs),
                out=proc_ptr[1:],
            )

        hg = TaskHypergraph(
            n_tasks=n_tasks,
            n_procs=n_procs,
            n_hedges=nh,
            hedge_task=hedge_task,
            hedge_ptr=hedge_ptr,
            hedge_procs=hedge_procs,
            hedge_w=w,
            task_ptr=task_ptr,
            task_hedges=task_hedges,
            proc_ptr=proc_ptr,
            proc_hedges=proc_hedges,
        )

        # per-task sorted unions, remapped handle -> dense (the flat
        # image is maintained incrementally by the mutation hooks)
        if n_tasks:
            u_lens = self._u_lens
            u_procs = remap[self._u_flat]
        else:
            u_lens = np.empty(0, dtype=np.int64)
            u_procs = np.empty(0, dtype=np.int64)
        u_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        np.cumsum(u_lens, out=u_ptr[1:])

        kernels = CompiledKernels(
            hypergraph=hg,
            digest="",  # filled by _finish
            g_hedge=task_hedges,
            g_w=w,
            g_size=sizes,
            g_ptr=hedge_ptr,
            g_pins=hedge_procs,
            g_pin_w=np.repeat(w, sizes),
            g_pin_row=np.repeat(
                task_hedges - task_ptr[hedge_task], sizes
            ),
            g_pin_pos=pos,
            u_ptr=u_ptr,
            u_procs=u_procs,
            hedge_gpos=task_hedges,
        )
        artifact = self._finish(
            hg,
            kernels,
            task_handles,
            proc_sorted.copy(),
            np.ascontiguousarray(th),
            hedge_slots,
        )
        self._refresh_row_dense()
        self.stats.emits_full += 1
        return artifact

    def _finish(
        self,
        hg: TaskHypergraph,
        kernels: CompiledKernels,
        task_handles: np.ndarray,
        proc_handles: np.ndarray,
        hedge_handles: np.ndarray,
        hedge_slots: np.ndarray,
    ) -> PatchedCompilation:
        # runtime import mirrors compile_instance: kernels must stay
        # importable before the engine package
        from ..engine.cache import instance_digest

        digest = instance_digest(hg)
        object.__setattr__(kernels, "digest", digest)
        register_compiled(kernels)
        artifact = PatchedCompilation(
            hypergraph=hg,
            kernels=kernels,
            task_handles=task_handles,
            proc_handles=proc_handles,
            hedge_handles=hedge_handles,
            hedge_slots=hedge_slots,
        )
        self._last = artifact
        self._dirty = _CLEAN
        self._weight_rows = []
        self._pending = []
        return artifact


# ---------------------------------------------------------------------------
# chain-alias cache: (base digest + canonical mutation suffix) -> artifact
# ---------------------------------------------------------------------------
#: Keyed by :func:`repro.engine.cache.patched_digest` chains.  A chain
#: digest identifies *content* (equal base content + equal mutation
#: suffix => equal canonical arrays), so two sessions replaying the
#: same trace over the same baseline share one emission.  Never used
#: for the ResultCache — its keys must stay pure content digests.
_ALIASES: OrderedDict[str, PatchedCompilation] = OrderedDict()
_ALIAS_LOCK = threading.Lock()
_ALIAS_MAXSIZE = 64
#: Byte budget (same reasoning as the compile cache's): every chain
#: head of a churn stream is a fresh multi-MB artifact, and the stream
#: only ever looks a few heads back.  Keeping dozens of dead versions
#: alive pins the heap and stops the allocator from recycling pages.
_ALIAS_MAXBYTES = 96 * 1024 * 1024
_ALIAS_SIZES: dict[str, int] = {}
_ALIAS_NBYTES = 0
_ALIAS_HITS = 0
_ALIAS_MISSES = 0


def lookup_patched(chain_digest: str) -> PatchedCompilation | None:
    """The artifact previously emitted for this mutation chain, if any."""
    global _ALIAS_HITS, _ALIAS_MISSES
    with _ALIAS_LOCK:
        hit = _ALIASES.get(chain_digest)
        if hit is not None:
            _ALIASES.move_to_end(chain_digest)
            _ALIAS_HITS += 1
            return hit
        _ALIAS_MISSES += 1
        return None


def register_patched(
    chain_digest: str, artifact: PatchedCompilation
) -> None:
    """Publish an emitted artifact under its mutation-chain digest."""
    global _ALIAS_NBYTES
    from .compiled import compiled_nbytes

    with _ALIAS_LOCK:
        _ALIAS_NBYTES -= _ALIAS_SIZES.pop(chain_digest, 0)
        size = compiled_nbytes(artifact.kernels)
        _ALIASES[chain_digest] = artifact
        _ALIASES.move_to_end(chain_digest)
        _ALIAS_SIZES[chain_digest] = size
        _ALIAS_NBYTES += size
        while len(_ALIASES) > 1 and (
            len(_ALIASES) > _ALIAS_MAXSIZE
            or _ALIAS_NBYTES > _ALIAS_MAXBYTES
        ):
            victim, _ = _ALIASES.popitem(last=False)
            _ALIAS_NBYTES -= _ALIAS_SIZES.pop(victim, 0)


def clear_patch_cache() -> None:
    """Drop every chain alias (test support)."""
    global _ALIAS_HITS, _ALIAS_MISSES, _ALIAS_NBYTES
    with _ALIAS_LOCK:
        _ALIASES.clear()
        _ALIAS_SIZES.clear()
        _ALIAS_NBYTES = 0
        _ALIAS_HITS = 0
        _ALIAS_MISSES = 0


def patch_cache_stats() -> dict[str, int]:
    """``{"entries", "bytes", "hits", "misses"}`` snapshot."""
    with _ALIAS_LOCK:
        return {
            "entries": len(_ALIASES),
            "bytes": _ALIAS_NBYTES,
            "hits": _ALIAS_HITS,
            "misses": _ALIAS_MISSES,
        }
