"""Immutable task-grouped CSR compilation of a :class:`TaskHypergraph`.

:class:`TaskHypergraph` already stores hyperedges in CSR form, but the
hot loops need a *task-grouped* arrangement: task ``v``'s candidate
configurations laid out contiguously, each pin annotated with its
position inside the task's sorted pin-union.  With those arrays one
greedy step is a handful of vectorized calls (a gather, a
``reduceat``, an ``argmin``/``lexsort``, a scatter) instead of a Python
loop over candidates.

Grouped position ``k`` (``0 <= k < n_hedges``) is the ``k``-th entry of
``task_hedges`` — i.e. candidates of task ``v`` occupy grouped
positions ``task_ptr[v]:task_ptr[v+1]``, in the same order
:meth:`TaskHypergraph.task_hedge_ids` yields them, which is what makes
kernel tie-breaking match the Python loops exactly.

Compilation is pure array work (no per-pin Python loop) and cached by
the engine's content digest, so structurally equal instances share one
compilation.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..obs.trace import span

__all__ = [
    "CompiledKernels",
    "compile_instance",
    "register_compiled",
    "evict_compiled",
    "clear_compile_cache",
    "compile_cache_stats",
    "flat_ranges",
]


def flat_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """``concatenate([arange(s, s+l) for s, l in zip(starts, lengths)])``
    without a Python loop."""
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    offsets = np.zeros(lengths.shape[0], dtype=np.int64)
    np.cumsum(lengths[:-1], out=offsets[1:])
    return np.repeat(starts - offsets, lengths) + np.arange(
        total, dtype=np.int64
    )


@dataclass(frozen=True)
class CompiledKernels:
    """Task-grouped kernel arrays for one :class:`TaskHypergraph`.

    Attributes
    ----------
    hypergraph:
        The source instance (its CSR arrays are shared, not copied).
    digest:
        The engine's content digest — the compile-cache key.
    g_hedge:
        Hyperedge id at each grouped position (``== task_hedges``).
    g_w, g_size, g_ptr, g_pins:
        Weight, pin count, pin CSR pointer and concatenated pin lists in
        grouped order: the pins of grouped candidate ``k`` are
        ``g_pins[g_ptr[k]:g_ptr[k+1]]``.
    g_pin_w:
        ``g_w`` repeated per pin (scatter payload for ranking kernels).
    g_pin_row:
        For each pin, its candidate's index *within its task* (the row
        of the ranking matrix the pin scatters into).
    g_pin_pos:
        For each pin, its position inside the owning task's sorted
        pin-union (the column of the ranking matrix).
    u_ptr, u_procs:
        CSR of per-task sorted pin-unions: the processors task ``v``
        can touch are ``u_procs[u_ptr[v]:u_ptr[v+1]]`` (sorted,
        duplicate-free).
    hedge_gpos:
        Inverse of ``g_hedge``: the grouped position of each hyperedge.
    """

    hypergraph: TaskHypergraph
    digest: str
    g_hedge: np.ndarray
    g_w: np.ndarray
    g_size: np.ndarray
    g_ptr: np.ndarray
    g_pins: np.ndarray
    g_pin_w: np.ndarray
    g_pin_row: np.ndarray
    g_pin_pos: np.ndarray
    u_ptr: np.ndarray
    u_procs: np.ndarray
    hedge_gpos: np.ndarray

    # -- delegated shape properties -------------------------------------
    @property
    def n_tasks(self) -> int:
        return self.hypergraph.n_tasks

    @property
    def n_procs(self) -> int:
        return self.hypergraph.n_procs

    @property
    def n_hedges(self) -> int:
        return self.hypergraph.n_hedges

    def task_slice(self, v: int) -> tuple[int, int]:
        """Grouped-position range of task ``v``'s candidates."""
        ptr = self.hypergraph.task_ptr
        return int(ptr[v]), int(ptr[v + 1])

    def decompile(self) -> TaskHypergraph:
        """Rebuild an equal :class:`TaskHypergraph` from the grouped
        arrays alone (round-trip property: ``decompile()`` equals the
        source instance array-for-array)."""
        hg = self.hypergraph
        task_of_g = np.repeat(
            np.arange(hg.n_tasks, dtype=np.int64), np.diff(hg.task_ptr)
        )
        order = np.argsort(self.g_hedge, kind="stable")
        return TaskHypergraph.from_hyperedges(
            hg.n_tasks,
            hg.n_procs,
            task_of_g[order],
            [
                self.g_pins[self.g_ptr[k] : self.g_ptr[k + 1]]
                for k in order
            ],
            self.g_w[order],
        )


def _compile(hg: TaskHypergraph, digest: str) -> CompiledKernels:
    nh = hg.n_hedges
    sizes = np.diff(hg.hedge_ptr)
    g_hedge = np.ascontiguousarray(hg.task_hedges, dtype=np.int64)
    g_w = np.ascontiguousarray(hg.hedge_w[g_hedge])
    g_size = np.ascontiguousarray(sizes[g_hedge])
    g_ptr = np.zeros(nh + 1, dtype=np.int64)
    np.cumsum(g_size, out=g_ptr[1:])
    pin_idx = flat_ranges(hg.hedge_ptr[:-1][g_hedge], g_size)
    g_pins = np.ascontiguousarray(hg.hedge_procs[pin_idx])
    g_pin_w = np.repeat(g_w, g_size)

    deg = np.diff(hg.task_ptr)
    task_of_g = np.repeat(np.arange(hg.n_tasks, dtype=np.int64), deg)
    # candidate index within its task, per grouped position then per pin
    local = np.arange(nh, dtype=np.int64) - np.repeat(
        hg.task_ptr[:-1], deg
    )
    g_pin_row = np.repeat(local, g_size)

    # per-task sorted pin-union + each pin's position inside it
    task_of_pin = np.repeat(task_of_g, g_size)
    total_pins = g_pins.shape[0]
    if total_pins:
        # stable sort by (task, pin): folding both keys plus the
        # original index into one int64 makes every key unique, so a
        # plain sort reproduces the lexsort permutation (ties keep
        # input order) at a fraction of its cost
        span = hg.n_tasks * hg.n_procs
        if span and span < (2**62) // total_pins:
            combined = (
                task_of_pin * hg.n_procs + g_pins
            ) * total_pins + np.arange(total_pins, dtype=np.int64)
            combined.sort()
            order = combined % total_pins
        else:
            order = np.lexsort((g_pins, task_of_pin))
        sp = g_pins[order]
        stt = task_of_pin[order]
        new = np.ones(total_pins, dtype=bool)
        new[1:] = (sp[1:] != sp[:-1]) | (stt[1:] != stt[:-1])
        u_procs = np.ascontiguousarray(sp[new])
        counts = np.bincount(stt[new], minlength=hg.n_tasks)
        u_ptr = np.zeros(hg.n_tasks + 1, dtype=np.int64)
        np.cumsum(counts, out=u_ptr[1:])
        rank = np.cumsum(new) - 1  # union index of each sorted pin
        pos = np.empty(total_pins, dtype=np.int64)
        pos[order] = rank
        g_pin_pos = pos - u_ptr[task_of_pin]
    else:
        u_procs = np.empty(0, dtype=np.int64)
        u_ptr = np.zeros(hg.n_tasks + 1, dtype=np.int64)
        g_pin_pos = np.empty(0, dtype=np.int64)

    hedge_gpos = np.empty(nh, dtype=np.int64)
    hedge_gpos[g_hedge] = np.arange(nh, dtype=np.int64)

    return CompiledKernels(
        hypergraph=hg,
        digest=digest,
        g_hedge=g_hedge,
        g_w=g_w,
        g_size=g_size,
        g_ptr=g_ptr,
        g_pins=g_pins,
        g_pin_w=g_pin_w,
        g_pin_row=g_pin_row,
        g_pin_pos=g_pin_pos,
        u_ptr=u_ptr,
        u_procs=u_procs,
        hedge_gpos=hedge_gpos,
    )


#: Digest-keyed LRU of compilations (one instance is compiled once no
#: matter how many solvers, portfolio entries or sweeps touch it).
_CACHE: OrderedDict[str, CompiledKernels] = OrderedDict()
_CACHE_LOCK = threading.Lock()
_CACHE_MAXSIZE = 128
#: Byte budget alongside the entry count: a mutation stream emits a
#: fresh multi-MB compilation per journal record, and retaining every
#: dead version until 128 of them pile up costs hundreds of MB and —
#: worse — forces the allocator to fault fresh pages for every emission
#: instead of recycling the freed ones (measured: struct patches
#: degrade ~6x once the heap stops turning over).  The budget keeps
#: churn workloads in the recycling regime; distinct *live* instances
#: small enough to fit are unaffected.
_CACHE_MAXBYTES = 192 * 1024 * 1024
_CACHE_SIZES: dict[str, int] = {}
_CACHE_NBYTES = 0
_CACHE_HITS = 0
_CACHE_MISSES = 0


def compiled_nbytes(compiled: CompiledKernels) -> int:
    """Approximate heap footprint of one compilation: the sum over its
    unique array buffers (kernel fields share storage with the
    hypergraph's CSR arrays and with prior copy-on-write emissions, so
    buffers are deduplicated by identity)."""
    hg = compiled.hypergraph
    seen: set[int] = set()
    total = 0
    for arr in (
        compiled.g_hedge, compiled.g_w, compiled.g_size, compiled.g_ptr,
        compiled.g_pins, compiled.g_pin_w, compiled.g_pin_row,
        compiled.g_pin_pos, compiled.u_ptr, compiled.u_procs,
        compiled.hedge_gpos, hg.hedge_task, hg.hedge_ptr, hg.hedge_procs,
        hg.hedge_w, hg.task_ptr, hg.task_hedges, hg.proc_ptr,
        hg.proc_hedges,
    ):
        buf = arr.base if arr.base is not None else arr
        if id(buf) not in seen:
            seen.add(id(buf))
            total += getattr(buf, "nbytes", arr.nbytes)
    return total


def _cache_insert_locked(digest: str, compiled: CompiledKernels) -> None:
    global _CACHE_NBYTES
    old = _CACHE_SIZES.pop(digest, 0)
    _CACHE_NBYTES -= old
    size = compiled_nbytes(compiled)
    _CACHE[digest] = compiled
    _CACHE.move_to_end(digest)
    _CACHE_SIZES[digest] = size
    _CACHE_NBYTES += size
    while len(_CACHE) > 1 and (
        len(_CACHE) > _CACHE_MAXSIZE or _CACHE_NBYTES > _CACHE_MAXBYTES
    ):
        victim, _ = _CACHE.popitem(last=False)
        _CACHE_NBYTES -= _CACHE_SIZES.pop(victim, 0)


def compile_instance(
    hg: TaskHypergraph, *, digest: str | None = None
) -> CompiledKernels:
    """Compile ``hg`` (cached by the engine's content digest).

    Pass ``digest=`` when the caller already computed it (the engine's
    result-cache path does); otherwise it is computed here.
    """
    global _CACHE_HITS, _CACHE_MISSES
    if digest is None:
        # runtime import: kernels must stay importable before the
        # engine package (algorithms import kernels at module load)
        from ..engine.cache import instance_digest

        digest = instance_digest(hg)
    with _CACHE_LOCK:
        hit = _CACHE.get(digest)
        if hit is not None:
            _CACHE.move_to_end(digest)
            _CACHE_HITS += 1
            return hit
        _CACHE_MISSES += 1
    # boundary span, not a hot loop: one compile per new digest, and the
    # disabled path is a flag check
    with span("kernels.compile") as sp:  # repro: ignore[span-hygiene] — cache-miss boundary, runs once per instance digest, never inside solver inner loops
        compiled = _compile(hg, digest)
        if sp.recording:
            sp.set(digest=digest[:12], n_tasks=hg.n_tasks)
    with _CACHE_LOCK:
        _cache_insert_locked(digest, compiled)
    return compiled


def register_compiled(compiled: CompiledKernels) -> None:
    """Publish an externally built compilation (the
    :class:`~repro.kernels.patch.KernelPatcher` emission path) under
    its content digest, so a later :func:`compile_instance` of equal
    content is a hit instead of a recompile."""
    with _CACHE_LOCK:
        _cache_insert_locked(compiled.digest, compiled)


def evict_compiled(digest: str) -> None:
    """Drop one cached compilation (no-op when absent).  The engine's
    shared-memory transport calls this when a worker unmaps a segment
    whose arrays a cached compilation may view."""
    global _CACHE_NBYTES
    with _CACHE_LOCK:
        if _CACHE.pop(digest, None) is not None:
            _CACHE_NBYTES -= _CACHE_SIZES.pop(digest, 0)


def clear_compile_cache() -> None:
    """Drop every cached compilation (test support)."""
    global _CACHE_HITS, _CACHE_MISSES, _CACHE_NBYTES
    with _CACHE_LOCK:
        _CACHE.clear()
        _CACHE_SIZES.clear()
        _CACHE_NBYTES = 0
        _CACHE_HITS = 0
        _CACHE_MISSES = 0
    # the chain-alias cache of the patcher holds compilations too:
    # clearing one but not the other would let "cleared" artifacts
    # resurface through the alias path in tests
    from .patch import clear_patch_cache

    clear_patch_cache()


def compile_cache_stats() -> dict[str, int]:
    """``{"entries", "bytes", "hits", "misses"}`` snapshot."""
    with _CACHE_LOCK:
        return {
            "entries": len(_CACHE),
            "bytes": _CACHE_NBYTES,
            "hits": _CACHE_HITS,
            "misses": _CACHE_MISSES,
        }
