"""Common interface for the maximum bipartite matching engines.

The exact SINGLEPROC-UNIT algorithm (paper Section IV-A) uses maximum
bipartite matching "as a black box".  All engines in this package share one
calling convention so they are interchangeable and benchmarkable against
each other:

* the bipartite graph is given in CSR form from the left (task) side:
  ``adj[ptr[v]:ptr[v+1]]`` are the right-side neighbours of left vertex
  ``v``;
* right-side vertices carry an integer *capacity* (how many left vertices
  they can absorb).  Plain matching is the all-ones capacity case; the
  exact algorithm's "D copies of each processor" construction is exactly a
  capacity-``D`` matching, so engines support capacities natively instead
  of materialising copies.

Engines return a :class:`MatchingResult` with the left->right assignment
(``-1`` for unmatched) and per-right usage counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MatchingResult", "normalize_capacity", "ENGINES", "get_engine"]


@dataclass(frozen=True)
class MatchingResult:
    """Outcome of a (capacitated) maximum bipartite matching computation.

    Attributes
    ----------
    match_of_left:
        For each left vertex, the matched right vertex or ``-1``.
    use_of_right:
        For each right vertex, the number of left vertices matched to it
        (never exceeds its capacity).
    """

    match_of_left: np.ndarray
    use_of_right: np.ndarray

    @property
    def cardinality(self) -> int:
        """Number of matched left vertices."""
        return int(np.sum(self.match_of_left >= 0))

    def is_left_perfect(self) -> bool:
        """True when every left vertex is matched."""
        return bool(np.all(self.match_of_left >= 0))

    def validate(self, n_left: int, ptr: np.ndarray, adj: np.ndarray,
                 cap: np.ndarray) -> None:
        """Check the result is a feasible capacitated matching.

        Used by tests as an oracle; raises ``AssertionError`` on violation.
        """
        assert self.match_of_left.shape == (n_left,)
        use = np.zeros_like(cap)
        for v in range(n_left):
            u = int(self.match_of_left[v])
            if u < 0:
                continue
            assert u in set(int(x) for x in adj[ptr[v]:ptr[v + 1]]), (
                f"left {v} matched to non-neighbour {u}"
            )
            use[u] += 1
        assert np.all(use <= cap), "capacity exceeded"
        assert np.array_equal(use, self.use_of_right), "use_of_right mismatch"


def normalize_capacity(
    n_right: int, cap: int | np.ndarray | None
) -> np.ndarray:
    """Broadcast ``cap`` into a per-right-vertex int64 capacity array."""
    if cap is None:
        return np.ones(n_right, dtype=np.int64)
    if np.isscalar(cap):
        c = int(cap)
        if c < 0:
            raise ValueError("capacity must be non-negative")
        return np.full(n_right, c, dtype=np.int64)
    arr = np.ascontiguousarray(cap, dtype=np.int64)
    if arr.shape != (n_right,):
        raise ValueError(
            f"capacity must be scalar or length-{n_right}, got {arr.shape}"
        )
    if arr.size and arr.min() < 0:
        raise ValueError("capacity must be non-negative")
    return arr


# Populated by repro.matching.__init__ to avoid circular imports.
ENGINES: dict[str, Callable] = {}


def get_engine(name: str) -> Callable:
    """Look up a matching engine by name (see :data:`ENGINES`)."""
    try:
        return ENGINES[name]
    except KeyError:
        raise KeyError(
            f"unknown matching engine {name!r}; available: {sorted(ENGINES)}"
        ) from None
