"""Hopcroft-Karp maximum bipartite matching, generalised to capacities.

Phase structure as in the classic algorithm: a BFS builds the layered graph
of shortest alternating paths from free left vertices, then a DFS extracts
a maximal set of vertex-disjoint shortest augmenting paths.  ``O(E sqrt(V))``
for unit capacities.

Right-vertex capacities generalise the notion of "free": a right vertex is
an augmenting-path endpoint while its usage is below its capacity, and the
BFS walks back through *all* left vertices currently matched to a saturated
right vertex.  This is exactly the matching problem on the paper's
``G_D`` graph (D copies of each processor) without materialising copies.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import MatchingResult, normalize_capacity

__all__ = ["hopcroft_karp_matching"]

_INF = np.iinfo(np.int64).max


def hopcroft_karp_matching(
    n_left: int,
    n_right: int,
    ptr: np.ndarray,
    adj: np.ndarray,
    cap: int | np.ndarray | None = None,
    greedy_init: bool = True,
) -> MatchingResult:
    """Maximum capacitated bipartite matching via Hopcroft-Karp phases.

    Same contract as :func:`repro.matching.kuhn.kuhn_matching`.
    """
    capacity = normalize_capacity(n_right, cap)
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)

    match_of_left = np.full(n_left, -1, dtype=np.int64)
    use = np.zeros(n_right, dtype=np.int64)
    matched_lists: list[list[int]] = [[] for _ in range(n_right)]

    if greedy_init:
        for v in range(n_left):
            for k in range(ptr[v], ptr[v + 1]):
                u = int(adj[k])
                if use[u] < capacity[u]:
                    match_of_left[v] = u
                    use[u] += 1
                    matched_lists[u].append(v)
                    break

    dist = np.empty(n_left, dtype=np.int64)

    def bfs() -> bool:
        """Layer left vertices by shortest alternating distance; return
        whether some augmenting path exists."""
        dist.fill(_INF)
        q: deque[int] = deque()
        for v in range(n_left):
            if match_of_left[v] < 0 and ptr[v] < ptr[v + 1]:
                dist[v] = 0
                q.append(v)
        found = False
        seen_right = np.zeros(n_right, dtype=bool)
        while q:
            v = q.popleft()
            dv = dist[v]
            for k in range(ptr[v], ptr[v + 1]):
                u = int(adj[k])
                if seen_right[u]:
                    continue
                seen_right[u] = True
                if use[u] < capacity[u]:
                    found = True
                else:
                    for w in matched_lists[u]:
                        if dist[w] == _INF:
                            dist[w] = dv + 1
                            q.append(w)
        return found

    def dfs(v0: int, edge_cursor: np.ndarray) -> bool:
        """Extract one shortest augmenting path starting at free left v0.

        A stack frame is ``[v, occupants, occ_pos]``; ``edge_cursor[v]``
        persists across the whole phase (classic HK trick: edges failed
        once in a phase stay failed).  Occupant iteration covers *all*
        next-layer matches of a saturated right vertex.
        """
        stack: list[list] = [[v0, None, 0]]
        trail: list[tuple[int, int]] = []
        while stack:
            frame = stack[-1]
            v, occupants, occ_pos = frame
            if occupants is not None:
                if occ_pos < len(occupants):
                    frame[2] += 1
                    w = occupants[occ_pos]
                    if dist[w] != _INF:  # may have been pruned meanwhile
                        stack.append([w, None, 0])
                else:
                    frame[1] = None
                    trail.pop()
                continue
            if edge_cursor[v] >= ptr[v + 1]:
                dist[v] = _INF  # dead end: prune from this phase
                stack.pop()
                continue
            k = edge_cursor[v]
            edge_cursor[v] += 1
            u = int(adj[k])
            if use[u] < capacity[u]:
                trail.append((v, u))
                for tv, tu in trail:
                    old = int(match_of_left[tv])
                    if old >= 0:
                        matched_lists[old].remove(tv)
                        use[old] -= 1
                    match_of_left[tv] = tu
                    matched_lists[tu].append(tv)
                    use[tu] += 1
                return True
            # saturated: descend through next-layer occupants
            occs = [w for w in matched_lists[u] if dist[w] == dist[v] + 1]
            if occs:
                frame[1] = occs
                frame[2] = 0
                trail.append((v, u))
        return False

    while bfs():
        edge_cursor = ptr[:-1].copy()
        for v in range(n_left):
            if match_of_left[v] < 0 and dist[v] == 0 and ptr[v] < ptr[v + 1]:
                dfs(v, edge_cursor)

    return MatchingResult(match_of_left=match_of_left, use_of_right=use)
