"""SciPy-accelerated matching engine (C Hopcroft-Karp on a replicated graph).

``scipy.sparse.csgraph.maximum_bipartite_matching`` is a C implementation
of Hopcroft-Karp.  Capacities are realised the way the paper describes the
exact algorithm's graph ``G_D``: right vertex ``u`` is replicated into
``cap[u]`` copies with identical neighbourhoods.  Replication is done with
vectorised index arithmetic, so even ``p * D`` in the millions stays cheap
relative to the matching itself.

This is the substitution for the paper's MatchMaker C suite (see
DESIGN.md): same algorithmic family, compiled speed, pure-Python fallbacks
available in the sibling modules.

.. warning::
   With large capacities the replicated graph contains many
   interchangeable columns, a structure scipy's Hopcroft-Karp handles
   badly on some instance families (observed: minutes instead of
   milliseconds on tight-group FewgManyg graphs at capacity ~20).  The
   native capacitated engines avoid replication entirely and are the
   default everywhere in this library; keep this backend for
   cross-validation and for small capacities.
"""

from __future__ import annotations

import numpy as np

from .base import MatchingResult, normalize_capacity

__all__ = ["scipy_matching"]


def scipy_matching(
    n_left: int,
    n_right: int,
    ptr: np.ndarray,
    adj: np.ndarray,
    cap: int | np.ndarray | None = None,
    greedy_init: bool = True,  # accepted for interface parity; scipy decides
) -> MatchingResult:
    """Maximum capacitated bipartite matching via scipy's Hopcroft-Karp.

    Same contract as :func:`repro.matching.kuhn.kuhn_matching`.
    """
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import maximum_bipartite_matching

    capacity = normalize_capacity(n_right, cap)
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)
    m = int(adj.shape[0])

    # Copy c of right vertex u becomes replica column slot_ptr[u] + c.
    slot_ptr = np.zeros(n_right + 1, dtype=np.int64)
    np.cumsum(capacity, out=slot_ptr[1:])
    n_slots = int(slot_ptr[-1])

    if n_slots == 0 or m == 0 or n_left == 0:
        return MatchingResult(
            match_of_left=np.full(n_left, -1, dtype=np.int64),
            use_of_right=np.zeros(n_right, dtype=np.int64),
        )

    # Expand every edge (v, u) into cap[u] edges (v, replica of u).
    edge_cap = capacity[adj]
    rep_cols = np.repeat(slot_ptr[adj], edge_cap) + _ramp(edge_cap)
    deg = np.diff(ptr)
    rep_rows = np.repeat(
        np.repeat(np.arange(n_left, dtype=np.int64), deg), edge_cap
    )

    biadj = csr_matrix(
        (np.ones(rep_cols.shape[0], dtype=np.int8), (rep_rows, rep_cols)),
        shape=(n_left, n_slots),
    )
    col_of_row = maximum_bipartite_matching(biadj, perm_type="column")
    col_of_row = np.asarray(col_of_row, dtype=np.int64)

    match_of_left = np.full(n_left, -1, dtype=np.int64)
    matched = col_of_row >= 0
    # Map replica columns back to the original right vertex.
    owner = np.searchsorted(slot_ptr, col_of_row[matched], side="right") - 1
    match_of_left[matched] = owner
    use = np.zeros(n_right, dtype=np.int64)
    np.add.at(use, owner, 1)
    return MatchingResult(match_of_left=match_of_left, use_of_right=use)


def _ramp(counts: np.ndarray) -> np.ndarray:
    """Vectorised ``concatenate([arange(c) for c in counts])``."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    starts = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) - np.repeat(starts, counts)
