"""Maximum bipartite matching engines (capacitated).

Four interchangeable engines behind one calling convention (see
:mod:`repro.matching.base`):

* ``"kuhn"`` — augmenting-path DFS, ``O(VE)``, reference implementation;
* ``"hopcroft-karp"`` — layered phases, ``O(E sqrt(V))``;
* ``"push-relabel"`` — the double-push scheme the paper's experiments used
  (via the MatchMaker C suite);
* ``"scipy"`` — scipy's C Hopcroft-Karp on an explicitly replicated graph
  (fastest; the default for the exact algorithm).
"""

from .base import ENGINES, MatchingResult, get_engine, normalize_capacity
from .hopcroft_karp import hopcroft_karp_matching
from .karp_sipser import karp_sipser_matching
from .kuhn import kuhn_matching
from .push_relabel import push_relabel_matching
from .scipy_backend import scipy_matching

ENGINES.update(
    {
        "kuhn": kuhn_matching,
        "hopcroft-karp": hopcroft_karp_matching,
        "push-relabel": push_relabel_matching,
        "scipy": scipy_matching,
    }
)

__all__ = [
    "MatchingResult",
    "normalize_capacity",
    "get_engine",
    "ENGINES",
    "kuhn_matching",
    "hopcroft_karp_matching",
    "push_relabel_matching",
    "scipy_matching",
    "karp_sipser_matching",
]
