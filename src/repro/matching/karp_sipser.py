"""Karp-Sipser matching initialisation (extension).

The matching codes the paper builds on (MatchMaker — Duff, Kaya, Uçar
ref [9]; Langguth, Manne, Sanders ref [16]) initialise their exact
engines with the Karp-Sipser heuristic: repeatedly match a *degree-one*
vertex to its only neighbour (a provably safe move — some maximum
matching contains it), and when no degree-one vertex exists match an
arbitrary edge.  The result is a maximal (not necessarily maximum)
matching that is optimal on forests and in practice leaves very few
augmenting paths for the exact phase.

This implementation supports right-vertex capacities with the same
semantics as the engines (a right vertex with residual capacity behaves
like ``cap`` interchangeable copies), so it can warm-start the exact
SINGLEPROC-UNIT algorithm's probes.

Not registered in :data:`repro.matching.ENGINES` — it is *maximal*, not
*maximum*; use it as an initialiser or as a fast standalone heuristic.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import MatchingResult, normalize_capacity

__all__ = ["karp_sipser_matching"]


def karp_sipser_matching(
    n_left: int,
    n_right: int,
    ptr: np.ndarray,
    adj: np.ndarray,
    cap: int | np.ndarray | None = None,
    seed: int | None = 0,
) -> MatchingResult:
    """Maximal capacitated matching via the Karp-Sipser rule.

    Degree-one moves are exact; the fallback matches the lowest-index
    remaining left vertex to its least-used eligible neighbour
    (``seed`` reserved for future randomised tie-breaking; the default
    is deterministic).
    """
    capacity = normalize_capacity(n_right, cap)
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)

    match_of_left = np.full(n_left, -1, dtype=np.int64)
    use = np.zeros(n_right, dtype=np.int64)

    # residual degrees; a right vertex "dies" when its capacity is spent,
    # a left vertex dies when matched
    left_alive = np.ones(n_left, dtype=bool)
    right_alive = capacity > 0
    # degree of left vertex = alive eligible neighbours
    left_deg = np.zeros(n_left, dtype=np.int64)
    right_deg = np.zeros(n_right, dtype=np.int64)  # alive incident lefts
    nbrs_of_right: list[list[int]] = [[] for _ in range(n_right)]
    for v in range(n_left):
        for k in range(ptr[v], ptr[v + 1]):
            u = int(adj[k])
            if right_alive[u]:
                left_deg[v] += 1
                right_deg[u] += 1
                nbrs_of_right[u].append(v)

    ones: deque[int] = deque(
        v for v in range(n_left) if left_alive[v] and left_deg[v] == 1
    )

    def kill_right(u: int) -> None:
        """Right vertex spent: decrement neighbours' degrees."""
        right_alive[u] = False
        for w in nbrs_of_right[u]:
            if left_alive[w]:
                left_deg[w] -= 1
                if left_deg[w] == 1:
                    ones.append(w)

    def do_match(v: int, u: int) -> None:
        match_of_left[v] = u
        left_alive[v] = False
        use[u] += 1
        for k in range(ptr[v], ptr[v + 1]):
            uu = int(adj[k])
            if right_alive[uu]:
                right_deg[uu] -= 1
        if use[u] >= capacity[u]:
            kill_right(u)

    pending = deque(range(n_left))
    while True:
        # exhaust the safe degree-one moves first
        while ones:
            v = ones.popleft()
            if not left_alive[v] or left_deg[v] != 1:
                continue
            u = next(
                (
                    int(adj[k])
                    for k in range(ptr[v], ptr[v + 1])
                    if right_alive[int(adj[k])]
                ),
                -1,
            )
            if u >= 0:
                do_match(v, u)
        # fallback: first still-alive left vertex, least-used neighbour
        while pending and (
            not left_alive[pending[0]] or left_deg[pending[0]] == 0
        ):
            v = pending[0]
            if left_alive[v] and left_deg[v] == 0:
                left_alive[v] = False  # isolated: give up on it
            pending.popleft()
        if not pending:
            break
        v = pending[0]
        if left_deg[v] == 1:
            ones.append(v)  # became degree-one meanwhile
            continue
        candidates = [
            int(adj[k])
            for k in range(ptr[v], ptr[v + 1])
            if right_alive[int(adj[k])]
        ]
        u = min(candidates, key=lambda uu: (use[uu], uu))
        do_match(v, u)

    return MatchingResult(match_of_left=match_of_left, use_of_right=use)
