"""Kuhn's augmenting-path maximum bipartite matching (capacitated).

The classic ``O(V * E)`` algorithm: for every left vertex run a DFS for an
augmenting path.  Simple, dependency-free, and the reference implementation
against which the faster engines are tested.  Capacities on right vertices
are handled natively: a right vertex is *free* while its usage is below its
capacity, and the DFS may re-augment *any* of the left vertices currently
matched to a saturated right vertex.
"""

from __future__ import annotations

import numpy as np

from .base import MatchingResult, normalize_capacity

__all__ = ["kuhn_matching"]


def kuhn_matching(
    n_left: int,
    n_right: int,
    ptr: np.ndarray,
    adj: np.ndarray,
    cap: int | np.ndarray | None = None,
    greedy_init: bool = True,
) -> MatchingResult:
    """Maximum capacitated bipartite matching via augmenting DFS.

    Parameters
    ----------
    n_left, n_right, ptr, adj:
        CSR bipartite graph from the left side.
    cap:
        Right-vertex capacities (scalar broadcasts; default all ones).
    greedy_init:
        Seed the matching with a linear greedy pass first; a standard
        constant-factor accelerator that does not change the result's
        cardinality.
    """
    capacity = normalize_capacity(n_right, cap)
    match_of_left = np.full(n_left, -1, dtype=np.int64)
    use = np.zeros(n_right, dtype=np.int64)
    matched_lists: list[list[int]] = [[] for _ in range(n_right)]

    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)

    if greedy_init:
        for v in range(n_left):
            for k in range(ptr[v], ptr[v + 1]):
                u = int(adj[k])
                if use[u] < capacity[u]:
                    match_of_left[v] = u
                    use[u] += 1
                    matched_lists[u].append(v)
                    break

    visited = np.zeros(n_right, dtype=np.int64)
    stamp = 0

    def try_augment(v0: int) -> bool:
        # Iterative DFS over alternating paths.  A stack frame is
        # ``[v, k, occupants, occ_pos]``: left vertex ``v`` scanning its
        # edge ``k``; when ``occupants`` is a list we are iterating the
        # current matches of the saturated right vertex ``adj[k]``.
        # ``trail`` holds the (left, right) re-assignments to apply on
        # success; a frame owns one trail entry exactly while its occupant
        # iteration is active.
        stack: list[list] = [[v0, int(ptr[v0]), None, 0]]
        trail: list[tuple[int, int]] = []
        while stack:
            frame = stack[-1]
            v, k, occupants, occ_pos = frame
            if occupants is not None:
                if occ_pos < len(occupants):
                    frame[3] += 1
                    w = occupants[occ_pos]
                    stack.append([w, int(ptr[w]), None, 0])
                else:
                    # all occupants of adj[k] failed: move to the next edge
                    frame[2] = None
                    frame[1] = k + 1
                    trail.pop()
                continue
            if k >= ptr[v + 1]:
                stack.pop()
                continue
            u = int(adj[k])
            if visited[u] == stamp:
                frame[1] = k + 1
                continue
            visited[u] = stamp
            if use[u] < capacity[u]:
                # Free slot on u: flip the whole trail.
                trail.append((v, u))
                for tv, tu in trail:
                    old = int(match_of_left[tv])
                    if old >= 0:
                        matched_lists[old].remove(tv)
                        use[old] -= 1
                    match_of_left[tv] = tu
                    matched_lists[tu].append(tv)
                    use[tu] += 1
                return True
            # u saturated: try to re-augment each of its occupants in turn
            # (snapshot: successful flips happen only after we return).
            frame[2] = list(matched_lists[u])
            frame[3] = 0
            trail.append((v, u))
        return False

    for v in range(n_left):
        if match_of_left[v] < 0 and ptr[v] < ptr[v + 1]:
            stamp += 1
            try_augment(v)

    return MatchingResult(match_of_left=match_of_left, use_of_right=use)
