"""Push-relabel maximum bipartite matching (the paper's engine of choice).

The paper's exact SINGLEPROC-UNIT algorithm uses the push-relabel matching
code of Kaya, Langguth, Manne and Uçar (ref [15]) from the MatchMaker suite.
This module implements the same *double-push* scheme in Python:

* every unmatched left vertex is *active*;
* an active vertex ``v`` pushes to its neighbour slot of minimum height
  ``psi``; if the slot is occupied it steals it (the occupant becomes
  active again);
* after a steal, the slot is relabelled to one more than the
  second-minimum height seen from ``v``, preserving the invariant that a
  slot's height lower-bounds its alternating distance to a free slot;
* a vertex whose neighbour slots all have height ``>= limit`` is
  unmatchable in the current residual graph and is abandoned.

Capacities are handled by giving every right vertex one *slot per unit of
capacity*, each with its own height — precisely push-relabel on the
paper's replicated graph ``G_D`` (Section IV-A) without materialising the
copies.  For all-unit capacities this degenerates to the classic
double-push algorithm.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from .base import MatchingResult, normalize_capacity

__all__ = ["push_relabel_matching"]


def push_relabel_matching(
    n_left: int,
    n_right: int,
    ptr: np.ndarray,
    adj: np.ndarray,
    cap: int | np.ndarray | None = None,
    greedy_init: bool = True,
) -> MatchingResult:
    """Maximum capacitated bipartite matching via double push-relabel.

    Same contract as :func:`repro.matching.kuhn.kuhn_matching`.
    """
    capacity = normalize_capacity(n_right, cap)
    ptr = np.asarray(ptr, dtype=np.int64)
    adj = np.asarray(adj, dtype=np.int64)

    # Per-slot state: slot_psi[u][s] is the height of slot s of right
    # vertex u; slot_occ[u][s] the left vertex occupying it (-1 if free).
    slot_psi: list[np.ndarray] = [
        np.zeros(int(c), dtype=np.int64) for c in capacity
    ]
    slot_occ: list[np.ndarray] = [
        np.full(int(c), -1, dtype=np.int64) for c in capacity
    ]
    match_of_left = np.full(n_left, -1, dtype=np.int64)

    # Total number of slots bounds the length of any alternating path, so
    # any matchable vertex sees a slot below this limit.
    total_slots = int(capacity.sum())
    limit = 2 * total_slots + 1

    if greedy_init:
        for v in range(n_left):
            for k in range(ptr[v], ptr[v + 1]):
                u = int(adj[k])
                occ = slot_occ[u]
                free = np.flatnonzero(occ < 0)
                if free.size:
                    occ[free[0]] = v
                    match_of_left[v] = u
                    break

    active: deque[int] = deque(
        v for v in range(n_left)
        if match_of_left[v] < 0 and ptr[v] < ptr[v + 1]
    )

    while active:
        v = active.popleft()
        # Find the globally lowest and second-lowest neighbour slots of v.
        # Both may live on the same right vertex (distinct slots), matching
        # the replicated-graph semantics exactly.
        best_u = -1
        best_s = -1
        best_h = limit
        second_h = limit
        for k in range(ptr[v], ptr[v + 1]):
            u = int(adj[k])
            psis = slot_psi[u]
            if psis.size == 0:
                continue
            if psis.size == 1:
                h0 = int(psis[0])
                h1 = None
            else:
                two = np.partition(psis, 1)[:2]
                h0 = int(two[0])
                h1 = int(two[1])
            if h0 < best_h:
                second_h = min(best_h, h1 if h1 is not None else limit)
                best_h = h0
                best_u = u
                best_s = int(np.argmin(psis))
            else:
                cand = h0
                if cand < second_h:
                    second_h = cand
        if best_u < 0 or best_h >= limit:
            continue  # v is unmatchable in the residual graph
        u, s = best_u, best_s
        occupant = int(slot_occ[u][s])
        if occupant >= 0:
            match_of_left[occupant] = -1
            active.append(occupant)
            # Relabel the stolen slot: its residual exits go through v's
            # other slot options, the cheapest of which has height
            # ``second_h``.
            slot_psi[u][s] = second_h + 1
        else:
            # Pushing into a free slot: the slot stops being a free target,
            # and its height must now respect v's alternatives as well.
            slot_psi[u][s] = second_h + 1
        slot_occ[u][s] = v
        match_of_left[v] = u

    use = np.array(
        [int(np.sum(occ >= 0)) for occ in slot_occ], dtype=np.int64
    )
    return MatchingResult(match_of_left=match_of_left, use_of_right=use)
