"""Command-line entry point: regenerate the paper's tables.

Installed as ``semimatch`` (see pyproject).  Examples::

    semimatch table1 --seeds 3 --scale small
    semimatch table2 --seeds 10 --scale full
    semimatch table3 --seeds 5
    semimatch singleproc --d 10 --seeds 3
    semimatch list
    semimatch solvers
    semimatch replay churn.jsonl --compare
    semimatch serve --port 7431
    semimatch submit instance.json --method EVG+ls --port 7431

``--scale`` controls which Table I rows run: ``small`` (n=1280),
``medium`` (n<=5120) or ``full`` (all 24 families).  Results print as
paper-vs-measured comparison tables.
"""

from __future__ import annotations

import argparse
import sys

from .instances import (
    MEDIUM_SPECS,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SMALL_SPECS,
    TABLE1_SPECS,
)
from .runner import run_instances
from .singleproc import run_singleproc, singleproc_specs
from .tables import render_comparison, render_quality_table, render_table1

__all__ = ["main"]

_SCALES = {"small": SMALL_SPECS, "medium": MEDIUM_SPECS, "full": TABLE1_SPECS}


def _add_common(sub: argparse.ArgumentParser) -> None:
    sub.add_argument(
        "--seeds", type=int, default=3,
        help="random instances per family (paper: 10)",
    )
    sub.add_argument(
        "--scale", choices=sorted(_SCALES), default="small",
        help="which Table I rows to run (small: n=1280 only)",
    )
    sub.add_argument(
        "--dv", type=int, default=5,
        help="mean configurations per task (paper grid: 2, 5, 10)",
    )
    sub.add_argument(
        "--dh", type=int, default=10,
        help="step-2 degree parameter (paper grid: 2, 5, 10)",
    )
    sub.add_argument("--verbose", action="store_true")


def _specs(args, weights: str):
    from dataclasses import replace

    return [
        replace(s.with_weights(weights), dv=args.dv, dh=args.dh)
        for s in _SCALES[args.scale]
    ]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="semimatch",
        description=(
            "Reproduce the evaluation of 'Semi-matching algorithms for "
            "scheduling parallel tasks under resource constraints' "
            "(Benoit, Langguth, Ucar, IPDPSW 2013)."
        ),
    )
    subs = parser.add_subparsers(dest="command", required=True)

    for cmd, help_ in (
        ("table1", "instance statistics (paper Table I)"),
        ("table2", "unweighted quality ratios (paper Table II)"),
        ("table3", "related-weight quality ratios (paper Table III)"),
        ("random-weights", "random-weight robustness check (TR Table 8)"),
    ):
        sub = subs.add_parser(cmd, help=help_)
        _add_common(sub)

    sp = subs.add_parser(
        "singleproc", help="greedy vs exact on bipartite instances (Sec. V-B)"
    )
    _add_common(sp)
    sp.add_argument("--d", type=int, default=10, choices=(2, 5, 10))

    subs.add_parser("list", help="list the named instance families")

    gen = subs.add_parser(
        "generate", help="sample a named instance to a JSON file"
    )
    gen.add_argument("instance", help="family name, e.g. FG-5-1-MP[-W|-R]")
    gen.add_argument("-o", "--output", required=True)
    gen.add_argument("--seed", type=int, default=0)

    slv = subs.add_parser(
        "solve", help="solve a JSON instance (from `generate` or the io API)"
    )
    slv.add_argument("path")
    slv.add_argument(
        "--method", default="EVG",
        help="any registered solver name or method expression "
             "('EVG', 'EVG+ls', 'portfolio(SGH,grasp)', ...); "
             "see `semimatch solvers` for the full registry",
    )
    slv.add_argument(
        "--refine", action="store_true", help="post-optimise with local search"
    )

    subs.add_parser(
        "solvers",
        help="list the registered solvers (the capability registry)",
    )

    rp = subs.add_parser(
        "replay",
        help="replay a JSONL mutation trace through the incremental "
             "engine (repro.dynamic)",
    )
    rp.add_argument("trace", help="trace file (see repro.dynamic.save_trace)")
    rp.add_argument(
        "--instance", default=None, metavar="PATH",
        help="JSON baseline instance, for traces recorded without one",
    )
    rp.add_argument(
        "--method", default="auto",
        help="registry method for full (re-)solves (default: auto)",
    )
    rp.add_argument(
        "--fallback-ratio", type=float, default=0.25, metavar="R",
        help="re-solve from scratch when one mutation displaces more "
             "than R * n_tasks tasks (default: 0.25)",
    )
    rp.add_argument(
        "--compare", action="store_true",
        help="also re-solve from scratch after every mutation and "
             "report the incremental speedup",
    )

    sw = subs.add_parser(
        "sweep",
        help="ranking robustness over the (dv, dh) grid (paper §V-A2)",
    )
    sw.add_argument("--seeds", type=int, default=2)
    sw.add_argument(
        "--weights", choices=("unit", "related", "random"),
        default="related",
    )
    sw.add_argument(
        "--grid", type=int, nargs="+", default=[2, 5, 10],
        help="dv and dh values to combine",
    )
    sw.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="solve each grid cell on an N-worker batch engine "
             "(with result caching across cells)",
    )

    sv = subs.add_parser(
        "serve",
        help="run the async solve server (repro.service) on a TCP port",
    )
    sv.add_argument("--host", default="127.0.0.1")
    sv.add_argument("--port", type=int, default=7431)
    sv.add_argument(
        "--max-batch", type=int, default=64, metavar="N",
        help="micro-batcher flush size (default: 64)",
    )
    sv.add_argument(
        "--batch-window-ms", type=float, default=2.0, metavar="MS",
        help="micro-batcher latency budget (default: 2ms)",
    )
    sv.add_argument(
        "--max-pending", type=int, default=1024, metavar="N",
        help="global admission cap on in-flight solves (default: 1024)",
    )
    sv.add_argument(
        "--max-sessions", type=int, default=64, metavar="N",
        help="cap on hosted dynamic sessions (default: 64)",
    )
    sv.add_argument(
        "--allow-shutdown", action="store_true",
        help="honor the protocol 'shutdown' op (supervised deployments)",
    )
    sv.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="shard solving across N supervised worker processes "
             "(consistent-hash routed, sessions pinned; 0 = solve "
             "in-process, default)",
    )

    sb = subs.add_parser(
        "submit",
        help="solve a JSON instance on a running `semimatch serve` server",
    )
    sb.add_argument("path", help="instance file (from `generate` or the io API)")
    sb.add_argument("--host", default="127.0.0.1")
    sb.add_argument("--port", type=int, default=7431)
    sb.add_argument(
        "--method", default=None,
        help="any registered solver name or method expression "
             "(default: the server's configured default)",
    )
    sb.add_argument(
        "--refine", action="store_true", help="post-optimise with local search"
    )
    sb.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="submit the same request N times (cache/dedup demo)",
    )

    tr = subs.add_parser(
        "trace",
        help="fetch the server's flight recorder (its retained slow "
             "traces) and render them as span trees",
    )
    tr.add_argument("--host", default="127.0.0.1")
    tr.add_argument("--port", type=int, default=7431)
    tr.add_argument(
        "--count", type=int, default=None, metavar="N",
        help="only the N most recent retained traces (default: all)",
    )
    tr.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="span trees (text) or the raw trace records (json)",
    )

    mx = subs.add_parser(
        "metrics",
        help="fetch a running server's metrics snapshot",
    )
    mx.add_argument("--host", default="127.0.0.1")
    mx.add_argument("--port", type=int, default=7431)
    mx.add_argument(
        "--format", choices=("json", "prom"), default="json",
        help="JSON snapshot or Prometheus text exposition",
    )
    mx.add_argument(
        "--watch", type=float, default=None, metavar="N",
        help="re-scrape every N seconds and print the client-side "
             "deltas of the cumulative counters (ctrl-C to stop)",
    )

    tp = subs.add_parser(
        "top",
        help="live fleet dashboard: poll metrics/health and render a "
             "refreshing table (req/s, p50/p99, dedup ratio, per-worker "
             "state/generation/inflight)",
    )
    tp.add_argument("--host", default="127.0.0.1")
    tp.add_argument("--port", type=int, default=7431)
    tp.add_argument(
        "--interval", type=float, default=2.0, metavar="N",
        help="seconds between polls (default: 2)",
    )
    tp.add_argument(
        "--once", action="store_true",
        help="one poll, no screen clearing, then exit",
    )
    tp.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="rendered table or raw {metrics, health} JSON",
    )

    st = subs.add_parser(
        "stats", help="describe a JSON instance (shape, degrees, balance)"
    )
    st.add_argument("path")
    st.add_argument(
        "--solve-with", default=None, metavar="METHOD",
        help="also solve with METHOD and show the load balance",
    )

    ck = subs.add_parser(
        "check",
        help="run the repro static analyzer (lock-guard, async-blocking, "
             "kernel-purity, contract-sync, deprecation, span-hygiene)",
    )
    from ..analysis import add_check_arguments

    add_check_arguments(ck)

    args = parser.parse_args(argv)

    if args.command == "check":
        from ..analysis import run_from_args

        return run_from_args(args)

    if args.command == "list":
        for s in TABLE1_SPECS:
            print(
                f"{s.name:>14}  family={s.family:<10} g={s.g:<4} "
                f"n={s.n:<6} p={s.p}"
            )
        return 0

    if args.command == "generate":
        from ..io import save_instance
        from .instances import spec_by_name

        hg = spec_by_name(args.instance).generate(args.seed)
        save_instance(hg, args.output)
        print(
            f"wrote {args.instance} (seed {args.seed}): "
            f"{hg.n_tasks} tasks, {hg.n_procs} procs, "
            f"{hg.n_hedges} hyperedges -> {args.output}"
        )
        return 0

    if args.command == "solvers":
        from ..api import get_registry, registry_table

        print(registry_table())
        print()
        print(
            "default portfolio: "
            + ", ".join(get_registry().default_portfolio())
        )
        return 0

    if args.command == "replay":
        import time

        from ..core.bipartite import BipartiteGraph
        from ..core.hypergraph import TaskHypergraph
        from ..dynamic import DynamicInstance, IncrementalSolver, load_trace
        from ..engine.dispatch import solve_hypergraph

        def baseline_and_trace():
            baseline, mutations = load_trace(args.trace)
            if baseline is not None and args.instance is not None:
                parser.error(
                    "--instance conflicts with a trace that embeds its "
                    "baseline; drop the flag to replay the embedded one"
                )
            if baseline is None:
                if args.instance is None:
                    parser.error(
                        "trace has no embedded baseline; pass --instance"
                    )
                from ..io import load_instance

                inst = load_instance(args.instance)
                if isinstance(inst, BipartiteGraph):
                    inst = TaskHypergraph.from_bipartite(inst)
                baseline = DynamicInstance.from_hypergraph(inst)
            return baseline, mutations

        baseline, mutations = baseline_and_trace()
        solver = IncrementalSolver(
            baseline,
            method=args.method,
            fallback_ratio=args.fallback_ratio,
        )
        t0 = time.perf_counter()
        baseline.replay(mutations)
        t_inc = time.perf_counter() - t0
        stats = solver.stats
        print(
            f"replayed {len(mutations)} mutations in {t_inc:.4f}s "
            f"({stats.local_repairs} local repairs, "
            f"{stats.fallbacks} fallbacks, {stats.ls_moves} moves)"
        )
        print(
            f"final: {baseline.n_tasks} tasks on {baseline.n_procs} "
            f"procs, bottleneck {solver.bottleneck():g}"
        )
        if args.compare:
            fresh, mutations = baseline_and_trace()
            t0 = time.perf_counter()
            scratch = None
            for m in mutations:
                fresh.apply(m)
                scratch = solve_hypergraph(
                    fresh.to_hypergraph(), method=args.method
                )
            if scratch is None:  # empty trace: still solve the baseline
                scratch = solve_hypergraph(
                    fresh.to_hypergraph(), method=args.method
                )
            t_scratch = time.perf_counter() - t0
            print(
                f"from-scratch re-solves: {t_scratch:.4f}s "
                f"(bottleneck {scratch.makespan:g}) -> "
                f"incremental speedup {t_scratch / max(t_inc, 1e-9):.1f}x"
            )
        return 0

    if args.command == "serve":
        import asyncio

        from ..service import ShardedSolveServer, SolveServer

        config = dict(
            host=args.host,
            port=args.port,
            max_batch=args.max_batch,
            max_delay_s=args.batch_window_ms / 1000.0,
            max_pending=args.max_pending,
            max_sessions=args.max_sessions,
            allow_shutdown=args.allow_shutdown,
        )
        if args.workers > 0:
            server = ShardedSolveServer(n_workers=args.workers, **config)
        else:
            server = SolveServer(**config)

        async def _serve():
            await server.start()
            sharding = (
                f", {args.workers} workers" if args.workers > 0 else ""
            )
            print(
                f"semimatch service listening on "
                f"{server.host}:{server.port} "
                f"(batch<= {args.max_batch}, "
                f"window {args.batch_window_ms:g}ms{sharding})",
                flush=True,
            )
            await server.serve_forever()

        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("interrupted; shutting down")
        return 0

    if args.command == "submit":
        from ..io import load_instance
        from ..service import RemoteError, ServiceClient

        inst = load_instance(args.path)
        fields = {}
        if args.method is not None:
            fields["method"] = args.method
        if args.refine:
            fields["refine"] = True
        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                for _ in range(max(args.repeat, 1)):
                    r = client.solve(inst, **fields)
                    flags = "".join(
                        f" [{f}]"
                        for f, on in (
                            ("cache hit", r.cache_hit),
                            ("deduped", r.deduped),
                        )
                        if on
                    )
                    print(
                        f"{r.method} -> {r.winner}: makespan "
                        f"{r.makespan:g} ({r.wall_time_s:.6f}s){flags}"
                    )
        except OSError as exc:
            parser.error(
                f"cannot reach semimatch service at "
                f"{args.host}:{args.port}: {exc}"
            )
        except RemoteError as exc:
            parser.error(f"[{exc.code}] {exc}")
        return 0

    if args.command in ("trace", "metrics", "top"):
        import json

        from ..service import RemoteError, ServiceClient

        try:
            with ServiceClient(host=args.host, port=args.port) as client:
                if args.command == "top":
                    from .top import run_top

                    return run_top(
                        client,
                        interval_s=args.interval,
                        once=args.once,
                        fmt=args.format,
                    )
                if args.command == "metrics":
                    if args.watch is not None:
                        if args.format != "json":
                            parser.error(
                                "--watch only supports --format json"
                            )
                        from .top import run_watch

                        return run_watch(client, interval_s=args.watch)
                    if args.format == "prom":
                        print(
                            client.metrics(format="prometheus")["text"],
                            end="",
                        )
                    else:
                        print(json.dumps(
                            client.metrics(), indent=2, sort_keys=True
                        ))
                    return 0
                recorder = client.traces(count=args.count)
        except OSError as exc:
            parser.error(
                f"cannot reach semimatch service at "
                f"{args.host}:{args.port}: {exc}"
            )
        except RemoteError as exc:
            parser.error(f"[{exc.code}] {exc}")
        if args.format == "json":
            print(json.dumps(recorder, indent=2, sort_keys=True))
            return 0
        from ..obs.trace import format_trace_tree

        traces = recorder["traces"]
        state = "enabled" if recorder["enabled"] else "disabled"
        print(
            f"flight recorder: {len(traces)} trace(s) retained "
            f"(tracing {state}, threshold "
            f"{recorder['threshold_s'] * 1000:g}ms, "
            f"keep {recorder['keep']})"
        )
        for trace in traces:
            print()
            print(format_trace_tree(trace))
        return 0

    if args.command == "solve":
        from ..algorithms.lower_bounds import averaged_work_bound
        from ..api import UnknownSolverError, get_registry
        from ..core.bipartite import BipartiteGraph
        from ..io import load_instance

        inst = load_instance(args.path)
        if isinstance(inst, BipartiteGraph):
            try:
                spec = get_registry().resolve(
                    args.method,
                    domain="bipartite",
                    context="bipartite method",
                )
            except UnknownSolverError as exc:
                parser.error(str(exc))
            m = spec.run(inst)
            print(f"{spec.name}: makespan {m.makespan:g}")
        else:
            from ..engine import solve_hypergraph

            try:
                m = solve_hypergraph(
                    inst, method=args.method, refine=args.refine
                )
            except ValueError as exc:
                # UnknownSolverError, bad '+suffix' parses, and
                # SINGLEPROC-on-MULTIPROC capability guards all derive
                # from ValueError: report them as usage errors, not
                # tracebacks
                parser.error(str(exc))
            lb = averaged_work_bound(inst)
            print(
                f"{args.method}{' + local-search' if args.refine else ''}: "
                f"makespan {m.makespan:g} "
                f"(LB {lb:g}, quality {m.makespan / lb:.3f})"
            )
        return 0

    if args.command == "sweep":
        from .instances import SMALL_SPECS
        from .sweep import ranking_sweep

        base = [s.with_weights(args.weights) for s in SMALL_SPECS]
        sweep = ranking_sweep(
            base,
            dv_values=tuple(args.grid),
            dh_values=tuple(args.grid),
            n_seeds=args.seeds,
            max_workers=args.workers,
        )
        print(sweep.describe())
        return 0

    if args.command == "stats":
        from ..core.bipartite import BipartiteGraph
        from ..core.stats import bipartite_stats, instance_stats, load_stats
        from ..io import load_instance
        from ..viz import degree_histogram, load_bars

        inst = load_instance(args.path)
        if isinstance(inst, BipartiteGraph):
            print(bipartite_stats(inst).describe())
        else:
            print(instance_stats(inst).describe())
        print()
        print(degree_histogram(inst))
        if args.solve_with:
            from ..api import UnknownSolverError, get_registry

            domain = (
                "bipartite"
                if isinstance(inst, BipartiteGraph)
                else "hypergraph"
            )
            try:
                spec = get_registry().resolve(
                    args.solve_with, domain=domain, context="method"
                )
            except UnknownSolverError as exc:
                parser.error(str(exc))
            m = spec.run(inst)
            print()
            print(load_stats(m).describe())
            print()
            print(load_bars(m, max_procs=16))
        return 0

    if args.command == "table1":
        res = run_instances(
            _specs(args, "unit"), n_seeds=args.seeds, verbose=args.verbose,
            algorithms=("SGH",),
        )
        print(render_table1(res))
        return 0

    if args.command in ("table2", "table3", "random-weights"):
        weights = {"table2": "unit", "table3": "related",
                   "random-weights": "random"}[args.command]
        res = run_instances(
            _specs(args, weights), n_seeds=args.seeds, verbose=args.verbose
        )
        paper = {"table2": PAPER_TABLE2, "table3": PAPER_TABLE3}.get(
            args.command
        )
        if (args.dv, args.dh) != (5, 10):
            paper = None  # the paper's printed values are for dv=5, dh=10
        title = (
            f"{args.command} ({weights} weights, {args.seeds} seeds, "
            f"dv={args.dv}, dh={args.dh})"
        )
        if paper:
            print(render_comparison(res, paper, title))
        else:
            print(render_quality_table(res, title))
        avg_t = res.average_time()
        print(
            "Average time (s): "
            + "  ".join(f"{a}={avg_t[a]:.3f}" for a in res.algorithms)
        )
        return 0

    if args.command == "singleproc":
        sizes = {
            "small": ((5, 1),),
            "medium": ((5, 1), (20, 1), (20, 4)),
            "full": ((5, 1), (20, 1), (20, 4), (80, 1), (80, 4), (80, 16)),
        }[args.scale]
        res = run_singleproc(
            singleproc_specs(d=args.d, sizes=sizes),
            n_seeds=args.seeds,
            verbose=args.verbose,
        )
        print(f"singleproc (d={args.d}, {args.seeds} seeds)")
        header = f"{'Instance':>16}  {'opt':>6}  " + "  ".join(
            f"{a:>16}" for a in res.algorithms
        )
        print(header)
        for r in res.rows:
            print(
                f"{r.name:>16}  {r.optimum:>6g}  "
                + "  ".join(f"{r.quality[a]:>16.3f}" for a in res.algorithms)
            )
        avg_q = res.average_quality()
        avg_t = res.average_time()
        print(
            "Average quality: "
            + "  ".join(f"{a}={avg_q[a]:.3f}" for a in res.algorithms)
        )
        print(
            "Average time (s): "
            + "  ".join(f"{a}={avg_t[a]:.4f}" for a in avg_t)
        )
        return 0

    parser.error(f"unhandled command {args.command!r}")  # pragma: no cover
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
