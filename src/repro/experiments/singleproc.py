"""SINGLEPROC-UNIT experiments (paper Section V-B).

The paper summarises these in prose (full tables live in the technical
report): on HiLo and FewgManyg bipartite instances, compare the four
greedy heuristics against the exact algorithm — quality as the ratio of
the greedy makespan to the optimum, plus running times.  This module
reproduces that protocol with the same parameter grid
(``d ∈ {2, 5, 10}``, ``g ∈ {32, 128}``, the Table I size grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.exact_unit import exact_singleproc_unit
from ..api import get_registry
from ..core.bipartite import BipartiteGraph
from ..generators.fewgmanyg import fewgmanyg_bipartite
from ..generators.hilo import hilo_bipartite
from .._util import Timer

__all__ = [
    "SingleProcSpec",
    "SingleProcRow",
    "SingleProcResult",
    "singleproc_specs",
    "run_singleproc",
    "GREEDY_NAMES",
]

GREEDY_NAMES = ("basic-greedy", "sorted-greedy", "double-sorted", "expected-greedy")


@dataclass(frozen=True)
class SingleProcSpec:
    """One bipartite instance family (name encodes the paper convention)."""

    name: str
    family: str  # 'hilo' or 'fewgmanyg'
    g: int
    n: int
    p: int
    d: int

    def generate(self, seed: int | None) -> BipartiteGraph:
        if self.family == "hilo":
            return hilo_bipartite(self.n, self.p, self.g, self.d)
        return fewgmanyg_bipartite(self.n, self.p, self.g, self.d, seed)


def singleproc_specs(
    *,
    d: int = 10,
    sizes=((5, 1), (20, 1), (20, 4), (80, 1), (80, 4), (80, 16)),
) -> tuple[SingleProcSpec, ...]:
    """The paper's SINGLEPROC grid for one degree parameter ``d``."""
    specs = []
    for prefix, family, g in (
        ("FG", "fewgmanyg", 32),
        ("MG", "fewgmanyg", 128),
        ("HLF", "hilo", 32),
        ("HLM", "hilo", 128),
    ):
        for x, y in sizes:
            specs.append(
                SingleProcSpec(
                    name=f"{prefix}-{x}-{y}-SP-d{d}",
                    family=family,
                    g=g,
                    n=256 * x,
                    p=256 * y,
                    d=d,
                )
            )
    return tuple(specs)


@dataclass(frozen=True)
class SingleProcRow:
    """Median-of-seeds measurements for one bipartite family."""

    name: str
    n_tasks: int
    n_procs: int
    n_edges: int
    optimum: float
    quality: dict[str, float]  # greedy -> median makespan / optimum
    time_s: dict[str, float]
    exact_time_s: float


@dataclass
class SingleProcResult:
    algorithms: tuple[str, ...]
    rows: list[SingleProcRow] = field(default_factory=list)

    def average_quality(self) -> dict[str, float]:
        return {
            a: float(np.mean([r.quality[a] for r in self.rows]))
            for a in self.algorithms
        }

    def average_time(self) -> dict[str, float]:
        out = {
            a: float(np.mean([r.time_s[a] for r in self.rows]))
            for a in self.algorithms
        }
        out["exact"] = float(np.mean([r.exact_time_s for r in self.rows]))
        return out


def run_singleproc(
    specs,
    *,
    algorithms=GREEDY_NAMES,
    n_seeds: int = 10,
    seed0: int = 0,
    engine: str = "kuhn",
    verbose: bool = False,
) -> SingleProcResult:
    """Greedy-vs-exact protocol over bipartite families.

    HiLo is deterministic, so its families collapse to a single seed
    (statistics are still reported uniformly).
    """
    result = SingleProcResult(algorithms=tuple(algorithms))
    for spec in specs:
        seeds = range(seed0, seed0 + (1 if spec.family == "hilo" else n_seeds))
        edges: list[int] = []
        optima: list[float] = []
        quality: dict[str, list[float]] = {a: [] for a in algorithms}
        timers = {a: Timer() for a in algorithms}
        exact_timer = Timer()
        for k in seeds:
            graph = spec.generate(k)
            edges.append(graph.n_edges)
            with exact_timer:
                opt = exact_singleproc_unit(graph, engine=engine)
            optima.append(float(opt.optimal_makespan))
            for a in algorithms:
                solver = get_registry().resolve(
                    a, domain="bipartite", context="bipartite algorithm"
                )
                with timers[a]:
                    m = solver.run(graph)
                quality[a].append(m.makespan / opt.optimal_makespan)
            if verbose:
                qs = ", ".join(
                    f"{a}={quality[a][-1]:.3f}" for a in algorithms
                )
                print(f"  {spec.name} seed {k}: opt={opt.optimal_makespan} {qs}")
        ns = len(list(seeds))
        result.rows.append(
            SingleProcRow(
                name=spec.name,
                n_tasks=spec.n,
                n_procs=spec.p,
                n_edges=int(np.median(edges)),
                optimum=float(np.median(optima)),
                quality={a: float(np.median(quality[a])) for a in algorithms},
                time_s={a: timers[a].elapsed / ns for a in algorithms},
                exact_time_s=exact_timer.elapsed / ns,
            )
        )
    return result
