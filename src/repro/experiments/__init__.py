"""Experiment harness: named instances, runners, table renderers, CLI."""

from .instances import (
    MEDIUM_SPECS,
    PAPER_TABLE1,
    PAPER_TABLE2,
    PAPER_TABLE3,
    SMALL_SPECS,
    SPECS_BY_NAME,
    TABLE1_SPECS,
    InstanceSpec,
    spec_by_name,
)
from .runner import (
    DEFAULT_ALGOS,
    ExperimentResult,
    InstanceResult,
    run_instances,
)
from .singleproc import (
    GREEDY_NAMES,
    SingleProcResult,
    SingleProcRow,
    SingleProcSpec,
    run_singleproc,
    singleproc_specs,
)
from .report import (
    markdown_quality_table,
    markdown_singleproc,
    markdown_table1,
)
from .sweep import RankingSweep, ranking_sweep
from .tables import render_comparison, render_quality_table, render_table1

__all__ = [
    "InstanceSpec",
    "TABLE1_SPECS",
    "SMALL_SPECS",
    "MEDIUM_SPECS",
    "SPECS_BY_NAME",
    "spec_by_name",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "run_instances",
    "ExperimentResult",
    "InstanceResult",
    "DEFAULT_ALGOS",
    "run_singleproc",
    "singleproc_specs",
    "SingleProcSpec",
    "SingleProcRow",
    "SingleProcResult",
    "GREEDY_NAMES",
    "render_table1",
    "render_quality_table",
    "render_comparison",
    "markdown_table1",
    "markdown_quality_table",
    "markdown_singleproc",
    "ranking_sweep",
    "RankingSweep",
]
