"""The paper's named experiment instances (Table I) and reference values.

Instance names follow the paper: ``{FG|MG|HLF|HLM}-{x}-{y}-MP`` where the
instance has ``n = 256 x`` tasks and ``p = 256 y`` processors, ``FG``/
``MG`` are FewgManyg with ``g = 32`` / ``g = 128`` and ``HLF``/``HLM`` are
HiLo with ``g = 32`` / ``g = 128``.  All use ``dv = 5``, ``dh = 10`` (the
configuration the paper details; other combinations are exposed through
the spec's fields).  A ``-W`` suffix denotes the related-weight variant.

``PAPER_TABLE1/2/3`` record the values printed in the paper, so the
benchmark harness can emit paper-vs-measured comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..generators.multiproc import generate_multiproc

__all__ = [
    "InstanceSpec",
    "TABLE1_SPECS",
    "SPECS_BY_NAME",
    "SMALL_SPECS",
    "MEDIUM_SPECS",
    "PAPER_TABLE1",
    "PAPER_TABLE2",
    "PAPER_TABLE3",
    "spec_by_name",
]

_FAMILY_OF_PREFIX = {
    "FG": ("fewgmanyg", 32),
    "MG": ("fewgmanyg", 128),
    "HLF": ("hilo", 32),
    "HLM": ("hilo", 128),
}


@dataclass(frozen=True)
class InstanceSpec:
    """Recipe for one named random-instance family."""

    name: str
    family: str
    g: int
    n: int
    p: int
    dv: int = 5
    dh: int = 10
    weights: str = "unit"

    def generate(self, seed: int | np.random.Generator | None) -> TaskHypergraph:
        """Sample one instance of this family."""
        return generate_multiproc(
            self.n,
            self.p,
            family=self.family,
            g=self.g,
            dv=self.dv,
            dh=self.dh,
            weights=self.weights,
            seed=seed,
        )

    def with_weights(self, scheme: str) -> "InstanceSpec":
        """Same family under another weight scheme ('-W' names related)."""
        suffix = {"unit": "", "related": "-W", "random": "-R"}[scheme]
        base = self.name.removesuffix("-W").removesuffix("-R")
        return replace(self, weights=scheme, name=base + suffix)


def _build_specs() -> list[InstanceSpec]:
    sizes = [(5, 1), (20, 1), (20, 4), (80, 1), (80, 4), (80, 16)]
    specs = []
    for prefix in ("FG", "MG"):
        family, g = _FAMILY_OF_PREFIX[prefix]
        for x, y in sizes:
            specs.append(
                InstanceSpec(
                    name=f"{prefix}-{x}-{y}-MP",
                    family=family,
                    g=g,
                    n=256 * x,
                    p=256 * y,
                )
            )
    for prefix in ("HLF", "HLM"):
        family, g = _FAMILY_OF_PREFIX[prefix]
        for x, y in sizes:
            specs.append(
                InstanceSpec(
                    name=f"{prefix}-{x}-{y}-MP",
                    family=family,
                    g=g,
                    n=256 * x,
                    p=256 * y,
                )
            )
    return specs


#: All 24 Table I instance families, paper order.
TABLE1_SPECS: tuple[InstanceSpec, ...] = tuple(_build_specs())

SPECS_BY_NAME: dict[str, InstanceSpec] = {s.name: s for s in TABLE1_SPECS}

#: The x=5 rows — small enough for quick benchmark defaults.
SMALL_SPECS: tuple[InstanceSpec, ...] = tuple(
    s for s in TABLE1_SPECS if s.n == 1280
)

#: The x=5 and x=20 rows.
MEDIUM_SPECS: tuple[InstanceSpec, ...] = tuple(
    s for s in TABLE1_SPECS if s.n <= 5120
)


def spec_by_name(name: str) -> InstanceSpec:
    """Look up a spec; ``-W``/``-R`` suffixes select the weight scheme."""
    base = name.removesuffix("-W").removesuffix("-R")
    spec = SPECS_BY_NAME.get(base)
    if spec is None:
        raise KeyError(
            f"unknown instance {name!r}; known: {sorted(SPECS_BY_NAME)}"
        )
    if name.endswith("-W"):
        return spec.with_weights("related")
    if name.endswith("-R"):
        return spec.with_weights("random")
    return spec


#: Table I as printed: name -> (|V1|, |V2|, |N|, sum |h ∩ V2|).
PAPER_TABLE1: dict[str, tuple[int, int, int, int]] = {
    "FG-5-1-MP": (1280, 256, 6368, 61643),
    "MG-5-1-MP": (1280, 256, 6400, 27705),
    "FG-20-1-MP": (5120, 256, 25504, 248683),
    "MG-20-1-MP": (5120, 256, 25600, 110817),
    "FG-20-4-MP": (5120, 1024, 25632, 256459),
    "MG-20-4-MP": (5120, 1024, 25728, 249483),
    "FG-80-1-MP": (20480, 256, 102336, 993764),
    "MG-80-1-MP": (20480, 256, 102016, 441810),
    "FG-80-4-MP": (20480, 1024, 102112, 1021574),
    "MG-80-4-MP": (20480, 1024, 101888, 994256),
    "FG-80-16-MP": (20480, 4096, 102176, 1022141),
    "MG-80-16-MP": (20480, 4096, 102144, 1027001),
    "HLF-5-1-MP": (1280, 256, 6368, 99036),
    "HLM-5-1-MP": (1280, 256, 6400, 25245),
    "HLF-20-1-MP": (5120, 256, 25472, 400428),
    "HLM-20-1-MP": (5120, 256, 25600, 101745),
    "HLF-20-4-MP": (5120, 1024, 26016, 556479),
    "HLM-20-4-MP": (5120, 1024, 25600, 400860),
    "HLF-80-1-MP": (20480, 256, 102752, 1612548),
    "HLM-80-1-MP": (20480, 256, 102528, 407235),
    "HLF-80-4-MP": (20480, 1024, 102848, 2219679),
    "HLM-80-4-MP": (20480, 1024, 102656, 1626900),
    "HLF-80-16-MP": (20480, 4096, 102592, 2218293),
    "HLM-80-16-MP": (20480, 4096, 101888, 2235585),
}

#: Table II (unweighted): name -> (LB, SGH, VGH, EGH, EVG quality ratios).
PAPER_TABLE2: dict[str, tuple[float, float, float, float, float]] = {
    "FG-5-1-MP": (34, 1.43, 1.33, 1.39, 1.37),
    "MG-5-1-MP": (17, 1.43, 1.32, 1.43, 1.38),
    "FG-20-1-MP": (135, 1.34, 1.24, 1.32, 1.30),
    "MG-20-1-MP": (70, 1.40, 1.27, 1.38, 1.38),
    "FG-20-4-MP": (34, 1.41, 1.30, 1.39, 1.37),
    "MG-20-4-MP": (34, 1.45, 1.34, 1.39, 1.39),
    "FG-80-1-MP": (539, 1.30, 1.22, 1.27, 1.27),
    "MG-80-1-MP": (280, 1.39, 1.26, 1.37, 1.36),
    "FG-80-4-MP": (136, 1.35, 1.24, 1.32, 1.32),
    "MG-80-4-MP": (135, 1.34, 1.25, 1.31, 1.31),
    "FG-80-16-MP": (34, 1.42, 1.30, 1.39, 1.39),
    "MG-80-16-MP": (34, 1.42, 1.30, 1.39, 1.39),
    "HLF-5-1-MP": (68, 1.18, 1.17, 1.17, 1.18),
    "HLM-5-1-MP": (19, 1.12, 1.12, 1.12, 1.12),
    "HLF-20-1-MP": (291, 1.10, 1.10, 1.10, 1.10),
    "HLM-20-1-MP": (78, 1.04, 1.04, 1.04, 1.04),
    "HLF-20-4-MP": (99, 2.84, 2.84, 2.84, 2.84),
    "HLM-20-4-MP": (72, 1.12, 1.12, 1.12, 1.12),
    "HLF-80-1-MP": (1182, 1.08, 1.08, 1.08, 1.08),
    "HLM-80-1-MP": (313, 1.03, 1.03, 1.03, 1.03),
    "HLF-80-4-MP": (405, 3.06, 3.06, 3.06, 3.06),
    "HLM-80-4-MP": (307, 1.05, 1.05, 1.05, 1.05),
    "HLF-80-16-MP": (101, 10.54, 10.54, 10.54, 10.54),
    "HLM-80-16-MP": (105, 2.70, 2.69, 2.69, 2.69),
}

#: Table III (related weights): name -> (LB, SGH, VGH, EGH, EVG).
PAPER_TABLE3: dict[str, tuple[float, float, float, float, float]] = {
    "FG-5-1-MP-W": (87, 1.34, 1.30, 1.27, 1.25),
    "MG-5-1-MP-W": (26, 1.63, 1.59, 1.51, 1.32),
    "FG-20-1-MP-W": (335, 1.25, 1.24, 1.19, 1.19),
    "MG-20-1-MP-W": (103, 1.55, 1.55, 1.43, 1.28),
    "FG-20-4-MP-W": (123, 1.35, 1.35, 1.26, 1.17),
    "MG-20-4-MP-W": (84, 1.41, 1.36, 1.31, 1.26),
    "FG-80-1-MP-W": (1406, 1.19, 1.18, 1.15, 1.15),
    "MG-80-1-MP-W": (413, 1.54, 1.54, 1.43, 1.27),
    "FG-80-4-MP-W": (549, 1.24, 1.24, 1.12, 1.11),
    "MG-80-4-MP-W": (381, 1.22, 1.21, 1.17, 1.15),
    "FG-80-16-MP-W": (141, 1.36, 1.35, 1.24, 1.17),
    "MG-80-16-MP-W": (141, 1.35, 1.37, 1.29, 1.17),
    "HLF-5-1-MP-W": (80, 1.25, 1.24, 1.12, 1.02),
    "HLM-5-1-MP-W": (20, 1.15, 1.15, 1.05, 1.05),
    "HLF-20-1-MP-W": (320, 1.17, 1.17, 1.05, 1.02),
    "HLM-20-1-MP-W": (80, 1.06, 1.06, 1.03, 1.01),
    "HLF-20-4-MP-W": (110, 2.93, 2.93, 2.61, 2.60),
    "HLM-20-4-MP-W": (80, 1.18, 1.18, 1.16, 1.02),
    "HLF-80-1-MP-W": (1280, 1.15, 1.15, 1.03, 1.02),
    "HLM-80-1-MP-W": (320, 1.04, 1.04, 1.01, 1.01),
    "HLF-80-4-MP-W": (440, 3.22, 3.23, 2.87, 2.86),
    "HLM-80-4-MP-W": (320, 1.07, 1.06, 1.03, 1.01),
    "HLF-80-16-MP-W": (110, 11.07, 11.06, 9.89, 9.85),
    "HLM-80-16-MP-W": (110, 2.66, 2.66, 2.57, 2.57),
}
