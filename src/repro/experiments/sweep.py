"""Parameter sweeps: the paper's ranking-robustness claim, executable.

Section V-A2 states: *"In all combinations of dv, dh, the ranking of the
heuristics according to the mean average quality were the same"* (and
Section V-B makes the matching claim for the bipartite ``d`` grid).
:func:`ranking_sweep` runs the harness over a ``(dv, dh)`` grid and
returns the per-combination algorithm ranking plus a consistency verdict,
so the claim can be tested at any scale.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .instances import InstanceSpec
from .runner import DEFAULT_ALGOS, run_instances

__all__ = ["RankingSweep", "ranking_sweep"]


@dataclass(frozen=True)
class RankingSweep:
    """Outcome of a (dv, dh) ranking sweep.

    ``rankings[(dv, dh)]`` lists the algorithms best-first by mean
    average quality; ``consistent`` is True when every combination
    produced the same order (ties broken by the fixed algorithm order,
    mirroring how a table reader would break them).
    """

    rankings: dict[tuple[int, int], tuple[str, ...]]
    average_quality: dict[tuple[int, int], dict[str, float]]

    @property
    def consistent(self) -> bool:
        orders = set(self.rankings.values())
        return len(orders) <= 1

    def describe(self) -> str:
        lines = []
        for (dv, dh), order in sorted(self.rankings.items()):
            avg = self.average_quality[(dv, dh)]
            vals = "  ".join(f"{a}={avg[a]:.3f}" for a in order)
            lines.append(f"dv={dv} dh={dh}: {vals}")
        lines.append(
            "ranking consistent across the grid: "
            + ("yes" if self.consistent else "NO")
        )
        return "\n".join(lines)


def ranking_sweep(
    base_specs: list[InstanceSpec],
    *,
    dv_values=(2, 5, 10),
    dh_values=(2, 5, 10),
    algorithms=DEFAULT_ALGOS,
    n_seeds: int = 3,
    seed0: int = 0,
    rank_tolerance: float = 0.005,
    engine=None,
    max_workers: int | None = None,
) -> RankingSweep:
    """Run every ``(dv, dh)`` combination and rank the algorithms.

    ``rank_tolerance`` merges algorithms whose mean average qualities
    differ by less than this into a tie (ranked by the input order), so
    instance noise does not manufacture spurious ranking flips — the
    paper's claim is about the *meaningful* order.

    ``engine``/``max_workers`` run each cell through the batch engine
    (see :func:`repro.experiments.runner.run_instances`); the engine's
    result cache means re-running a sweep — or overlapping grids — never
    recomputes a solved instance.
    """
    if engine is None and max_workers is not None:
        from ..engine import BatchSolver, ResultCache

        # private cache (shared across the grid's cells, not the
        # process) — see run_instances for the timing rationale
        engine = BatchSolver(max_workers=max_workers, cache=ResultCache())
    rankings: dict[tuple[int, int], tuple[str, ...]] = {}
    averages: dict[tuple[int, int], dict[str, float]] = {}
    for dv in dv_values:
        for dh in dh_values:
            specs = [replace(s, dv=dv, dh=dh) for s in base_specs]
            res = run_instances(
                specs,
                algorithms=algorithms,
                n_seeds=n_seeds,
                seed0=seed0,
                engine=engine,
            )
            avg = res.average_quality()
            averages[(dv, dh)] = avg
            # stable rank with tolerance-based tie merging
            order = sorted(
                algorithms,
                key=lambda a: (
                    round(avg[a] / rank_tolerance) * rank_tolerance,
                    algorithms.index(a),
                ),
            )
            rankings[(dv, dh)] = tuple(order)
    return RankingSweep(rankings=rankings, average_quality=averages)
