"""Markdown report generation for experiment results.

Renders :class:`~repro.experiments.runner.ExperimentResult` objects as
GitHub-flavoured markdown tables with paper-vs-measured columns — the
exact format used by EXPERIMENTS.md — so full reproduction reports can be
regenerated with one command::

    semimatch table2 --scale full --seeds 10 > out.txt   # ASCII
    python -m repro.experiments.report                   # markdown
"""

from __future__ import annotations

from typing import Mapping, Sequence

from .runner import ExperimentResult
from .singleproc import SingleProcResult

__all__ = ["markdown_quality_table", "markdown_table1", "markdown_singleproc"]


def _md_table(header: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    out = ["| " + " | ".join(header) + " |"]
    out.append("|" + "|".join(["---"] * len(header)) + "|")
    for row in rows:
        out.append("| " + " | ".join(row) + " |")
    return "\n".join(out)


def markdown_table1(
    result: ExperimentResult,
    paper: Mapping[str, tuple[int, int, int, int]] | None = None,
) -> str:
    """Instance statistics as markdown (Table I format)."""
    header = ["Instance", "|V1|", "|V2|", "|N| (ours)", "pins (ours)"]
    if paper:
        header += ["|N| (paper)", "pins (paper)"]
    rows = []
    for r in result.rows:
        row = [
            r.name,
            str(r.n_tasks),
            str(r.n_procs),
            str(r.n_hedges),
            str(r.total_pins),
        ]
        if paper:
            key = r.name.removesuffix("-W").removesuffix("-R")
            ref = paper.get(key)
            row += [str(ref[2]), str(ref[3])] if ref else ["-", "-"]
        rows.append(row)
    return _md_table(header, rows)


def markdown_quality_table(
    result: ExperimentResult,
    paper: Mapping[str, tuple[float, ...]] | None = None,
) -> str:
    """Quality ratios as markdown, interleaving measured and paper values."""
    algos = list(result.algorithms)
    header = ["Instance", "LB"]
    if paper:
        header.append("LB (paper)")
    for a in algos:
        header.append(a)
        if paper:
            header.append(f"{a} (paper)")
    rows = []
    for r in result.rows:
        ref = paper.get(r.name) if paper else None
        row = [r.name, f"{r.lower_bound:g}"]
        if paper:
            row.append(f"{ref[0]:g}" if ref else "-")
        for j, a in enumerate(algos):
            row.append(f"{r.quality[a]:.2f}")
            if paper:
                row.append(f"{ref[j + 1]:.2f}" if ref else "-")
        rows.append(row)
    avg = result.average_quality()
    footer = ["**Average**", ""]
    if paper:
        footer.append("")
    for a in algos:
        footer.append(f"**{avg[a]:.2f}**")
        if paper:
            refs = [
                paper[r.name][algos.index(a) + 1]
                for r in result.rows
                if r.name in paper
            ]
            footer.append(
                f"**{sum(refs) / len(refs):.2f}**" if refs else "-"
            )
    rows.append(footer)
    times = result.average_time()
    table = _md_table(header, rows)
    time_line = "Average time (s): " + ", ".join(
        f"{a} {times[a]:.3f}" for a in algos
    )
    return f"{table}\n\n{time_line}"


def markdown_singleproc(result: SingleProcResult) -> str:
    """SINGLEPROC greedy-vs-exact results as markdown."""
    algos = list(result.algorithms)
    header = ["Instance", "optimum", *algos]
    rows = [
        [r.name, f"{r.optimum:g}"]
        + [f"{r.quality[a]:.3f}" for a in algos]
        for r in result.rows
    ]
    avg = result.average_quality()
    rows.append(
        ["**Average**", ""] + [f"**{avg[a]:.3f}**" for a in algos]
    )
    times = result.average_time()
    time_line = "Average time (s): " + ", ".join(
        f"{a} {times[a]:.4f}" for a in times
    )
    return _md_table(header, rows) + "\n\n" + time_line
