"""Experiment runner: median-of-N protocol over the named instances.

The paper's protocol (Section V-A): for every parameter set, create 10
random instances and report the median of the measurements.  The runner
reproduces this for any list of :class:`InstanceSpec` and any set of
registered algorithms, recording per-instance quality ratios
(makespan / LB, eq. (1)), instance statistics and wall-clock times.

Execution backends
------------------
By default every (instance, algorithm) pair is solved inline, exactly as
the seed did.  Passing ``engine=`` (a :class:`repro.engine.BatchSolver`)
or ``max_workers=`` routes each algorithm's seed-batch through the batch
engine instead — pooled across instances, cached across repeated sweeps.
Measured makespans are identical either way (the engine runs the same
dispatch); only the wall-clock accounting changes from per-call to
per-batch (still reported as mean seconds per instance).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.lower_bounds import averaged_work_bound
from ..api import get_registry
from .._util import Timer
from .instances import InstanceSpec

__all__ = ["InstanceResult", "ExperimentResult", "run_instances", "DEFAULT_ALGOS"]

DEFAULT_ALGOS = ("SGH", "VGH", "EGH", "EVG")


@dataclass(frozen=True)
class InstanceResult:
    """Median-of-seeds measurements for one named instance family."""

    name: str
    n_tasks: int
    n_procs: int
    n_hedges: int
    total_pins: int
    lower_bound: float
    quality: dict[str, float]  # algo -> median makespan / LB
    makespan: dict[str, float]  # algo -> median makespan
    time_s: dict[str, float]  # algo -> mean wall-clock seconds


@dataclass
class ExperimentResult:
    """All rows of one experiment plus aggregate statistics."""

    algorithms: tuple[str, ...]
    rows: list[InstanceResult] = field(default_factory=list)

    def average_quality(self) -> dict[str, float]:
        """Mean of the per-row median quality ratios (paper's last row)."""
        return {
            a: float(np.mean([r.quality[a] for r in self.rows]))
            for a in self.algorithms
        }

    def average_time(self) -> dict[str, float]:
        """Mean of the per-row times (paper's 'Average time' row)."""
        return {
            a: float(np.mean([r.time_s[a] for r in self.rows]))
            for a in self.algorithms
        }


def run_instances(
    specs,
    *,
    algorithms=DEFAULT_ALGOS,
    n_seeds: int = 10,
    seed0: int = 0,
    verbose: bool = False,
    engine=None,
    max_workers: int | None = None,
) -> ExperimentResult:
    """Run ``algorithms`` over ``n_seeds`` samples of every spec.

    ``seed0 + k`` seeds the ``k``-th sample of every family, so two runs
    with the same arguments are identical and different families still
    see different graphs.

    ``engine`` (a :class:`repro.engine.BatchSolver`) or ``max_workers``
    (shorthand for a fresh process-pool engine) batch each algorithm's
    instances through :meth:`BatchSolver.solve_many`.
    """
    if engine is None and max_workers is not None:
        from ..engine import BatchSolver, ResultCache

        # a private cache: sharing the process-wide one would let a
        # repeated run be answered from cache and wreck the reported
        # time_s (the paper's 'Average time' row)
        engine = BatchSolver(max_workers=max_workers, cache=ResultCache())
    result = ExperimentResult(algorithms=tuple(algorithms))
    for spec in specs:
        rows = _run_one(spec, algorithms, n_seeds, seed0, verbose, engine)
        result.rows.append(rows)
    return result


def _run_one(
    spec: InstanceSpec,
    algorithms,
    n_seeds: int,
    seed0: int,
    verbose: bool,
    engine,
) -> InstanceResult:
    hgs = [spec.generate(seed0 + k) for k in range(n_seeds)]
    lbs = [averaged_work_bound(hg) for hg in hgs]
    quality: dict[str, list[float]] = {a: [] for a in algorithms}
    makespans: dict[str, list[float]] = {a: [] for a in algorithms}
    timers: dict[str, Timer] = {a: Timer() for a in algorithms}

    for a in algorithms:
        if engine is not None:
            with timers[a]:
                matchings = engine.solve_many(hgs, method=a)
        else:
            solver = get_registry().resolve(
                a, domain="hypergraph", context="hypergraph algorithm"
            )
            matchings = []
            for hg in hgs:
                with timers[a]:
                    matchings.append(solver.run(hg))
        for m, lb in zip(matchings, lbs):
            makespans[a].append(m.makespan)
            quality[a].append(m.makespan / lb if lb > 0 else np.inf)

    if verbose:
        for k, lb in enumerate(lbs):
            qs = ", ".join(f"{a}={quality[a][k]:.3f}" for a in algorithms)
            print(f"  {spec.name} seed {seed0 + k}: LB={lb:g} {qs}")

    return InstanceResult(
        name=spec.name,
        n_tasks=spec.n,
        n_procs=spec.p,
        n_hedges=int(np.median([hg.n_hedges for hg in hgs])),
        total_pins=int(np.median([hg.total_pins for hg in hgs])),
        lower_bound=float(np.median(lbs)),
        quality={a: float(np.median(quality[a])) for a in algorithms},
        makespan={a: float(np.median(makespans[a])) for a in algorithms},
        time_s={a: timers[a].elapsed / n_seeds for a in algorithms},
    )
