"""Experiment runner: median-of-N protocol over the named instances.

The paper's protocol (Section V-A): for every parameter set, create 10
random instances and report the median of the measurements.  The runner
reproduces this for any list of :class:`InstanceSpec` and any set of
registered algorithms, recording per-instance quality ratios
(makespan / LB, eq. (1)), instance statistics and wall-clock times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..algorithms.lower_bounds import averaged_work_bound
from ..algorithms.registry import get_hypergraph_algorithm
from .._util import Timer
from .instances import InstanceSpec

__all__ = ["InstanceResult", "ExperimentResult", "run_instances", "DEFAULT_ALGOS"]

DEFAULT_ALGOS = ("SGH", "VGH", "EGH", "EVG")


@dataclass(frozen=True)
class InstanceResult:
    """Median-of-seeds measurements for one named instance family."""

    name: str
    n_tasks: int
    n_procs: int
    n_hedges: int
    total_pins: int
    lower_bound: float
    quality: dict[str, float]  # algo -> median makespan / LB
    makespan: dict[str, float]  # algo -> median makespan
    time_s: dict[str, float]  # algo -> mean wall-clock seconds


@dataclass
class ExperimentResult:
    """All rows of one experiment plus aggregate statistics."""

    algorithms: tuple[str, ...]
    rows: list[InstanceResult] = field(default_factory=list)

    def average_quality(self) -> dict[str, float]:
        """Mean of the per-row median quality ratios (paper's last row)."""
        return {
            a: float(np.mean([r.quality[a] for r in self.rows]))
            for a in self.algorithms
        }

    def average_time(self) -> dict[str, float]:
        """Mean of the per-row times (paper's 'Average time' row)."""
        return {
            a: float(np.mean([r.time_s[a] for r in self.rows]))
            for a in self.algorithms
        }


def run_instances(
    specs,
    *,
    algorithms=DEFAULT_ALGOS,
    n_seeds: int = 10,
    seed0: int = 0,
    verbose: bool = False,
) -> ExperimentResult:
    """Run ``algorithms`` over ``n_seeds`` samples of every spec.

    ``seed0 + k`` seeds the ``k``-th sample of every family, so two runs
    with the same arguments are identical and different families still
    see different graphs.
    """
    result = ExperimentResult(algorithms=tuple(algorithms))
    for spec in specs:
        rows = _run_one(spec, algorithms, n_seeds, seed0, verbose)
        result.rows.append(rows)
    return result


def _run_one(
    spec: InstanceSpec,
    algorithms,
    n_seeds: int,
    seed0: int,
    verbose: bool,
) -> InstanceResult:
    lbs: list[float] = []
    stats = {"n_hedges": [], "pins": []}
    quality: dict[str, list[float]] = {a: [] for a in algorithms}
    makespans: dict[str, list[float]] = {a: [] for a in algorithms}
    timers: dict[str, Timer] = {a: Timer() for a in algorithms}

    for k in range(n_seeds):
        hg = spec.generate(seed0 + k)
        stats["n_hedges"].append(hg.n_hedges)
        stats["pins"].append(hg.total_pins)
        lb = averaged_work_bound(hg)
        lbs.append(lb)
        for a in algorithms:
            fn = get_hypergraph_algorithm(a)
            with timers[a]:
                m = fn(hg)
            makespans[a].append(m.makespan)
            quality[a].append(m.makespan / lb if lb > 0 else np.inf)
        if verbose:
            qs = ", ".join(f"{a}={quality[a][-1]:.3f}" for a in algorithms)
            print(f"  {spec.name} seed {seed0 + k}: LB={lb:g} {qs}")

    return InstanceResult(
        name=spec.name,
        n_tasks=spec.n,
        n_procs=spec.p,
        n_hedges=int(np.median(stats["n_hedges"])),
        total_pins=int(np.median(stats["pins"])),
        lower_bound=float(np.median(lbs)),
        quality={a: float(np.median(quality[a])) for a in algorithms},
        makespan={a: float(np.median(makespans[a])) for a in algorithms},
        time_s={a: timers[a].elapsed / n_seeds for a in algorithms},
    )
