"""``semimatch top`` and ``semimatch metrics --watch``: live fleet views.

Both commands share one polling loop over a running server's
``metrics`` / ``health`` ops.  ``top`` renders an in-terminal
refreshing fleet table (request rate, latency quantiles, dedup ratio,
per-worker state/generation/inflight, the health verdict with its
reasons); ``--once --format json`` emits one machine-readable
``{"metrics": ..., "health": ...}`` document for scripts.  ``metrics
--watch N`` re-scrapes every N seconds and prints the client-side
*deltas* of the cumulative counters — the scrape contract (API.md)
guarantees nothing resets on read, so deltas are safe to compute from
any two scrapes.

Everything here takes a client object (``metrics_fn``-shaped duck
typing via :class:`~repro.service.ServiceClient`) so tests drive the
loop with ``iterations=`` instead of wall-clock patience.
"""

from __future__ import annotations

import json
import time
from typing import Any, Callable

__all__ = ["counter_deltas", "render_fleet", "run_top", "run_watch"]

#: ANSI clear-screen + home, the whole "refreshing" implementation.
CLEAR = "\x1b[2J\x1b[H"


def _scrape(client: Any) -> tuple[dict, dict]:
    """One ``(metrics, health)`` poll; ``aggregate`` is understood by
    sharded servers and ignored by plain ones."""
    return client.call("metrics", aggregate=True), client.health()


def counter_deltas(prev: dict, curr: dict) -> dict:
    """Per-key increments between two cumulative counter maps (keys
    absent from ``prev`` count from zero; nothing ever decreases under
    the scrape contract, but a restarted server reads as fresh keys —
    negative deltas clamp to the new absolute value)."""
    out: dict[str, int] = {}
    for name, value in curr.items():
        delta = int(value) - int(prev.get(name, 0))
        if delta < 0:
            delta = int(value)
        if delta:
            out[name] = delta
    return dict(sorted(out.items()))


def _rate(prev: dict | None, curr: dict, key: str, elapsed_s: float) -> float:
    if prev is None or elapsed_s <= 0:
        return 0.0
    deltas = counter_deltas(
        prev.get("counters") or {}, curr.get("counters") or {}
    )
    return deltas.get(key, 0) / elapsed_s


def render_fleet(
    snap: dict,
    health: dict,
    *,
    prev: dict | None = None,
    elapsed_s: float = 0.0,
) -> str:
    """The fleet table for one poll (plain servers degrade to the
    header lines — no ``shards`` block, no worker rows)."""
    counters = snap.get("counters") or {}
    latency = snap.get("request_latency_s") or {}
    window = latency.get("window") or {}
    requests = int(counters.get("requests", 0))
    dedup = int(counters.get("dedup_followers", 0))
    lines = [
        f"semimatch fleet — health {health.get('verdict', '?')}"
        f"  (uptime {float(snap.get('uptime_s', 0.0)):.0f}s)",
        f"req {requests}  req/s {_rate(prev, snap, 'requests', elapsed_s):.1f}"
        f"  p50 {float(window.get('p50', latency.get('p50', 0.0)) or 0.0) * 1e3:.2f}ms"
        f"  p99 {float(window.get('p99', latency.get('p99', 0.0)) or 0.0) * 1e3:.2f}ms"
        f"  dedup {dedup / requests if requests else 0.0:.1%}"
        f"  shed {int(counters.get('load_shed', 0))}"
        f"  pending {int(snap.get('pending', 0))}",
    ]
    for reason in health.get("reasons") or ():
        lines.append(
            f"  ! {reason.get('severity')}: {reason.get('check')} — "
            f"{reason.get('detail')}"
        )
    shards = snap.get("shards")
    if shards:
        lines.append("")
        lines.append(
            f"{'worker':<8}{'state':<10}{'gen':>4}{'pid':>8}"
            f"{'inflight':>9}{'sess':>6}{'requests':>10}{'solves':>8}"
        )
        for name in sorted(shards):
            info = shards[name]
            wm = info.get("metrics")
            if isinstance(wm, dict) and not wm.get("unreachable"):
                wc = wm.get("counters") or {}
                w_requests = str(wc.get("requests", 0))
                w_solves = str(wc.get("engine_solves", wc.get("batches", 0)))
            elif isinstance(wm, dict):
                w_requests, w_solves = "unreachable", "-"
            else:
                w_requests, w_solves = "-", "-"
            lines.append(
                f"{name:<8}{info.get('state', '?'):<10}"
                f"{info.get('generation', 0):>4}{info.get('pid', 0):>8}"
                f"{info.get('inflight', 0):>9}{info.get('sessions', 0):>6}"
                f"{w_requests:>10}{w_solves:>8}"
            )
        fleet = snap.get("fleet")
        if fleet:
            merged = fleet.get("request_latency_s") or {}
            lines.append(
                f"fleet: {len(fleet.get('workers') or ())} worker(s) "
                f"scraped, {len(fleet.get('workers_unreachable') or ())} "
                f"unreachable; worker-side p50 "
                f"{float(merged.get('p50') or 0.0) * 1e3:.2f}ms p99 "
                f"{float(merged.get('p99') or 0.0) * 1e3:.2f}ms over "
                f"{int(merged.get('count') or 0)} solve(s)"
            )
    return "\n".join(lines)


def run_top(
    client: Any,
    *,
    interval_s: float = 2.0,
    once: bool = False,
    fmt: str = "text",
    iterations: int | None = None,
    out: Callable[[str], None] = print,
    clear: bool = True,
) -> int:
    """The ``semimatch top`` loop (one pass with ``once=True``)."""
    prev: dict | None = None
    last_t = time.monotonic()
    n = 0
    while True:
        snap, health = _scrape(client)
        now = time.monotonic()
        if fmt == "json":
            out(
                json.dumps(
                    {"metrics": snap, "health": health}, sort_keys=True
                )
            )
        else:
            body = render_fleet(
                snap, health, prev=prev, elapsed_s=now - last_t
            )
            out((CLEAR if clear and not once else "") + body)
        prev, last_t = snap, now
        n += 1
        if once or (iterations is not None and n >= iterations):
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0


def run_watch(
    client: Any,
    *,
    interval_s: float,
    iterations: int | None = None,
    out: Callable[[str], None] = print,
) -> int:
    """The ``semimatch metrics --watch N`` loop: cumulative scrape,
    client-side counter deltas."""
    prev: dict | None = None
    n = 0
    while True:
        snap = client.metrics()
        counters = snap.get("counters") or {}
        if prev is None:
            out(
                "baseline: "
                + json.dumps(dict(sorted(counters.items())), sort_keys=True)
            )
        else:
            deltas = counter_deltas(prev, counters)
            latency = snap.get("request_latency_s") or {}
            out(
                f"+{interval_s:g}s "
                + (json.dumps(deltas, sort_keys=True) if deltas else "(idle)")
                + f"  latency_count={int(latency.get('count') or 0)}"
            )
        prev = dict(counters)
        n += 1
        if iterations is not None and n >= iterations:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:  # pragma: no cover - interactive
            return 0
