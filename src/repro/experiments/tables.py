"""Render experiment results as the paper's tables (ASCII).

Three renderers matching the paper's evaluation section:

* :func:`render_table1` — instance statistics (Table I);
* :func:`render_quality_table` — quality ratios vs LB with the average
  quality/time footer (Tables II and III);
* :func:`render_comparison` — measured-vs-paper side-by-side, used by the
  benchmark harness and EXPERIMENTS.md.
"""

from __future__ import annotations

from .instances import PAPER_TABLE1
from .runner import ExperimentResult

__all__ = ["render_table1", "render_quality_table", "render_comparison"]


def _fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def render_table1(result: ExperimentResult, paper: bool = True) -> str:
    """Instance statistics like Table I (optionally with paper columns)."""
    header = ["Instance", "|V1|", "|V2|", "|N|", "pins"]
    if paper:
        header += ["paper |N|", "paper pins"]
    rows = [header]
    for r in result.rows:
        row = [
            r.name,
            str(r.n_tasks),
            str(r.n_procs),
            str(r.n_hedges),
            str(r.total_pins),
        ]
        if paper:
            ref = PAPER_TABLE1.get(r.name.removesuffix("-W").removesuffix("-R"))
            row += (
                [str(ref[2]), str(ref[3])] if ref else ["-", "-"]
            )
        rows.append(row)
    return _ascii_table(rows)


def render_quality_table(result: ExperimentResult, title: str = "") -> str:
    """Quality ratios and the average-quality / average-time footer."""
    algos = list(result.algorithms)
    rows = [["Instance", "LB", *algos]]
    for r in result.rows:
        rows.append(
            [r.name, f"{r.lower_bound:g}"]
            + [_fmt(r.quality[a]) for a in algos]
        )
    avg_q = result.average_quality()
    avg_t = result.average_time()
    rows.append(["Average quality", ""] + [_fmt(avg_q[a]) for a in algos])
    rows.append(
        ["Average time (s)", ""] + [_fmt(avg_t[a], 3) for a in algos]
    )
    table = _ascii_table(rows, footer_rows=2)
    return f"{title}\n{table}" if title else table


def render_comparison(
    result: ExperimentResult,
    paper_table: dict[str, tuple[float, ...]],
    title: str = "",
) -> str:
    """Measured vs paper quality ratios, interleaved per algorithm."""
    algos = list(result.algorithms)
    header = ["Instance", "LB", "LB(paper)"]
    for a in algos:
        header += [a, f"{a}(paper)"]
    rows = [header]
    for r in result.rows:
        ref = paper_table.get(r.name)
        row = [
            r.name,
            f"{r.lower_bound:g}",
            f"{ref[0]:g}" if ref else "-",
        ]
        for j, a in enumerate(algos):
            row.append(_fmt(r.quality[a]))
            row.append(_fmt(ref[j + 1]) if ref else "-")
        rows.append(row)
    avg_q = result.average_quality()
    footer = ["Average quality", "", ""]
    for a in algos:
        footer.append(_fmt(avg_q[a]))
        refs = [
            paper_table[r.name][algos.index(a) + 1]
            for r in result.rows
            if r.name in paper_table
        ]
        footer.append(_fmt(sum(refs) / len(refs)) if refs else "-")
    rows.append(footer)
    table = _ascii_table(rows, footer_rows=1)
    return f"{title}\n{table}" if title else table


def _ascii_table(rows: list[list[str]], footer_rows: int = 0) -> str:
    widths = [
        max(len(row[c]) for row in rows) for c in range(len(rows[0]))
    ]

    def fmt_row(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])] + [
            row[c].rjust(widths[c]) for c in range(1, len(row))
        ]
        return "  ".join(cells)

    sep = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [fmt_row(rows[0]), sep]
    body_end = len(rows) - footer_rows
    lines += [fmt_row(r) for r in rows[1:body_end]]
    if footer_rows:
        lines.append(sep)
        lines += [fmt_row(r) for r in rows[body_end:]]
    return "\n".join(lines)
