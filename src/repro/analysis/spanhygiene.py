"""span-hygiene: tracing spans must be scoped, and kept out of kernels.

The tracing layer (:mod:`repro.obs.trace`) is built around ``with``
blocks: a span that is entered is always exited, on every path,
exception or not, and its parent/child nesting mirrors the call
structure.  The escape hatches (``.start()``/``.end()``) exist only for
the rare lifetime that genuinely cannot be expressed as a block, and
every manual pair is a leak waiting for an early return.  This rule
flags:

* ``.start()`` / ``.end()`` calls on a name bound from ``span(...)``
  or ``measured_span(...)`` — and the chained forms
  ``span(...).start()`` — use ``with span(...)`` instead;
* any span-factory call in a **kernel-domain** module (``kernels/``,
  ``dynamic/``, or a ``# repro: domain=kernel`` marker): kernel inner
  loops are the one place span overhead could actually show, so the
  default is *no spans at all*.  The blessed boundary spans (compile
  on a digest miss, patch emit, dynamic repair — once per call, never
  per edge) carry ``# repro: ignore[RULE]`` suppressions whose
  justifications document exactly why they are safe;
* the **piggyback boundary**: a handler that collects spans with
  ``with collecting(ctx) as NAME`` must only attach them to a response
  envelope (``env["spans"] = ...``) under an ``if NAME:``-style guard.
  ``collecting`` yields ``None`` when the inbound envelope carried no
  trace context — shipping unconditionally would either crash on the
  ``None`` or bolt an empty list onto every response, and the guard is
  what keeps the untraced path allocation-free.

Unrelated ``.start()`` calls (timers, threads, processes) are not
flagged: only names the module itself bound from a span factory count.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import Finding, ModuleContext, Rule

#: the factory callables of repro.obs.trace, by terminal name — calls
#: like ``span(...)``, ``trace.span(...)`` and ``T.measured_span(...)``
#: all resolve through one of these.
_FACTORIES = frozenset({"span", "measured_span"})

#: the modules that *implement* tracing: their internal ``start``/
#: ``end`` plumbing is the machinery itself, not usage.
_DEFINING = ("obs/trace.py",)


def _factory_call(node: ast.AST) -> str | None:
    """The factory name when ``node`` is a ``span(...)``-shaped call."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name) and func.id in _FACTORIES:
        return func.id
    if isinstance(func, ast.Attribute) and func.attr in _FACTORIES:
        return func.attr
    return None


class SpanHygieneRule(Rule):
    id = "span-hygiene"
    title = "unscoped span lifetimes; spans in kernel-domain modules"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel.replace("\\", "/").endswith(_DEFINING):
            return
        kernel = "kernel" in ctx.domains
        span_names: set[str] = set()
        for node in ast.walk(ctx.tree):
            factory = _factory_call(node)
            if factory is not None and kernel:
                yield ctx.finding(
                    node, self.id,
                    f"{factory}() in a kernel-domain module — kernels "
                    f"must stay span-free; a once-per-call boundary span "
                    f"needs a justified span-hygiene suppression",
                )
        # bindings first (two passes): a use may precede its binding in
        # source order (closures, methods defined above __init__)
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Assign, ast.AnnAssign)):
                value = getattr(node, "value", None)
                if _factory_call(value) is None:
                    continue
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if isinstance(target, ast.Name):
                        span_names.add(target.id)
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("start", "end")
            ):
                continue
            owner = node.func.value
            manual = (
                isinstance(owner, ast.Name) and owner.id in span_names
            ) or _factory_call(owner) is not None
            if manual:
                yield ctx.finding(
                    node, self.id,
                    f"manual span .{node.func.attr}() — an early return "
                    f"or exception leaks the span; use `with span(...)` "
                    f"so exit is guaranteed on every path",
                )
        yield from self._check_piggyback(ctx)

    def _check_piggyback(self, ctx: ModuleContext) -> Iterable[Finding]:
        """Flag ``env["spans"] = ...`` that references a ``collecting``
        capture without a truthiness guard on that capture."""
        collected: set[str] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.With, ast.AsyncWith)):
                continue
            for item in node.items:
                call = item.context_expr
                if not isinstance(call, ast.Call):
                    continue
                func = call.func
                name = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr
                    if isinstance(func, ast.Attribute)
                    else None
                )
                if name == "collecting" and isinstance(
                    item.optional_vars, ast.Name
                ):
                    collected.add(item.optional_vars.id)
        if not collected:
            return
        # every node inside the body of an `if` whose test mentions a
        # collected name counts as guarded
        guarded: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.If):
                continue
            test_names = {
                n.id
                for n in ast.walk(node.test)
                if isinstance(n, ast.Name)
            }
            if not (test_names & collected):
                continue
            for stmt in node.body:
                for sub in ast.walk(stmt):
                    guarded.add(id(sub))
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Assign):
                continue
            ships = any(
                isinstance(target, ast.Subscript)
                and isinstance(target.slice, ast.Constant)
                and target.slice.value == "spans"
                for target in node.targets
            )
            if not ships:
                continue
            value_names = {
                n.id
                for n in ast.walk(node.value)
                if isinstance(n, ast.Name)
            }
            if value_names & collected and id(node) not in guarded:
                yield ctx.finding(
                    node, self.id,
                    "spans piggybacked without an inbound-context guard "
                    "— `collecting()` yields None for untraced "
                    "envelopes; wrap the attach in `if <collected>:` so "
                    "the disabled path stays allocation-free",
                )
