"""async-blocking: the event loop must never run blocking work.

The service layer is a single asyncio loop multiplexing every client;
one synchronous engine solve or socket read inside an ``async def``
stalls *all* connections (the micro-batcher's throughput claims in
``benchmarks/bench_service_throughput.py`` assume the loop only ever
schedules).  The repo's idiom is
``await loop.run_in_executor(None, partial(fn, ...))`` — passing the
*function object* — which this rule naturally exempts because no call
node appears inside the async body.

Flagged inside ``async def`` bodies in ``service``-domain modules:

* known blocking calls: ``time.sleep``, blocking socket methods,
  ``subprocess.*``, ``open``/``os.system``/``urlopen``;
* engine solves: any ``<...engine...>.solve*()`` call — the batch
  engine is synchronous by design, services must route it through the
  executor (the micro-batcher) instead;
* CPU-bound wire parsing (``hypergraph_from_wire`` & friends):
  deserializing a multi-MB instance builds numpy arrays and is just as
  loop-hostile as a sleep;
* calls to *same-module sync helpers* that themselves do any of the
  above (one transitive hop) — the helper indirection is exactly how
  the pre-fix ``server._op_solve`` hid its on-loop parse behind
  ``self._parse_instance``.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import Finding, ModuleContext, Rule, dotted_name

#: fully-dotted call names that block (suffix-matched on the chain)
BLOCKING_CALLS = frozenset({
    "time.sleep",
    "socket.create_connection",
    "socket.getaddrinfo",
    "subprocess.run",
    "subprocess.call",
    "subprocess.check_call",
    "subprocess.check_output",
    "subprocess.Popen",
    "os.system",
    "os.popen",
    "urllib.request.urlopen",
})

#: method names that block on a socket/file regardless of receiver
BLOCKING_ATTRS = frozenset({
    "recv", "recv_into", "recvfrom", "accept", "sendall", "makefile",
})

#: bare names that block
BLOCKING_NAMES = frozenset({"open", "input"})

#: repo-specific CPU-bound functions — building a wire instance or a
#: kernel compilation is pure numpy churn and must run on the executor
CPU_BOUND = frozenset({
    "hypergraph_from_wire",
    "dynamic_from_wire",
    "compile_instance",
})

#: receiver-chain substrings that identify the batch engine
_ENGINE_HINTS = ("engine", "solver")


def _blocking_reason(call: ast.Call) -> str | None:
    """Why this call blocks the loop, or ``None`` if it doesn't."""
    name = dotted_name(call.func)
    if name is not None:
        if name in BLOCKING_NAMES:
            return f"blocking builtin {name}()"
        tail2 = ".".join(name.split(".")[-2:])
        if tail2 in BLOCKING_CALLS or name in BLOCKING_CALLS:
            return f"blocking call {tail2}()"
        leaf = name.split(".")[-1]
        if leaf in CPU_BOUND:
            return f"CPU-bound wire/compile call {leaf}()"
    if isinstance(call.func, ast.Attribute):
        attr = call.func.attr
        if attr in BLOCKING_ATTRS:
            return f"blocking socket/file method .{attr}()"
        base = dotted_name(call.func.value) or ""
        if attr.startswith("solve") and any(
            h in base.lower() for h in _ENGINE_HINTS
        ):
            return f"synchronous engine solve {base}.{attr}()"
    return None


def _sync_defs(tree: ast.Module) -> dict[tuple[str, str], ast.FunctionDef]:
    """Sync defs keyed by ``(scope, name)``.

    ``scope`` is the enclosing class name for methods and ``""`` for
    module-level functions, so a sync ``ServiceClient._request`` never
    taints an unrelated async class's same-named method.
    """
    defs: dict[tuple[str, str], ast.FunctionDef] = {}
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef):
            defs.setdefault(("", stmt.name), stmt)
        elif isinstance(stmt, ast.ClassDef):
            for sub in stmt.body:
                if isinstance(sub, ast.FunctionDef):
                    defs.setdefault((stmt.name, sub.name), sub)
    return defs


def _own_calls(fn: ast.AST) -> Iterator[ast.Call]:
    """Call nodes lexically inside ``fn``, not in nested defs."""
    stack = list(ast.iter_child_nodes(fn))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


class AsyncBlockingRule(Rule):
    id = "async-blocking"
    title = "blocking calls inside async def bodies"
    domains = frozenset({"service"})

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        # pass 1: sync helpers that block (one transitive hop)
        tainted: dict[tuple[str, str], str] = {}
        for key, fn in _sync_defs(ctx.tree).items():
            for call in _own_calls(fn):
                reason = _blocking_reason(call)
                if reason is not None:
                    tainted[key] = reason
                    break

        findings: list[Finding] = []
        # async defs with the class that lexically encloses them
        async_defs: list[tuple[str, ast.AsyncFunctionDef]] = []
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.AsyncFunctionDef):
                async_defs.append(("", stmt))
            elif isinstance(stmt, ast.ClassDef):
                async_defs.extend(
                    (stmt.name, sub) for sub in ast.walk(stmt)
                    if isinstance(sub, ast.AsyncFunctionDef)
                )
        for cls_name, node in async_defs:
            for call in _own_calls(node):
                reason = _blocking_reason(call)
                if reason is not None:
                    findings.append(ctx.finding(
                        call, self.id,
                        f"async {node.name}() performs {reason} on the "
                        f"event loop — route it through "
                        f"run_in_executor(None, partial(...))",
                    ))
                    continue
                callee = self._local_callee(call, cls_name)
                if callee is not None and callee in tainted:
                    findings.append(ctx.finding(
                        call, self.id,
                        f"async {node.name}() calls {callee[1]}(), a sync "
                        f"helper that performs {tainted[callee]} — run it "
                        f"on the executor instead",
                    ))
        return findings

    @staticmethod
    def _local_callee(call: ast.Call, cls_name: str) -> tuple[str, str] | None:
        """``(scope, name)`` of a same-module helper being called."""
        if isinstance(call.func, ast.Name):
            return ("", call.func.id)
        if (
            isinstance(call.func, ast.Attribute)
            and isinstance(call.func.value, ast.Name)
            and call.func.value.id in ("self", "cls")
            and cls_name
        ):
            return (cls_name, call.func.attr)
        return None
