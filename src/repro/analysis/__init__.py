"""repro.analysis — the codebase-aware static checker.

Generic linters cannot see this repo's invariants: which attributes a
lock guards, that the asyncio service must never run engine solves on
the loop, that kernels must stay bit-identical to the python oracle,
or that API.md's tables mirror the live registry and protocol.  This
package encodes them as AST rules (stdlib ``ast`` + ``symtable``, no
dependencies) behind one entry point::

    semimatch check [PATHS] [--fail-on-findings]
    python -m repro.analysis

Rules
-----
``lock-guard``
    Inferred lock/attribute contracts; flags mutations of guarded
    state outside the lock (the PR 5 ``_ensure_pool`` race shape).
``async-blocking``
    Blocking or CPU-bound calls inside ``async def`` bodies of
    service modules, including one-hop sync-helper indirection.
``kernel-purity``
    Bit-identity hazards in kernel/dynamic code: ``.tobytes()``
    copies, unseeded RNG, set/dict-ordered array construction,
    unordered float reductions.
``contract-sync``
    ``register_solver`` flag consistency, coded exceptions across the
    service boundary, and API.md's registry/error-code tables versus
    the live code.
``deprecation``
    Internal imports of the warn-once legacy shims.
``span-hygiene``
    Tracing discipline: manual ``.start()``/``.end()`` span lifetimes
    (use ``with span(...)``), and span-factory calls in kernel-domain
    modules, where only justified boundary spans are allowed.
``suppression``
    Hygiene of the ``# repro: ignore[RULE]`` comments themselves:
    every suppression needs a justification and must still be load-
    bearing.

See the "Static analysis" section of API.md for the rule catalogue
and suppression syntax.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .asyncblock import AsyncBlockingRule
from .contracts import ContractSyncRule
from .core import (
    AnalysisReport,
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    analyze_paths,
    format_json,
    format_text,
)
from .deprecation import DeprecationRule
from .lockguard import LockGuardRule
from .purity import KernelPurityRule
from .spanhygiene import SpanHygieneRule

__all__ = [
    "ALL_RULES",
    "AnalysisReport",
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "analyze_paths",
    "default_target",
    "format_json",
    "format_text",
    "main",
    "run_check",
]

ALL_RULES: tuple[Rule, ...] = (
    LockGuardRule(),
    AsyncBlockingRule(),
    KernelPurityRule(),
    ContractSyncRule(),
    DeprecationRule(),
    SpanHygieneRule(),
)


def default_target() -> tuple[Path, Path | None]:
    """``(scan_path, repo_root)`` when invoked with no paths.

    The scan target is the installed ``repro`` package itself, so
    ``semimatch check`` works from any working directory; the repo
    root (enabling doc-sync project checks) is only reported when the
    package actually sits inside a ``src/`` checkout with an API.md.
    """
    pkg = Path(__file__).resolve().parents[1]
    root = pkg.parents[1]
    if (root / "API.md").is_file() and (root / "src" / "repro").is_dir():
        return pkg, root
    return pkg, None


def run_check(
    paths: Sequence[str] = (),
    *,
    rules: Sequence[str] | None = None,
    fail_on_findings: bool = False,
    project: bool = True,
    fmt: str = "text",
    out=None,
) -> int:
    """Run the analyzer; returns the process exit status."""
    out = out if out is not None else sys.stdout
    known = {r.id: r for r in ALL_RULES}
    if rules:
        unknown = sorted(set(rules) - set(known))
        if unknown:
            print(f"unknown rule(s): {', '.join(unknown)}; "
                  f"known: {', '.join(sorted(known))}", file=sys.stderr)
            return 2
        selected = [known[r] for r in rules]
        hygiene = False  # partial runs cannot judge suppressions fairly
    else:
        selected = list(ALL_RULES)
        hygiene = True

    if paths:
        targets = [Path(p) for p in paths]
        root = Path.cwd()
    else:
        target, root = default_target()
        targets = [target]

    report = analyze_paths(
        targets,
        rules=selected,
        root=root,
        project=project,
        hygiene=hygiene,
    )
    print(
        format_json(report) if fmt == "json" else format_text(report),
        file=out,
    )
    if report.findings and fail_on_findings:
        return 1
    return 0


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach ``semimatch check`` flags (shared with ``__main__``)."""
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--fail-on-findings", action="store_true",
        help="exit 1 when any unsuppressed finding remains (CI gate)",
    )
    parser.add_argument(
        "--rule", action="append", dest="rules", metavar="ID",
        help="run only this rule id (repeatable; disables suppression "
             "hygiene)",
    )
    parser.add_argument(
        "--no-project", action="store_true",
        help="skip repo-level doc-sync checks (API.md vs live registry)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )


def run_from_args(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in ALL_RULES:
            scope = ", ".join(sorted(rule.domains)) if rule.domains else "all"
            print(f"{rule.id:16} [{scope}] {rule.title}")
        print(f"{'suppression':16} [all] "
              f"hygiene of # repro: ignore[...] comments")
        return 0
    return run_check(
        args.paths,
        rules=args.rules,
        fail_on_findings=args.fail_on_findings,
        project=not args.no_project,
        fmt=args.format,
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="repro's codebase-aware static checker",
    )
    add_check_arguments(parser)
    return run_from_args(parser.parse_args(argv))
