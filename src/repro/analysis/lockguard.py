"""lock-guard: shared mutable state must stay behind its lock.

The PR 5 audit found :meth:`BatchSolver._ensure_pool` publishing
``self._pool`` outside ``self._pool_lock`` while ``close()`` tore it
down under the lock — a double-create race invisible to generic
linters because it depends on *which attributes this class guards*.
This rule recovers that contract by inference instead of annotation:

* a class that creates a ``threading.Lock``/``RLock`` attribute is a
  *locked class*;
* every attribute mutated at least once inside ``with self.<lock>:``
  is *guarded*;
* any mutation of a guarded attribute outside a lock context is a
  finding.

``__init__``/``__post_init__`` are construction (no concurrent reader
can exist yet) and are exempt.  Methods named ``*_locked`` follow the
repo convention of "caller holds the lock" and count as locked
context — :meth:`ExportRegistry._evict_idle_locked` and the kernel
caches' ``_cache_insert_locked`` rely on this.

The same inference runs at module scope: modules that create a
module-level lock (the kernel compile cache, the chain-alias cache,
the warm-engine table) get their guarded *globals* inferred from
``with <LOCK>:`` blocks, with ``symtable`` deciding whether a name in
a function is actually the module global or a shadowing local.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .core import Finding, ModuleContext, Rule, dotted_name, self_attr

#: method names that mutate their receiver in place
MUTATORS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "add", "discard", "update", "setdefault", "move_to_end", "sort",
    "reverse", "appendleft", "popleft", "__setitem__", "__delitem__",
})

_LOCK_FACTORIES = frozenset({"Lock", "RLock"})
_INIT_METHODS = frozenset({"__init__", "__post_init__", "__new__"})


def _is_lock_call(node: ast.AST) -> bool:
    """``threading.Lock()`` / ``Lock()`` / ``threading.RLock()`` ..."""
    if not isinstance(node, ast.Call):
        return False
    name = dotted_name(node.func)
    return name is not None and name.split(".")[-1] in _LOCK_FACTORIES


def _is_lock_factory_ref(node: ast.AST) -> bool:
    """A *reference* to the factory (``default_factory=threading.Lock``)."""
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] in _LOCK_FACTORIES


class _Event:
    __slots__ = ("attr", "line", "locked", "method")

    def __init__(self, attr: str, line: int, locked: bool, method: str):
        self.attr = attr
        self.line = line
        self.locked = locked
        self.method = method


def _mutated_targets(stmt: ast.AST) -> Iterator[ast.AST]:
    """Target expressions a statement writes to (incl. tuple unpack)."""
    if isinstance(stmt, ast.Assign):
        targets = stmt.targets
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = stmt.targets
    else:
        return
    stack = list(targets)
    while stack:
        t = stack.pop()
        if isinstance(t, (ast.Tuple, ast.List)):
            stack.extend(t.elts)
        elif isinstance(t, ast.Starred):
            stack.append(t.value)
        else:
            yield t


class LockGuardRule(Rule):
    id = "lock-guard"
    title = "mutations of lock-guarded state outside the lock"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                findings.extend(self._check_class(ctx, node))
        findings.extend(self._check_module_globals(ctx))
        return findings

    # -- instance attributes ------------------------------------------
    def _check_class(
        self, ctx: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods = [
            n for n in cls.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        locks = self._lock_attrs(cls, methods)
        if not locks:
            return
        events: list[_Event] = []
        for m in methods:
            if m.name in _INIT_METHODS:
                continue
            base_locked = m.name.endswith("_locked")
            self._collect(m, m.name, locks, base_locked, events,
                          self._self_events)
        guarded = {e.attr for e in events if e.locked} - locks
        for e in events:
            if e.attr in guarded and not e.locked:
                yield ctx.finding(
                    e.line, self.id,
                    f"{cls.name}.{e.method} mutates self.{e.attr} outside "
                    f"the lock, but other code guards it with "
                    f"`with self.<lock>:` — same shape as the "
                    f"_ensure_pool double-create race",
                )

    def _lock_attrs(self, cls: ast.ClassDef, methods) -> set[str]:
        locks: set[str] = set()
        # dataclass-style: `lock: threading.Lock = field(default_factory=...)`
        for stmt in cls.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                ann = ast.unparse(stmt.annotation)
                if ann.split(".")[-1] in _LOCK_FACTORIES:
                    locks.add(stmt.target.id)
                elif isinstance(stmt.value, ast.Call):
                    for kw in stmt.value.keywords:
                        if kw.arg == "default_factory" and (
                            _is_lock_factory_ref(kw.value)
                        ):
                            locks.add(stmt.target.id)
        # assignment style: `self._lock = threading.Lock()` anywhere
        for m in methods:
            for node in ast.walk(m):
                if isinstance(node, ast.Assign) and _is_lock_call(node.value):
                    for t in node.targets:
                        attr = self_attr(t)
                        if attr is not None:
                            locks.add(attr)
        return locks

    def _self_events(
        self, stmt: ast.AST, locks: set[str], locked: bool, method: str,
        events: list[_Event],
    ) -> None:
        for t in _mutated_targets(stmt):
            attr = self_attr(t)
            if attr is None and isinstance(t, ast.Subscript):
                attr = self_attr(t.value)
            if attr is not None and attr not in locks:
                events.append(_Event(attr, t.lineno, locked, method))
        if isinstance(stmt, ast.Call) and isinstance(
            stmt.func, ast.Attribute
        ) and stmt.func.attr in MUTATORS:
            attr = self_attr(stmt.func.value)
            if attr is not None and attr not in locks:
                events.append(_Event(attr, stmt.lineno, locked, method))

    # -- module globals -----------------------------------------------
    def _check_module_globals(self, ctx: ModuleContext) -> Iterator[Finding]:
        mod_locks: set[str] = set()
        mod_names: set[str] = set()
        for stmt in ctx.tree.body:
            targets: list[ast.AST] = []
            if isinstance(stmt, ast.Assign):
                targets = list(stmt.targets)
            elif isinstance(stmt, ast.AnnAssign):
                targets = [stmt.target]
            for t in targets:
                if isinstance(t, ast.Name):
                    mod_names.add(t.id)
                    value = getattr(stmt, "value", None)
                    if value is not None and _is_lock_call(value):
                        mod_locks.add(t.id)
        if not mod_locks:
            return
        events: list[_Event] = []
        funcs = [
            n for n in ast.walk(ctx.tree)
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for fn in funcs:
            scope = ctx.function_scope(fn)

            def is_global(name: str) -> bool:
                if name not in mod_names or name in mod_locks:
                    return False
                if scope is None:
                    return True
                try:
                    sym = scope.lookup(name)
                except KeyError:
                    return True
                return sym.is_global() or not sym.is_assigned()

            base_locked = fn.name.endswith("_locked")
            self._collect(
                fn, fn.name, mod_locks, base_locked, events,
                lambda stmt, locks, locked, method, evs: (
                    self._global_events(
                        stmt, locks, locked, method, evs, is_global
                    )
                ),
            )
        guarded = {e.attr for e in events if e.locked}
        for e in events:
            if e.attr in guarded and not e.locked:
                yield ctx.finding(
                    e.line, self.id,
                    f"{e.method}() mutates module global {e.attr} outside "
                    f"the module lock that guards it elsewhere",
                )

    def _global_events(
        self, stmt: ast.AST, locks: set[str], locked: bool, method: str,
        events: list[_Event], is_global,
    ) -> None:
        for t in _mutated_targets(stmt):
            name = None
            if isinstance(t, ast.Name):
                name = t.id
            elif isinstance(t, ast.Subscript) and isinstance(
                t.value, ast.Name
            ):
                name = t.value.id
            if name is not None and is_global(name):
                events.append(_Event(name, t.lineno, locked, method))
        if isinstance(stmt, ast.Call) and isinstance(
            stmt.func, ast.Attribute
        ) and stmt.func.attr in MUTATORS and isinstance(
            stmt.func.value, ast.Name
        ) and is_global(stmt.func.value.id):
            events.append(
                _Event(stmt.func.value.id, stmt.lineno, locked, method)
            )

    # -- shared walker ------------------------------------------------
    def _collect(
        self, fn, method: str, locks: set[str], base_locked: bool,
        events: list[_Event], emit,
    ) -> None:
        """Walk ``fn`` tracking `with <lock>:` containment lexically.

        Does not descend into nested function definitions: a closure
        created under the lock runs later, when the lock is no longer
        held, so inheriting the locked flag would be wrong both ways —
        its body is simply out of scope for lexical inference.
        """

        def lock_in_items(node: ast.With | ast.AsyncWith) -> bool:
            for item in node.items:
                expr = item.context_expr
                attr = self_attr(expr)
                if attr is not None and attr in locks:
                    return True
                if isinstance(expr, ast.Name) and expr.id in locks:
                    return True
            return False

        def visit(node: ast.AST, locked: bool) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(
                    child,
                    (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda),
                ):
                    continue
                emit(child, locks, locked, method, events)
                if isinstance(child, (ast.With, ast.AsyncWith)):
                    visit(child, locked or lock_in_items(child))
                else:
                    visit(child, locked)

        visit(fn, base_locked)
