"""kernel-purity: bit-identity and determinism hazards in kernel code.

The conformance harness (PR 4/6) requires the numpy kernels to replay
the python oracle's float operations *bit-identically*, and the
content-addressed caches require instance digests to be cheap and
stable.  Four hazard classes, each with a concrete in-repo precedent:

* ``.tobytes()`` — copies the whole buffer; digesting megabytes per
  patched emit was a measured regression in PR 6.  Hash the ``.data``
  memoryview instead (see ``engine/cache.instance_digest``).
* unseeded RNG — ``np.random.rand()``, ``default_rng()`` with no
  seed, ``random.random()``: any sampling that doesn't flow from the
  experiment seed breaks replayability of Tables I–III.
* set/dict iteration feeding array construction — set order is
  hash-randomized across processes and dict order depends on
  insertion history; arrays built from them differ run to run even
  when the contents are equal.  Sort first (``sorted(...)`` is the
  accepted idiom and is exempt).
* unordered float accumulation — ``np.bincount(..., weights=...)``
  and ``np.histogram(..., weights=...)`` reduce floats in
  unspecified order; the kernels' contract is the ordered
  ``np.add.at`` idiom (see ``kernels/ops.loads_from_assignment``).
  Integer counting (no ``weights=``) is exact and exempt.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import Finding, ModuleContext, Rule, dotted_name

#: numpy sampling functions that draw from global state when unseeded
_NP_SAMPLERS = frozenset({
    "rand", "randn", "randint", "random", "random_sample", "choice",
    "shuffle", "permutation", "normal", "uniform", "exponential",
    "poisson", "binomial", "seed",
})
#: stdlib ``random`` module functions (always global state)
_PY_SAMPLERS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "betavariate", "expovariate",
})
#: constructors whose element order becomes array order
_ARRAY_BUILDERS = frozenset({
    "np.array", "np.asarray", "np.fromiter", "np.stack",
    "np.concatenate", "numpy.array", "numpy.asarray", "numpy.fromiter",
    "list", "tuple",
})
_DICT_VIEWS = frozenset({"keys", "values", "items"})


def _is_unordered_iterable(node: ast.AST) -> str | None:
    """Describe ``node`` if its iteration order is nondeterministic."""
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name == "set" or (name or "").endswith(".union"):
            return "a set"
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _DICT_VIEWS
            and not node.args
        ):
            return f"a dict .{node.func.attr}() view"
    if isinstance(node, (ast.Set, ast.SetComp)):
        return "a set"
    if isinstance(node, ast.DictComp):
        return "a dict comprehension"
    return None


class KernelPurityRule(Rule):
    id = "kernel-purity"
    title = "nondeterminism / bit-identity hazards in kernels"
    domains = frozenset({"kernel"})

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func) or ""
            leaf = name.split(".")[-1]

            # 1. buffer copies on the digest path
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "tobytes"
            ):
                findings.append(ctx.finding(
                    node, self.id,
                    ".tobytes() copies the whole buffer — hash/pass the "
                    ".data memoryview instead (PR 6 digest-path rule)",
                ))

            # 2. unseeded RNG
            chain = name.rsplit(".", 1)[0] if "." in name else ""
            if chain in ("np.random", "numpy.random"):
                if leaf in _NP_SAMPLERS:
                    findings.append(ctx.finding(
                        node, self.id,
                        f"np.random.{leaf} draws from global RNG state — "
                        f"thread a seeded np.random.default_rng(seed) "
                        f"Generator through instead",
                    ))
                elif leaf == "default_rng" and not (
                    node.args or node.keywords
                ):
                    findings.append(ctx.finding(
                        node, self.id,
                        "default_rng() without a seed is entropy-seeded — "
                        "pass the experiment seed",
                    ))
            elif chain == "random" and leaf in _PY_SAMPLERS:
                findings.append(ctx.finding(
                    node, self.id,
                    f"random.{leaf} uses the global stdlib RNG — use a "
                    f"seeded np.random.default_rng(seed)",
                ))
            elif name == "random.Random" and not (node.args or node.keywords):
                findings.append(ctx.finding(
                    node, self.id,
                    "random.Random() without a seed is entropy-seeded",
                ))

            # 3. unordered iteration feeding array construction
            if name in _ARRAY_BUILDERS and node.args:
                desc = _is_unordered_iterable(node.args[0])
                if desc is not None:
                    findings.append(ctx.finding(
                        node, self.id,
                        f"{name}(...) built from {desc} — iteration order "
                        f"is nondeterministic; wrap in sorted(...) first",
                    ))

            # 4. unordered float reductions
            if leaf in ("bincount", "histogram") and any(
                kw.arg == "weights" for kw in node.keywords
            ):
                findings.append(ctx.finding(
                    node, self.id,
                    f"{leaf}(..., weights=...) accumulates floats in "
                    f"unspecified order — use the ordered np.add.at idiom "
                    f"(kernels/ops.loads_from_assignment)",
                ))
        return findings
