"""deprecation: internal code must not call its own shims.

PR 4 kept the legacy ``repro.algorithms`` registry names alive as
warn-once shims for external callers.  Internal ``src/repro`` code
calling them would (a) fire a DeprecationWarning that pyproject's
filterwarnings escalates to an error under pytest, and (b) quietly
re-entrench an API scheduled for removal.  This rule flags any import
or attribute access of a shim name outside the modules that define
them.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .core import Finding, ModuleContext, Rule

#: names served by module-level ``__getattr__`` warn-once shims
SHIM_NAMES = frozenset({
    "BIPARTITE_ALGORITHMS",
    "HYPERGRAPH_ALGORITHMS",
    "get_bipartite_algorithm",
    "get_hypergraph_algorithm",
})

#: the modules that *define* the shims (string mentions there are the
#: implementation, not usage)
_DEFINING = (
    "algorithms/__init__.py",
    "algorithms/registry.py",
    "api/_deprecation.py",
)


class DeprecationRule(Rule):
    id = "deprecation"
    title = "internal use of warn-once deprecation shims"

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        if ctx.rel.replace("\\", "/").endswith(_DEFINING):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom):
                for alias in node.names:
                    if alias.name in SHIM_NAMES:
                        yield ctx.finding(
                            node, self.id,
                            f"imports deprecated shim {alias.name!r} — use "
                            f"the repro.api registry "
                            f"(get_solver/get_registry) instead",
                        )
            elif isinstance(node, ast.Attribute) and node.attr in SHIM_NAMES:
                yield ctx.finding(
                    node, self.id,
                    f"references deprecated shim {node.attr!r} through its "
                    f"module — use the repro.api registry instead",
                )
