"""contract-sync: registry flags, error codes, and API.md stay in sync.

Three contracts, each previously guarded by hand-maintained runtime
tests (or nothing at all):

* **solver registration flags** — ``@register_solver`` declares
  ``needs_seed``/``needs_backend``; ``SolverSpec.run`` only forwards
  ``seed=``/``backend=`` when the flag is set.  A solver that takes a
  ``backend`` parameter without declaring ``needs_backend`` silently
  ignores backend selection; declaring a flag without the parameter
  raises ``TypeError`` at dispatch.  The AST check verifies
  registrations whose target ``def`` is in the same module; the
  project check closes the gap with ``inspect.signature`` over the
  *live* registry.  ``"randomized"`` capability implies
  ``needs_seed`` — a randomized solver the engine cannot reseed is
  unreproducible.
* **service error codes** — every exception that can cross the
  service boundary must map to a wire code in
  ``protocol.error_code_for``: either a ``.code``-carrying repo
  exception or ValueError/TypeError/KeyError (→ ``bad-request``).
  Raising anything else from a service module sends the client an
  opaque ``internal``.
* **API.md tables** — the solver-registry table (between the
  ``registry-table`` markers) must equal
  ``get_registry().table_markdown()``, and the error-code table
  (between the ``error-codes`` markers) must list exactly
  ``protocol.ERROR_CODES``.  This replaces the runtime sync test that
  previously lived in ``tests/test_solver_api.py``.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from .core import (
    Finding,
    ModuleContext,
    ProjectContext,
    Rule,
    const_names,
    dotted_name,
)

#: exceptions that carry a ``.code`` (or map to ``bad-request``) —
#: the only types a service module may raise toward the wire
CODED_EXCEPTIONS = frozenset({
    # repro.core.errors / repro.api.errors — all carry .code
    "SemiMatchError", "GraphStructureError", "InvalidMatchingError",
    "SolverError", "InfeasibleError", "UnknownSolverError",
    "CapabilityError",
    # repro.service.protocol
    "ServiceError", "ProtocolError", "OverloadedError",
    "SessionNotFoundError", "SessionLimitError", "RemoteError",
    "WorkerLostError", "SessionRelocatedError",
    # mapped to "bad-request" by error_code_for
    "ValueError", "TypeError", "KeyError",
})

#: backticked codes in the first cell of a ``| codes | meaning |`` row
_CODE = re.compile(r"`([a-z-]+)`")


def _register_calls(tree: ast.Module):
    """Yield ``(call, target_def_or_None)`` for every registration.

    Handles both the decorator form (``@register_solver(...)`` on a
    local ``def``) and the call form (``register_solver(...)(fn)``),
    resolving ``fn`` to a same-module ``def`` when possible.
    """
    local_defs = {
        n.name: n for n in ast.walk(tree)
        if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
    }

    def is_register(call: ast.AST) -> bool:
        return (
            isinstance(call, ast.Call)
            and (dotted_name(call.func) or "").split(".")[-1]
            == "register_solver"
        )

    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for dec in node.decorator_list:
                if is_register(dec):
                    yield dec, node
        elif isinstance(node, ast.Call) and is_register(node.func):
            target = None
            if len(node.args) == 1 and isinstance(node.args[0], ast.Name):
                target = local_defs.get(node.args[0].id)
            yield node.func, target


def _params(fn: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    a = fn.args
    return {
        p.arg
        for p in (*a.posonlyargs, *a.args, *a.kwonlyargs)
    }


class ContractSyncRule(Rule):
    id = "contract-sync"
    title = "registry/protocol/API.md contract drift"

    # -- module checks ------------------------------------------------
    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        findings: list[Finding] = []
        findings.extend(self._check_registrations(ctx))
        if "service" in ctx.domains:
            findings.extend(self._check_raises(ctx))
        return findings

    def _check_registrations(self, ctx: ModuleContext) -> Iterable[Finding]:
        for call, target in _register_calls(ctx.tree):
            kwargs = {kw.arg: kw.value for kw in call.keywords if kw.arg}
            name_node = kwargs.get("name")
            solver = (
                name_node.value
                if isinstance(name_node, ast.Constant)
                else (target.name if target else "<unknown>")
            )
            caps = (
                const_names(kwargs["capabilities"])
                if "capabilities" in kwargs
                else set()
            )

            def flag(key: str) -> bool | None:
                node = kwargs.get(key)
                if node is None:
                    return False
                if isinstance(node, ast.Constant) and isinstance(
                    node.value, bool
                ):
                    return node.value
                return None  # dynamic — can't judge statically

            needs_seed = flag("needs_seed")
            needs_backend = flag("needs_backend")
            if "randomized" in caps and needs_seed is False:
                yield ctx.finding(
                    call, self.id,
                    f"solver {solver!r} declares the 'randomized' "
                    f"capability but not needs_seed=True — the engine "
                    f"cannot reseed it, so runs are unreproducible",
                )
            if target is not None:
                params = _params(target)
                for key, value, param in (
                    ("needs_seed", needs_seed, "seed"),
                    ("needs_backend", needs_backend, "backend"),
                ):
                    if value is True and param not in params:
                        yield ctx.finding(
                            call, self.id,
                            f"solver {solver!r} declares {key}=True but "
                            f"{target.name}() has no {param!r} parameter — "
                            f"dispatch will raise TypeError",
                        )
                    elif value is False and param in params:
                        yield ctx.finding(
                            call, self.id,
                            f"solver {solver!r} takes a {param!r} parameter "
                            f"but does not declare {key}=True — dispatch "
                            f"never forwards it, so it silently defaults",
                        )

    def _check_raises(self, ctx: ModuleContext) -> Iterable[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            if isinstance(exc, ast.Call):
                exc = exc.func
            name = dotted_name(exc)
            if name is None:  # re-raise of a bound variable — out of scope
                continue
            leaf = name.split(".")[-1]
            if leaf not in CODED_EXCEPTIONS:
                yield ctx.finding(
                    node, self.id,
                    f"raise {leaf} in a service module: "
                    f"protocol.error_code_for maps it to the opaque "
                    f"'internal' code — raise a .code-carrying repro "
                    f"exception (or ValueError for bad input) instead",
                )

    # -- project checks -----------------------------------------------
    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        api_md = ctx.read("API.md")
        if api_md is None:
            return
        try:
            from repro.api.registry import get_registry
            from repro.service import protocol
        except ImportError as exc:  # pragma: no cover - env-dependent
            yield ctx.finding(
                "API.md", 1, self.id,
                f"cannot import live registry/protocol for doc sync: {exc}",
            )
            return

        yield from self._check_table(
            ctx, api_md, "registry-table",
            expected=get_registry().table_markdown().strip().splitlines(),
            what="solver registry table",
            regen="regenerate with get_registry().table_markdown()",
        )
        yield from self._check_error_codes(ctx, api_md, protocol)
        yield from self._check_signatures(ctx, get_registry())

    @staticmethod
    def _block(api_md: str, name: str):
        """Lines between ``<!-- name:begin ... -->`` / ``:end`` markers.

        The begin marker may carry trailing commentary
        (``(generated; do not edit by hand)``), so match by prefix.
        """
        lines = api_md.splitlines()
        i = j = None
        for k, ln in enumerate(lines):
            s = ln.strip()
            if s.startswith(f"<!-- {name}:begin"):
                i = k
            elif s.startswith(f"<!-- {name}:end"):
                j = k
        if i is None or j is None or j <= i:
            return None, 1
        return lines[i + 1:j], i + 1

    def _check_table(self, ctx, api_md, marker, *, expected, what, regen):
        block, line = self._block(api_md, marker)
        if block is None:
            yield ctx.finding(
                "API.md", 1, self.id,
                f"missing <!-- {marker}:begin/end --> markers — cannot "
                f"verify the {what}",
            )
            return
        actual = [ln.rstrip() for ln in block if ln.strip()]
        wanted = [ln.rstrip() for ln in expected if ln.strip()]
        if actual != wanted:
            yield ctx.finding(
                "API.md", line, self.id,
                f"{what} is out of sync with the live code — {regen}",
            )

    def _check_error_codes(self, ctx, api_md, protocol):
        block, line = self._block(api_md, "error-codes")
        if block is None:
            yield ctx.finding(
                "API.md", 1, self.id,
                "missing <!-- error-codes:begin/end --> markers — cannot "
                "verify the error-code table",
            )
            return
        documented = set()
        for ln in block:
            ln = ln.strip()
            if not ln.startswith("|"):
                continue
            cells = [c for c in ln.split("|") if c.strip()]
            if cells:
                documented.update(_CODE.findall(cells[0]))
        live = set(protocol.ERROR_CODES)
        for code in sorted(live - documented):
            yield ctx.finding(
                "API.md", line, self.id,
                f"error code '{code}' (protocol.ERROR_CODES) is missing "
                f"from the API.md error-code table",
            )
        for code in sorted(documented - live):
            yield ctx.finding(
                "API.md", line, self.id,
                f"API.md documents error code '{code}' which is not in "
                f"protocol.ERROR_CODES",
            )

    def _check_signatures(self, ctx, registry):
        import inspect

        for spec in registry:
            try:
                params = set(inspect.signature(spec.fn).parameters)
            except (TypeError, ValueError):  # pragma: no cover - builtins
                continue
            rel = "src/repro/api/solvers.py"
            checks = (
                ("needs_seed", spec.needs_seed, "seed"),
                ("needs_backend", spec.needs_backend, "backend"),
            )
            for key, value, param in checks:
                if value and param not in params and "kwargs" not in params:
                    yield ctx.finding(
                        rel, 1, self.id,
                        f"registered solver {spec.name!r}: {key}=True but "
                        f"{param!r} not in signature {sorted(params)}",
                    )
                elif not value and param in params:
                    yield ctx.finding(
                        rel, 1, self.id,
                        f"registered solver {spec.name!r}: accepts "
                        f"{param!r} but {key} is False — dispatch never "
                        f"forwards it",
                    )
            if "randomized" in spec.capabilities and not spec.needs_seed:
                yield ctx.finding(
                    rel, 1, self.id,
                    f"registered solver {spec.name!r}: 'randomized' "
                    f"capability without needs_seed",
                )
