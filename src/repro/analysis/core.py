"""Rule engine for the repro static analyzer.

This module is deliberately dependency-free (stdlib ``ast`` +
``symtable`` only): it must be importable in CI before the scientific
stack is, and it must never import the code it is analyzing.  Rules
receive parsed modules through :class:`ModuleContext` and report
:class:`Finding` objects with ``file:line`` anchors; repo-level
consistency rules (doc tables vs. live registries) additionally get a
:class:`ProjectContext` hook that only fires when the analyzer can see
the repository root.

Suppressions
------------
A finding is silenced by a ``# repro: ignore[RULE]`` comment on the
flagged line, or on a comment-only line directly above it.  Every
suppression must carry a one-line justification after the bracket —
an unexplained or unused suppression is itself reported (rule id
``suppression``), so the baseline of intentional exceptions stays
auditable and cannot rot.

Fixtures and path-independent domains
-------------------------------------
Package-scoped rules (kernel purity, service async rules) normally key
off the module path (``repro/kernels/...``).  Test fixtures live
outside those packages, so a module may opt into a domain explicitly
with a ``# repro: domain=kernel`` (or ``service``) marker comment.
"""

from __future__ import annotations

import ast
import dataclasses
import json
import re
import symtable
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "Finding",
    "ModuleContext",
    "ProjectContext",
    "Rule",
    "AnalysisReport",
    "analyze_paths",
    "iter_python_files",
    "format_text",
    "format_json",
]

#: matches ``repro: ignore[rule-a, rule-b] — justification`` trailers.
#: Rule ids are lowercase kebab-case by construction, so uppercase
#: placeholders in prose (``ignore[RULE]`` in docstrings) stay inert.
_SUPPRESS_RE = re.compile(
    r"#\s*repro:\s*ignore\[([a-z0-9_,\- ]+)\]\s*[-—–:]*\s*(.*)"
)
#: ``# repro: domain=kernel`` — opt a module into a path-keyed domain.
_DOMAIN_RE = re.compile(r"#\s*repro:\s*domain=([a-z]+)")


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation, anchored to a source line."""

    path: str
    line: int
    rule: str
    message: str

    def anchor(self) -> str:
        return f"{self.path}:{self.line}"

    def __str__(self) -> str:
        return f"{self.anchor()}: [{self.rule}] {self.message}"


@dataclasses.dataclass
class Suppression:
    """One ``# repro: ignore[...]`` comment and what it covers."""

    line: int  # line the comment sits on
    covers: tuple[int, ...]  # source lines it silences
    rules: frozenset[str]
    justified: bool
    used: bool = False


class ModuleContext:
    """A parsed module plus everything rules need to inspect it."""

    def __init__(self, path: Path, rel: str, source: str):
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.domains = self._infer_domains()
        self.suppressions = self._parse_suppressions()
        self._symtable: symtable.SymbolTable | None = None

    # -- domains ------------------------------------------------------
    def _infer_domains(self) -> frozenset[str]:
        parts = Path(self.rel).parts
        domains = set()
        if "kernels" in parts or "dynamic" in parts:
            domains.add("kernel")
        if "service" in parts:
            domains.add("service")
        for line in self.lines:
            m = _DOMAIN_RE.search(line)
            if m:
                domains.add(m.group(1))
        return frozenset(domains)

    # -- suppressions -------------------------------------------------
    def _parse_suppressions(self) -> list[Suppression]:
        sups = []
        for i, text in enumerate(self.lines, start=1):
            m = _SUPPRESS_RE.search(text)
            if m is None:
                continue
            rules = frozenset(
                r.strip() for r in m.group(1).split(",") if r.strip()
            )
            # a comment-only line shields the next source line; an
            # inline trailer shields its own line
            comment_only = text.lstrip().startswith("#")
            covers = (i, i + 1) if comment_only else (i,)
            sups.append(
                Suppression(
                    line=i,
                    covers=covers,
                    rules=rules,
                    justified=bool(m.group(2).strip()),
                )
            )
        return sups

    def suppressed(self, finding: Finding) -> bool:
        """Silence ``finding`` if a suppression covers it (marks use)."""
        hit = False
        for sup in self.suppressions:
            if finding.line in sup.covers and finding.rule in sup.rules:
                sup.used = True
                hit = True
        return hit

    # -- helpers for rules --------------------------------------------
    def finding(self, node: ast.AST | int, rule: str, message: str) -> Finding:
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(path=self.rel, line=line, rule=rule, message=message)

    def symbols(self) -> symtable.SymbolTable:
        """The module's ``symtable`` (built lazily, cached)."""
        if self._symtable is None:
            self._symtable = symtable.symtable(self.source, self.rel, "exec")
        return self._symtable

    def function_scope(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> symtable.SymbolTable | None:
        """The symbol table of ``node``'s scope, matched by name+line."""

        def search(table: symtable.SymbolTable):
            for child in table.get_children():
                if (
                    child.get_name() == node.name
                    and child.get_lineno() == node.lineno
                ):
                    return child
                found = search(child)
                if found is not None:
                    return found
            return None

        return search(self.symbols())


@dataclasses.dataclass
class ProjectContext:
    """Repo-level view for rules that cross-check docs and registries.

    Only constructed when the analyzer can see a repository root (a
    directory holding ``API.md`` and ``src/repro``), so fixture runs in
    tests never trigger doc-sync checks by accident.
    """

    root: Path

    def read(self, rel: str) -> str | None:
        p = self.root / rel
        try:
            return p.read_text()
        except OSError:
            return None

    def finding(self, rel: str, line: int, rule: str, message: str) -> Finding:
        return Finding(path=rel, line=line, rule=rule, message=message)


class Rule:
    """Base class for analyzer rules.

    ``id`` names the rule in reports and suppression comments.
    ``domains`` restricts :meth:`check_module` to modules in any of the
    named domains (``None`` means every module).  Repo-level rules
    override :meth:`check_project` instead of / in addition to the
    module hook.
    """

    id: str = "rule"
    title: str = ""
    domains: frozenset[str] | None = None

    def applies(self, ctx: ModuleContext) -> bool:
        return self.domains is None or bool(self.domains & ctx.domains)

    def check_module(self, ctx: ModuleContext) -> Iterable[Finding]:
        return ()

    def check_project(self, ctx: ProjectContext) -> Iterable[Finding]:
        return ()


@dataclasses.dataclass
class AnalysisReport:
    """The outcome of one analyzer run."""

    findings: list[Finding]
    suppressed: int
    files: int
    rules: tuple[str, ...]

    @property
    def clean(self) -> bool:
        return not self.findings


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    seen = set()
    for base in paths:
        base = Path(base)
        if base.is_file():
            candidates: Iterable[Path] = [base]
        else:
            candidates = sorted(base.rglob("*.py"))
        for p in candidates:
            if "__pycache__" in p.parts:
                continue
            if any(part.startswith(".") for part in p.parts[1:]):
                continue
            rp = p.resolve()
            if rp not in seen:
                seen.add(rp)
                yield p


def _relpath(path: Path, root: Path | None) -> str:
    try:
        if root is not None:
            return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        pass
    return path.as_posix()


def analyze_paths(
    paths: Sequence[Path],
    *,
    rules: Sequence[Rule],
    root: Path | None = None,
    project: bool = True,
    hygiene: bool = True,
) -> AnalysisReport:
    """Run ``rules`` over every module under ``paths``.

    ``root`` anchors report-relative paths and, when it looks like the
    repository root, enables :meth:`Rule.check_project` checks.
    ``hygiene`` additionally audits the suppression comments themselves
    (unjustified / unused); it only judges a suppression when every
    rule it names was actually executed, so partial runs (``--rule``)
    never report false "unused" hits.
    """
    executed = frozenset(r.id for r in rules)
    findings: list[Finding] = []
    suppressed = 0
    n_files = 0

    for path in iter_python_files(paths):
        rel = _relpath(path, root)
        try:
            source = path.read_text()
            ctx = ModuleContext(path, rel, source)
        except (OSError, SyntaxError, ValueError) as exc:
            findings.append(
                Finding(rel, getattr(exc, "lineno", 1) or 1, "parse",
                        f"cannot analyze module: {exc}")
            )
            continue
        n_files += 1
        for rule in rules:
            if not rule.applies(ctx):
                continue
            for f in rule.check_module(ctx):
                if ctx.suppressed(f):
                    suppressed += 1
                else:
                    findings.append(f)
        if hygiene:
            for sup in ctx.suppressions:
                if not sup.justified:
                    findings.append(ctx.finding(
                        sup.line, "suppression",
                        "suppression lacks a justification — add a short "
                        "reason after the bracket",
                    ))
                if not sup.used and sup.rules <= executed:
                    findings.append(ctx.finding(
                        sup.line, "suppression",
                        "unused suppression for "
                        f"[{', '.join(sorted(sup.rules))}] — the rule no "
                        "longer fires here; delete the comment",
                    ))

    if project and root is not None:
        root = Path(root)
        if (root / "API.md").is_file() and (root / "src" / "repro").is_dir():
            pctx = ProjectContext(root=root)
            for rule in rules:
                findings.extend(rule.check_project(pctx))

    findings.sort()
    return AnalysisReport(
        findings=findings,
        suppressed=suppressed,
        files=n_files,
        rules=tuple(sorted(executed)),
    )


def format_text(report: AnalysisReport) -> str:
    out = [str(f) for f in report.findings]
    out.append(
        f"{len(report.findings)} finding(s), {report.suppressed} "
        f"suppressed, {report.files} file(s) checked "
        f"[rules: {', '.join(report.rules)}]"
    )
    return "\n".join(out)


def format_json(report: AnalysisReport) -> str:
    return json.dumps(
        {
            "findings": [dataclasses.asdict(f) for f in report.findings],
            "suppressed": report.suppressed,
            "files": report.files,
            "rules": list(report.rules),
        },
        indent=2,
        sort_keys=True,
    )


# -- shared AST helpers (used by several rules) -----------------------

def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def self_attr(node: ast.AST) -> str | None:
    """``X`` when ``node`` is exactly ``self.X``, else ``None``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def walk_shallow(
    node: ast.AST, *, skip: tuple[type, ...] = ()
) -> Iterator[ast.AST]:
    """Like :func:`ast.walk` but does not descend into ``skip`` nodes."""
    stack = list(ast.iter_child_nodes(node))
    while stack:
        child = stack.pop()
        if isinstance(child, skip):
            continue
        yield child
        stack.extend(ast.iter_child_nodes(child))


def const_names(node: ast.AST) -> set[str]:
    """String constants inside a set/tuple/list/call literal."""
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


Visitor = Callable[[ast.AST], None]
