"""High-level ``solve`` entry point: pick the right algorithm for the
instance and return a named :class:`~repro.sched.schedule.Schedule`.

Dispatch rules (mirroring the paper's Section IV structure):

* ``method="auto"`` — SINGLEPROC-UNIT instances get the exact
  polynomial algorithm; everything else gets the strongest heuristic the
  paper recommends for its weight class (EVG for weighted hypergraphs,
  VGH for unit hypergraphs, expected/sorted greedy for bipartite), plus
  an optional local-search refinement;
* any registry name (``"SGH"``, ``"EVG"``, ``"sorted-greedy"``, ...)
  forces that algorithm;
* ``method="grasp"`` runs the multi-start metaheuristic (slowest, best);
* ``method="exhaustive"`` runs the branch-and-bound oracle (tiny
  instances only).
"""

from __future__ import annotations

import numpy as np

from ..algorithms.exact_unit import exact_singleproc_unit
from ..algorithms.exhaustive import exhaustive_multiproc
from ..algorithms.local_search import local_search
from ..algorithms.registry import (
    BIPARTITE_ALGORITHMS,
    HYPERGRAPH_ALGORITHMS,
)
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from .model import SchedulingProblem
from .schedule import Schedule

__all__ = ["solve"]


def _lift_bipartite_result(
    problem: SchedulingProblem, hg: TaskHypergraph, name: str
) -> HyperSemiMatching:
    """Run a bipartite algorithm on a singleproc problem, as hyperedges."""
    graph = problem.to_bipartite()
    sm = BIPARTITE_ALGORITHMS[name](graph)
    # to_hypergraph emits hyperedges task-major in configuration order,
    # exactly like the bipartite CSR slices: indices map one-to-one.
    return HyperSemiMatching(hg, sm.edge_of_task)


def solve(
    problem: SchedulingProblem,
    *,
    method: str = "auto",
    refine: bool = False,
) -> Schedule:
    """Solve a :class:`SchedulingProblem` and return a :class:`Schedule`.

    ``refine=True`` post-processes heuristic solutions with
    :func:`repro.algorithms.local_search` (never worsens the makespan).
    """
    if problem.n_tasks == 0:
        hg = problem.to_hypergraph()
        return Schedule(
            problem, HyperSemiMatching(hg, np.empty(0, dtype=np.int64))
        )
    hg = problem.to_hypergraph()

    if method == "auto":
        if problem.is_singleproc and problem.is_unit:
            matching = _lift_bipartite_result(problem, hg, "exact")
            return Schedule(problem, matching)
        if problem.is_singleproc:
            matching = _lift_bipartite_result(problem, hg, "expected-greedy")
        elif hg.is_unit:
            matching = HYPERGRAPH_ALGORITHMS["VGH"](hg)
        else:
            matching = HYPERGRAPH_ALGORITHMS["EVG"](hg)
    elif method == "exhaustive":
        matching = exhaustive_multiproc(hg)
    elif method == "grasp":
        from ..algorithms.grasp import grasp

        matching = grasp(hg, seed=0).matching
    elif method in HYPERGRAPH_ALGORITHMS:
        matching = HYPERGRAPH_ALGORITHMS[method](hg)
    elif method in BIPARTITE_ALGORITHMS:
        if not problem.is_singleproc:
            raise ValueError(
                f"{method!r} is a SINGLEPROC algorithm but the problem "
                "has parallel tasks"
            )
        matching = _lift_bipartite_result(problem, hg, method)
    else:
        known = sorted(
            {"auto", "exhaustive", "grasp"}
            | set(HYPERGRAPH_ALGORITHMS)
            | set(BIPARTITE_ALGORITHMS)
        )
        raise ValueError(f"unknown method {method!r}; known: {known}")

    if refine and method != "exhaustive":
        matching = local_search(matching).matching
    return Schedule(problem, matching)
