"""High-level ``solve`` entry point: pick the right algorithm for the
instance and return a named :class:`~repro.sched.schedule.Schedule`.

Since the batch engine landed, this is a thin veneer over
:mod:`repro.engine`: the dispatch rules (mirroring the paper's Section IV
structure) live in :func:`repro.engine.dispatch.solve_hypergraph`, and
``solve`` routes through the shared default engine so single-instance
calls hit the same content-addressed result cache as batch runs and
sweeps.

Dispatch summary:

* ``method="auto"`` — SINGLEPROC-UNIT instances get the exact
  polynomial algorithm; everything else gets the strongest heuristic the
  paper recommends for its weight class (EVG for weighted hypergraphs,
  VGH for unit hypergraphs, expected/sorted greedy for bipartite), plus
  an optional local-search refinement;
* any registry name (``"SGH"``, ``"EVG"``, ``"sorted-greedy"``, ...)
  forces that algorithm;
* ``method="grasp"`` runs the multi-start metaheuristic (slowest, best);
* ``method="exhaustive"`` runs the branch-and-bound oracle (tiny
  instances only);
* ``method="portfolio"`` races the default portfolio
  (:data:`repro.engine.DEFAULT_PORTFOLIO`) and keeps the best makespan.

For many instances at once, use :func:`repro.engine.solve_many` — same
semantics, pooled execution.
"""

from __future__ import annotations

from .model import SchedulingProblem
from .schedule import Schedule

__all__ = ["solve"]


def solve(
    problem: SchedulingProblem,
    *,
    method: str = "auto",
    refine: bool = False,
) -> Schedule:
    """Solve a :class:`SchedulingProblem` and return a :class:`Schedule`.

    ``refine=True`` post-processes heuristic solutions with
    :func:`repro.algorithms.local_search` (never worsens the makespan).
    """
    from ..engine.batch import default_engine

    return default_engine().solve(problem, method=method, refine=refine)
