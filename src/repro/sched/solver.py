"""High-level ``solve`` entry point: pick the right algorithm for the
instance and return a rich :class:`~repro.api.SolveResult`.

Since the unified API landed, this is a thin veneer over
:func:`repro.api.solve`: method strings (including composable forms like
``"EVG+ls"`` and ``"portfolio(SGH,grasp)"``) normalize into
:class:`~repro.api.SolveOptions`, dispatch is a registry query (see
:mod:`repro.api.solvers` for what ``"auto"`` selects), and ``solve``
routes through the shared default engine so single-instance calls hit
the same content-addressed result cache as batch runs and sweeps.

The returned :class:`~repro.api.SolveResult` exposes the full
:class:`~repro.sched.schedule.Schedule` surface (``makespan``,
``allocation()``, ``timeline()``, ``gantt()``, ...) plus provenance:
the winning solver, wall time, lower bound and optimality gap, and the
cache-hit flag.

For many instances at once, use :func:`repro.engine.solve_many` — same
semantics, pooled execution.
"""

from __future__ import annotations

from .model import SchedulingProblem

__all__ = ["solve"]


def solve(
    problem: SchedulingProblem,
    *,
    method: str = "auto",
    refine: bool = False,
    seed: int = 0,
    time_budget: float | None = None,
    backend: str = "numpy",
    options=None,
):
    """Solve a :class:`SchedulingProblem`; returns a
    :class:`~repro.api.SolveResult` carrying the schedule.

    ``refine=True`` post-processes heuristic solutions with
    :func:`repro.algorithms.local_search` (never worsens the makespan).
    ``backend`` selects the kernel execution path for backend-aware
    solvers ("numpy" kernels vs the bit-identical "python" oracle).
    Pass a prepared :class:`~repro.api.SolveOptions` via ``options=`` to
    override all other keywords.
    """
    from ..api import solve as api_solve

    if options is not None:
        return api_solve(problem, options=options)
    return api_solve(
        problem,
        method=method,
        refine=refine,
        seed=seed,
        time_budget=time_budget,
        backend=backend,
    )
