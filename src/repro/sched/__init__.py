"""User-facing scheduling layer: named problems, solve(), schedules."""

from .model import SchedulingProblem, TaskSpec
from .schedule import PlacedPart, Schedule
from .solver import solve

__all__ = ["SchedulingProblem", "TaskSpec", "Schedule", "PlacedPart", "solve"]
