"""Schedules: named, human-readable views of semi-matching results.

A :class:`Schedule` binds a :class:`~repro.sched.model.SchedulingProblem`
to a solved assignment.  Because the paper's model lets the parts of a
parallel task run at *different* times on their processors (the concurrent
job shop relaxation, Section I), a schedule here is an assignment plus
per-processor orderings, and the makespan is simply the maximum processor
load; :meth:`timeline` materialises one concrete executable timetable by
running every processor's queue back to back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..core.semimatching import HyperSemiMatching
from .model import SchedulingProblem

__all__ = ["Schedule", "PlacedPart"]


@dataclass(frozen=True)
class PlacedPart:
    """One part of a task on one processor in a concrete timetable."""

    task: Hashable
    processor: Hashable
    start: float
    end: float


@dataclass(frozen=True)
class Schedule:
    """A solved scheduling problem.

    Attributes
    ----------
    problem:
        The original named problem.
    matching:
        The underlying hypergraph semi-matching (configuration choice per
        task).
    """

    problem: SchedulingProblem
    matching: HyperSemiMatching

    @property
    def makespan(self) -> float:
        """Maximum processor load — the objective of the paper."""
        return self.matching.makespan

    def allocation(self) -> dict[Hashable, tuple[Hashable, ...]]:
        """Chosen processor set per task name (the paper's ``alloc``)."""
        out: dict[Hashable, tuple[Hashable, ...]] = {}
        for i, spec in enumerate(self.problem.tasks):
            procs = self.matching.alloc(i)
            out[spec.name] = tuple(
                self.problem.proc_name(int(u)) for u in procs
            )
        return out

    def loads(self) -> dict[Hashable, float]:
        """Load per processor name."""
        arr = self.matching.loads()
        return {
            self.problem.proc_name(u): float(arr[u])
            for u in range(self.problem.n_procs)
        }

    def timeline(self) -> list[PlacedPart]:
        """A concrete timetable: each processor runs its parts back to back.

        Parts are ordered by task insertion order per processor; the
        latest ``end`` equals :attr:`makespan` (loads are contiguous).
        """
        cursor = np.zeros(self.problem.n_procs, dtype=np.float64)
        parts: list[PlacedPart] = []
        hg = self.matching.hypergraph
        for i, spec in enumerate(self.problem.tasks):
            h = int(self.matching.hedge_of_task[i])
            w = float(hg.hedge_w[h])
            for u in self.matching.alloc(i):
                u = int(u)
                parts.append(
                    PlacedPart(
                        task=spec.name,
                        processor=self.problem.proc_name(u),
                        start=float(cursor[u]),
                        end=float(cursor[u] + w),
                    )
                )
                cursor[u] += w
        return parts

    def gantt(self, width: int = 60) -> str:
        """ASCII Gantt chart of :meth:`timeline` (one row per processor)."""
        parts = self.timeline()
        mk = self.makespan or 1.0
        rows = []
        name_w = max(
            (len(str(p)) for p in self.problem.processors), default=0
        )
        for proc in self.problem.processors:
            row = [" "] * width
            for part in parts:
                if part.processor != proc:
                    continue
                lo = int(part.start / mk * (width - 1))
                hi = max(lo + 1, int(np.ceil(part.end / mk * (width - 1))))
                label = str(part.task)[0] if str(part.task) else "#"
                for x in range(lo, min(hi, width)):
                    row[x] = label
            rows.append(f"{str(proc):>{name_w}} |{''.join(row)}|")
        header = f"{'':>{name_w}}  makespan = {mk:g}"
        return "\n".join([header, *rows])

    def summary(self) -> str:
        """Multi-line human-readable description."""
        loads = self.matching.loads()
        lines = [
            f"Schedule: {self.problem.n_tasks} tasks on "
            f"{self.problem.n_procs} processors",
            f"  makespan     : {self.makespan:g}",
            f"  mean load    : {loads.mean():.4g}",
            f"  idle procs   : {int(np.sum(loads == 0))}",
        ]
        return "\n".join(lines)
