"""User-facing scheduling model (the paper's problem statement, Section II).

:class:`SchedulingProblem` lets a user state the problem in scheduling
vocabulary — named tasks, named processors, per-task *configurations*
(sets of processors with an execution time) — and converts it to the graph
and hypergraph forms the algorithms operate on.

Example
-------
>>> prob = SchedulingProblem(processors=["cpu0", "cpu1", "gpu"])
>>> prob.add_task("render", [(("gpu",), 2.0), (("cpu0", "cpu1"), 5.0)])
>>> prob.add_task("encode", [(("cpu0",), 3.0), (("cpu1",), 3.0)])
>>> hg = prob.to_hypergraph()
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import GraphStructureError
from ..core.hypergraph import TaskHypergraph

__all__ = ["TaskSpec", "SchedulingProblem"]


@dataclass(frozen=True)
class TaskSpec:
    """One task: a name plus its configurations.

    ``configurations[j]`` is a pair ``(processors, time)``: the processor
    names of the ``j``-th configuration ``S_i[j]`` and the execution time
    ``w`` the task takes on *each* of them when run in that configuration.
    """

    name: Hashable
    configurations: tuple[tuple[tuple[Hashable, ...], float], ...]

    def __post_init__(self) -> None:
        if not self.configurations:
            raise GraphStructureError(
                f"task {self.name!r} needs at least one configuration"
            )
        for procs, time in self.configurations:
            if not procs:
                raise GraphStructureError(
                    f"task {self.name!r} has an empty processor set"
                )
            if len(set(procs)) != len(procs):
                raise GraphStructureError(
                    f"task {self.name!r} repeats a processor in a "
                    "configuration"
                )
            if not (time > 0 and np.isfinite(time)):
                raise GraphStructureError(
                    f"task {self.name!r} has non-positive time {time!r}"
                )

    @property
    def is_sequential(self) -> bool:
        """True when every configuration uses a single processor."""
        return all(len(procs) == 1 for procs, _ in self.configurations)


@dataclass
class SchedulingProblem:
    """A MULTIPROC/SINGLEPROC instance under construction.

    Processors are fixed at creation; tasks are added with
    :meth:`add_task`.  Conversion helpers produce the core graph objects
    plus the name maps needed to interpret results.
    """

    processors: Sequence[Hashable]
    tasks: list[TaskSpec] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.processors = list(self.processors)
        if len(set(self.processors)) != len(self.processors):
            raise GraphStructureError("duplicate processor names")
        self._proc_index = {p: i for i, p in enumerate(self.processors)}

    # ------------------------------------------------------------------
    def add_task(
        self,
        name: Hashable,
        configurations: Iterable[tuple[Iterable[Hashable], float]],
    ) -> TaskSpec:
        """Add a task; returns its :class:`TaskSpec`.

        ``configurations`` is an iterable of ``(processors, time)`` pairs.
        Unknown processor names raise :class:`GraphStructureError`.
        """
        confs = []
        for procs, time in configurations:
            procs = tuple(procs)
            for pr in procs:
                if pr not in self._proc_index:
                    raise GraphStructureError(
                        f"unknown processor {pr!r} in task {name!r}"
                    )
            confs.append((procs, float(time)))
        spec = TaskSpec(name=name, configurations=tuple(confs))
        self.tasks.append(spec)
        return spec

    def add_sequential_task(
        self,
        name: Hashable,
        options: Iterable[tuple[Hashable, float]],
    ) -> TaskSpec:
        """Add a SINGLEPROC-style task: ``(processor, time)`` options."""
        return self.add_task(name, (((pr,), t) for pr, t in options))

    # ------------------------------------------------------------------
    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    @property
    def n_procs(self) -> int:
        return len(self.processors)

    @property
    def is_singleproc(self) -> bool:
        """True when every task is sequential (bipartite instance)."""
        return all(t.is_sequential for t in self.tasks)

    @property
    def is_unit(self) -> bool:
        """True when every configuration takes unit time."""
        return all(
            t == 1.0 for spec in self.tasks for _, t in spec.configurations
        )

    def proc_index(self, name: Hashable) -> int:
        """Numeric id of a processor name."""
        return self._proc_index[name]

    def proc_name(self, index: int) -> Hashable:
        """Processor name of a numeric id."""
        return self.processors[index]

    # ------------------------------------------------------------------
    def to_hypergraph(self) -> TaskHypergraph:
        """The MULTIPROC hypergraph of this problem.

        Hyperedges are emitted task-major in configuration order, so
        hyperedge ids group exactly like ``task_ptr`` slices.
        """
        hedge_task: list[int] = []
        pins: list[list[int]] = []
        weights: list[float] = []
        for i, spec in enumerate(self.tasks):
            for procs, time in spec.configurations:
                hedge_task.append(i)
                pins.append([self._proc_index[p] for p in procs])
                weights.append(time)
        return TaskHypergraph.from_hyperedges(
            self.n_tasks,
            self.n_procs,
            np.asarray(hedge_task, dtype=np.int64),
            pins,
            np.asarray(weights, dtype=np.float64),
        )

    def to_bipartite(self) -> BipartiteGraph:
        """The SINGLEPROC bipartite graph; raises if a task is parallel."""
        if not self.is_singleproc:
            bad = next(t.name for t in self.tasks if not t.is_sequential)
            raise GraphStructureError(
                f"task {bad!r} has a multi-processor configuration; "
                "this is a MULTIPROC instance — use to_hypergraph()"
            )
        nbrs = []
        weights = []
        for spec in self.tasks:
            nbrs.append(
                [self._proc_index[procs[0]] for procs, _ in spec.configurations]
            )
            weights.append([t for _, t in spec.configurations])
        return BipartiteGraph.from_neighbor_lists(
            nbrs, n_procs=self.n_procs, weights=weights
        )
