"""Exhaustive (branch-and-bound) optimal solvers for tiny instances.

MULTIPROC is NP-complete even unweighted (Theorem 1) and weighted
SINGLEPROC is NP-complete too, so no polynomial exact solver exists for
them; these solvers enumerate configuration choices with pruning and are
meant for instances of a few dozen tasks.  They serve as the ground-truth
oracle in the test suite (heuristic quality, Theorem 1 reduction
round-trips) and in the X3C benchmark.
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import SolverError
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching, SemiMatching
from .._util import stable_argsort

__all__ = ["exhaustive_multiproc", "exhaustive_singleproc"]

_DEFAULT_NODE_LIMIT = 5_000_000


def exhaustive_multiproc(
    hg: TaskHypergraph,
    *,
    node_limit: int = _DEFAULT_NODE_LIMIT,
    initial_upper_bound: float | None = None,
) -> HyperSemiMatching:
    """Optimal MULTIPROC semi-matching by branch and bound.

    Tasks are branched in non-increasing order of their cheapest work
    (big rocks first), loads are pruned against the best makespan found so
    far, and a per-task remaining-work bound tightens the search.  Raises
    :class:`SolverError` after ``node_limit`` search nodes.
    """
    hg.validate(require_total=True)
    n = hg.n_tasks
    if n == 0:
        return HyperSemiMatching(hg, np.empty(0, dtype=np.int64))

    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    pins_of = [
        [hprocs[hptr[h] : hptr[h + 1]] for h in hg.task_hedge_ids(i)]
        for i in range(n)
    ]
    hids_of = [hg.task_hedge_ids(i) for i in range(n)]

    # branch order: most work first, so pruning bites early
    cheapest_work = np.array(
        [
            min(w[h] * len(p_) for h, p_ in zip(hids_of[i], pins_of[i]))
            for i in range(n)
        ]
    )
    order = stable_argsort(-cheapest_work)

    # seed with a greedy solution so pruning starts tight
    from .greedy_hypergraph import sorted_greedy_hyp

    seed = sorted_greedy_hyp(hg)
    best_assign = seed.hedge_of_task.copy()
    best_mk = seed.makespan
    if initial_upper_bound is not None:
        best_mk = min(best_mk, float(initial_upper_bound))

    # suffix lower bound: cheapest-weight of each remaining task must land
    # somewhere, and remaining cheapest work spread over p processors
    cheapest_w = np.array(
        [min(float(w[h]) for h in hids_of[i]) for i in range(n)]
    )
    suffix_maxw = np.zeros(n + 1)
    suffix_work = np.zeros(n + 1)
    for k in range(n - 1, -1, -1):
        i = order[k]
        suffix_maxw[k] = max(suffix_maxw[k + 1], cheapest_w[i])
        suffix_work[k] = suffix_work[k + 1] + cheapest_work[i]

    loads = np.zeros(hg.n_procs, dtype=np.float64)
    assign = np.empty(n, dtype=np.int64)
    nodes = 0
    eps = 1e-9

    def rec(k: int, cur_max: float) -> None:
        nonlocal nodes, best_mk, best_assign
        nodes += 1
        if nodes > node_limit:
            raise SolverError(
                f"exhaustive search exceeded node_limit={node_limit}"
            )
        if cur_max >= best_mk - eps:
            return
        if k == n:
            best_mk = cur_max
            best_assign = assign.copy()
            return
        # remaining-work bound
        if max(suffix_maxw[k],
               (loads.sum() + suffix_work[k]) / hg.n_procs) >= best_mk - eps:
            return
        i = int(order[k])
        # try configurations cheapest-resulting-bottleneck first
        options = sorted(
            zip(hids_of[i], pins_of[i]),
            key=lambda hp: float(loads[hp[1]].max() + w[hp[0]]),
        )
        for h, pins in options:
            new_max = max(cur_max, float(loads[pins].max() + w[h]))
            if new_max >= best_mk - eps:
                continue
            loads[pins] += w[h]
            assign[i] = h
            rec(k + 1, new_max)
            loads[pins] -= w[h]

    rec(0, 0.0)
    return HyperSemiMatching(hg, best_assign)


def exhaustive_singleproc(
    graph: BipartiteGraph,
    *,
    node_limit: int = _DEFAULT_NODE_LIMIT,
) -> SemiMatching:
    """Optimal (possibly weighted) SINGLEPROC semi-matching for tiny graphs.

    Runs the hypergraph branch and bound on the lifted instance (each edge
    becomes a singleton configuration).
    """
    lifted = TaskHypergraph.from_bipartite(graph)
    best = exhaustive_multiproc(lifted, node_limit=node_limit)
    # hyperedges of the lifted instance are in CSR edge order, grouped per
    # task exactly like graph's CSR slices, so indices map one-to-one.
    return SemiMatching(graph, best.hedge_of_task)
