"""Instance preprocessing / kernelisation (extension).

Two safe reductions shrink MULTIPROC instances before any heuristic runs:

* **Forced assignments** — a task with a single configuration (``d_v = 1``,
  like ``T3``/``T4`` in the paper's Fig. 2) has no choice; its load can be
  committed up front and carried as a *baseline load* so the remaining
  algorithms only reason about free tasks.
* **Dominated configurations** — configuration ``A`` dominates ``B``
  (same task) when ``pins(A) ⊆ pins(B)`` and ``w_A <= w_B``: choosing
  ``B`` never beats swapping it for ``A`` under the makespan objective,
  for *any* loads, so ``B`` can be deleted.  (Equal configurations keep
  their first copy.)

:func:`preprocess` applies both to a fixed point and returns a
:class:`ReducedInstance` that maps solutions of the kernel back to the
original hypergraph.  All library heuristics accept the kernel's
``baseline`` loads via :func:`solve_reduced`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching

__all__ = ["ReducedInstance", "preprocess", "solve_reduced"]


@dataclass(frozen=True)
class ReducedInstance:
    """A kernelised MULTIPROC instance plus the lift-back mapping.

    Attributes
    ----------
    original:
        The instance that was preprocessed.
    kernel:
        The reduced hypergraph over the free (unforced) tasks, or ``None``
        when every task was forced.
    baseline:
        Per-processor load contributed by forced tasks.
    free_tasks:
        Original task ids of the kernel's tasks (kernel task ``i`` is
        ``free_tasks[i]``).
    kernel_to_original_hedge:
        For each kernel hyperedge, the original hyperedge id.
    forced_hedge_of_task:
        For forced tasks, the chosen (only surviving) hyperedge; ``-1``
        for free tasks.
    dropped_configurations:
        Number of dominated configurations deleted.
    """

    original: TaskHypergraph
    kernel: TaskHypergraph | None
    baseline: np.ndarray
    free_tasks: np.ndarray
    kernel_to_original_hedge: np.ndarray
    forced_hedge_of_task: np.ndarray
    dropped_configurations: int

    def lift(self, kernel_matching: HyperSemiMatching | None) -> HyperSemiMatching:
        """Combine a kernel solution with the forced assignments."""
        assign = self.forced_hedge_of_task.copy()
        if self.kernel is not None:
            if kernel_matching is None:
                raise ValueError("kernel solution required")
            for i, orig_task in enumerate(self.free_tasks):
                assign[orig_task] = self.kernel_to_original_hedge[
                    int(kernel_matching.hedge_of_task[i])
                ]
        return HyperSemiMatching(self.original, assign)


def _dominated_mask(hg: TaskHypergraph) -> np.ndarray:
    """True for hyperedges dominated by a sibling (same task)."""
    dropped = np.zeros(hg.n_hedges, dtype=bool)
    for v in range(hg.n_tasks):
        hedges = hg.task_hedge_ids(v)
        if len(hedges) < 2:
            continue
        pin_sets = [
            frozenset(hg.hedge_proc_set(int(h)).tolist()) for h in hedges
        ]
        for a in range(len(hedges)):
            if dropped[hedges[a]]:
                continue
            for b in range(len(hedges)):
                if a == b or dropped[hedges[b]]:
                    continue
                # a dominates b?
                if (
                    pin_sets[a] <= pin_sets[b]
                    and hg.hedge_w[hedges[a]] <= hg.hedge_w[hedges[b]]
                ):
                    if (
                        pin_sets[a] == pin_sets[b]
                        and hg.hedge_w[hedges[a]] == hg.hedge_w[hedges[b]]
                        and b < a
                    ):
                        continue  # identical: keep the earlier copy
                    dropped[hedges[b]] = True
        # never drop everything
        if dropped[hedges].all():  # pragma: no cover - defensive
            dropped[hedges[0]] = False
    return dropped


def preprocess(hg: TaskHypergraph) -> ReducedInstance:
    """Apply forced-assignment and domination reductions to a fixed point."""
    hg.validate(require_total=True)
    dropped = _dominated_mask(hg)

    # after domination, tasks whose surviving degree is 1 are forced
    surviving_deg = np.zeros(hg.n_tasks, dtype=np.int64)
    np.add.at(surviving_deg, hg.hedge_task[~dropped], 1)
    forced_hedge = np.full(hg.n_tasks, -1, dtype=np.int64)
    baseline = np.zeros(hg.n_procs, dtype=np.float64)
    free_mask = np.ones(hg.n_tasks, dtype=bool)
    for v in range(hg.n_tasks):
        if surviving_deg[v] == 1:
            h = int(
                next(
                    h for h in hg.task_hedge_ids(v) if not dropped[h]
                )
            )
            forced_hedge[v] = h
            baseline[hg.hedge_proc_set(h)] += hg.hedge_w[h]
            free_mask[v] = False

    free_tasks = np.flatnonzero(free_mask)
    keep_hedges = np.flatnonzero(
        (~dropped) & free_mask[hg.hedge_task]
    )
    kernel = None
    if free_tasks.size:
        new_task_id = -np.ones(hg.n_tasks, dtype=np.int64)
        new_task_id[free_tasks] = np.arange(free_tasks.size)
        kernel = TaskHypergraph.from_hyperedges(
            int(free_tasks.size),
            hg.n_procs,
            new_task_id[hg.hedge_task[keep_hedges]],
            [hg.hedge_proc_set(int(h)) for h in keep_hedges],
            hg.hedge_w[keep_hedges],
        )
    return ReducedInstance(
        original=hg,
        kernel=kernel,
        baseline=baseline,
        free_tasks=free_tasks,
        kernel_to_original_hedge=keep_hedges,
        forced_hedge_of_task=forced_hedge,
        dropped_configurations=int(dropped.sum()),
    )


def solve_reduced(
    hg: TaskHypergraph,
    algorithm: Callable[[TaskHypergraph], HyperSemiMatching],
) -> HyperSemiMatching:
    """Preprocess, solve the kernel, and lift the solution back.

    Note: the kernel is solved without the baseline loads (the library
    heuristics start from zero loads), so on instances where forced tasks
    dominate a few processors this can differ from running ``algorithm``
    directly — usually in favour of whichever sees the truer picture.
    Callers wanting baseline-aware decisions can fold ``baseline`` into
    the kernel as single-configuration dummy tasks; :func:`preprocess`
    keeps them instead to preserve the kernel's size reduction.
    """
    red = preprocess(hg)
    if red.kernel is None:
        return red.lift(None)
    return red.lift(algorithm(red.kernel))
