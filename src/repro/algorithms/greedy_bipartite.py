"""Greedy semi-matching heuristics for bipartite graphs (paper Section IV-B).

Four heuristics, in increasing order of sophistication:

* :func:`basic_greedy` (Algorithm 1) — visit tasks in index order, assign
  each to its least-loaded eligible processor;
* :func:`sorted_greedy` — same, visiting tasks by non-decreasing degree
  (tasks with fewer choices commit first);
* :func:`double_sorted` (Algorithm 2) — sorted visiting plus a
  processor-in-degree tie-break;
* :func:`expected_greedy` (Algorithm 3) — sorted visiting on *expected*
  loads ``o(u)``: each unassigned task spreads its weight uniformly over
  its options, and committing a task collapses that distribution.

The paper analyses the unit-weight case; all four extend verbatim to
weighted edges (each edge contributes its own weight), which this module
implements so the same code serves SINGLEPROC as well.

All heuristics run in ``O(|E|)`` time (plus the initial ``O(n log n)``
sort) and return a :class:`repro.core.SemiMatching`.
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import InfeasibleError
from ..core.semimatching import SemiMatching
from .._util import stable_argsort

__all__ = [
    "basic_greedy",
    "sorted_greedy",
    "double_sorted",
    "expected_greedy",
    "greedy_assign",
]


def _check_feasible(graph: BipartiteGraph) -> None:
    if np.any(np.diff(graph.task_ptr) == 0):
        bad = int(np.flatnonzero(np.diff(graph.task_ptr) == 0)[0])
        raise InfeasibleError(f"task {bad} has no eligible processor")


def _visit_order(graph: BipartiteGraph, sort_by_degree: bool) -> np.ndarray:
    if sort_by_degree:
        return stable_argsort(graph.task_degrees())
    return np.arange(graph.n_tasks, dtype=np.int64)


def greedy_assign(
    graph: BipartiteGraph,
    order: np.ndarray,
    *,
    lookahead: bool = True,
    proc_degree_tiebreak: bool = False,
) -> SemiMatching:
    """Shared greedy core: assign tasks in ``order`` to min-key edges.

    The key of edge ``e = (v, u)`` is the load ``l(u)`` (pseudocode-literal,
    ``lookahead=False``) or the resulting load ``l(u) + w(e)``
    (``lookahead=True``; identical selections on unit weights).  With
    ``proc_degree_tiebreak`` ties are broken towards processors of smaller
    in-degree, the double-sorted rule; following Algorithm 2's ``<=``
    comparison the *last* edge wins among full ties, whereas the plain rule
    keeps the first.
    """
    _check_feasible(graph)
    loads = np.zeros(graph.n_procs, dtype=np.float64)
    edge_of_task = np.empty(graph.n_tasks, dtype=np.int64)
    pdeg = graph.proc_degrees().astype(np.float64)
    ptr, adj, w = graph.task_ptr, graph.task_adj, graph.weights

    for v in order:
        lo, hi = int(ptr[v]), int(ptr[v + 1])
        nbrs = adj[lo:hi]
        keys = loads[nbrs] + (w[lo:hi] if lookahead else 0.0)
        if proc_degree_tiebreak:
            # primary: key; secondary: processor in-degree; ties: last wins
            # (mirrors Algorithm 2's `<=` update condition).
            rev = np.arange(hi - lo, 0, -1, dtype=np.float64)
            k = int(np.lexsort((rev, pdeg[nbrs], keys))[0])
        else:
            k = int(np.argmin(keys))
        e = lo + k
        edge_of_task[v] = e
        loads[adj[e]] += w[e]

    return SemiMatching(graph, edge_of_task)


def basic_greedy(
    graph: BipartiteGraph, *, lookahead: bool = True
) -> SemiMatching:
    """Algorithm 1: tasks in index order, least-loaded eligible processor.

    ``O(|E|)``.  No approximation guarantee — Fig. 3's family drives it a
    factor ``k`` from optimal for any ``k``.
    """
    return greedy_assign(
        graph, _visit_order(graph, sort_by_degree=False), lookahead=lookahead
    )


def sorted_greedy(
    graph: BipartiteGraph, *, lookahead: bool = True
) -> SemiMatching:
    """Sorted-greedy: tasks by non-decreasing degree, then as basic-greedy.

    Scheduling constrained tasks first fixes the Fig. 1 toy failure of
    basic-greedy; Fig. 3 still defeats it.
    """
    return greedy_assign(
        graph, _visit_order(graph, sort_by_degree=True), lookahead=lookahead
    )


def double_sorted(
    graph: BipartiteGraph, *, lookahead: bool = True
) -> SemiMatching:
    """Algorithm 2: sorted-greedy plus processor-in-degree tie-breaking."""
    return greedy_assign(
        graph,
        _visit_order(graph, sort_by_degree=True),
        lookahead=lookahead,
        proc_degree_tiebreak=True,
    )


def expected_greedy(
    graph: BipartiteGraph,
    *,
    sort_by_degree: bool = True,
) -> SemiMatching:
    """Algorithm 3: greedy on expected loads ``o(u)``.

    ``o(u)`` starts as the expected load of ``u`` if every task chose one
    of its options uniformly at random (edge ``(v, u)`` contributes
    ``w(v,u)/d_v``).  Assigning ``v`` to ``u`` collapses the distribution:
    ``u`` receives the full weight, ``v``'s other options lose their
    share.  On termination ``o`` equals the actual loads, so the running
    maximum of ``o`` is the makespan.  ``O(|E|)``.
    """
    _check_feasible(graph)
    ptr, adj, w = graph.task_ptr, graph.task_adj, graph.weights
    deg = graph.task_degrees().astype(np.float64)

    o = np.zeros(graph.n_procs, dtype=np.float64)
    contrib = w / np.repeat(deg, np.diff(ptr))  # w(e)/d_v per edge
    np.add.at(o, adj, contrib)

    edge_of_task = np.empty(graph.n_tasks, dtype=np.int64)
    for v in _visit_order(graph, sort_by_degree):
        lo, hi = int(ptr[v]), int(ptr[v + 1])
        nbrs = adj[lo:hi]
        k = int(np.argmin(o[nbrs]))
        e = lo + k
        edge_of_task[v] = e
        # collapse: chosen edge realises its full weight, siblings vanish
        o[nbrs] -= contrib[lo:hi]
        o[adj[e]] += w[e]

    return SemiMatching(graph, edge_of_task)
