"""GRASP metaheuristic for MULTIPROC (extension).

The paper's future work asks for stronger algorithms; the natural
metaheuristic on top of its building blocks is GRASP — *greedy randomised
adaptive search procedure*:

1. **construction**: a randomised variant of sorted-greedy-hyp — instead
   of always taking the best configuration, draw uniformly from the
   restricted candidate list (RCL) of configurations whose resulting
   bottleneck is within ``alpha`` of the best;
2. **improvement**: the library's vector-lex local search;
3. repeat for ``iterations`` independent starts and keep the best.

``alpha = 0`` degenerates to deterministic SGH + local search; larger
``alpha`` trades construction quality for diversity.  The default
settings beat every single-shot heuristic of the paper on the weighted
benchmark families at a few times their cost (see
``benchmarks/bench_grasp.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.errors import InfeasibleError
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..kernels import check_backend, compile_instance
from .._util import as_rng, stable_argsort
from .local_search import local_search

__all__ = ["grasp", "GraspReport", "randomized_greedy"]


@dataclass(frozen=True)
class GraspReport:
    """Best matching found plus per-iteration diagnostics."""

    matching: HyperSemiMatching
    iteration_makespans: tuple[float, ...]
    best_iteration: int

    @property
    def best_makespan(self) -> float:
        return self.matching.makespan


def randomized_greedy(
    hg: TaskHypergraph,
    *,
    alpha: float = 0.1,
    seed: int | np.random.Generator | None = None,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """One randomised sorted-greedy-hyp construction.

    For each task (by non-decreasing degree) the RCL holds every
    configuration whose resulting bottleneck is within
    ``best + alpha * max(best, 1)``; the choice is uniform over the RCL.
    Both backends compute identical candidate keys (hence identical
    RCLs), so for a fixed seed they draw identical assignments.
    """
    if alpha < 0:
        raise ValueError("alpha must be non-negative")
    check_backend(backend)
    if np.any(np.diff(hg.task_ptr) == 0):
        bad = int(np.flatnonzero(np.diff(hg.task_ptr) == 0)[0])
        raise InfeasibleError(f"task {bad} has no configuration")
    rng = as_rng(seed)
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    assign = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w

    if backend == "numpy":
        ci = compile_instance(hg)
        tptr = hg.task_ptr
        gptr, gpins, gw, ghedge = ci.g_ptr, ci.g_pins, ci.g_w, ci.g_hedge
        for v in stable_argsort(hg.task_degrees()):
            a, b = tptr[v], tptr[v + 1]
            p0 = gptr[a]
            # max(l(u)) + w == max(l(u) + w): fold the lookahead into
            # the reduceat so one call yields every candidate's key
            keys = np.maximum.reduceat(
                loads[gpins[p0 : gptr[b]]] + ci.g_pin_w[p0 : gptr[b]],
                gptr[a:b] - p0,
            )
            best = keys.min()
            rcl = np.flatnonzero(keys <= best + alpha * max(best, 1.0))
            k = a + int(rng.choice(rcl))
            h = int(ghedge[k])
            assign[v] = h
            loads[hprocs[hptr[h] : hptr[h + 1]]] += w[h]
        return HyperSemiMatching(hg, assign)

    for v in stable_argsort(hg.task_degrees()):
        hedges = hg.task_hedge_ids(v)
        keys = np.array(
            [
                loads[hprocs[hptr[h] : hptr[h + 1]]].max() + w[h]
                for h in hedges
            ]
        )
        best = keys.min()
        rcl = np.flatnonzero(keys <= best + alpha * max(best, 1.0))
        h = int(hedges[rng.choice(rcl)])
        assign[v] = h
        loads[hprocs[hptr[h] : hptr[h + 1]]] += w[h]

    return HyperSemiMatching(hg, assign)


def grasp(
    hg: TaskHypergraph,
    *,
    iterations: int = 8,
    alpha: float = 0.1,
    seed: int | np.random.Generator | None = None,
    improve: bool = True,
    max_ls_rounds: int = 200,
    backend: str = "numpy",
) -> GraspReport:
    """Multi-start randomised greedy with local-search improvement.

    Deterministic given ``seed``.  Never returns a worse makespan than
    the best single construction it performed.
    """
    if iterations < 1:
        raise ValueError("iterations must be at least 1")
    check_backend(backend)
    rng = as_rng(seed)
    best: HyperSemiMatching | None = None
    best_iter = 0
    history: list[float] = []
    for it in range(iterations):
        m = randomized_greedy(
            hg, alpha=alpha if it else 0.0, seed=rng, backend=backend
        )
        if improve:
            m = local_search(
                m, max_rounds=max_ls_rounds, backend=backend
            ).matching
        history.append(m.makespan)
        if best is None or m.makespan < best.makespan:
            best = m
            best_iter = it
    return GraspReport(
        matching=best,
        iteration_makespans=tuple(history),
        best_iteration=best_iter,
    )
