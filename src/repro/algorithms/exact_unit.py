"""Exact polynomial-time algorithm for SINGLEPROC-UNIT (paper Section IV-A).

The paper's conceptually simple exact scheme: a makespan of ``D`` is
feasible iff the bipartite graph ``G_D`` — ``D`` copies of every processor,
same neighbourhoods — has a matching covering all tasks.  Equivalently
(and how we implement it): a *capacitated* matching with per-processor
capacity ``D`` covers all tasks.

Two search strategies over ``D``:

* ``"linear"`` — the paper's main loop: try ``D = 1, 2, 3, ...`` until
  feasible; total cost ``O(sqrt(|V1|) |E| M_opt^2)`` as analysed in the
  paper;
* ``"bisection"`` — the improvement the paper notes in passing: bracket
  with the sorted-greedy upper bound and binary search, for a
  ``log(M_opt)`` number of matching runs.

Any engine from :mod:`repro.matching` can serve as the matching black box.
The default is the native capacitated Kuhn engine: it handles capacities
without materialising processor copies and is empirically the fastest on
the paper's instance families.  (The scipy backend — C Hopcroft-Karp on
the explicitly replicated graph — can stall on large-capacity
replications of the tight-group FewgManyg instances; see
``benchmarks/bench_matching_engines.py`` for the comparison.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import InfeasibleError, SolverError
from ..core.semimatching import SemiMatching
from ..matching import get_engine
from .greedy_bipartite import sorted_greedy

__all__ = ["exact_singleproc_unit", "ExactUnitReport", "feasible_makespan"]


@dataclass(frozen=True)
class ExactUnitReport:
    """Result of the exact algorithm plus search diagnostics.

    Attributes
    ----------
    matching:
        An optimal semi-matching (makespan equals ``optimal_makespan``).
    optimal_makespan:
        The minimum achievable makespan ``M_opt``.
    probes:
        The sequence of ``(D, feasible)`` probes the search performed —
        exposed so tests and benchmarks can count matching invocations.
    """

    matching: SemiMatching
    optimal_makespan: int
    probes: tuple[tuple[int, bool], ...]


def feasible_makespan(
    graph: BipartiteGraph, deadline: int, engine: str = "kuhn"
):
    """Decide whether makespan ``<= deadline`` is feasible for a unit graph.

    Returns the engine's :class:`~repro.matching.base.MatchingResult`; the
    deadline is feasible iff the matching is left-perfect.
    """
    if deadline < 1:
        raise ValueError("deadline must be at least 1")
    run = get_engine(engine)
    return run(
        graph.n_tasks,
        graph.n_procs,
        graph.task_ptr,
        graph.task_adj,
        cap=deadline,
    )


def exact_singleproc_unit(
    graph: BipartiteGraph,
    *,
    strategy: str = "bisection",
    engine: str = "kuhn",
) -> ExactUnitReport:
    """Minimum-makespan semi-matching for a unit-weight bipartite graph.

    Raises :class:`SolverError` on weighted graphs (the weighted problem
    is NP-complete; use the heuristics or the exhaustive solver) and
    :class:`InfeasibleError` when some task has no eligible processor.
    """
    if not graph.is_unit:
        raise SolverError(
            "the exact algorithm only applies to SINGLEPROC-UNIT; "
            "got a weighted graph"
        )
    if graph.n_tasks == 0:
        empty = SemiMatching(graph, np.empty(0, dtype=np.int64))
        return ExactUnitReport(empty, 0, ())
    graph.validate(require_total=True)
    if strategy not in ("linear", "bisection"):
        raise ValueError(
            f"strategy must be 'linear' or 'bisection', got {strategy!r}"
        )

    probes: list[tuple[int, bool]] = []

    def probe(d: int):
        # capacity short-circuit: d*p slots cannot host n tasks.  This
        # keeps the paper's linear scan from paying for matching runs that
        # are infeasible by counting alone (push-relabel in particular
        # proves infeasibility slowly).
        if d * graph.n_procs < graph.n_tasks:
            probes.append((d, False))
            return None
        res = feasible_makespan(graph, d, engine)
        ok = res.is_left_perfect()
        probes.append((d, ok))
        return res if ok else None

    if strategy == "linear":
        d = 1
        while True:
            res = probe(d)
            if res is not None:
                break
            d += 1
    else:
        # Lower bracket: every task needs one unit somewhere, so
        # ceil(n / p) is always a valid lower bound; sorted-greedy gives a
        # feasible upper bracket.
        ub = int(round(sorted_greedy(graph).makespan))
        lo = max(1, -(-graph.n_tasks // graph.n_procs))
        hi = max(lo, ub)
        res_hi = None
        while lo < hi:
            mid = (lo + hi) // 2
            r = probe(mid)
            if r is not None:
                hi = mid
                res_hi = r
            else:
                lo = mid + 1
        d = hi
        res = res_hi if res_hi is not None else probe(d)
        if res is None:  # pragma: no cover - greedy UB is always feasible
            raise InfeasibleError("no feasible makespan found below bracket")

    matching = SemiMatching.from_proc_assignment(graph, res.match_of_left)
    return ExactUnitReport(
        matching=matching, optimal_makespan=int(d), probes=tuple(probes)
    )
