"""Infeasibility certificates for the exact algorithm (extension).

When the paper's exact SINGLEPROC-UNIT algorithm finds that deadline ``D``
is infeasible, it simply increments ``D``.  This module makes the
infeasibility *checkable*: by the deficiency version of Hall's theorem, a
capacity-``D`` matching misses some task iff there is a task set ``A``
whose neighbourhood is too small, ``|A| > D * |N(A)|``.  The standard
constructive witness: from any unmatched task, the set of tasks reachable
by alternating paths in a *maximum* matching, together with its
neighbourhood, violates the inequality.

:func:`hall_violator` extracts such a pair, and
:func:`deadline_certificate` packages the dichotomy: either an optimal
assignment for deadline ``D`` or a violating pair proving none exists.
The violator also yields the tight local lower bound
``ceil(|A| / |N(A)|)`` on the optimal makespan.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import SolverError
from ..core.semimatching import SemiMatching
from .exact_unit import feasible_makespan

__all__ = ["hall_violator", "deadline_certificate", "DeadlineCertificate"]


@dataclass(frozen=True)
class DeadlineCertificate:
    """Outcome of a certified deadline-``D`` feasibility test.

    Exactly one of ``matching`` / ``violator`` is set.  When infeasible,
    ``violator = (tasks, procs)`` satisfies ``len(tasks) > D * len(procs)``
    and every edge of every task in ``tasks`` lands inside ``procs`` —
    anyone can re-check this in linear time.
    """

    deadline: int
    matching: SemiMatching | None
    violator: tuple[np.ndarray, np.ndarray] | None

    @property
    def feasible(self) -> bool:
        return self.matching is not None

    def lower_bound(self) -> int:
        """``ceil(|A| / |N(A)|)`` — a certified bound on the optimum."""
        if self.violator is None:
            raise SolverError("feasible deadlines carry no violator bound")
        tasks, procs = self.violator
        if len(procs) == 0:
            raise SolverError("violator with empty neighbourhood")
        return -(-len(tasks) // len(procs))

    def verify(self, graph: BipartiteGraph) -> None:
        """Re-check the certificate from scratch (used in tests)."""
        if self.matching is not None:
            assert self.matching.makespan <= self.deadline
            return
        tasks, procs = self.violator
        proc_set = set(int(u) for u in procs)
        for t in tasks:
            nbrs = set(int(u) for u in graph.task_neighbors(int(t)))
            assert nbrs <= proc_set, "violator neighbourhood leaks"
        assert len(tasks) > self.deadline * len(procs), "not a violator"


def hall_violator(
    graph: BipartiteGraph, deadline: int, *, engine: str = "kuhn"
) -> tuple[np.ndarray, np.ndarray] | None:
    """A deficiency-Hall witness for capacity-``deadline``, or ``None``.

    Returns ``(tasks, procs)`` with ``len(tasks) > deadline * len(procs)``
    and ``N(tasks) ⊆ procs`` iff no deadline-``deadline`` schedule exists.
    """
    if not graph.is_unit:
        raise SolverError("Hall certificates apply to unit graphs only")
    res = feasible_makespan(graph, deadline, engine)
    if res.is_left_perfect():
        return None

    # Alternating BFS from every unmatched task over the maximum matching:
    # task -> any neighbour; processor -> all its matched tasks.
    match_of_task = res.match_of_left
    tasks_of_proc: list[list[int]] = [[] for _ in range(graph.n_procs)]
    for v in range(graph.n_tasks):
        u = int(match_of_task[v])
        if u >= 0:
            tasks_of_proc[u].append(v)

    seen_t = np.zeros(graph.n_tasks, dtype=bool)
    seen_p = np.zeros(graph.n_procs, dtype=bool)
    q: deque[int] = deque()
    for v in range(graph.n_tasks):
        if match_of_task[v] < 0 and graph.task_degrees()[v] > 0:
            seen_t[v] = True
            q.append(v)
    while q:
        v = q.popleft()
        for u in graph.task_neighbors(v):
            u = int(u)
            if seen_p[u]:
                continue
            seen_p[u] = True
            for w in tasks_of_proc[u]:
                if not seen_t[w]:
                    seen_t[w] = True
                    q.append(w)

    tasks = np.flatnonzero(seen_t)
    procs = np.flatnonzero(seen_p)
    # Reachable processors are all saturated (else the matching were not
    # maximum), and reachable tasks' neighbourhoods stay inside them.
    assert len(tasks) > deadline * len(procs), (
        "internal error: BFS region is not a Hall violator; "
        "was the matching maximum?"
    )
    return tasks, procs


def deadline_certificate(
    graph: BipartiteGraph, deadline: int, *, engine: str = "kuhn"
) -> DeadlineCertificate:
    """Certified feasibility test: a schedule or a Hall violator."""
    if not graph.is_unit:
        raise SolverError("deadline certificates apply to unit graphs only")
    graph.validate(require_total=True)
    res = feasible_makespan(graph, deadline, engine)
    if res.is_left_perfect():
        return DeadlineCertificate(
            deadline=deadline,
            matching=SemiMatching.from_proc_assignment(
                graph, res.match_of_left
            ),
            violator=None,
        )
    violator = hall_violator(graph, deadline, engine=engine)
    return DeadlineCertificate(
        deadline=deadline, matching=None, violator=violator
    )
