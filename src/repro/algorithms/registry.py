"""DEPRECATED name-indexed registries — thin shims over :mod:`repro.api`.

The two name→callable dicts and their getters predate the unified
capability-aware registry.  They are kept importable so downstream code
keeps working, but each emits a :class:`DeprecationWarning` (once per
process) pointing at the replacement:

===============================  =====================================
old                              new
===============================  =====================================
``BIPARTITE_ALGORITHMS``         ``get_registry().query(domain="bipartite")``
``HYPERGRAPH_ALGORITHMS``        ``get_registry().query(domain="hypergraph")``
``get_bipartite_algorithm(n)``   ``get_registry().resolve(n, domain="bipartite")``
``get_hypergraph_algorithm(n)``  ``get_registry().resolve(n, domain="hypergraph")``
===============================  =====================================

The dict views are *snapshots* generated from the live registry at
access time; mutating them does not register a solver — use
:func:`repro.api.register_solver` for that.

Internal ``repro`` code must not import this module: the test suite
escalates ``DeprecationWarning`` raised from ``repro.*`` modules to an
error (see ``filterwarnings`` in pyproject.toml).
"""

from __future__ import annotations

from typing import Callable

from ..core.bipartite import BipartiteGraph
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching, SemiMatching

__all__ = [
    "BIPARTITE_ALGORITHMS",
    "HYPERGRAPH_ALGORITHMS",
    "get_bipartite_algorithm",
    "get_hypergraph_algorithm",
]


def _legacy_dict(domain: str) -> dict[str, Callable]:
    """A name→callable snapshot of one domain of the live registry,
    including aliases (the historical dicts listed both spellings)."""
    from ..api import get_registry

    out: dict[str, Callable] = {}
    for spec in get_registry().query(domain=domain):
        if spec.needs_seed:  # historical dicts held unary callables
            continue
        # historical membership: the bipartite dict had no oracle rows
        # beyond 'exact'/'harvey'; keep whatever is registered today so
        # new solvers show up here too
        out[spec.name] = spec.fn
        for alias in spec.aliases:
            out[alias] = spec.fn
    return out


def __getattr__(name: str):
    from ..api._deprecation import warn_once

    if name == "BIPARTITE_ALGORITHMS":
        warn_once(
            "algorithms.registry.BIPARTITE_ALGORITHMS",
            "BIPARTITE_ALGORITHMS is deprecated; query the solver "
            "registry instead: repro.api.get_registry()"
            '.query(domain="bipartite")',
        )
        return _legacy_dict("bipartite")
    if name == "HYPERGRAPH_ALGORITHMS":
        warn_once(
            "algorithms.registry.HYPERGRAPH_ALGORITHMS",
            "HYPERGRAPH_ALGORITHMS is deprecated; query the solver "
            "registry instead: repro.api.get_registry()"
            '.query(domain="hypergraph")',
        )
        return _legacy_dict("hypergraph")
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def get_bipartite_algorithm(
    name: str,
) -> Callable[[BipartiteGraph], SemiMatching]:
    """DEPRECATED: look up a SINGLEPROC algorithm by name.

    Use ``repro.api.get_registry().resolve(name, domain="bipartite")``.
    """
    from ..api import get_registry
    from ..api._deprecation import warn_once

    warn_once(
        "algorithms.registry.get_bipartite_algorithm",
        "get_bipartite_algorithm() is deprecated; use repro.api."
        'get_registry().resolve(name, domain="bipartite").fn',
    )
    return get_registry().resolve(
        name, domain="bipartite", context="bipartite algorithm"
    ).fn


def get_hypergraph_algorithm(
    name: str,
) -> Callable[[TaskHypergraph], HyperSemiMatching]:
    """DEPRECATED: look up a MULTIPROC algorithm by name (paper
    abbreviations work).

    Use ``repro.api.get_registry().resolve(name, domain="hypergraph")``.
    """
    from ..api import get_registry
    from ..api._deprecation import warn_once

    warn_once(
        "algorithms.registry.get_hypergraph_algorithm",
        "get_hypergraph_algorithm() is deprecated; use repro.api."
        'get_registry().resolve(name, domain="hypergraph").fn',
    )
    return get_registry().resolve(
        name, domain="hypergraph", context="hypergraph algorithm"
    ).fn
