"""Name-indexed registries of the semi-matching algorithms.

The experiment runner, CLI and benchmarks refer to algorithms by the short
names the paper uses in its tables (SGH, VGH, EGH, EVG) or by their full
names.  Both registries map a name to a callable taking the instance as
the single positional argument and returning a matching object.
"""

from __future__ import annotations

from typing import Callable

from ..core.bipartite import BipartiteGraph
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching, SemiMatching
from .exact_unit import exact_singleproc_unit
from .greedy_bipartite import (
    basic_greedy,
    double_sorted,
    expected_greedy,
    sorted_greedy,
)
from .greedy_hypergraph import (
    expected_greedy_hyp,
    expected_vector_greedy_hyp,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)
from .harvey import harvey_optimal_semi_matching

__all__ = [
    "BIPARTITE_ALGORITHMS",
    "HYPERGRAPH_ALGORITHMS",
    "get_bipartite_algorithm",
    "get_hypergraph_algorithm",
]


def _exact(graph: BipartiteGraph) -> SemiMatching:
    return exact_singleproc_unit(graph).matching


BIPARTITE_ALGORITHMS: dict[str, Callable[[BipartiteGraph], SemiMatching]] = {
    "basic-greedy": basic_greedy,
    "sorted-greedy": sorted_greedy,
    "double-sorted": double_sorted,
    "expected-greedy": expected_greedy,
    "exact": _exact,
    "harvey": harvey_optimal_semi_matching,
}

HYPERGRAPH_ALGORITHMS: dict[
    str, Callable[[TaskHypergraph], HyperSemiMatching]
] = {
    "SGH": sorted_greedy_hyp,
    "VGH": vector_greedy_hyp,
    "EGH": expected_greedy_hyp,
    "EVG": expected_vector_greedy_hyp,
    "sorted-greedy-hyp": sorted_greedy_hyp,
    "vector-greedy-hyp": vector_greedy_hyp,
    "expected-greedy-hyp": expected_greedy_hyp,
    "expected-vector-greedy-hyp": expected_vector_greedy_hyp,
}


def get_bipartite_algorithm(
    name: str,
) -> Callable[[BipartiteGraph], SemiMatching]:
    """Look up a SINGLEPROC algorithm by name."""
    try:
        return BIPARTITE_ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown bipartite algorithm {name!r}; "
            f"available: {sorted(BIPARTITE_ALGORITHMS)}"
        ) from None


def get_hypergraph_algorithm(
    name: str,
) -> Callable[[TaskHypergraph], HyperSemiMatching]:
    """Look up a MULTIPROC algorithm by name (paper abbreviations work)."""
    try:
        return HYPERGRAPH_ALGORITHMS[name]
    except KeyError:
        raise KeyError(
            f"unknown hypergraph algorithm {name!r}; "
            f"available: {sorted(HYPERGRAPH_ALGORITHMS)}"
        ) from None
