"""Context baselines: what the paper's heuristics must beat (extension).

The paper evaluates its four hypergraph heuristics only against each other
and the lower bound.  These reference policies anchor the comparison from
below:

* :func:`random_assignment` — pick a uniformly random configuration per
  task (the "no scheduler" baseline; its expected loads are what
  expected-greedy's initial ``o`` values describe);
* :func:`first_fit` — always the first listed configuration (what a
  system without choice-awareness would do);
* :func:`min_work` — per task, the configuration with the least total
  work ``w_h * |h|``, ignoring load (the policy whose perfectly-balanced
  outcome *is* the paper's lower bound eq. (1) — the gap between its
  actual makespan and LB measures pure imbalance).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleError
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from .._util import as_rng

__all__ = ["random_assignment", "first_fit", "min_work"]


def _check(hg: TaskHypergraph) -> None:
    if np.any(np.diff(hg.task_ptr) == 0):
        bad = int(np.flatnonzero(np.diff(hg.task_ptr) == 0)[0])
        raise InfeasibleError(f"task {bad} has no configuration")


def random_assignment(
    hg: TaskHypergraph,
    *,
    seed: int | np.random.Generator | None = None,
) -> HyperSemiMatching:
    """Uniformly random configuration per task."""
    _check(hg)
    rng = as_rng(seed)
    deg = np.diff(hg.task_ptr)
    offset = (rng.random(hg.n_tasks) * deg).astype(np.int64)
    chosen = hg.task_hedges[hg.task_ptr[:-1] + offset]
    return HyperSemiMatching(hg, chosen)


def first_fit(hg: TaskHypergraph) -> HyperSemiMatching:
    """Always the first listed configuration of every task."""
    _check(hg)
    chosen = hg.task_hedges[hg.task_ptr[:-1]]
    return HyperSemiMatching(hg, chosen)


def min_work(hg: TaskHypergraph) -> HyperSemiMatching:
    """The least-total-work configuration per task, load-oblivious.

    This is the assignment whose *perfectly balanced* cost equals the
    paper's lower bound (1); its real makespan shows how much of the
    heuristics' quality gap is imbalance rather than configuration choice.
    """
    _check(hg)
    work = hg.hedge_w * np.diff(hg.hedge_ptr)
    chosen = np.empty(hg.n_tasks, dtype=np.int64)
    for i in range(hg.n_tasks):
        hedges = hg.task_hedge_ids(i)
        chosen[i] = int(hedges[np.argmin(work[hedges])])
    return HyperSemiMatching(hg, chosen)
