"""Local-search refinement of hypergraph semi-matchings (extension).

The paper's conclusion lists algorithms with guarantees and stronger
heuristics as future work; this module contributes the natural next step:
a hill-climbing pass over a greedy solution.

A *move* re-assigns one task from its current configuration to another.
Moves are accepted when they improve the full load vector in the
descending-lexicographic order of Section IV-D3 (so the bottleneck never
worsens and strictly improves whenever possible, and plateau-shuffling is
impossible — the vector order is a strict well-order, guaranteeing
termination).  Candidate tasks are drawn from the current bottleneck
processors only, which keeps each round linear in the size of the touched
neighbourhood.

Like the greedy heuristics, the search runs on two backends.
``backend="numpy"`` enumerates each round's candidate moves with array
ops and evaluates them in chunks through the batched move-evaluation
kernel (:func:`repro.kernels.batch_lex_signs`); both moves are always
configurations of the same task, so each move is compared over the
task's precompiled pin-union (sound by the multiset lemma), rows padded
with ``-inf`` to the chunk width.  The first improving move in scan
order is applied — exactly the move the ``backend="python"`` loop
accepts — so both backends walk the same move sequence and return
bit-identical results.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.loadvec import lex_compare_multisets
from ..core.semimatching import HyperSemiMatching
from ..kernels import (
    check_backend,
    compile_instance,
    first_lex_improving,
    flat_ranges,
)

__all__ = ["local_search", "LocalSearchReport"]

#: Moves evaluated per kernel batch: large enough to amortize the array
#: ops, small enough not to waste work when an early move improves.
_CHUNK = 64


@dataclass(frozen=True)
class LocalSearchReport:
    """Refined matching plus search statistics."""

    matching: HyperSemiMatching
    moves: int
    rounds: int
    initial_makespan: float
    final_makespan: float


def _move_delta(
    loads: np.ndarray,
    old_pins: np.ndarray,
    old_w: float,
    new_pins: np.ndarray,
    new_w: float,
) -> int:
    """Compare loads-after-move against loads-before over the affected set."""
    aff = np.union1d(old_pins, new_pins)
    before = loads[aff]
    after = before.copy()
    after[np.searchsorted(aff, old_pins)] -= old_w
    after[np.searchsorted(aff, new_pins)] += new_w
    return lex_compare_multisets(after, before)


def local_search(
    start: HyperSemiMatching,
    *,
    max_rounds: int = 1000,
    backend: str = "numpy",
) -> LocalSearchReport:
    """Improve ``start`` by single-task reconfiguration moves.

    Each round scans the tasks touching a current bottleneck processor and
    applies the first vector-improving move found; rounds repeat until a
    full scan finds no improving move or ``max_rounds`` is reached.
    Both backends apply the identical move sequence (see module docs).
    """
    check_backend(backend)
    if backend == "python":
        return _local_search_python(start, max_rounds)
    return _local_search_numpy(start, max_rounds)


def _local_search_python(
    start: HyperSemiMatching, max_rounds: int
) -> LocalSearchReport:
    hg: TaskHypergraph = start.hypergraph
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    assign = start.hedge_of_task.copy()
    loads = start.loads()
    initial_mk = start.makespan

    moves = 0
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        improved = False
        mk = loads.max()
        bottleneck = np.flatnonzero(loads >= mk - 1e-12)
        # tasks whose current configuration touches a bottleneck processor
        cand_tasks: set[int] = set()
        for u in bottleneck:
            lo, hi = hg.proc_ptr[u], hg.proc_ptr[u + 1]
            for h in hg.proc_hedges[lo:hi]:
                if assign[hg.hedge_task[h]] == h:
                    cand_tasks.add(int(hg.hedge_task[h]))
        for v in sorted(cand_tasks):
            h_old = int(assign[v])
            old_pins = hprocs[hptr[h_old] : hptr[h_old + 1]]
            for h_new in hg.task_hedge_ids(v):
                h_new = int(h_new)
                if h_new == h_old:
                    continue
                new_pins = hprocs[hptr[h_new] : hptr[h_new + 1]]
                if (
                    _move_delta(loads, old_pins, w[h_old], new_pins, w[h_new])
                    < 0
                ):
                    loads[old_pins] -= w[h_old]
                    loads[new_pins] += w[h_new]
                    assign[v] = h_new
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    final = HyperSemiMatching(hg, assign)
    return LocalSearchReport(
        matching=final,
        moves=moves,
        rounds=rounds,
        initial_makespan=initial_mk,
        final_makespan=final.makespan,
    )


def _local_search_numpy(
    start: HyperSemiMatching, max_rounds: int
) -> LocalSearchReport:
    hg: TaskHypergraph = start.hypergraph
    ci = compile_instance(hg)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    assign = start.hedge_of_task.copy()
    loads = start.loads()
    initial_mk = start.makespan

    moves = 0
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        mv = _first_improving_move(hg, ci, assign, loads)
        if mv is None:
            break
        v, h_new = mv
        h_old = int(assign[v])
        loads[hprocs[hptr[h_old] : hptr[h_old + 1]]] -= w[h_old]
        loads[hprocs[hptr[h_new] : hptr[h_new + 1]]] += w[h_new]
        assign[v] = h_new
        moves += 1

    final = HyperSemiMatching(hg, assign)
    return LocalSearchReport(
        matching=final,
        moves=moves,
        rounds=rounds,
        initial_makespan=initial_mk,
        final_makespan=final.makespan,
    )


def _first_improving_move(
    hg: TaskHypergraph,
    ci,
    assign: np.ndarray,
    loads: np.ndarray,
) -> tuple[int, int] | None:
    """The first vector-improving move in the Python scan order, found
    by chunked batch evaluation; ``None`` when the round has none."""
    mk = loads.max()
    bottleneck = np.flatnonzero(loads >= mk - 1e-12)
    # candidate tasks: assigned configurations touching a bottleneck proc
    hs = hg.proc_hedges[
        flat_ranges(
            hg.proc_ptr[bottleneck],
            hg.proc_ptr[bottleneck + 1] - hg.proc_ptr[bottleneck],
        )
    ]
    ts = hg.hedge_task[hs]
    cand = np.unique(ts[assign[ts] == hs])  # sorted ascending, like the loop
    if cand.size == 0:
        return None

    # every (task, alternative configuration) pair, in scan order:
    # tasks ascending, a task's candidates in task_hedge_ids order
    deg = hg.task_ptr[cand + 1] - hg.task_ptr[cand]
    mv_gpos = flat_ranges(hg.task_ptr[cand], deg)
    mv_task = np.repeat(cand, deg)
    mv_hnew = ci.g_hedge[mv_gpos]
    keep = mv_hnew != assign[mv_task]
    mv_gpos, mv_task, mv_hnew = mv_gpos[keep], mv_task[keep], mv_hnew[keep]
    if mv_task.size == 0:
        return None
    mv_old_gpos = ci.hedge_gpos[assign[mv_task]]

    gptr, gsize, gw = ci.g_ptr, ci.g_size, ci.g_w
    uptr, uprocs, pin_pos = ci.u_ptr, ci.u_procs, ci.g_pin_pos
    for c0 in range(0, mv_task.size, _CHUNK):
        c1 = min(c0 + _CHUNK, mv_task.size)
        vs = mv_task[c0:c1]
        m = c1 - c0
        u0 = uptr[vs]
        lens = uptr[vs + 1] - u0
        kmax = int(lens.max())
        rows = np.repeat(np.arange(m), lens)
        cols = flat_ranges(np.zeros(m, dtype=np.int64), lens)
        before = np.full((m, kmax), -np.inf)
        before[rows, cols] = loads[uprocs[flat_ranges(u0, lens)]]
        after = before.copy()
        # withdraw the current configuration, then realise the new one
        # (the -=/+= order matches the Python oracle on shared pins)
        og = mv_old_gpos[c0:c1]
        olens = gsize[og]
        orow = np.repeat(np.arange(m), olens)
        opos = pin_pos[flat_ranges(gptr[og], olens)]
        after[orow, opos] -= np.repeat(gw[og], olens)
        ng = mv_gpos[c0:c1]
        nlens = gsize[ng]
        nrow = np.repeat(np.arange(m), nlens)
        npos = pin_pos[flat_ranges(gptr[ng], nlens)]
        after[nrow, npos] += np.repeat(gw[ng], nlens)

        i = first_lex_improving(after, before)
        if i is not None:
            return int(vs[i]), int(mv_hnew[c0 + i])
    return None
