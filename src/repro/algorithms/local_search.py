"""Local-search refinement of hypergraph semi-matchings (extension).

The paper's conclusion lists algorithms with guarantees and stronger
heuristics as future work; this module contributes the natural next step:
a hill-climbing pass over a greedy solution.

A *move* re-assigns one task from its current configuration to another.
Moves are accepted when they improve the full load vector in the
descending-lexicographic order of Section IV-D3 (so the bottleneck never
worsens and strictly improves whenever possible, and plateau-shuffling is
impossible — the vector order is a strict well-order, guaranteeing
termination).  Candidate tasks are drawn from the current bottleneck
processors only, which keeps each round linear in the size of the touched
neighbourhood.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.hypergraph import TaskHypergraph
from ..core.loadvec import lex_compare_multisets
from ..core.semimatching import HyperSemiMatching

__all__ = ["local_search", "LocalSearchReport"]


@dataclass(frozen=True)
class LocalSearchReport:
    """Refined matching plus search statistics."""

    matching: HyperSemiMatching
    moves: int
    rounds: int
    initial_makespan: float
    final_makespan: float


def _move_delta(
    loads: np.ndarray,
    old_pins: np.ndarray,
    old_w: float,
    new_pins: np.ndarray,
    new_w: float,
) -> int:
    """Compare loads-after-move against loads-before over the affected set."""
    aff = np.union1d(old_pins, new_pins)
    before = loads[aff]
    after = before.copy()
    after[np.searchsorted(aff, old_pins)] -= old_w
    after[np.searchsorted(aff, new_pins)] += new_w
    return lex_compare_multisets(after, before)


def local_search(
    start: HyperSemiMatching,
    *,
    max_rounds: int = 1000,
) -> LocalSearchReport:
    """Improve ``start`` by single-task reconfiguration moves.

    Each round scans the tasks touching a current bottleneck processor and
    applies the first vector-improving move found; rounds repeat until a
    full scan finds no improving move or ``max_rounds`` is reached.
    """
    hg: TaskHypergraph = start.hypergraph
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    assign = start.hedge_of_task.copy()
    loads = start.loads()
    initial_mk = start.makespan

    moves = 0
    rounds = 0
    while rounds < max_rounds:
        rounds += 1
        improved = False
        mk = loads.max()
        bottleneck = np.flatnonzero(loads >= mk - 1e-12)
        # tasks whose current configuration touches a bottleneck processor
        cand_tasks: set[int] = set()
        for u in bottleneck:
            lo, hi = hg.proc_ptr[u], hg.proc_ptr[u + 1]
            for h in hg.proc_hedges[lo:hi]:
                if assign[hg.hedge_task[h]] == h:
                    cand_tasks.add(int(hg.hedge_task[h]))
        for v in sorted(cand_tasks):
            h_old = int(assign[v])
            old_pins = hprocs[hptr[h_old] : hptr[h_old + 1]]
            for h_new in hg.task_hedge_ids(v):
                h_new = int(h_new)
                if h_new == h_old:
                    continue
                new_pins = hprocs[hptr[h_new] : hptr[h_new + 1]]
                if (
                    _move_delta(loads, old_pins, w[h_old], new_pins, w[h_new])
                    < 0
                ):
                    loads[old_pins] -= w[h_old]
                    loads[new_pins] += w[h_new]
                    assign[v] = h_new
                    moves += 1
                    improved = True
                    break
            if improved:
                break
        if not improved:
            break

    final = HyperSemiMatching(hg, assign)
    return LocalSearchReport(
        matching=final,
        moves=moves,
        rounds=rounds,
        initial_makespan=initial_mk,
        final_makespan=final.makespan,
    )
