"""Greedy semi-matching heuristics for hypergraphs (paper Section IV-D).

The four MULTIPROC heuristics evaluated in Tables II and III:

* :func:`sorted_greedy_hyp` (SGH, Algorithm 4) — visit tasks by
  non-decreasing configuration count; pick the hyperedge with the smallest
  bottleneck load among its processors;
* :func:`vector_greedy_hyp` (VGH) — like SGH but candidates are ranked by
  the *entire* resulting load vector, sorted descending and compared
  lexicographically;
* :func:`expected_greedy_hyp` (EGH, Algorithm 5) — SGH on expected loads
  ``o(u)`` (each configuration of an unassigned task contributes
  ``w_h/d_v`` to each of its processors);
* :func:`expected_vector_greedy_hyp` (EVG) — vector ranking on
  tentatively-realised expected loads.

Vector comparisons use the multiset-difference lemma of
:mod:`repro.core.loadvec`: two candidates only disagree on the processors
they touch, so the descending-lex order of the full length-``p`` vectors
equals the order of the small affected-value multisets.  This is the
asymptotically faster variant the paper describes in Section IV-D3;
``method="naive"`` switches to the full-vector comparison the paper's
Matlab code used (kept for tests and timing ablations).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleError
from ..core.hypergraph import TaskHypergraph
from ..core.loadvec import lex_compare_desc, lex_compare_multisets, sorted_desc
from ..core.semimatching import HyperSemiMatching
from .._util import stable_argsort

__all__ = [
    "sorted_greedy_hyp",
    "vector_greedy_hyp",
    "expected_greedy_hyp",
    "expected_vector_greedy_hyp",
]


def _check_feasible(hg: TaskHypergraph) -> None:
    if np.any(np.diff(hg.task_ptr) == 0):
        bad = int(np.flatnonzero(np.diff(hg.task_ptr) == 0)[0])
        raise InfeasibleError(f"task {bad} has no configuration")


def _visit_order(hg: TaskHypergraph, sort_by_degree: bool) -> np.ndarray:
    if sort_by_degree:
        return stable_argsort(hg.task_degrees())
    return np.arange(hg.n_tasks, dtype=np.int64)


def sorted_greedy_hyp(
    hg: TaskHypergraph,
    *,
    lookahead: bool = True,
    sort_by_degree: bool = True,
) -> HyperSemiMatching:
    """Algorithm 4 (SGH): minimise the chosen configuration's bottleneck.

    For each task (by non-decreasing ``d_v``) pick the hyperedge ``h``
    minimising ``max_{u in h}(l(u) + w_h)`` — the bottleneck the
    assignment would create.  ``lookahead=False`` reproduces the printed
    pseudocode literally (``max_{u in h} l(u)``, ignoring ``w_h``); the
    two coincide on unit weights whenever configurations are compared at
    equal weight, and DESIGN.md discusses the discrepancy.  Runs in
    ``O(sum_h |h|)``.
    """
    _check_feasible(hg)
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w

    for v in _visit_order(hg, sort_by_degree):
        best_h = -1
        best_key = np.inf
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            key = loads[pins].max() + (w[h] if lookahead else 0.0)
            if key < best_key:
                best_key = key
                best_h = int(h)
        hedge_of_task[v] = best_h
        loads[hprocs[hptr[best_h] : hptr[best_h + 1]]] += w[best_h]

    return HyperSemiMatching(hg, hedge_of_task)


def vector_greedy_hyp(
    hg: TaskHypergraph,
    *,
    method: str = "fast",
    sort_by_degree: bool = True,
) -> HyperSemiMatching:
    """VGH: rank candidate hyperedges by the full resulting load vector.

    Among a task's configurations, prefer the one whose resulting load
    vector — all ``p`` processors, sorted descending — is lexicographically
    smallest: smallest bottleneck first, then smallest second-largest load,
    and so on.  Ties keep the first candidate.

    ``method="fast"`` compares only the affected-processor multisets
    (correct by the lemma in :mod:`repro.core.loadvec`), giving
    ``O(sum_v d_v * s log s)`` with ``s`` the configuration size.
    ``method="naive"`` sorts the full vector per candidate —
    ``O(sum_v d_v * p log p)``, the complexity the paper reports for its
    own implementation.
    """
    if method not in ("fast", "naive"):
        raise ValueError(f"method must be 'fast' or 'naive', got {method!r}")
    _check_feasible(hg)
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w

    for v in _visit_order(hg, sort_by_degree):
        hedges = hg.task_hedge_ids(v)
        best_h = -1
        if method == "naive":
            best_vec: np.ndarray | None = None
            for h in hedges:
                pins = hprocs[hptr[h] : hptr[h + 1]]
                scenario = loads.copy()
                scenario[pins] += w[h]
                vec = sorted_desc(scenario)
                if best_vec is None or lex_compare_desc(vec, best_vec) < 0:
                    best_vec = vec
                    best_h = int(h)
        else:
            best_pins: np.ndarray | None = None
            for h in hedges:
                pins = hprocs[hptr[h] : hptr[h + 1]]
                if best_pins is None:
                    best_h = int(h)
                    best_pins = pins
                    continue
                # Candidates differ only on their own pins: compare the
                # resulting loads over the union of both pin sets.
                aff = np.union1d(pins, best_pins)
                cand_vals = loads[aff].copy()
                cand_vals[np.searchsorted(aff, pins)] += w[h]
                best_vals = loads[aff].copy()
                best_vals[np.searchsorted(aff, best_pins)] += w[best_h]
                if lex_compare_multisets(cand_vals, best_vals) < 0:
                    best_h = int(h)
                    best_pins = pins
        hedge_of_task[v] = best_h
        loads[hprocs[hptr[best_h] : hptr[best_h + 1]]] += w[best_h]

    return HyperSemiMatching(hg, hedge_of_task)


def _expected_loads(hg: TaskHypergraph) -> np.ndarray:
    """Initial ``o(u)``: every configuration spreads ``w_h/d_v`` over its
    pins (Algorithm 5, lines 1-6)."""
    o = np.zeros(hg.n_procs, dtype=np.float64)
    deg = hg.task_degrees().astype(np.float64)
    share = hg.hedge_w / deg[hg.hedge_task]  # w_h / d_v per hyperedge
    np.add.at(o, hg.hedge_procs, np.repeat(share, np.diff(hg.hedge_ptr)))
    return o


def expected_greedy_hyp(
    hg: TaskHypergraph,
    *,
    lookahead: bool = True,
    sort_by_degree: bool = True,
) -> HyperSemiMatching:
    """Algorithm 5 (EGH): SGH driven by expected loads ``o(u)``.

    Selection minimises ``max_{u in h} o(u)`` over the task's
    configurations; with ``lookahead=True`` (default) the tentative
    realisation ``max_{u in h}(o(u) + w_h - w_h/d_v)`` is minimised
    instead (identical ordering whenever all candidates share one weight,
    e.g. unit instances).  Committing a task updates ``o`` exactly as the
    pseudocode does, so on termination ``o`` equals the true loads.
    ``O(sum_h |h|)``.
    """
    _check_feasible(hg)
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    deg = hg.task_degrees().astype(np.float64)

    for v in _visit_order(hg, sort_by_degree):
        dv = deg[v]
        best_h = -1
        best_key = np.inf
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            key = o[pins].max()
            if lookahead:
                key += w[h] - w[h] / dv
            if key < best_key:
                best_key = key
                best_h = int(h)
        hedge_of_task[v] = best_h
        # collapse the distribution (Algorithm 5, lines 10-14)
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            if int(h) == best_h:
                o[pins] += w[h] - w[h] / dv
            else:
                o[pins] -= w[h] / dv

    return HyperSemiMatching(hg, hedge_of_task)


def expected_vector_greedy_hyp(
    hg: TaskHypergraph,
    *,
    method: str = "fast",
    sort_by_degree: bool = True,
) -> HyperSemiMatching:
    """EVG: vector ranking over tentatively-realised expected loads.

    For each candidate ``h`` of task ``v``, tentatively realise it (add
    ``w_h - w_h/d_v`` to its pins) and tentatively discard the siblings
    (subtract ``w_h'/d_v`` from theirs), then compare the resulting
    expected-load vectors descending-lexicographically.  All candidates
    share the same affected set — the union of all of ``v``'s pins — so
    with ``method="fast"`` each comparison sorts only that union.  The
    paper gives the complexity ``O(sum_v d_v |V2| + sum_v d_v sum_{h in v}
    |h|)`` for the naive variant (``method="naive"``).
    """
    if method not in ("fast", "naive"):
        raise ValueError(f"method must be 'fast' or 'naive', got {method!r}")
    _check_feasible(hg)
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    deg = hg.task_degrees().astype(np.float64)

    for v in _visit_order(hg, sort_by_degree):
        dv = deg[v]
        hedges = hg.task_hedge_ids(v)
        pin_slices = [hprocs[hptr[h] : hptr[h + 1]] for h in hedges]

        # Realising candidate h changes o only on v's own pin union:
        # every sibling h' loses its w_h'/d_v share, then h adds w_h.
        aff = np.unique(np.concatenate(pin_slices))  # sorted union
        common = o[aff].copy()
        for h, pins in zip(hedges, pin_slices):
            common[np.searchsorted(aff, pins)] -= w[h] / dv

        best_i = 0
        if len(hedges) > 1:
            if method == "naive":
                best_vec: np.ndarray | None = None
                for i, (h, pins) in enumerate(zip(hedges, pin_slices)):
                    scenario = o.copy()
                    for h2, pins2 in zip(hedges, pin_slices):
                        scenario[pins2] -= w[h2] / dv
                    scenario[pins] += w[h]
                    vec = sorted_desc(scenario)
                    if best_vec is None or lex_compare_desc(vec, best_vec) < 0:
                        best_vec = vec
                        best_i = i
            else:
                best_vals: np.ndarray | None = None
                for i, (h, pins) in enumerate(zip(hedges, pin_slices)):
                    vals = common.copy()
                    vals[np.searchsorted(aff, pins)] += w[h]
                    if best_vals is None or (
                        lex_compare_multisets(vals, best_vals) < 0
                    ):
                        best_vals = vals
                        best_i = i

        best_h = int(hedges[best_i])
        hedge_of_task[v] = best_h
        # commit: o restricted to aff becomes the realised scenario
        final = common.copy()
        final[np.searchsorted(aff, pin_slices[best_i])] += w[best_h]
        o[aff] = final

    return HyperSemiMatching(hg, hedge_of_task)
