"""Greedy semi-matching heuristics for hypergraphs (paper Section IV-D).

The four MULTIPROC heuristics evaluated in Tables II and III:

* :func:`sorted_greedy_hyp` (SGH, Algorithm 4) — visit tasks by
  non-decreasing configuration count; pick the hyperedge with the smallest
  bottleneck load among its processors;
* :func:`vector_greedy_hyp` (VGH) — like SGH but candidates are ranked by
  the *entire* resulting load vector, sorted descending and compared
  lexicographically;
* :func:`expected_greedy_hyp` (EGH, Algorithm 5) — SGH on expected loads
  ``o(u)`` (each configuration of an unassigned task contributes
  ``w_h/d_v`` to each of its processors);
* :func:`expected_vector_greedy_hyp` (EVG) — vector ranking on
  tentatively-realised expected loads.

Every heuristic runs on one of two backends:

* ``backend="numpy"`` (default) — the vectorized CSR kernel core of
  :mod:`repro.kernels`: the instance is compiled once (cached by content
  digest) and each greedy step is a handful of array operations over the
  task-grouped arrays.  The kernels perform the same floating-point
  operations in the same order as the loops below, so the matchings are
  **bit-identical** (asserted by ``tests/test_conformance.py``).
* ``backend="python"`` — the original per-candidate loops, kept as the
  conformance oracle and for step-by-step debugging.

Vector comparisons use the multiset-difference lemma of
:mod:`repro.core.loadvec`: two candidates only disagree on the processors
they touch, so the descending-lex order of the full length-``p`` vectors
equals the order of the small affected-value multisets.  This is the
asymptotically faster variant the paper describes in Section IV-D3;
``method="naive"`` switches to the full-vector comparison the paper's
Matlab code used (kept for tests and timing ablations; it always runs on
the Python path).
"""

from __future__ import annotations

import numpy as np

from ..core.errors import InfeasibleError
from ..core.hypergraph import TaskHypergraph
from ..core.loadvec import lex_compare_desc, lex_compare_multisets, sorted_desc
from ..core.semimatching import HyperSemiMatching
from ..kernels import check_backend, compile_instance, lex_best_row
from .._util import stable_argsort

__all__ = [
    "sorted_greedy_hyp",
    "vector_greedy_hyp",
    "expected_greedy_hyp",
    "expected_vector_greedy_hyp",
]


def _check_feasible(hg: TaskHypergraph) -> None:
    if np.any(np.diff(hg.task_ptr) == 0):
        bad = int(np.flatnonzero(np.diff(hg.task_ptr) == 0)[0])
        raise InfeasibleError(f"task {bad} has no configuration")


def _visit_order(hg: TaskHypergraph, sort_by_degree: bool) -> np.ndarray:
    if sort_by_degree:
        return stable_argsort(hg.task_degrees())
    return np.arange(hg.n_tasks, dtype=np.int64)


# ---------------------------------------------------------------------------
# SGH
# ---------------------------------------------------------------------------
def sorted_greedy_hyp(
    hg: TaskHypergraph,
    *,
    lookahead: bool = True,
    sort_by_degree: bool = True,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """Algorithm 4 (SGH): minimise the chosen configuration's bottleneck.

    For each task (by non-decreasing ``d_v``) pick the hyperedge ``h``
    minimising ``max_{u in h}(l(u) + w_h)`` — the bottleneck the
    assignment would create.  ``lookahead=False`` reproduces the printed
    pseudocode literally (``max_{u in h} l(u)``, ignoring ``w_h``); the
    two coincide on unit weights whenever configurations are compared at
    equal weight, and DESIGN.md discusses the discrepancy.  Runs in
    ``O(sum_h |h|)``.
    """
    check_backend(backend)
    _check_feasible(hg)
    if backend == "python":
        return _sgh_python(hg, lookahead, sort_by_degree)
    return _sgh_numpy(hg, lookahead, sort_by_degree)


def _sgh_python(
    hg: TaskHypergraph, lookahead: bool, sort_by_degree: bool
) -> HyperSemiMatching:
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w

    for v in _visit_order(hg, sort_by_degree):
        best_h = -1
        best_key = np.inf
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            key = loads[pins].max() + (w[h] if lookahead else 0.0)
            if key < best_key:
                best_key = key
                best_h = int(h)
        hedge_of_task[v] = best_h
        loads[hprocs[hptr[best_h] : hptr[best_h + 1]]] += w[best_h]

    return HyperSemiMatching(hg, hedge_of_task)


def _sgh_numpy(
    hg: TaskHypergraph, lookahead: bool, sort_by_degree: bool
) -> HyperSemiMatching:
    # SGH is inherently sequential — task v's choice depends on loads
    # committed by every earlier task — so the kernel's job is to make
    # each step's fixed dispatch cost as small as possible (see the
    # "sequential frontier" note in repro.kernels.ops).  Pointer arrays
    # are pre-converted to Python lists (list[int] indexing is several
    # times cheaper than ndarray scalar indexing), reduceat offsets are
    # precomputed for all tasks in one vectorized pass, and the
    # lookahead add runs in place on the fresh reduceat output.
    ci = compile_instance(hg)
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    chosen = [0] * hg.n_tasks
    tptr = hg.task_ptr.tolist()
    gpins, gw = ci.g_pins, ci.g_w
    gptr = ci.g_ptr.tolist()
    gw_list = gw.tolist()
    ghedge = ci.g_hedge.tolist()
    # goff[a:b] = pin offsets of task v's rows relative to its first pin
    row_task = np.repeat(
        np.arange(hg.n_tasks, dtype=np.int64), np.diff(hg.task_ptr)
    )
    goff = ci.g_ptr[:-1] - ci.g_ptr[hg.task_ptr[row_task]]
    maximum_reduceat = np.maximum.reduceat

    for v in _visit_order(hg, sort_by_degree).tolist():
        a, b = tptr[v], tptr[v + 1]
        if b - a == 1:
            k = a
        else:
            keys = maximum_reduceat(
                loads[gpins[gptr[a] : gptr[b]]], goff[a:b]
            )
            if lookahead:
                keys += gw[a:b]
            k = a + int(keys.argmin())
        chosen[v] = ghedge[k]
        loads[gpins[gptr[k] : gptr[k + 1]]] += gw_list[k]

    return HyperSemiMatching(hg, np.asarray(chosen, dtype=np.int64))


# ---------------------------------------------------------------------------
# VGH
# ---------------------------------------------------------------------------
def vector_greedy_hyp(
    hg: TaskHypergraph,
    *,
    method: str = "fast",
    sort_by_degree: bool = True,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """VGH: rank candidate hyperedges by the full resulting load vector.

    Among a task's configurations, prefer the one whose resulting load
    vector — all ``p`` processors, sorted descending — is lexicographically
    smallest: smallest bottleneck first, then smallest second-largest load,
    and so on.  Ties keep the first candidate.

    ``method="fast"`` compares only the affected-processor multisets
    (correct by the lemma in :mod:`repro.core.loadvec`), giving
    ``O(sum_v d_v * s log s)`` with ``s`` the configuration size.
    ``method="naive"`` sorts the full vector per candidate —
    ``O(sum_v d_v * p log p)``, the complexity the paper reports for its
    own implementation — and always runs on the Python path.
    """
    if method not in ("fast", "naive"):
        raise ValueError(f"method must be 'fast' or 'naive', got {method!r}")
    check_backend(backend)
    _check_feasible(hg)
    if backend == "python" or method == "naive":
        return _vgh_python(hg, method, sort_by_degree)
    return _vgh_numpy(hg, sort_by_degree)


def _vgh_python(
    hg: TaskHypergraph, method: str, sort_by_degree: bool
) -> HyperSemiMatching:
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w

    for v in _visit_order(hg, sort_by_degree):
        hedges = hg.task_hedge_ids(v)
        best_h = -1
        if method == "naive":
            best_vec: np.ndarray | None = None
            for h in hedges:
                pins = hprocs[hptr[h] : hptr[h + 1]]
                scenario = loads.copy()
                scenario[pins] += w[h]
                vec = sorted_desc(scenario)
                if best_vec is None or lex_compare_desc(vec, best_vec) < 0:
                    best_vec = vec
                    best_h = int(h)
        else:
            best_pins: np.ndarray | None = None
            for h in hedges:
                pins = hprocs[hptr[h] : hptr[h + 1]]
                if best_pins is None:
                    best_h = int(h)
                    best_pins = pins
                    continue
                # Candidates differ only on their own pins: compare the
                # resulting loads over the union of both pin sets.
                aff = np.union1d(pins, best_pins)
                cand_vals = loads[aff].copy()
                cand_vals[np.searchsorted(aff, pins)] += w[h]
                best_vals = loads[aff].copy()
                best_vals[np.searchsorted(aff, best_pins)] += w[best_h]
                if lex_compare_multisets(cand_vals, best_vals) < 0:
                    best_h = int(h)
                    best_pins = pins
        hedge_of_task[v] = best_h
        loads[hprocs[hptr[best_h] : hptr[best_h + 1]]] += w[best_h]

    return HyperSemiMatching(hg, hedge_of_task)


def _vgh_numpy(
    hg: TaskHypergraph, sort_by_degree: bool
) -> HyperSemiMatching:
    ci = compile_instance(hg)
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    tptr = hg.task_ptr
    gptr, gpins, gw, ghedge = ci.g_ptr, ci.g_pins, ci.g_w, ci.g_hedge
    uptr, uprocs = ci.u_ptr, ci.u_procs
    pin_w, pin_row, pin_pos = ci.g_pin_w, ci.g_pin_row, ci.g_pin_pos

    for v in _visit_order(hg, sort_by_degree):
        a, b = tptr[v], tptr[v + 1]
        if b - a == 1:
            k = a
        else:
            # All candidates compared at once over the task's pin-union:
            # row i is the resulting loads of candidate i restricted to
            # the union (sound by the multiset lemma).
            p0, p1 = gptr[a], gptr[b]
            base = loads[uprocs[uptr[v] : uptr[v + 1]]]
            rows = np.repeat(base[None, :], b - a, axis=0)
            rows[pin_row[p0:p1], pin_pos[p0:p1]] += pin_w[p0:p1]
            k = a + lex_best_row(rows)
        hedge_of_task[v] = ghedge[k]
        loads[gpins[gptr[k] : gptr[k + 1]]] += gw[k]

    return HyperSemiMatching(hg, hedge_of_task)


# ---------------------------------------------------------------------------
# EGH
# ---------------------------------------------------------------------------
def _expected_loads(hg: TaskHypergraph) -> np.ndarray:
    """Initial ``o(u)``: every configuration spreads ``w_h/d_v`` over its
    pins (Algorithm 5, lines 1-6)."""
    o = np.zeros(hg.n_procs, dtype=np.float64)
    deg = hg.task_degrees().astype(np.float64)
    share = hg.hedge_w / deg[hg.hedge_task]  # w_h / d_v per hyperedge
    np.add.at(o, hg.hedge_procs, np.repeat(share, np.diff(hg.hedge_ptr)))
    return o


def expected_greedy_hyp(
    hg: TaskHypergraph,
    *,
    lookahead: bool = True,
    sort_by_degree: bool = True,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """Algorithm 5 (EGH): SGH driven by expected loads ``o(u)``.

    Selection minimises ``max_{u in h} o(u)`` over the task's
    configurations; with ``lookahead=True`` (default) the tentative
    realisation ``max_{u in h}(o(u) + w_h - w_h/d_v)`` is minimised
    instead (identical ordering whenever all candidates share one weight,
    e.g. unit instances).  Committing a task updates ``o`` exactly as the
    pseudocode does, so on termination ``o`` equals the true loads.
    ``O(sum_h |h|)``.
    """
    check_backend(backend)
    _check_feasible(hg)
    if backend == "python":
        return _egh_python(hg, lookahead, sort_by_degree)
    return _egh_numpy(hg, lookahead, sort_by_degree)


def _egh_python(
    hg: TaskHypergraph, lookahead: bool, sort_by_degree: bool
) -> HyperSemiMatching:
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    deg = hg.task_degrees().astype(np.float64)

    for v in _visit_order(hg, sort_by_degree):
        dv = deg[v]
        best_h = -1
        best_key = np.inf
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            key = o[pins].max()
            if lookahead:
                key += w[h] - w[h] / dv
            if key < best_key:
                best_key = key
                best_h = int(h)
        hedge_of_task[v] = best_h
        # collapse the distribution (Algorithm 5, lines 10-14)
        for h in hg.task_hedge_ids(v):
            pins = hprocs[hptr[h] : hptr[h + 1]]
            if int(h) == best_h:
                o[pins] += w[h] - w[h] / dv
            else:
                o[pins] -= w[h] / dv

    return HyperSemiMatching(hg, hedge_of_task)


def _egh_numpy(
    hg: TaskHypergraph, lookahead: bool, sort_by_degree: bool
) -> HyperSemiMatching:
    ci = compile_instance(hg)
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    tptr = hg.task_ptr
    gptr, gpins, gw, ghedge, gsize = (
        ci.g_ptr,
        ci.g_pins,
        ci.g_w,
        ci.g_hedge,
        ci.g_size,
    )
    maximum_reduceat = np.maximum.reduceat

    for v in _visit_order(hg, sort_by_degree):
        a, b = tptr[v], tptr[v + 1]
        dv = float(b - a)
        p0, p1 = gptr[a], gptr[b]
        wslice = gw[a:b]
        share = wslice / dv
        if b - a == 1:
            j = 0
        else:
            keys = maximum_reduceat(o[gpins[p0:p1]], gptr[a:b] - p0)
            if lookahead:
                keys = keys + (wslice - share)
            j = int(np.argmin(keys))
        k = a + j
        hedge_of_task[v] = ghedge[k]
        # collapse the distribution: the chosen candidate realises
        # (w - w/d_v), the siblings withdraw their shares — applied in
        # candidate order, matching the Python loop's accumulation
        delta = -share
        delta[j] = wslice[j] - share[j]
        np.add.at(o, gpins[p0:p1], np.repeat(delta, gsize[a:b]))

    return HyperSemiMatching(hg, hedge_of_task)


# ---------------------------------------------------------------------------
# EVG
# ---------------------------------------------------------------------------
def expected_vector_greedy_hyp(
    hg: TaskHypergraph,
    *,
    method: str = "fast",
    sort_by_degree: bool = True,
    backend: str = "numpy",
) -> HyperSemiMatching:
    """EVG: vector ranking over tentatively-realised expected loads.

    For each candidate ``h`` of task ``v``, tentatively realise it (add
    ``w_h - w_h/d_v`` to its pins) and tentatively discard the siblings
    (subtract ``w_h'/d_v`` from theirs), then compare the resulting
    expected-load vectors descending-lexicographically.  All candidates
    share the same affected set — the union of all of ``v``'s pins — so
    with ``method="fast"`` each comparison sorts only that union.  The
    paper gives the complexity ``O(sum_v d_v |V2| + sum_v d_v sum_{h in v}
    |h|)`` for the naive variant (``method="naive"``, always on the
    Python path).
    """
    if method not in ("fast", "naive"):
        raise ValueError(f"method must be 'fast' or 'naive', got {method!r}")
    check_backend(backend)
    _check_feasible(hg)
    if backend == "python" or method == "naive":
        return _evg_python(hg, method, sort_by_degree)
    return _evg_numpy(hg, sort_by_degree)


def _evg_python(
    hg: TaskHypergraph, method: str, sort_by_degree: bool
) -> HyperSemiMatching:
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    hptr, hprocs, w = hg.hedge_ptr, hg.hedge_procs, hg.hedge_w
    deg = hg.task_degrees().astype(np.float64)

    for v in _visit_order(hg, sort_by_degree):
        dv = deg[v]
        hedges = hg.task_hedge_ids(v)
        pin_slices = [hprocs[hptr[h] : hptr[h + 1]] for h in hedges]

        # Realising candidate h changes o only on v's own pin union:
        # every sibling h' loses its w_h'/d_v share, then h adds w_h.
        aff = np.unique(np.concatenate(pin_slices))  # sorted union
        common = o[aff].copy()
        for h, pins in zip(hedges, pin_slices):
            common[np.searchsorted(aff, pins)] -= w[h] / dv

        best_i = 0
        if len(hedges) > 1:
            if method == "naive":
                best_vec: np.ndarray | None = None
                for i, (h, pins) in enumerate(zip(hedges, pin_slices)):
                    scenario = o.copy()
                    for h2, pins2 in zip(hedges, pin_slices):
                        scenario[pins2] -= w[h2] / dv
                    scenario[pins] += w[h]
                    vec = sorted_desc(scenario)
                    if best_vec is None or lex_compare_desc(vec, best_vec) < 0:
                        best_vec = vec
                        best_i = i
            else:
                best_vals: np.ndarray | None = None
                for i, (h, pins) in enumerate(zip(hedges, pin_slices)):
                    vals = common.copy()
                    vals[np.searchsorted(aff, pins)] += w[h]
                    if best_vals is None or (
                        lex_compare_multisets(vals, best_vals) < 0
                    ):
                        best_vals = vals
                        best_i = i

        best_h = int(hedges[best_i])
        hedge_of_task[v] = best_h
        # commit: o restricted to aff becomes the realised scenario
        final = common.copy()
        final[np.searchsorted(aff, pin_slices[best_i])] += w[best_h]
        o[aff] = final

    return HyperSemiMatching(hg, hedge_of_task)


def _evg_numpy(
    hg: TaskHypergraph, sort_by_degree: bool
) -> HyperSemiMatching:
    ci = compile_instance(hg)
    o = _expected_loads(hg)
    hedge_of_task = np.empty(hg.n_tasks, dtype=np.int64)
    tptr = hg.task_ptr
    gptr, gw, ghedge = ci.g_ptr, ci.g_w, ci.g_hedge
    uptr, uprocs = ci.u_ptr, ci.u_procs
    pin_w, pin_row, pin_pos = ci.g_pin_w, ci.g_pin_row, ci.g_pin_pos

    for v in _visit_order(hg, sort_by_degree):
        a, b = tptr[v], tptr[v + 1]
        dv = float(b - a)
        p0, p1 = gptr[a], gptr[b]
        u0, u1 = uptr[v], uptr[v + 1]
        pos = pin_pos[p0:p1]
        # every sibling withdraws its share, in candidate order (the
        # elementwise subtract.at matches the Python loop's order; the
        # buffered fancy subtract is identical — and cheaper — when no
        # processor appears in two of the task's candidates)
        common = o[uprocs[u0:u1]].copy()
        if p1 - p0 == u1 - u0:
            common[pos] -= pin_w[p0:p1] / dv
        else:
            np.subtract.at(common, pos, pin_w[p0:p1] / dv)
        if b - a == 1:
            j = 0
            final = common
            final[pos] += pin_w[p0:p1]
        else:
            rows = np.repeat(common[None, :], b - a, axis=0)
            rows[pin_row[p0:p1], pos] += pin_w[p0:p1]
            j = lex_best_row(rows)
            final = rows[j]
        k = a + j
        hedge_of_task[v] = ghedge[k]
        o[uprocs[u0:u1]] = final

    return HyperSemiMatching(hg, hedge_of_task)
