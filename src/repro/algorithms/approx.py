"""A 2-approximation for weighted SINGLEPROC (extension).

The paper's conclusion calls for "algorithms with guarantees"; for the
bipartite (SINGLEPROC) case the classical answer is the restricted-
assignment specialisation of Lenstra, Shmoys and Tardos' rounding (the
paper cites the same lineage: Graham et al.'s 2-approximation, improved to
``2 - 1/p`` by Shchepin and Vakhania).  This module implements the
LP-rounding scheme:

1. binary-search the target makespan ``T`` over the distinct candidate
   values; for each ``T`` solve the feasibility LP over edges with
   ``w(e) <= T``::

       sum_{u} x_iu = 1            for every task i
       sum_{i} w_iu x_iu <= T      for every processor u
       x >= 0

2. at the smallest feasible ``T*`` (which lower-bounds the optimum), take
   a *vertex* solution: integrally-assigned tasks keep their processor;
   the support of the fractional tasks is a pseudo-forest, so the
   fractional tasks admit a perfect matching into distinct processors
   (found here with the library's own Kuhn engine);

3. matched tasks add at most one extra job of weight ``<= T*`` per
   processor, so the result is at most ``2 T* <= 2 OPT``.

The returned report records ``T*`` so callers can verify the certificate
``makespan <= 2 T*`` (the tests do).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import InfeasibleError, SolverError
from ..core.semimatching import SemiMatching
from ..matching.kuhn import kuhn_matching

__all__ = ["lst_approximation", "LSTReport"]


@dataclass(frozen=True)
class LSTReport:
    """Result of the LP-rounding 2-approximation.

    ``threshold`` is the smallest LP-feasible target ``T*`` — a valid
    lower bound on the optimal makespan, so
    ``matching.makespan <= 2 * threshold`` certifies the factor.
    """

    matching: SemiMatching
    threshold: float
    lp_rounds: int

    @property
    def certified_ratio(self) -> float:
        """``makespan / threshold`` — guaranteed ``<= 2`` up to rounding."""
        return self.matching.makespan / self.threshold


def _lp_feasible(graph: BipartiteGraph, t: float):
    """Solve the feasibility LP for target ``t``; return the edge values
    (aligned with CSR edges; ineligible edges forced to 0) or ``None``."""
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix, hstack

    n, p, m = graph.n_tasks, graph.n_procs, graph.n_edges
    eligible = graph.weights <= t + 1e-12
    if not np.all(
        np.diff(graph.task_ptr)
        > 0  # defensive; validated upstream
    ):
        return None
    # every task needs at least one eligible edge
    owner = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.task_ptr))
    has_opt = np.zeros(n, dtype=bool)
    has_opt[owner[eligible]] = True
    if not np.all(has_opt):
        return None

    idx = np.flatnonzero(eligible)
    k = idx.size
    a_eq = coo_matrix(
        (np.ones(k), (owner[idx], np.arange(k))), shape=(n, k)
    ).tocsr()
    a_ub = coo_matrix(
        (graph.weights[idx], (graph.task_adj[idx], np.arange(k))),
        shape=(p, k),
    ).tocsr()
    res = linprog(
        np.zeros(k),
        A_eq=a_eq,
        b_eq=np.ones(n),
        A_ub=a_ub,
        b_ub=np.full(p, t),
        bounds=[(0, 1)] * k,
        method="highs",
    )
    if not res.success:
        return None
    x = np.zeros(m)
    x[idx] = res.x
    return x


def lst_approximation(
    graph: BipartiteGraph, *, tol: float = 1e-9
) -> LSTReport:
    """2-approximate minimum-makespan semi-matching for weighted graphs.

    Works on unit graphs too (where the exact algorithm is preferable).
    Raises :class:`InfeasibleError` when some task has no edge.
    """
    graph.validate(require_total=True)
    if graph.n_tasks == 0:
        return LSTReport(
            SemiMatching(graph, np.empty(0, dtype=np.int64)), 0.0, 0
        )

    # Candidate thresholds: the optimum is one of these loads' partial
    # sums; binary searching the sorted distinct edge weights times a
    # per-processor multiplicity grid is overkill — searching the LP over
    # the continuous range with the classic trick (candidates = distinct
    # load values at LP feasibility breakpoints) is approximated by a
    # numeric bisection between the trivial brackets, then tightened to
    # the largest relevant edge weight below T*.
    cheapest = np.array(
        [graph.task_edge_weights(i).min() for i in range(graph.n_tasks)]
    )
    lo = max(float(cheapest.max()), float(cheapest.sum()) / graph.n_procs)
    hi = float(graph.weights.sum())
    rounds = 0

    x_best = _lp_feasible(graph, hi)
    if x_best is None:  # pragma: no cover - hi is always feasible
        raise InfeasibleError("feasibility LP failed at the trivial bound")
    t_best = hi
    # numeric bisection to relative precision
    while hi - lo > max(tol, 1e-6 * max(1.0, lo)):
        mid = 0.5 * (lo + hi)
        rounds += 1
        x = _lp_feasible(graph, mid)
        if x is None:
            lo = mid
        else:
            hi = mid
            x_best, t_best = x, mid

    edge_of_task = _round_vertex_solution(graph, x_best)
    matching = SemiMatching(graph, edge_of_task)
    return LSTReport(matching=matching, threshold=t_best, lp_rounds=rounds)


def _round_vertex_solution(
    graph: BipartiteGraph, x: np.ndarray
) -> np.ndarray:
    """LST rounding: keep integral tasks, match fractional ones."""
    n = graph.n_tasks
    edge_of_task = np.full(n, -1, dtype=np.int64)
    frac_tasks: list[int] = []
    for i in range(n):
        lo_e, hi_e = int(graph.task_ptr[i]), int(graph.task_ptr[i + 1])
        vals = x[lo_e:hi_e]
        k = int(np.argmax(vals))
        if vals[k] >= 1.0 - 1e-6:
            edge_of_task[i] = lo_e + k
        else:
            frac_tasks.append(i)

    if frac_tasks:
        # Perfect-matching the fractional tasks into their support.
        support_nbrs: list[np.ndarray] = []
        support_edges: list[np.ndarray] = []
        for i in frac_tasks:
            lo_e, hi_e = int(graph.task_ptr[i]), int(graph.task_ptr[i + 1])
            mask = x[lo_e:hi_e] > 1e-9
            support_nbrs.append(graph.task_adj[lo_e:hi_e][mask])
            support_edges.append(np.arange(lo_e, hi_e)[mask])
        deg = np.array([len(s) for s in support_nbrs])
        ptr = np.zeros(len(frac_tasks) + 1, dtype=np.int64)
        np.cumsum(deg, out=ptr[1:])
        adj = (
            np.concatenate(support_nbrs)
            if support_nbrs
            else np.empty(0, dtype=np.int64)
        )
        res = kuhn_matching(len(frac_tasks), graph.n_procs, ptr, adj)
        if not res.is_left_perfect():  # pragma: no cover - theory says no
            raise SolverError(
                "LP support did not admit a perfect matching of the "
                "fractional tasks; the LP solution was not a vertex"
            )
        for j, i in enumerate(frac_tasks):
            u = int(res.match_of_left[j])
            local = np.flatnonzero(support_nbrs[j] == u)[0]
            edge_of_task[i] = int(support_edges[j][local])

    return edge_of_task
