"""Algorithms: exact solvers, greedy heuristics, bounds and refinements."""

from .approx import LSTReport, lst_approximation
from .baselines import first_fit, min_work, random_assignment
from .certificates import (
    DeadlineCertificate,
    deadline_certificate,
    hall_violator,
)
from .exact_unit import ExactUnitReport, exact_singleproc_unit, feasible_makespan
from .grasp import GraspReport, grasp, randomized_greedy
from .online import OnlineAssignment, OnlineScheduler
from .reductions import ReducedInstance, preprocess, solve_reduced
from .exhaustive import exhaustive_multiproc, exhaustive_singleproc
from .greedy_bipartite import (
    basic_greedy,
    double_sorted,
    expected_greedy,
    greedy_assign,
    sorted_greedy,
)
from .greedy_hypergraph import (
    expected_greedy_hyp,
    expected_vector_greedy_hyp,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)
from .harvey import harvey_optimal_semi_matching
from .local_search import LocalSearchReport, local_search
from .lower_bounds import (
    averaged_work_bound,
    averaged_work_bound_bipartite,
    combined_bound,
    critical_task_bound,
    lp_relaxation_bound,
)
_DEPRECATED_REGISTRY_NAMES = (
    "BIPARTITE_ALGORITHMS",
    "HYPERGRAPH_ALGORITHMS",
    "get_bipartite_algorithm",
    "get_hypergraph_algorithm",
)


def __getattr__(name: str):
    # the legacy registry surface is loaded lazily so that merely
    # importing repro.algorithms never emits its DeprecationWarning
    if name in _DEPRECATED_REGISTRY_NAMES:
        from . import registry

        return getattr(registry, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "grasp",
    "GraspReport",
    "randomized_greedy",
    "preprocess",
    "solve_reduced",
    "ReducedInstance",
    "hall_violator",
    "deadline_certificate",
    "DeadlineCertificate",
    "lst_approximation",
    "LSTReport",
    "OnlineScheduler",
    "OnlineAssignment",
    "random_assignment",
    "first_fit",
    "min_work",
    "basic_greedy",
    "sorted_greedy",
    "double_sorted",
    "expected_greedy",
    "greedy_assign",
    "sorted_greedy_hyp",
    "vector_greedy_hyp",
    "expected_greedy_hyp",
    "expected_vector_greedy_hyp",
    "exact_singleproc_unit",
    "feasible_makespan",
    "ExactUnitReport",
    "harvey_optimal_semi_matching",
    "exhaustive_multiproc",
    "exhaustive_singleproc",
    "local_search",
    "LocalSearchReport",
    "averaged_work_bound",
    "averaged_work_bound_bipartite",
    "critical_task_bound",
    "combined_bound",
    "lp_relaxation_bound",
    "BIPARTITE_ALGORITHMS",
    "HYPERGRAPH_ALGORITHMS",
    "get_bipartite_algorithm",
    "get_hypergraph_algorithm",
]
