"""Online scheduling under resource constraints (extension).

The paper's related work (refs [18], [19]) covers online algorithms for
processing-set-restricted scheduling; this module provides the online
counterpart of the library's greedy rules: tasks *arrive one at a time*
(with their configuration set) and must be assigned irrevocably before the
next arrival.

:class:`OnlineScheduler` maintains the processor loads incrementally and
supports two policies:

* ``"greedy"`` — the online version of sorted-greedy-hyp: choose the
  configuration with the smallest resulting bottleneck (for SINGLEPROC
  this is classic greedy list scheduling, which is
  ``Theta(log p)``-competitive on restricted assignment);
* ``"vector"`` — the online version of vector-greedy-hyp: break
  bottleneck ties by the whole affected load vector.

The offline greedy algorithms visit tasks sorted by degree — information
an online scheduler does not have; comparing the two quantifies the value
of that sort (see ``benchmarks/bench_online.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterable, Sequence

import numpy as np

from ..core.errors import GraphStructureError
from ..core.loadvec import lex_compare_multisets
from ..dynamic.journal import DeltaJournal, Mutation

__all__ = ["OnlineScheduler", "OnlineAssignment"]


@dataclass(frozen=True)
class OnlineAssignment:
    """Record of one online placement decision.

    The *instance-side* half of an arrival (the task and its full
    configuration set) lives in the scheduler's delta journal as a
    :class:`~repro.dynamic.Mutation`; this record keeps the
    *decision-side* half — which configuration the policy picked and
    what it did to the makespan."""

    task: Hashable
    config_index: int
    processors: tuple[int, ...]
    weight: float
    makespan_after: float


@dataclass
class OnlineScheduler:
    """Irrevocable one-task-at-a-time scheduler.

    Parameters
    ----------
    n_procs:
        Number of processors (fixed up front).
    policy:
        ``"greedy"`` (min resulting bottleneck) or ``"vector"``
        (descending-lex load vector).
    journal_arrivals:
        Record every arrival's *full* configuration set as a
        :class:`~repro.dynamic.Mutation` in :attr:`journal`, enabling
        :meth:`to_dynamic`.  Off by default: a long-running stream would
        otherwise retain every ``S_i`` forever (the decision history in
        :attr:`history` only keeps the chosen configuration).
    """

    n_procs: int
    policy: str = "greedy"
    journal_arrivals: bool = False
    _loads: np.ndarray = field(init=False, repr=False)
    _history: list[OnlineAssignment] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise GraphStructureError("need at least one processor")
        if self.policy not in ("greedy", "vector"):
            raise ValueError(
                f"policy must be 'greedy' or 'vector', got {self.policy!r}"
            )
        self._loads = np.zeros(self.n_procs, dtype=np.float64)
        self._history = []
        # when enabled, arrivals are journaled with the dynamic
        # subsystem's mutation records, so an online stream replays into
        # a DynamicInstance / IncrementalSolver verbatim (to_dynamic())
        self.journal = DeltaJournal()

    # ------------------------------------------------------------------
    def submit(
        self,
        configurations: Sequence[tuple[Iterable[int], float]],
        *,
        task: Hashable = None,
    ) -> OnlineAssignment:
        """Place one arriving task; returns the decision record.

        ``configurations`` is the task's ``S_i``: ``(processor ids,
        weight)`` pairs.  The decision is irrevocable.
        """
        if not configurations:
            raise GraphStructureError("a task needs at least one configuration")
        parsed: list[tuple[np.ndarray, float]] = []
        for procs, w in configurations:
            arr = np.asarray(sorted(set(int(u) for u in procs)), dtype=np.int64)
            if arr.size == 0:
                raise GraphStructureError("empty processor set")
            if arr[0] < 0 or arr[-1] >= self.n_procs:
                raise GraphStructureError("processor id out of range")
            if not (w > 0 and np.isfinite(w)):
                raise GraphStructureError(f"bad weight {w!r}")
            parsed.append((arr, float(w)))

        best = 0
        if len(parsed) > 1:
            if self.policy == "greedy":
                keys = [
                    float(self._loads[pins].max() + w) for pins, w in parsed
                ]
                best = int(np.argmin(keys))
            else:
                for i in range(1, len(parsed)):
                    if self._vector_better(parsed[i], parsed[best]):
                        best = i

        if self.journal_arrivals:
            self.journal.append(
                Mutation(
                    "add_task",
                    {
                        "task": len(self._history),
                        "configs": [
                            [[int(u) for u in pins], w]
                            for pins, w in parsed
                        ],
                    },
                )
            )
        pins, w = parsed[best]
        self._loads[pins] += w
        record = OnlineAssignment(
            task=task if task is not None else len(self._history),
            config_index=best,
            processors=tuple(int(u) for u in pins),
            weight=w,
            makespan_after=float(self._loads.max()),
        )
        self._history.append(record)
        return record

    def _vector_better(self, cand, best) -> bool:
        pins_c, w_c = cand
        pins_b, w_b = best
        aff = np.union1d(pins_c, pins_b)
        v_c = self._loads[aff].copy()
        v_c[np.searchsorted(aff, pins_c)] += w_c
        v_b = self._loads[aff].copy()
        v_b[np.searchsorted(aff, pins_b)] += w_b
        return lex_compare_multisets(v_c, v_b) < 0

    # ------------------------------------------------------------------
    @property
    def makespan(self) -> float:
        """Current maximum load."""
        return float(self._loads.max()) if self._loads.size else 0.0

    def bottleneck(self) -> float:
        """Alias of :attr:`makespan` — accessor parity with
        :meth:`repro.dynamic.IncrementalSolver.bottleneck`."""
        return self.makespan

    def loads(self) -> np.ndarray:
        """Current per-processor loads (a copy)."""
        return self._loads.copy()

    def to_dynamic(self):
        """The stream so far as a :class:`~repro.dynamic.DynamicInstance`.

        Requires ``journal_arrivals=True``.  The returned instance has
        this scheduler's processors and the journaled arrivals replayed
        in order — hand it to an
        :class:`~repro.dynamic.IncrementalSolver` to compare irrevocable
        online placement against repairable incremental placement on
        the *same* stream.
        """
        from ..dynamic.instance import DynamicInstance

        if self._history and not len(self.journal):
            raise GraphStructureError(
                "arrivals were not journaled; construct the scheduler "
                "with journal_arrivals=True to enable to_dynamic()"
            )
        inst = DynamicInstance()
        for _ in range(self.n_procs):
            inst.add_processor()
        # the processor joins above are instance setup, not stream
        # events: replay only the journaled arrivals
        inst.replay(self.journal)
        return inst

    @property
    def history(self) -> tuple[OnlineAssignment, ...]:
        """All placement decisions, in arrival order."""
        return tuple(self._history)

    def competitive_ratio(self, offline_makespan: float) -> float:
        """Makespan relative to a given offline solution's."""
        if offline_makespan <= 0:
            raise ValueError("offline makespan must be positive")
        return self.makespan / offline_makespan

    @staticmethod
    def replay_hypergraph(hg, *, policy: str = "greedy",
                          order: np.ndarray | None = None,
                          journal_arrivals: bool = False,
                          ) -> "OnlineScheduler":
        """Feed a MULTIPROC instance through the online scheduler.

        ``order`` is the arrival order (default: task index order — what
        an adversary-free stream looks like).  Returns the scheduler so
        callers can read the final makespan and history.
        """
        sched = OnlineScheduler(
            hg.n_procs, policy=policy, journal_arrivals=journal_arrivals
        )
        if order is None:
            order = np.arange(hg.n_tasks)
        for v in order:
            confs = [
                (hg.hedge_proc_set(int(h)), float(hg.hedge_w[int(h)]))
                for h in hg.task_hedge_ids(int(v))
            ]
            sched.submit(confs, task=int(v))
        return sched
