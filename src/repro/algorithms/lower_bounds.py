"""Lower bounds on the optimal makespan (paper Section IV-C).

The MULTIPROC heuristics cannot be compared to an exact optimum (the
problem is NP-complete, Theorem 1), so the paper evaluates them against
the averaged-work bound of equation (1):

    ``time_i = min_{h in S_i} w_h * |h ∩ V2|``   (cheapest total work of
    task ``i`` over its configurations), and

    ``LB = (1/p) * sum_i time_i``   (perfect balance of the cheapest work).

This module implements that bound, the complementary *critical-task*
bound ``max_i min_h w_h`` (some processor runs every task's cheapest
configuration weight), and — as an extension — the LP relaxation of the
configuration ILP solved with scipy's HiGHS, which dominates both on
small and medium instances.
"""

from __future__ import annotations

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import SolverError
from ..core.hypergraph import TaskHypergraph

__all__ = [
    "averaged_work_bound",
    "critical_task_bound",
    "combined_bound",
    "lp_relaxation_bound",
    "averaged_work_bound_bipartite",
]


def averaged_work_bound(hg: TaskHypergraph, *, integral: bool | None = None) -> float:
    """Equation (1): cheapest total work spread perfectly over ``p``.

    With ``integral=True`` the bound is rounded up, which is valid whenever
    all hyperedge weights are integers (the optimal makespan is then an
    integer); ``None`` auto-detects integrality.  The paper's Tables II/III
    report integer LB values, consistent with the rounded bound.
    """
    hg.validate(require_total=True)
    if hg.n_procs == 0:
        raise SolverError("no processors: lower bound undefined")
    sizes = np.diff(hg.hedge_ptr)
    work = hg.hedge_w * sizes  # w_h * |h ∩ V2| per hyperedge
    # min over each task's hyperedges
    time_i = np.full(hg.n_tasks, np.inf)
    np.minimum.at(time_i, hg.hedge_task, work)
    lb = float(time_i.sum() / hg.n_procs)
    if integral is None:
        integral = bool(np.all(hg.hedge_w == np.floor(hg.hedge_w)))
    if integral:
        lb = float(np.ceil(lb - 1e-9))
    return max(lb, 0.0)


def critical_task_bound(hg: TaskHypergraph) -> float:
    """``max_i min_{h in S_i} w_h``: every task must pay its cheapest
    configuration weight on some processor."""
    hg.validate(require_total=True)
    cheapest = np.full(hg.n_tasks, np.inf)
    np.minimum.at(cheapest, hg.hedge_task, hg.hedge_w)
    return float(cheapest.max()) if hg.n_tasks else 0.0


def combined_bound(hg: TaskHypergraph) -> float:
    """Max of the averaged-work and critical-task bounds."""
    return max(averaged_work_bound(hg), critical_task_bound(hg))


def averaged_work_bound_bipartite(
    graph: BipartiteGraph, *, integral: bool | None = None
) -> float:
    """Equation (1) specialised to SINGLEPROC (configuration size 1)."""
    graph.validate(require_total=True)
    if graph.n_procs == 0:
        raise SolverError("no processors: lower bound undefined")
    time_i = np.full(graph.n_tasks, np.inf)
    owner = np.repeat(
        np.arange(graph.n_tasks, dtype=np.int64), np.diff(graph.task_ptr)
    )
    np.minimum.at(time_i, owner, graph.weights)
    lb = float(time_i.sum() / graph.n_procs)
    if integral is None:
        integral = bool(np.all(graph.weights == np.floor(graph.weights)))
    if integral:
        lb = float(np.ceil(lb - 1e-9))
    return max(lb, 0.0)


def lp_relaxation_bound(
    hg: TaskHypergraph, *, max_hedges: int = 200_000
) -> float:
    """LP relaxation of the configuration ILP (extension; dominates eq. (1)).

    Minimise ``M`` subject to ``sum_{h in S_i} x_h = 1`` per task and
    ``sum_{h ∋ u} w_h x_h <= M`` per processor, ``x >= 0``.  Solved with
    scipy's HiGHS on sparse constraint matrices.  ``max_hedges`` guards
    against accidentally shipping a huge instance to the LP solver.
    """
    from scipy.optimize import linprog
    from scipy.sparse import coo_matrix, hstack

    hg.validate(require_total=True)
    nh, nt, p = hg.n_hedges, hg.n_tasks, hg.n_procs
    if nh > max_hedges:
        raise SolverError(
            f"instance has {nh} hyperedges; raise max_hedges (= {max_hedges}) "
            "to solve the LP anyway"
        )
    # variables: x_0..x_{nh-1}, M
    # equality: one chosen configuration per task (fractionally)
    a_eq = coo_matrix(
        (np.ones(nh), (hg.hedge_task, np.arange(nh))), shape=(nt, nh)
    )
    a_eq = hstack([a_eq, coo_matrix((nt, 1))], format="csr")
    b_eq = np.ones(nt)
    # inequality: per-processor load minus M <= 0
    sizes = np.diff(hg.hedge_ptr)
    rows = hg.hedge_procs
    cols = np.repeat(np.arange(nh, dtype=np.int64), sizes)
    vals = np.repeat(hg.hedge_w, sizes)
    a_ub = coo_matrix((vals, (rows, cols)), shape=(p, nh))
    a_ub = hstack(
        [a_ub, coo_matrix((-np.ones(p), (np.arange(p), np.zeros(p, int))),
                          shape=(p, 1))],
        format="csr",
    )
    b_ub = np.zeros(p)
    c = np.zeros(nh + 1)
    c[-1] = 1.0
    res = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=[(0, None)] * (nh + 1),
        method="highs",
    )
    if not res.success:  # pragma: no cover - defensive
        raise SolverError(f"LP relaxation failed: {res.message}")
    return float(res.fun)
