"""Optimal semi-matching via alternating paths (Harvey et al., ref [14]).

The paper cites Harvey, Ladner, Lovász and Tamir, *Semi-matchings for
bipartite graphs and load balancing* (J. Algorithms 59, 2006) as the
``O(|V1||E|)`` polynomial algorithm for SINGLEPROC-UNIT.  This module
implements their incremental algorithm ``ASM2``: tasks are inserted one at
a time, each along an *alternating path* to the reachable processor of
minimum current load.

An alternating path from task ``v`` walks ``v -> u1 -> v1 -> u2 -> ...``
where each ``u -> v'`` step follows an existing assignment and each
``v' -> u'`` step follows any edge.  Flipping the path moves one unit of
load from its first processor to its last.  Harvey et al. prove the
invariant that inserting every task along a least-load alternating path
keeps the semi-matching *optimal* — it simultaneously minimises every
symmetric convex cost of the load vector, in particular the makespan
(which is how the tests cross-validate it against the replication-based
exact algorithm) and the total flow cost ``sum_u l(u)(l(u)+1)/2``.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from ..core.bipartite import BipartiteGraph
from ..core.errors import SolverError
from ..core.semimatching import SemiMatching

__all__ = ["harvey_optimal_semi_matching"]


def harvey_optimal_semi_matching(graph: BipartiteGraph) -> SemiMatching:
    """Optimal SINGLEPROC-UNIT semi-matching in ``O(|V1||E|)``.

    Raises :class:`SolverError` on weighted graphs.
    """
    if not graph.is_unit:
        raise SolverError(
            "Harvey et al.'s algorithm applies to unit weights only"
        )
    graph.validate(require_total=True)

    n, p = graph.n_tasks, graph.n_procs
    ptr, adj = graph.task_ptr, graph.task_adj
    loads = np.zeros(p, dtype=np.int64)
    proc_of_task = np.full(n, -1, dtype=np.int64)
    # tasks currently assigned to each processor (for alternating steps)
    assigned: list[list[int]] = [[] for _ in range(p)]

    seen_proc = np.zeros(p, dtype=np.int64)
    seen_task = np.zeros(n, dtype=np.int64)
    parent_proc = np.empty(p, dtype=np.int64)  # task we arrived from
    parent_task = np.empty(n, dtype=np.int64)  # processor we arrived from

    for v0 in range(n):
        stamp = v0 + 1
        # BFS over alternating paths collecting every reachable processor.
        seen_task[v0] = stamp
        q: deque[int] = deque([v0])
        best_u = -1
        while q:
            v = q.popleft()
            for k in range(ptr[v], ptr[v + 1]):
                u = int(adj[k])
                if seen_proc[u] == stamp:
                    continue
                seen_proc[u] = stamp
                parent_proc[u] = v
                if best_u < 0 or loads[u] < loads[best_u]:
                    best_u = u
                for w in assigned[u]:
                    if seen_task[w] != stamp:
                        seen_task[w] = stamp
                        parent_task[w] = u
                        q.append(w)

        # Flip the alternating path ending at the least-loaded processor.
        u = best_u
        loads[u] += 1
        while True:
            v = int(parent_proc[u])
            old = int(proc_of_task[v])
            if old >= 0:
                assigned[old].remove(v)
            proc_of_task[v] = u
            assigned[u].append(v)
            if v == v0:
                break
            u = old  # the path reached v through its previous processor

    return SemiMatching.from_proc_assignment(graph, proc_of_task)
