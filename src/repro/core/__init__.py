"""Core data structures: graphs, hypergraphs and semi-matching results."""

from .bipartite import BipartiteGraph
from .errors import (
    GraphStructureError,
    InfeasibleError,
    InvalidMatchingError,
    SemiMatchError,
    SolverError,
)
from .hypergraph import TaskHypergraph
from .loadvec import (
    lex_compare_desc,
    lex_compare_full,
    lex_compare_multisets,
    sorted_desc,
)
from .semimatching import HyperSemiMatching, SemiMatching
from .stats import (
    InstanceStats,
    LoadStats,
    bipartite_stats,
    instance_stats,
    load_stats,
)

__all__ = [
    "InstanceStats",
    "LoadStats",
    "instance_stats",
    "bipartite_stats",
    "load_stats",
    "BipartiteGraph",
    "TaskHypergraph",
    "SemiMatching",
    "HyperSemiMatching",
    "SemiMatchError",
    "GraphStructureError",
    "InvalidMatchingError",
    "SolverError",
    "InfeasibleError",
    "sorted_desc",
    "lex_compare_desc",
    "lex_compare_multisets",
    "lex_compare_full",
]
