"""Standalone validators and load recomputation helpers.

The result objects in :mod:`repro.core.semimatching` validate on
construction; the functions here re-derive loads/makespans from first
principles and are used in tests as an independent oracle, and by callers
who hold raw assignment arrays.
"""

from __future__ import annotations

import numpy as np

from .bipartite import BipartiteGraph
from .errors import InvalidMatchingError
from .hypergraph import TaskHypergraph

__all__ = [
    "compute_loads_bipartite",
    "compute_loads_hypergraph",
    "makespan_bipartite",
    "makespan_hypergraph",
    "assert_valid_semi_matching",
    "assert_valid_hyper_semi_matching",
]


def compute_loads_bipartite(
    graph: BipartiteGraph, proc_of_task: np.ndarray, weights_used: np.ndarray
) -> np.ndarray:
    """Accumulate per-processor loads from a task->processor assignment.

    ``weights_used[i]`` is the execution time task ``i`` incurs on its
    assigned processor.
    """
    loads = np.zeros(graph.n_procs, dtype=np.float64)
    np.add.at(loads, np.asarray(proc_of_task, dtype=np.int64), weights_used)
    return loads


def compute_loads_hypergraph(
    hg: TaskHypergraph, hedge_of_task: np.ndarray
) -> np.ndarray:
    """Accumulate per-processor loads from a task->hyperedge assignment."""
    loads = np.zeros(hg.n_procs, dtype=np.float64)
    for i in range(hg.n_tasks):
        h = int(hedge_of_task[i])
        loads[hg.hedge_proc_set(h)] += hg.hedge_w[h]
    return loads


def makespan_bipartite(
    graph: BipartiteGraph, proc_of_task: np.ndarray, weights_used: np.ndarray
) -> float:
    """Makespan of a raw SINGLEPROC assignment."""
    loads = compute_loads_bipartite(graph, proc_of_task, weights_used)
    return float(loads.max()) if loads.size else 0.0


def makespan_hypergraph(hg: TaskHypergraph, hedge_of_task: np.ndarray) -> float:
    """Makespan of a raw MULTIPROC assignment."""
    loads = compute_loads_hypergraph(hg, hedge_of_task)
    return float(loads.max()) if loads.size else 0.0


def assert_valid_semi_matching(
    graph: BipartiteGraph, edge_of_task: np.ndarray
) -> None:
    """Raise :class:`InvalidMatchingError` unless ``edge_of_task`` is a
    valid semi-matching: one incident edge per task."""
    edges = np.asarray(edge_of_task, dtype=np.int64)
    if edges.shape != (graph.n_tasks,):
        raise InvalidMatchingError("assignment must cover every task exactly once")
    for i in range(graph.n_tasks):
        e = int(edges[i])
        if not (0 <= e < graph.n_edges):
            raise InvalidMatchingError(f"edge index {e} out of range")
        if not (graph.task_ptr[i] <= e < graph.task_ptr[i + 1]):
            raise InvalidMatchingError(f"edge {e} is not incident to task {i}")


def assert_valid_hyper_semi_matching(
    hg: TaskHypergraph, hedge_of_task: np.ndarray
) -> None:
    """Raise :class:`InvalidMatchingError` unless ``hedge_of_task`` is a
    valid hypergraph semi-matching: one incident hyperedge per task, which
    also guarantees the matched hyperedges are disjoint on ``V1``."""
    hedges = np.asarray(hedge_of_task, dtype=np.int64)
    if hedges.shape != (hg.n_tasks,):
        raise InvalidMatchingError("assignment must cover every task exactly once")
    for i in range(hg.n_tasks):
        h = int(hedges[i])
        if not (0 <= h < hg.n_hedges):
            raise InvalidMatchingError(f"hyperedge index {h} out of range")
        if int(hg.hedge_task[h]) != i:
            raise InvalidMatchingError(
                f"hyperedge {h} belongs to task {int(hg.hedge_task[h])}, "
                f"not task {i}"
            )
