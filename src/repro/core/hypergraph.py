"""Bipartite task-processor hypergraphs (the MULTIPROC instance model).

A :class:`TaskHypergraph` models an instance of the paper's MULTIPROC
problem (Section II-B).  Each hyperedge ``h`` contains exactly one task
vertex and a non-empty set of processor vertices; selecting ``h`` schedules
its task on *all* processors of ``h`` simultaneously, adding the hyperedge
weight ``w_h`` to the load of each of them.

Storage follows the paper's own observation (Section V-A2) that such a
hypergraph is conveniently represented by two bipartite relations:

* task -> hyperedges (each hyperedge belongs to exactly one task), and
* hyperedge -> processors (the ``h ∩ V2`` pin lists),

both kept as flat CSR arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .bipartite import BipartiteGraph
from .errors import GraphStructureError
from .._util import check_1d_int

__all__ = ["TaskHypergraph"]


@dataclass(frozen=True)
class TaskHypergraph:
    """Immutable bipartite hypergraph for MULTIPROC instances.

    Attributes
    ----------
    n_tasks, n_procs, n_hedges:
        ``|V1|``, ``|V2|`` and ``|N|``.
    hedge_task:
        For each hyperedge, the id of its unique task vertex.
    hedge_ptr, hedge_procs:
        CSR pin lists: processors of hyperedge ``h`` are
        ``hedge_procs[hedge_ptr[h]:hedge_ptr[h+1]]``.
    hedge_w:
        Weight ``w_h`` of each hyperedge (execution time on every processor
        of the configuration).  All ones for MULTIPROC-UNIT.
    task_ptr, task_hedges:
        CSR index from tasks to their incident hyperedges (the
        configurations ``S_i``).
    proc_ptr, proc_hedges:
        CSR index from processors to incident hyperedges.
    """

    n_tasks: int
    n_procs: int
    n_hedges: int
    hedge_task: np.ndarray
    hedge_ptr: np.ndarray
    hedge_procs: np.ndarray
    hedge_w: np.ndarray
    task_ptr: np.ndarray
    task_hedges: np.ndarray
    proc_ptr: np.ndarray
    proc_hedges: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_hyperedges(
        n_tasks: int,
        n_procs: int,
        hedge_task: np.ndarray | Sequence[int],
        proc_lists: Iterable[Iterable[int]],
        weights: np.ndarray | Sequence[float] | None = None,
    ) -> "TaskHypergraph":
        """Build a hypergraph from one (task, processor-set) pair per edge.

        ``hedge_task[k]`` is the task of hyperedge ``k``; ``proc_lists[k]``
        its processor set (must be non-empty and duplicate-free);
        ``weights[k]`` its weight (defaults to 1, i.e. MULTIPROC-UNIT).
        """
        ht = check_1d_int(np.asarray(hedge_task), "hedge_task")
        plists = [np.asarray(list(ps), dtype=np.int64) for ps in proc_lists]
        if len(plists) != ht.shape[0]:
            raise GraphStructureError(
                f"got {ht.shape[0]} hyperedge tasks but {len(plists)} "
                "processor lists"
            )
        nh = ht.shape[0]
        if weights is None:
            w = np.ones(nh, dtype=np.float64)
        else:
            w = np.ascontiguousarray(weights, dtype=np.float64)
            if w.shape != (nh,):
                raise GraphStructureError(
                    f"weights must have one entry per hyperedge ({nh}), "
                    f"got shape {w.shape}"
                )
            if nh and (not np.all(np.isfinite(w)) or np.any(w <= 0)):
                raise GraphStructureError(
                    "hyperedge weights must be finite and positive"
                )
        if nh and (ht.min() < 0 or ht.max() >= n_tasks):
            raise GraphStructureError("hyperedge task id out of range")
        sizes = np.array([len(ps) for ps in plists], dtype=np.int64)
        if np.any(sizes == 0):
            bad = int(np.flatnonzero(sizes == 0)[0])
            raise GraphStructureError(f"hyperedge {bad} has an empty processor set")
        hedge_ptr = np.zeros(nh + 1, dtype=np.int64)
        np.cumsum(sizes, out=hedge_ptr[1:])
        hedge_procs = (
            np.concatenate(plists) if plists else np.empty(0, dtype=np.int64)
        )
        if hedge_procs.size and (
            hedge_procs.min() < 0 or hedge_procs.max() >= n_procs
        ):
            raise GraphStructureError("hyperedge processor id out of range")
        pin_owner = np.repeat(np.arange(nh, dtype=np.int64), sizes)
        # duplicate pins within a hyperedge: one vectorized pass over
        # (owner, proc) pairs — a per-hyperedge np.unique loop costs
        # more than the rest of construction on many-small-edge
        # instances (the service's wire-deserialisation hot path)
        if hedge_procs.size:
            order = np.lexsort((hedge_procs, pin_owner))
            sp, so = hedge_procs[order], pin_owner[order]
            dup = (sp[1:] == sp[:-1]) & (so[1:] == so[:-1])
            if np.any(dup):
                bad = int(so[1:][dup][0])
                raise GraphStructureError(
                    f"hyperedge {bad} contains duplicate processors"
                )

        # task -> hyperedges (stable: preserves input hyperedge order)
        order_t = np.argsort(ht, kind="stable")
        task_hedges = order_t.astype(np.int64)
        task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        np.add.at(task_ptr, ht + 1, 1)
        np.cumsum(task_ptr, out=task_ptr)

        # processor -> hyperedges
        order_p = np.argsort(hedge_procs, kind="stable")
        proc_hedges = pin_owner[order_p]
        proc_ptr = np.zeros(n_procs + 1, dtype=np.int64)
        np.add.at(proc_ptr, hedge_procs + 1, 1)
        np.cumsum(proc_ptr, out=proc_ptr)

        return TaskHypergraph(
            n_tasks=n_tasks,
            n_procs=n_procs,
            n_hedges=nh,
            hedge_task=ht,
            hedge_ptr=hedge_ptr,
            hedge_procs=hedge_procs,
            hedge_w=w,
            task_ptr=task_ptr,
            task_hedges=task_hedges,
            proc_ptr=proc_ptr,
            proc_hedges=proc_hedges,
        )

    @staticmethod
    def from_configurations(
        configurations: Iterable[Iterable[Iterable[int]]],
        n_procs: int | None = None,
        weights: Iterable[Iterable[float]] | None = None,
    ) -> "TaskHypergraph":
        """Build a hypergraph from per-task configuration collections.

        ``configurations[i]`` is the paper's ``S_i``: a collection of
        processor sets task ``i`` may use.  ``weights[i][j]`` is the weight
        of task ``i``'s ``j``-th configuration.
        """
        confs = [[list(c) for c in ci] for ci in configurations]
        hedge_task = np.concatenate(
            [np.full(len(ci), i, dtype=np.int64) for i, ci in enumerate(confs)]
            or [np.empty(0, dtype=np.int64)]
        )
        plists = [c for ci in confs for c in ci]
        if n_procs is None:
            n_procs = 1 + max((max(c) for c in plists if c), default=-1)
        w = None
        if weights is not None:
            wl = [list(wi) for wi in weights]
            if len(wl) != len(confs) or any(
                len(a) != len(b) for a, b in zip(wl, confs)
            ):
                raise GraphStructureError(
                    "weights must mirror the shape of configurations"
                )
            w = np.asarray([x for wi in wl for x in wi], dtype=np.float64)
        return TaskHypergraph.from_hyperedges(
            len(confs), n_procs, hedge_task, plists, w
        )

    # ------------------------------------------------------------------
    # properties and views
    # ------------------------------------------------------------------
    @property
    def total_pins(self) -> int:
        """Total pin count ``Σ_h |h ∩ V2|`` (reported in paper Table I)."""
        return int(self.hedge_procs.shape[0])

    @property
    def is_unit(self) -> bool:
        """True when all hyperedge weights are 1 (MULTIPROC-UNIT)."""
        return bool(np.all(self.hedge_w == 1.0))

    def hedge_sizes(self) -> np.ndarray:
        """``s_h = |h ∩ V2|`` for every hyperedge."""
        return np.diff(self.hedge_ptr)

    def task_degrees(self) -> np.ndarray:
        """``d_v``: the number of configurations of every task."""
        return np.diff(self.task_ptr)

    def hedge_proc_set(self, h: int) -> np.ndarray:
        """Processor ids of hyperedge ``h`` (a view, do not mutate)."""
        return self.hedge_procs[self.hedge_ptr[h] : self.hedge_ptr[h + 1]]

    def task_hedge_ids(self, i: int) -> np.ndarray:
        """Hyperedge ids incident to task ``i`` (a view, do not mutate)."""
        return self.task_hedges[self.task_ptr[i] : self.task_ptr[i + 1]]

    def validate(self, require_total: bool = True) -> None:
        """Check structural invariants; raise :class:`GraphStructureError`."""
        if self.hedge_task.shape != (self.n_hedges,):
            raise GraphStructureError("hedge_task has wrong length")
        if self.hedge_ptr.shape != (self.n_hedges + 1,):
            raise GraphStructureError("hedge_ptr has wrong length")
        if self.hedge_ptr[0] != 0 or self.hedge_ptr[-1] != self.total_pins:
            raise GraphStructureError("hedge_ptr is not a valid CSR pointer")
        if np.any(np.diff(self.hedge_ptr) <= 0):
            raise GraphStructureError("every hyperedge needs a non-empty pin list")
        if self.n_hedges:
            if self.hedge_task.min() < 0 or self.hedge_task.max() >= self.n_tasks:
                raise GraphStructureError("hyperedge task id out of range")
            if (
                self.hedge_procs.min() < 0
                or self.hedge_procs.max() >= self.n_procs
            ):
                raise GraphStructureError("hyperedge processor id out of range")
            if np.any(self.hedge_w <= 0):
                raise GraphStructureError("hyperedge weights must be positive")
        if require_total and np.any(np.diff(self.task_ptr) == 0):
            bad = int(np.flatnonzero(np.diff(self.task_ptr) == 0)[0])
            raise GraphStructureError(
                f"task {bad} has no configuration; no semi-matching exists"
            )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray) -> "TaskHypergraph":
        """Return a copy with new hyperedge weights."""
        w = np.ascontiguousarray(weights, dtype=np.float64)
        if w.shape != (self.n_hedges,):
            raise GraphStructureError(
                f"expected {self.n_hedges} weights, got shape {w.shape}"
            )
        if self.n_hedges and (not np.all(np.isfinite(w)) or np.any(w <= 0)):
            raise GraphStructureError("hyperedge weights must be finite and positive")
        return TaskHypergraph(
            n_tasks=self.n_tasks,
            n_procs=self.n_procs,
            n_hedges=self.n_hedges,
            hedge_task=self.hedge_task,
            hedge_ptr=self.hedge_ptr,
            hedge_procs=self.hedge_procs,
            hedge_w=w,
            task_ptr=self.task_ptr,
            task_hedges=self.task_hedges,
            proc_ptr=self.proc_ptr,
            proc_hedges=self.proc_hedges,
        )

    def unit(self) -> "TaskHypergraph":
        """Return the unweighted (unit-weight) version of this hypergraph."""
        return self.with_weights(np.ones(self.n_hedges))

    def is_bipartite_graph(self) -> bool:
        """True when every configuration uses a single processor, i.e. the
        instance is really a SINGLEPROC instance."""
        return bool(np.all(self.hedge_sizes() == 1))

    def to_bipartite(self) -> BipartiteGraph:
        """Convert a singleton-configuration hypergraph to a bipartite graph.

        Raises :class:`GraphStructureError` if some hyperedge contains more
        than one processor.
        """
        if not self.is_bipartite_graph():
            raise GraphStructureError(
                "hypergraph has multi-processor configurations; "
                "cannot convert to a bipartite SINGLEPROC instance"
            )
        return BipartiteGraph.from_edges(
            self.n_tasks,
            self.n_procs,
            self.hedge_task,
            self.hedge_procs,
            self.hedge_w,
        )

    @staticmethod
    def from_bipartite(graph: BipartiteGraph) -> "TaskHypergraph":
        """Lift a SINGLEPROC instance into the hypergraph model (each edge
        becomes a singleton-configuration hyperedge)."""
        owner = np.repeat(
            np.arange(graph.n_tasks, dtype=np.int64), np.diff(graph.task_ptr)
        )
        return TaskHypergraph.from_hyperedges(
            graph.n_tasks,
            graph.n_procs,
            owner,
            [[int(u)] for u in graph.task_adj],
            graph.weights,
        )

    def to_networkx(self):
        """Star-expansion as a :class:`networkx.Graph`.

        Three node families: tasks ``("T", i)``, hyperedges ``("H", h)``
        (with ``weight`` attributes) and processors ``("P", u)``; each
        hyperedge node connects its task to its pins.  This is the
        standard bipartite expansion of a hypergraph, convenient for
        visualisation and for reusing networkx algorithms.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("T", int(i)) for i in range(self.n_tasks)),
                         kind="task")
        g.add_nodes_from((("P", int(u)) for u in range(self.n_procs)),
                         kind="processor")
        for h in range(self.n_hedges):
            node = ("H", int(h))
            g.add_node(node, kind="hyperedge", weight=float(self.hedge_w[h]))
            g.add_edge(("T", int(self.hedge_task[h])), node)
            for u in self.hedge_proc_set(h):
                g.add_edge(node, ("P", int(u)))
        return g

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unit" if self.is_unit else "weighted"
        return (
            f"TaskHypergraph(n_tasks={self.n_tasks}, n_procs={self.n_procs}, "
            f"n_hedges={self.n_hedges}, pins={self.total_pins}, {kind})"
        )
