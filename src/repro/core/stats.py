"""Instance and solution statistics (extension).

Descriptive metrics for instances (what does this workload look like?)
and for solutions (how good is this schedule beyond its makespan?).  The
experiment harness reports makespans and quality ratios like the paper;
these metrics support the analysis a library user actually performs:
spotting imbalance, idle capacity and heavy-tailed degree structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .bipartite import BipartiteGraph
from .hypergraph import TaskHypergraph
from .semimatching import HyperSemiMatching, SemiMatching

__all__ = [
    "InstanceStats",
    "LoadStats",
    "instance_stats",
    "bipartite_stats",
    "load_stats",
]


@dataclass(frozen=True)
class InstanceStats:
    """Shape summary of a MULTIPROC instance."""

    n_tasks: int
    n_procs: int
    n_hedges: int
    total_pins: int
    mean_configs_per_task: float
    max_configs_per_task: int
    mean_config_size: float
    max_config_size: int
    weight_min: float
    weight_max: float
    tasks_per_proc_ratio: float

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"tasks: {self.n_tasks}  processors: {self.n_procs}  "
                f"(ratio {self.tasks_per_proc_ratio:.2f})",
                f"configurations: {self.n_hedges} "
                f"(per task mean {self.mean_configs_per_task:.2f}, "
                f"max {self.max_configs_per_task})",
                f"pins: {self.total_pins} "
                f"(config size mean {self.mean_config_size:.2f}, "
                f"max {self.max_config_size})",
                f"weights: [{self.weight_min:g}, {self.weight_max:g}]",
            ]
        )


def instance_stats(hg: TaskHypergraph) -> InstanceStats:
    """Shape summary of a hypergraph instance."""
    deg = hg.task_degrees()
    sizes = hg.hedge_sizes()
    return InstanceStats(
        n_tasks=hg.n_tasks,
        n_procs=hg.n_procs,
        n_hedges=hg.n_hedges,
        total_pins=hg.total_pins,
        mean_configs_per_task=float(deg.mean()) if deg.size else 0.0,
        max_configs_per_task=int(deg.max()) if deg.size else 0,
        mean_config_size=float(sizes.mean()) if sizes.size else 0.0,
        max_config_size=int(sizes.max()) if sizes.size else 0,
        weight_min=float(hg.hedge_w.min()) if hg.n_hedges else 0.0,
        weight_max=float(hg.hedge_w.max()) if hg.n_hedges else 0.0,
        tasks_per_proc_ratio=(
            hg.n_tasks / hg.n_procs if hg.n_procs else float("inf")
        ),
    )


def bipartite_stats(graph: BipartiteGraph) -> InstanceStats:
    """Shape summary of a bipartite instance (configs are single edges)."""
    return instance_stats(TaskHypergraph.from_bipartite(graph))


@dataclass(frozen=True)
class LoadStats:
    """Balance metrics of a solution's load vector."""

    makespan: float
    mean_load: float
    std_load: float
    idle_procs: int
    imbalance: float  # makespan / mean - 1 (0 = perfectly balanced)
    utilization: float  # mean / makespan (1 = perfectly balanced)
    l2_cost: float  # sum l(l+1)/2, the semi-matching flow cost

    def describe(self) -> str:
        """Multi-line human-readable rendering."""
        return "\n".join(
            [
                f"makespan: {self.makespan:g}  mean load: "
                f"{self.mean_load:.3g}  std: {self.std_load:.3g}",
                f"idle processors: {self.idle_procs}  "
                f"utilization: {self.utilization:.1%}  "
                f"imbalance: {self.imbalance:.1%}",
                f"flow cost sum l(l+1)/2: {self.l2_cost:g}",
            ]
        )


def load_stats(matching: SemiMatching | HyperSemiMatching) -> LoadStats:
    """Balance metrics of any matching result."""
    loads = matching.loads()
    if loads.size == 0:
        return LoadStats(0.0, 0.0, 0.0, 0, 0.0, 1.0, 0.0)
    mk = float(loads.max())
    mean = float(loads.mean())
    return LoadStats(
        makespan=mk,
        mean_load=mean,
        std_load=float(loads.std()),
        idle_procs=int(np.sum(loads == 0)),
        imbalance=(mk / mean - 1.0) if mean > 0 else 0.0,
        utilization=(mean / mk) if mk > 0 else 1.0,
        l2_cost=float(np.sum(loads * (loads + 1) / 2)),
    )
