"""Bipartite task-processor graphs (the SINGLEPROC instance model).

A :class:`BipartiteGraph` stores the instance of the paper's SINGLEPROC
problem (Section II-A): ``V1`` is the set of tasks, ``V2`` the set of
processors, and an edge ``(T_i, P_u)`` with weight ``w_i^{P_u}`` means task
``i`` may execute on processor ``u`` with that execution time.

The graph is stored twice, in CSR form from the task side and in CSC form
from the processor side, as flat NumPy arrays.  This is the idiomatic
layout for graph kernels in numerical Python: neighbour scans are
contiguous-slice reads, degree computations are vectorised ``diff`` calls,
and no per-edge Python objects exist.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from .errors import GraphStructureError
from .._util import check_1d_int

__all__ = ["BipartiteGraph"]


@dataclass(frozen=True)
class BipartiteGraph:
    """Immutable bipartite task-processor graph in CSR/CSC form.

    Attributes
    ----------
    n_tasks, n_procs:
        Sizes of the two vertex sets ``|V1|`` and ``|V2|``.
    task_ptr, task_adj:
        CSR adjacency from the task side: the neighbours (processor ids) of
        task ``i`` are ``task_adj[task_ptr[i]:task_ptr[i+1]]``.
    weights:
        Edge weights aligned with ``task_adj`` (execution time of task ``i``
        on that processor).  All ones for SINGLEPROC-UNIT.
    proc_ptr, proc_adj:
        CSC adjacency from the processor side: the neighbours (task ids) of
        processor ``u`` are ``proc_adj[proc_ptr[u]:proc_ptr[u+1]]``.
    proc_edge:
        For each CSC position, the index of the same edge in the CSR arrays,
        so ``weights[proc_edge]`` gives weights in CSC order.
    """

    n_tasks: int
    n_procs: int
    task_ptr: np.ndarray
    task_adj: np.ndarray
    weights: np.ndarray
    proc_ptr: np.ndarray
    proc_adj: np.ndarray
    proc_edge: np.ndarray

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @staticmethod
    def from_edges(
        n_tasks: int,
        n_procs: int,
        task_ids: np.ndarray | Sequence[int],
        proc_ids: np.ndarray | Sequence[int],
        weights: np.ndarray | Sequence[float] | None = None,
    ) -> "BipartiteGraph":
        """Build a graph from parallel edge-endpoint arrays.

        ``task_ids[k]``/``proc_ids[k]`` are the endpoints of edge ``k``;
        ``weights[k]`` its execution time (defaults to all-ones, i.e. a
        SINGLEPROC-UNIT instance).  Edge order within a task's neighbour
        list follows the input order (stable), which the greedy heuristics
        rely on for deterministic tie-breaking.
        """
        t = check_1d_int(np.asarray(task_ids), "task_ids")
        p = check_1d_int(np.asarray(proc_ids), "proc_ids")
        if t.shape != p.shape:
            raise GraphStructureError(
                f"task_ids and proc_ids must have equal length, "
                f"got {t.shape[0]} and {p.shape[0]}"
            )
        m = t.shape[0]
        if weights is None:
            w = np.ones(m, dtype=np.float64)
        else:
            w = np.ascontiguousarray(weights, dtype=np.float64)
            if w.shape != (m,):
                raise GraphStructureError(
                    f"weights must have one entry per edge ({m}), got shape {w.shape}"
                )
            if m and (not np.all(np.isfinite(w)) or np.any(w <= 0)):
                raise GraphStructureError("edge weights must be finite and positive")
        if n_tasks < 0 or n_procs < 0:
            raise GraphStructureError("vertex counts must be non-negative")
        if m:
            if t.min() < 0 or t.max() >= n_tasks:
                raise GraphStructureError("task id out of range")
            if p.min() < 0 or p.max() >= n_procs:
                raise GraphStructureError("processor id out of range")

        # CSR from the task side (stable sort keeps input edge order per task)
        order = np.argsort(t, kind="stable")
        task_adj = p[order]
        w_csr = w[order]
        task_ptr = np.zeros(n_tasks + 1, dtype=np.int64)
        np.add.at(task_ptr, t + 1, 1)
        np.cumsum(task_ptr, out=task_ptr)

        # CSC from the processor side, remembering the CSR edge index
        order_p = np.argsort(task_adj, kind="stable")
        proc_adj = np.repeat(np.arange(n_tasks, dtype=np.int64), np.diff(task_ptr))[
            order_p
        ]
        proc_edge = order_p.astype(np.int64)
        proc_ptr = np.zeros(n_procs + 1, dtype=np.int64)
        np.add.at(proc_ptr, task_adj + 1, 1)
        np.cumsum(proc_ptr, out=proc_ptr)

        return BipartiteGraph(
            n_tasks=n_tasks,
            n_procs=n_procs,
            task_ptr=task_ptr,
            task_adj=task_adj,
            weights=w_csr,
            proc_ptr=proc_ptr,
            proc_adj=proc_adj,
            proc_edge=proc_edge,
        )

    @staticmethod
    def from_neighbor_lists(
        neighbors: Iterable[Iterable[int]],
        n_procs: int | None = None,
        weights: Iterable[Iterable[float]] | None = None,
    ) -> "BipartiteGraph":
        """Build a graph from per-task neighbour (and optional weight) lists.

        ``neighbors[i]`` is the sequence of processor ids task ``i`` may run
        on; this is the paper's ``S_i``.  ``n_procs`` defaults to one past
        the largest processor id mentioned.
        """
        nbr = [list(s) for s in neighbors]
        t_ids = np.concatenate(
            [np.full(len(s), i, dtype=np.int64) for i, s in enumerate(nbr)]
            or [np.empty(0, dtype=np.int64)]
        )
        p_ids = np.concatenate(
            [np.asarray(s, dtype=np.int64) for s in nbr]
            or [np.empty(0, dtype=np.int64)]
        )
        if n_procs is None:
            n_procs = int(p_ids.max()) + 1 if p_ids.size else 0
        w = None
        if weights is not None:
            wl = [np.asarray(list(ws), dtype=np.float64) for ws in weights]
            if len(wl) != len(nbr) or any(
                len(a) != len(b) for a, b in zip(wl, nbr)
            ):
                raise GraphStructureError(
                    "weights must mirror the shape of neighbors"
                )
            w = np.concatenate(wl or [np.empty(0)])
        return BipartiteGraph.from_edges(len(nbr), n_procs, t_ids, p_ids, w)

    # ------------------------------------------------------------------
    # properties and views
    # ------------------------------------------------------------------
    @property
    def n_edges(self) -> int:
        """Number of edges ``|E|``."""
        return int(self.task_adj.shape[0])

    @property
    def is_unit(self) -> bool:
        """True when all edge weights are 1 (a SINGLEPROC-UNIT instance)."""
        return bool(np.all(self.weights == 1.0))

    def task_degrees(self) -> np.ndarray:
        """Out-degree ``d_v`` of every task (paper: number of choices)."""
        return np.diff(self.task_ptr)

    def proc_degrees(self) -> np.ndarray:
        """In-degree ``d_u`` of every processor."""
        return np.diff(self.proc_ptr)

    def task_neighbors(self, i: int) -> np.ndarray:
        """Processor ids adjacent to task ``i`` (a view, do not mutate)."""
        return self.task_adj[self.task_ptr[i] : self.task_ptr[i + 1]]

    def task_edge_weights(self, i: int) -> np.ndarray:
        """Weights of task ``i``'s edges, aligned with :meth:`task_neighbors`."""
        return self.weights[self.task_ptr[i] : self.task_ptr[i + 1]]

    def proc_neighbors(self, u: int) -> np.ndarray:
        """Task ids adjacent to processor ``u`` (a view, do not mutate)."""
        return self.proc_adj[self.proc_ptr[u] : self.proc_ptr[u + 1]]

    def validate(self, require_total: bool = True) -> None:
        """Check structural invariants; raise :class:`GraphStructureError`.

        With ``require_total`` every task must have at least one edge
        (otherwise no semi-matching exists).
        """
        if self.task_ptr.shape != (self.n_tasks + 1,):
            raise GraphStructureError("task_ptr has wrong length")
        if self.proc_ptr.shape != (self.n_procs + 1,):
            raise GraphStructureError("proc_ptr has wrong length")
        if self.task_ptr[0] != 0 or self.task_ptr[-1] != self.n_edges:
            raise GraphStructureError("task_ptr is not a valid CSR pointer")
        if np.any(np.diff(self.task_ptr) < 0) or np.any(np.diff(self.proc_ptr) < 0):
            raise GraphStructureError("CSR pointers must be non-decreasing")
        if self.n_edges:
            if self.task_adj.min() < 0 or self.task_adj.max() >= self.n_procs:
                raise GraphStructureError("processor id out of range in task_adj")
            if self.proc_adj.min() < 0 or self.proc_adj.max() >= self.n_tasks:
                raise GraphStructureError("task id out of range in proc_adj")
            if np.any(self.weights <= 0):
                raise GraphStructureError("edge weights must be positive")
        if require_total and np.any(np.diff(self.task_ptr) == 0):
            bad = int(np.flatnonzero(np.diff(self.task_ptr) == 0)[0])
            raise GraphStructureError(
                f"task {bad} has no eligible processor; no semi-matching exists"
            )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def with_weights(self, weights: np.ndarray) -> "BipartiteGraph":
        """Return a copy of this graph with new edge weights (CSR order)."""
        w = np.ascontiguousarray(weights, dtype=np.float64)
        if w.shape != (self.n_edges,):
            raise GraphStructureError(
                f"expected {self.n_edges} weights, got shape {w.shape}"
            )
        if self.n_edges and (not np.all(np.isfinite(w)) or np.any(w <= 0)):
            raise GraphStructureError("edge weights must be finite and positive")
        return BipartiteGraph(
            n_tasks=self.n_tasks,
            n_procs=self.n_procs,
            task_ptr=self.task_ptr,
            task_adj=self.task_adj,
            weights=w,
            proc_ptr=self.proc_ptr,
            proc_adj=self.proc_adj,
            proc_edge=self.proc_edge,
        )

    def unit(self) -> "BipartiteGraph":
        """Return the unweighted (unit-weight) version of this graph."""
        return self.with_weights(np.ones(self.n_edges))

    def to_biadjacency(self):
        """Return the ``n_tasks x n_procs`` scipy CSR biadjacency matrix.

        Entry ``(i, u)`` holds the edge weight.  Parallel edges (same task,
        same processor) are collapsed by scipy's duplicate summing; the
        generators never produce them, but callers constructing graphs by
        hand should be aware.
        """
        from scipy.sparse import csr_matrix

        indptr = self.task_ptr.astype(np.int64)
        return csr_matrix(
            (self.weights, self.task_adj, indptr),
            shape=(self.n_tasks, self.n_procs),
        )

    def to_networkx(self):
        """Return a :class:`networkx.Graph` with bipartite node attributes.

        Tasks are nodes ``("T", i)`` with ``bipartite=0``; processors are
        ``("P", u)`` with ``bipartite=1``; edges carry ``weight``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("T", int(i)) for i in range(self.n_tasks)), bipartite=0)
        g.add_nodes_from((("P", int(u)) for u in range(self.n_procs)), bipartite=1)
        for i in range(self.n_tasks):
            lo, hi = self.task_ptr[i], self.task_ptr[i + 1]
            for k in range(lo, hi):
                g.add_edge(
                    ("T", int(i)),
                    ("P", int(self.task_adj[k])),
                    weight=float(self.weights[k]),
                )
        return g

    @staticmethod
    def from_networkx(graph) -> "BipartiteGraph":
        """Build from a networkx graph produced by :meth:`to_networkx`.

        Nodes must be ``("T", i)`` / ``("P", u)`` pairs; edge ``weight``
        attributes default to 1.  Task and processor counts are inferred
        from the largest indices present.
        """
        t_ids: list[int] = []
        p_ids: list[int] = []
        ws: list[float] = []
        n_tasks = 0
        n_procs = 0
        for node in graph.nodes:
            kind, idx = node
            if kind == "T":
                n_tasks = max(n_tasks, int(idx) + 1)
            elif kind == "P":
                n_procs = max(n_procs, int(idx) + 1)
            else:
                raise GraphStructureError(
                    f"unexpected node {node!r}; expected ('T', i) or ('P', u)"
                )
        for a, b, data in graph.edges(data=True):
            if a[0] == "P":
                a, b = b, a
            if a[0] != "T" or b[0] != "P":
                raise GraphStructureError(
                    f"edge {(a, b)!r} does not join a task to a processor"
                )
            t_ids.append(int(a[1]))
            p_ids.append(int(b[1]))
            ws.append(float(data.get("weight", 1.0)))
        return BipartiteGraph.from_edges(
            n_tasks, n_procs, t_ids, p_ids, ws
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "unit" if self.is_unit else "weighted"
        return (
            f"BipartiteGraph(n_tasks={self.n_tasks}, n_procs={self.n_procs}, "
            f"n_edges={self.n_edges}, {kind})"
        )
