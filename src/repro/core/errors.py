"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`SemiMatchError` so callers
can catch everything coming from this package with a single ``except`` clause
while still distinguishing structural problems (:class:`GraphStructureError`),
infeasible or invalid assignments (:class:`InvalidMatchingError`) and solver
misuse (:class:`SolverError`).
"""

from __future__ import annotations


class SemiMatchError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphStructureError(SemiMatchError, ValueError):
    """A graph or hypergraph violates a structural invariant.

    Examples: an edge endpoint out of range, a task vertex with no incident
    edge where one is required, a hyperedge containing zero or more than one
    task vertex, or non-positive weights.
    """


class InvalidMatchingError(SemiMatchError, ValueError):
    """An assignment is not a valid semi-matching for its instance."""


class SolverError(SemiMatchError, RuntimeError):
    """A solver was invoked on an instance it cannot handle.

    Examples: running the exact unit-weight algorithm on a weighted graph, or
    asking the exhaustive solver for an instance beyond its size guard.
    """


class InfeasibleError(SolverError):
    """The instance admits no feasible assignment (some task has no edge)."""
