"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`SemiMatchError` so callers
can catch everything coming from this package with a single ``except`` clause
while still distinguishing structural problems (:class:`GraphStructureError`),
infeasible or invalid assignments (:class:`InvalidMatchingError`) and solver
misuse (:class:`SolverError`).

Every class carries a stable, machine-readable ``code`` string — the
identifier :mod:`repro.service` puts on the wire, and the contract any
non-Python client can switch on.  Codes are part of the public API:
renaming one is a breaking protocol change, so they are frozen here
next to the classes they identify.
"""

from __future__ import annotations


class SemiMatchError(Exception):
    """Base class for all errors raised by the repro library."""

    #: Stable machine-readable identifier (kebab-case).  Subclasses
    #: override; transports report it instead of matching on ``str(e)``.
    code = "semimatch-error"


class GraphStructureError(SemiMatchError, ValueError):
    """A graph or hypergraph violates a structural invariant.

    Examples: an edge endpoint out of range, a task vertex with no incident
    edge where one is required, a hyperedge containing zero or more than one
    task vertex, or non-positive weights.
    """

    code = "graph-structure"


class InvalidMatchingError(SemiMatchError, ValueError):
    """An assignment is not a valid semi-matching for its instance."""

    code = "invalid-matching"


class SolverError(SemiMatchError, RuntimeError):
    """A solver was invoked on an instance it cannot handle.

    Examples: running the exact unit-weight algorithm on a weighted graph, or
    asking the exhaustive solver for an instance beyond its size guard.
    """

    code = "solver-error"


class InfeasibleError(SolverError):
    """The instance admits no feasible assignment (some task has no edge)."""

    code = "infeasible"
