"""Semi-matching result objects for both problem variants.

A *semi-matching* (paper Section II) assigns every task exactly one of its
options: an incident edge for SINGLEPROC (:class:`SemiMatching`), an
incident hyperedge for MULTIPROC (:class:`HyperSemiMatching`).  These
objects are thin, validated wrappers around an assignment array; they
compute processor loads and the makespan, and render a human-readable
summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from .errors import InvalidMatchingError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .bipartite import BipartiteGraph
    from .hypergraph import TaskHypergraph

__all__ = ["SemiMatching", "HyperSemiMatching"]


def _loads_bipartite(graph: "BipartiteGraph", edge_of_task: np.ndarray) -> np.ndarray:
    loads = np.zeros(graph.n_procs, dtype=np.float64)
    np.add.at(loads, graph.task_adj[edge_of_task], graph.weights[edge_of_task])
    return loads


@dataclass(frozen=True)
class SemiMatching:
    """A semi-matching in a bipartite task-processor graph.

    ``edge_of_task[i]`` is the CSR edge index (into ``graph.task_adj``)
    chosen for task ``i``; the assigned processor is therefore
    ``graph.task_adj[edge_of_task[i]]``.
    """

    graph: "BipartiteGraph"
    edge_of_task: np.ndarray
    _loads: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        edges = np.ascontiguousarray(self.edge_of_task, dtype=np.int64)
        object.__setattr__(self, "edge_of_task", edges)
        g = self.graph
        if edges.shape != (g.n_tasks,):
            raise InvalidMatchingError(
                f"expected one edge per task ({g.n_tasks}), got shape {edges.shape}"
            )
        if g.n_tasks:
            if edges.min() < 0 or edges.max() >= g.n_edges:
                raise InvalidMatchingError("edge index out of range")
            # each chosen edge must belong to its task's CSR slice
            owner_ok = (edges >= g.task_ptr[:-1]) & (edges < g.task_ptr[1:])
            if not np.all(owner_ok):
                bad = int(np.flatnonzero(~owner_ok)[0])
                raise InvalidMatchingError(
                    f"edge {int(edges[bad])} chosen for task {bad} is not "
                    "incident to it"
                )
        object.__setattr__(self, "_loads", _loads_bipartite(g, edges))

    @staticmethod
    def from_proc_assignment(
        graph: "BipartiteGraph", proc_of_task: np.ndarray
    ) -> "SemiMatching":
        """Build a semi-matching from a task->processor array.

        When a task has several parallel edges to the same processor the
        lightest one is chosen.  Raises :class:`InvalidMatchingError` when
        an assigned processor is not eligible for its task.
        """
        procs = np.ascontiguousarray(proc_of_task, dtype=np.int64)
        if procs.shape != (graph.n_tasks,):
            raise InvalidMatchingError(
                f"expected one processor per task ({graph.n_tasks}), "
                f"got shape {procs.shape}"
            )
        edges = np.empty(graph.n_tasks, dtype=np.int64)
        for i in range(graph.n_tasks):
            lo, hi = graph.task_ptr[i], graph.task_ptr[i + 1]
            hits = np.flatnonzero(graph.task_adj[lo:hi] == procs[i])
            if hits.size == 0:
                raise InvalidMatchingError(
                    f"task {i} cannot run on processor {int(procs[i])}"
                )
            local = hits[np.argmin(graph.weights[lo:hi][hits])]
            edges[i] = lo + local
        return SemiMatching(graph, edges)

    @property
    def proc_of_task(self) -> np.ndarray:
        """The processor assigned to each task (the paper's ``alloc``)."""
        return self.graph.task_adj[self.edge_of_task]

    def loads(self) -> np.ndarray:
        """Per-processor loads ``l(u)`` under this assignment (a copy)."""
        return self._loads.copy()

    @property
    def makespan(self) -> float:
        """``max_u l(u)`` — the objective value."""
        return float(self._loads.max()) if self._loads.size else 0.0

    @property
    def bottleneck_proc(self) -> int:
        """Index of (one) processor achieving the makespan."""
        return int(np.argmax(self._loads))

    def tasks_on_proc(self, u: int) -> np.ndarray:
        """Ids of tasks assigned to processor ``u``."""
        return np.flatnonzero(self.proc_of_task == u)

    def summary(self) -> str:
        """One-line human-readable description."""
        loads = self._loads
        return (
            f"SemiMatching: makespan={self.makespan:g} over "
            f"{self.graph.n_procs} procs (mean load {loads.mean():.3g}, "
            f"idle procs {int(np.sum(loads == 0))})"
        )


def _loads_hyper(
    hg: "TaskHypergraph", hedge_of_task: np.ndarray
) -> np.ndarray:
    """Batched load-vector accumulation: one gather + one ``np.add.at``
    instead of a per-task loop.  ``add.at`` applies elementwise in index
    order, so the float accumulation order (and every bit of the
    result) matches the historical loop."""
    # function-level import: core must stay importable before kernels
    from ..kernels.ops import loads_from_assignment

    return loads_from_assignment(hg, hedge_of_task)


@dataclass(frozen=True)
class HyperSemiMatching:
    """A semi-matching in a task-processor hypergraph.

    ``hedge_of_task[i]`` is the hyperedge (configuration) chosen for task
    ``i``; the paper's ``alloc(i)`` is its pin set ``h_i ∩ V2``.
    """

    hypergraph: "TaskHypergraph"
    hedge_of_task: np.ndarray
    _loads: np.ndarray = field(init=False, repr=False)

    def __post_init__(self) -> None:
        hedges = np.ascontiguousarray(self.hedge_of_task, dtype=np.int64)
        object.__setattr__(self, "hedge_of_task", hedges)
        hg = self.hypergraph
        if hedges.shape != (hg.n_tasks,):
            raise InvalidMatchingError(
                f"expected one hyperedge per task ({hg.n_tasks}), "
                f"got shape {hedges.shape}"
            )
        if hg.n_tasks:
            if hedges.min() < 0 or hedges.max() >= hg.n_hedges:
                raise InvalidMatchingError("hyperedge index out of range")
            if not np.array_equal(
                hg.hedge_task[hedges], np.arange(hg.n_tasks, dtype=np.int64)
            ):
                bad = int(
                    np.flatnonzero(
                        hg.hedge_task[hedges]
                        != np.arange(hg.n_tasks, dtype=np.int64)
                    )[0]
                )
                raise InvalidMatchingError(
                    f"hyperedge {int(hedges[bad])} chosen for task {bad} "
                    "belongs to a different task"
                )
        object.__setattr__(self, "_loads", _loads_hyper(hg, hedges))

    def alloc(self, i: int) -> np.ndarray:
        """Processor set on which task ``i`` executes."""
        return self.hypergraph.hedge_proc_set(int(self.hedge_of_task[i]))

    def loads(self) -> np.ndarray:
        """Per-processor loads ``l(u)`` under this assignment (a copy)."""
        return self._loads.copy()

    @property
    def makespan(self) -> float:
        """``max_u l(u)`` — the objective value."""
        return float(self._loads.max()) if self._loads.size else 0.0

    @property
    def bottleneck_proc(self) -> int:
        """Index of (one) processor achieving the makespan."""
        return int(np.argmax(self._loads))

    def quality(self, lower_bound: float) -> float:
        """Makespan divided by a lower bound — the paper's quality ratio."""
        if lower_bound <= 0:
            raise ValueError("lower bound must be positive")
        return self.makespan / lower_bound

    def summary(self) -> str:
        """One-line human-readable description."""
        loads = self._loads
        return (
            f"HyperSemiMatching: makespan={self.makespan:g} over "
            f"{self.hypergraph.n_procs} procs (mean load {loads.mean():.3g}, "
            f"idle procs {int(np.sum(loads == 0))})"
        )
