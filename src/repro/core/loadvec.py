"""Descending load-vector lexicographic comparison (paper Section IV-D3).

The vector-greedy heuristics rank candidate hyperedges by the *entire*
processor load vector, sorted in descending order and compared
lexicographically: prefer the candidate whose largest resulting load is
smallest; among ties, whose second-largest load is smallest; and so on.

Comparing full length-``p`` vectors for every candidate is the naive
``O(p log p)``-per-candidate scheme the paper implemented.  This module also
provides the asymptotically better scheme the paper describes but did not
implement, built on the following multiset lemma:

    For multisets ``X``, ``Y`` with ``|X| = |Y|`` and any multiset ``C``,
    ``sorted_desc(C ∪ X) <lex sorted_desc(C ∪ Y)`` iff
    ``sorted_desc(X) <lex sorted_desc(Y)``.

Proof sketch: descending-lex order between equal-length multisets is decided
by the largest value whose multiplicity differs; adding ``C`` shifts both
multiplicity functions identically, so the deciding value and its order are
unchanged.

Two candidate assignments only change the loads of the processors they
touch, so the shared untouched loads play the role of ``C`` and the
comparison reduces to the (tiny) affected-processor value multisets.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "sorted_desc",
    "lex_compare_desc",
    "lex_compare_multisets",
    "lex_compare_full",
]


def sorted_desc(values: np.ndarray) -> np.ndarray:
    """Return ``values`` sorted in descending order (a new array)."""
    out = np.sort(np.asarray(values))
    return out[::-1]


def lex_compare_desc(a: np.ndarray, b: np.ndarray) -> int:
    """Compare two already-descending-sorted equal-length vectors.

    Returns ``-1`` if ``a`` precedes ``b`` lexicographically (i.e. ``a`` is
    the *better*, more balanced load vector), ``1`` for the converse and
    ``0`` for equality.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise ValueError(
            f"lexicographic comparison requires equal lengths, "
            f"got {a.shape} and {b.shape}"
        )
    neq = np.flatnonzero(a != b)
    if neq.size == 0:
        return 0
    k = neq[0]
    return -1 if a[k] < b[k] else 1


def lex_compare_multisets(x: np.ndarray, y: np.ndarray) -> int:
    """Compare equal-size value multisets in descending-lex order.

    This is the lemma-based fast path: ``x`` and ``y`` are the resulting
    loads of the processors affected by two candidate assignments (over the
    *union* of the two affected processor sets, so lengths match and the
    untouched loads cancel).
    """
    return lex_compare_desc(sorted_desc(x), sorted_desc(y))


def lex_compare_full(
    loads_a: np.ndarray,
    loads_b: np.ndarray,
) -> int:
    """Reference implementation: compare complete load vectors.

    Used by tests to validate the lemma-based comparison and by the naive
    vector-greedy variant that mirrors the paper's own implementation.
    """
    return lex_compare_desc(sorted_desc(loads_a), sorted_desc(loads_b))
