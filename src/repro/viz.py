"""Terminal visualisation helpers (extension).

Dependency-free ASCII renderings for interactive analysis: load
histograms, per-processor load bars, degree distributions and a
side-by-side algorithm comparison.  These complement the numeric
summaries in :mod:`repro.core.stats`.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from .core.bipartite import BipartiteGraph
from .core.hypergraph import TaskHypergraph
from .core.semimatching import HyperSemiMatching, SemiMatching

__all__ = [
    "histogram",
    "load_bars",
    "degree_histogram",
    "compare_algorithms",
]

_BLOCKS = " ▏▎▍▌▋▊▉█"


def histogram(
    values: np.ndarray,
    *,
    bins: int = 10,
    width: int = 40,
    title: str = "",
) -> str:
    """ASCII histogram of ``values`` (counts per bin, bar-scaled)."""
    values = np.asarray(values, dtype=float)
    if values.size == 0:
        return f"{title}\n(no data)" if title else "(no data)"
    lo, hi = float(values.min()), float(values.max())
    if lo == hi:
        hi = lo + 1.0
    counts, edges = np.histogram(values, bins=bins, range=(lo, hi))
    peak = max(int(counts.max()), 1)
    lines = [title] if title else []
    for c, e0, e1 in zip(counts, edges[:-1], edges[1:]):
        bar = "#" * int(round(width * c / peak))
        lines.append(f"[{e0:10.3g}, {e1:10.3g}) {c:>7} |{bar}")
    return "\n".join(lines)


def load_bars(
    matching: SemiMatching | HyperSemiMatching,
    *,
    width: int = 50,
    max_procs: int = 32,
) -> str:
    """Per-processor load bars (top ``max_procs`` heaviest processors)."""
    loads = matching.loads()
    if loads.size == 0:
        return "(no processors)"
    mk = loads.max() or 1.0
    order = np.argsort(loads)[::-1][:max_procs]
    lines = [f"loads (top {min(max_procs, loads.size)} of {loads.size}; "
             f"makespan {mk:g})"]
    for u in order:
        frac = loads[u] / mk
        full = int(frac * width)
        rem = int((frac * width - full) * (len(_BLOCKS) - 1))
        bar = "█" * full + (_BLOCKS[rem] if rem else "")
        lines.append(f"P{int(u):<6} {loads[u]:>10g} |{bar}")
    return "\n".join(lines)


def degree_histogram(
    instance: BipartiteGraph | TaskHypergraph,
    *,
    width: int = 40,
) -> str:
    """Histogram of task degrees (options per task)."""
    if isinstance(instance, BipartiteGraph):
        deg = instance.task_degrees()
        label = "edges per task"
    else:
        deg = instance.task_degrees()
        label = "configurations per task"
    return histogram(
        deg, bins=min(10, max(int(deg.max()), 1)), width=width,
        title=f"{label} (n={deg.size})",
    )


def compare_algorithms(
    results: Mapping[str, SemiMatching | HyperSemiMatching],
    *,
    lower_bound: float | None = None,
    width: int = 40,
) -> str:
    """Bar chart comparing algorithm makespans (lower is better)."""
    if not results:
        return "(no results)"
    worst = max(m.makespan for m in results.values()) or 1.0
    name_w = max(len(str(k)) for k in results)
    lines = []
    for name, m in sorted(results.items(), key=lambda kv: kv[1].makespan):
        bar = "#" * int(round(width * m.makespan / worst))
        extra = (
            f"  ({m.makespan / lower_bound:.3f} x LB)"
            if lower_bound
            else ""
        )
        lines.append(
            f"{str(name):<{name_w}} {m.makespan:>10g} |{bar}{extra}"
        )
    if lower_bound:
        bar = "#" * int(round(width * lower_bound / worst))
        lines.append(
            f"{'LB':<{name_w}} {lower_bound:>10g} |{bar}  (lower bound)"
        )
    return "\n".join(lines)
