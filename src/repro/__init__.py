"""repro — semi-matching algorithms for scheduling parallel tasks under
resource constraints.

A complete, from-scratch Python implementation of Benoit, Langguth and
Uçar, *"Semi-matching algorithms for scheduling parallel tasks under
resource constraints"*, IEEE IPDPSW 2013: the SINGLEPROC/MULTIPROC
problem models, the exact polynomial algorithm for unit bipartite
instances, all greedy heuristics of Sections IV-B and IV-D, the lower
bounds, the random instance generators of the evaluation, the worst-case
constructions, the Theorem 1 reduction, and a benchmark harness that
regenerates every table of the paper.

Quick start
-----------
>>> from repro import SchedulingProblem, solve
>>> prob = SchedulingProblem(processors=["cpu0", "cpu1", "gpu"])
>>> _ = prob.add_task("render", [(("gpu",), 2.0), (("cpu0", "cpu1"), 5.0)])
>>> _ = prob.add_task("encode", [(("cpu0",), 3.0), (("cpu1",), 3.0)])
>>> schedule = solve(prob)
>>> schedule.makespan
3.0

Batches of instances go through the engine instead — pooled workers, an
instance-hash result cache, and an optional *portfolio mode* that races
several algorithms per instance and keeps the best makespan::

    from repro import solve_many
    schedules = solve_many(problems, method="portfolio", max_workers=8)

Package map
-----------
* :mod:`repro.core` — graphs, hypergraphs, semi-matching results;
* :mod:`repro.matching` — maximum bipartite matching engines;
* :mod:`repro.algorithms` — exact solvers, heuristics, bounds;
* :mod:`repro.api` — the unified solver API: the capability-aware
  ``SolverRegistry`` + ``register_solver``, typed ``SolveOptions`` /
  ``SolveResult``, and composable method expressions
  (``Refine``/``Portfolio``/``parse_method``);
* :mod:`repro.generators` — random families, worst cases, X3C, churn
  traces;
* :mod:`repro.sched` — named scheduling problems and ``solve``;
* :mod:`repro.dynamic` — incremental solving for mutating instances:
  ``DynamicInstance`` (mutable overlay, delta journal,
  snapshot/rollback, content digest) and ``IncrementalSolver``
  (localized repair instead of re-solving), plus JSONL mutation traces
  (``semimatch replay``);
* :mod:`repro.engine` — batch solving: ``BatchSolver``/``solve_many``
  (process/thread pools, chunked distribution), portfolio racing, and a
  content-addressed result cache shared with ``solve``;
* :mod:`repro.service` — the traffic front-end: an asyncio NDJSON/TCP
  solve server with adaptive micro-batching, single-flight dedup of
  identical in-flight requests, sessioned dynamic instances and
  admission control (``semimatch serve`` / ``semimatch submit``), plus
  blocking and asyncio clients;
* :mod:`repro.experiments` — the paper's tables (engine-accelerated via
  ``run_instances(..., max_workers=...)``);
* :mod:`repro.io` — JSON serialisation.
"""

from .algorithms import (
    basic_greedy,
    double_sorted,
    exact_singleproc_unit,
    expected_greedy,
    expected_greedy_hyp,
    expected_vector_greedy_hyp,
    harvey_optimal_semi_matching,
    local_search,
    sorted_greedy,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)
from .algorithms.lower_bounds import (
    averaged_work_bound,
    combined_bound,
    critical_task_bound,
)
from .api import (
    Portfolio,
    Refine,
    SolveOptions,
    SolveResult,
    SolverRegistry,
    UnknownSolverError,
    get_registry,
    parse_method,
    register_solver,
)
from .core import (
    BipartiteGraph,
    GraphStructureError,
    HyperSemiMatching,
    InfeasibleError,
    InvalidMatchingError,
    SemiMatchError,
    SemiMatching,
    SolverError,
    TaskHypergraph,
)
from .dynamic import DynamicInstance, IncrementalSolver
from .engine import BatchSolver, ResultCache, solve_many
from .kernels import CompiledKernels, compile_instance
from .generators import churn_trace, generate_multiproc
from .sched import Schedule, SchedulingProblem, TaskSpec, solve

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "BipartiteGraph",
    "TaskHypergraph",
    "SemiMatching",
    "HyperSemiMatching",
    "SemiMatchError",
    "GraphStructureError",
    "InvalidMatchingError",
    "SolverError",
    "InfeasibleError",
    # scheduling layer
    "SchedulingProblem",
    "TaskSpec",
    "Schedule",
    "solve",
    # unified solver API
    "SolveOptions",
    "SolveResult",
    "SolverRegistry",
    "register_solver",
    "get_registry",
    "Refine",
    "Portfolio",
    "parse_method",
    "UnknownSolverError",
    # batch engine
    "BatchSolver",
    "ResultCache",
    "solve_many",
    # kernel core
    "CompiledKernels",
    "compile_instance",
    # dynamic subsystem
    "DynamicInstance",
    "IncrementalSolver",
    # algorithms
    "basic_greedy",
    "sorted_greedy",
    "double_sorted",
    "expected_greedy",
    "sorted_greedy_hyp",
    "vector_greedy_hyp",
    "expected_greedy_hyp",
    "expected_vector_greedy_hyp",
    "exact_singleproc_unit",
    "harvey_optimal_semi_matching",
    "local_search",
    "averaged_work_bound",
    "critical_task_bound",
    "combined_bound",
    # generators
    "generate_multiproc",
    "churn_trace",
]
