"""Service observability: counters and histograms behind one lock.

The server increments named counters (requests per op, errors per
code, engine solves, dedup shares, shed requests, ...) and observes two
distributions — per-request solve latency and flushed batch sizes —
into fixed-bucket histograms.  ``Metrics.snapshot()`` is the payload of
the protocol's ``metrics`` op: plain ints/floats/lists, JSON-ready.

Everything is guarded by one :class:`threading.Lock`: the asyncio loop
and the executor threads running engine solves both report in, and a
histogram observation is a read-modify-write on shared lists.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Sequence

__all__ = ["Histogram", "Metrics", "LATENCY_BUCKETS_S", "BATCH_BUCKETS"]

#: Solve latency buckets (seconds): ~100µs to ~10s, log-spaced.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Batch-size buckets (requests coalesced per engine call).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


class Histogram:
    """Fixed upper-bound buckets plus count/sum, Prometheus-style.

    ``observe`` files a value into the first bucket whose bound is
    ``>= value`` (the last, unbounded bucket catches the rest);
    ``quantile`` answers p50/p99 queries by walking the cumulative
    counts and reporting the matched bucket's upper bound — an upper
    estimate, which is the conservative side for latency reporting.

    Not locked by itself: :class:`Metrics` serialises access.
    """

    def __init__(self, bounds: Sequence[float]):
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending sequence")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value

    def quantile(self, q: float) -> float:
        """Upper bound of the bucket holding the ``q``-quantile
        (``0 <= q <= 1``); 0.0 when empty, the last finite bound for
        overflow observations."""
        if not 0 <= q <= 1:
            raise ValueError("q must be within [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank and c:
                return (
                    self.bounds[i]
                    if i < len(self.bounds)
                    else self.bounds[-1]
                )
        return self.bounds[-1]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        """JSON-ready form: ``le``/count pairs (``null`` = +inf)."""
        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p99": self.quantile(0.99),
            "buckets": [
                [self.bounds[i] if i < len(self.bounds) else None, c]
                for i, c in enumerate(self.counts)
            ],
        }


class Metrics:
    """The server's named counters + the two service histograms."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self.request_latency_s = Histogram(LATENCY_BUCKETS_S)
        self.batch_size = Histogram(BATCH_BUCKETS)

    def incr(self, name: str, n: int = 1) -> None:
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + n

    def observe_latency(self, seconds: float) -> None:
        with self._lock:
            self.request_latency_s.observe(seconds)

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self.batch_size.observe(float(size))
            self._counters["batches"] = self._counters.get("batches", 0) + 1
            self._counters["batched_requests"] = (
                self._counters.get("batched_requests", 0) + size
            )

    def counter(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def snapshot(self) -> dict:
        """Everything, JSON-ready (the ``metrics`` op's result)."""
        with self._lock:
            return {
                "counters": dict(sorted(self._counters.items())),
                "request_latency_s": self.request_latency_s.snapshot(),
                "batch_size": self.batch_size.snapshot(),
            }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        with self._lock:
            return f"Metrics({self._counters!r})"
