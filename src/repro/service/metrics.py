"""Service observability: a thin view over :mod:`repro.obs.metrics`.

The server increments named counters (requests per op, errors per
code, engine solves, dedup shares, shed requests, ...) and observes two
distributions — per-request solve latency and flushed batch sizes —
into fixed-bucket histograms.  ``Metrics.snapshot()`` is the payload of
the protocol's ``metrics`` op: plain ints/floats/lists, JSON-ready.

Since the unified registry landed, :class:`Metrics` owns no instrument
state of its own: every counter and histogram lives in a
:class:`~repro.obs.metrics.MetricsRegistry` under ``service.``-prefixed
names, which is what also gives the server Prometheus-text exposition
for free (``metrics`` op with ``format="prometheus"``).  The snapshot
payload is unchanged — same keys, same shapes — so existing scrapers
keep working.

Each :class:`Metrics` defaults to a **private** registry rather than
the process-wide :func:`~repro.obs.metrics.default_registry`: several
servers routinely share one process (the test harness norm), and their
counts must not bleed into each other.

**Scrape contract** (see API.md): nothing resets on read.  Counters
and histogram ``count``/``sum``/``buckets`` are monotonic cumulative —
concurrent scrapers each compute their own deltas safely.  The
histogram snapshots additionally carry a ``window`` block with exact
p50/p99 over the most recent observations.
"""

from __future__ import annotations

from ..obs.metrics import Histogram, MetricsRegistry

__all__ = ["Histogram", "Metrics", "LATENCY_BUCKETS_S", "BATCH_BUCKETS"]

#: Solve latency buckets (seconds): ~100µs to ~10s, log-spaced.
LATENCY_BUCKETS_S = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Batch-size buckets (requests coalesced per engine call).
BATCH_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)

#: Registry names of the two service histograms.
_LATENCY = "service.request_latency_s"
_BATCH = "service.batch_size"
_PREFIX = "service."


class Metrics:
    """The server's named counters + the two service histograms.

    A facade over a :class:`MetricsRegistry` (private by default, or
    pass one to share): the historical call surface — ``incr``,
    ``observe_latency``, ``observe_batch``, ``counter``, ``snapshot`` —
    is unchanged, while the registry supplies thread safety, cumulative
    semantics and Prometheus exposition.
    """

    def __init__(self, registry: MetricsRegistry | None = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.request_latency_s = self.registry.histogram(
            _LATENCY, LATENCY_BUCKETS_S
        )
        self.batch_size = self.registry.histogram(_BATCH, BATCH_BUCKETS)

    def incr(self, name: str, n: int = 1) -> None:
        self.registry.inc(_PREFIX + name, n)

    def observe_latency(self, seconds: float) -> None:
        self.registry.observe(_LATENCY, seconds)

    def observe_batch(self, size: int) -> None:
        self.registry.observe(_BATCH, float(size))
        self.registry.inc(_PREFIX + "batches")
        self.registry.inc(_PREFIX + "batched_requests", int(size))

    def counter(self, name: str) -> int:
        return self.registry.counter_value(_PREFIX + name)

    def snapshot(self) -> dict:
        """Everything, JSON-ready (the ``metrics`` op's result).

        Counter names come back unprefixed, exactly as before the
        registry rebase.
        """
        snap = self.registry.snapshot()
        return {
            "counters": {
                name[len(_PREFIX):]: value
                for name, value in snap["counters"].items()
                if name.startswith(_PREFIX)
            },
            "request_latency_s": snap["histograms"][_LATENCY],
            "batch_size": snap["histograms"][_BATCH],
        }

    def prometheus_text(self) -> str:
        """The registry's Prometheus text exposition (``service_``
        instruments under the ``repro_`` prefix)."""
        return self.registry.prometheus_text()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Metrics({self.registry.snapshot()['counters']!r})"
