"""The wire protocol of the solve service: newline-delimited JSON.

One *frame* is one JSON object on one line, UTF-8, terminated by
``\\n``.  Clients send versioned request envelopes and read versioned
response envelopes; requests carry a client-chosen correlation ``id``
that the server echoes verbatim, so responses may come back in any
order (the micro-batcher and the single-flight layer both reorder
completions) and a client can keep many requests in flight on one
connection.

Request envelope::

    {"v": 1, "id": <any JSON value>, "op": "<op>", ...payload...}

A request may additionally carry an optional ``"trace"`` field —
``{"id": "<trace id>", "span": "<parent span id>"}`` — propagating the
client's trace context so server-side spans join the caller's trace
(see :mod:`repro.obs.trace`).  It is envelope metadata, not payload:
servers strip it before op dispatch, and servers with tracing disabled
ignore it entirely.

Response envelope (exactly one per request)::

    {"v": 1, "id": <echoed>, "ok": true,  "result": {...}}
    {"v": 1, "id": <echoed>, "ok": false,
     "error": {"code": "<kebab-case code>", "message": "<human text>"}}

Error codes are *stable machine-readable identifiers* — the same
``code`` strings the library's exception hierarchy carries
(:mod:`repro.core.errors`, :mod:`repro.api.errors`), plus the
transport-level codes defined here.  Clients switch on ``code``, never
on ``message``.

The module is dependency-free on purpose (stdlib ``json`` only, no
numpy, no repro imports): it *is* the protocol spec, equally usable by
a non-Python client author as documentation.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OPS",
    "ErrorCode",
    "ERROR_CODES",
    "ServiceError",
    "ProtocolError",
    "OverloadedError",
    "SessionNotFoundError",
    "SessionLimitError",
    "WorkerLostError",
    "SessionRelocatedError",
    "RemoteError",
    "encode_frame",
    "decode_frame",
    "request",
    "ok_response",
    "error_response",
    "validate_request",
    "error_code_for",
]

#: Version of the envelope format.  Bumped only for incompatible
#: changes; servers reject frames claiming any other version.
PROTOCOL_VERSION = 1

#: Upper bound on one frame's size (requests carry whole instances).
MAX_FRAME_BYTES = 64 * 1024 * 1024

#: Every operation a server answers.
OPS = (
    "ping",
    "solve",
    "session.open",
    "session.mutate",
    "session.close",
    "metrics",
    "trace",
    "health",
    "shutdown",
)


class ErrorCode:
    """The stable error-code vocabulary (kebab-case strings).

    The first group mirrors the library exception hierarchy's ``code``
    attributes; the second group is transport-level.
    """

    # -- mapped from library exceptions ---------------------------------
    UNKNOWN_SOLVER = "unknown-solver"
    CAPABILITY = "capability"
    GRAPH_STRUCTURE = "graph-structure"
    INVALID_MATCHING = "invalid-matching"
    SOLVER = "solver-error"
    INFEASIBLE = "infeasible"
    SEMIMATCH = "semimatch-error"

    # -- transport-level -------------------------------------------------
    BAD_FRAME = "bad-frame"
    FRAME_TOO_LARGE = "frame-too-large"
    UNSUPPORTED_VERSION = "unsupported-version"
    UNKNOWN_OP = "unknown-op"
    BAD_REQUEST = "bad-request"
    OVERLOADED = "overloaded"
    SESSION_NOT_FOUND = "session-not-found"
    SESSION_LIMIT = "session-limit"
    WORKER_LOST = "worker-lost"
    SESSION_RELOCATED = "session-relocated"
    INTERNAL = "internal"


ERROR_CODES = tuple(
    value
    for name, value in vars(ErrorCode).items()
    if not name.startswith("_")
)


class ServiceError(Exception):
    """Base class for service-side errors that map to wire codes."""

    code = ErrorCode.INTERNAL

    def __init__(self, message: str, *, code: str | None = None) -> None:
        super().__init__(message)
        if code is not None:
            self.code = code


class ProtocolError(ServiceError):
    """A frame or envelope the server cannot accept (bad JSON, wrong
    version, unknown op, malformed payload)."""

    code = ErrorCode.BAD_FRAME


class OverloadedError(ServiceError):
    """Admission control shed this request; retry later."""

    code = ErrorCode.OVERLOADED


class SessionNotFoundError(ServiceError):
    """The named session does not exist (or belongs to another
    connection)."""

    code = ErrorCode.SESSION_NOT_FOUND


class SessionLimitError(ServiceError):
    """The server is hosting its maximum number of sessions."""

    code = ErrorCode.SESSION_LIMIT


class WorkerLostError(ServiceError):
    """A shard worker died (or became unreachable) while this request
    was in flight on it.  Solves are deterministic and side-effect
    free, so retrying against the (restarted or rerouted) pool is
    always safe — the clients do so automatically."""

    code = ErrorCode.WORKER_LOST


class SessionRelocatedError(ServiceError):
    """The worker that hosted this session was drained or lost; the
    server-side session state is gone.  Re-open the session from the
    client's own baseline (sessions are pinned to one worker for their
    lifetime and are never migrated)."""

    code = ErrorCode.SESSION_RELOCATED


class RemoteError(ServiceError):
    """Client-side surfacing of a server error response: carries the
    wire ``code`` so callers switch on it, never on the message."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message, code=code)


# ----------------------------------------------------------------------
# framing
# ----------------------------------------------------------------------
def encode_frame(obj: dict[str, Any]) -> bytes:
    """One envelope as one NDJSON line (compact separators, UTF-8).

    ``json.dumps`` emits the shortest round-tripping representation of
    every float, so makespans and weights survive the wire bit-exactly.
    """
    return (
        json.dumps(obj, separators=(",", ":"), allow_nan=False) + "\n"
    ).encode("utf-8")


def decode_frame(line: bytes | str) -> dict[str, Any]:
    """Parse one line into an envelope dict.

    Raises :class:`ProtocolError` (code ``bad-frame``) for anything
    that is not one JSON object.
    """
    try:
        obj = json.loads(line)
    except (UnicodeDecodeError, ValueError) as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(obj, dict):
        raise ProtocolError(
            f"frame must be a JSON object, got {type(obj).__name__}"
        )
    return obj


# ----------------------------------------------------------------------
# envelopes
# ----------------------------------------------------------------------
def request(op: str, req_id: Any, **payload: Any) -> dict[str, Any]:
    """Build a request envelope."""
    return {"v": PROTOCOL_VERSION, "id": req_id, "op": op, **payload}


def ok_response(req_id: Any, result: dict[str, Any]) -> dict[str, Any]:
    """Build a success response envelope."""
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": True, "result": result}


def error_response(
    req_id: Any, code: str, message: str
) -> dict[str, Any]:
    """Build an error response envelope."""
    return {
        "v": PROTOCOL_VERSION,
        "id": req_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }


def validate_request(obj: dict[str, Any]) -> tuple[str, Any, dict[str, Any]]:
    """Check a decoded request envelope; returns ``(op, id, payload)``.

    Raises :class:`ProtocolError` with the precise code: missing/alien
    version → ``unsupported-version``, unknown op → ``unknown-op``,
    missing id/op → ``bad-request``.
    """
    version = obj.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"unsupported protocol version {version!r} "
            f"(this server speaks v{PROTOCOL_VERSION})",
            code=ErrorCode.UNSUPPORTED_VERSION,
        )
    if "id" not in obj:
        raise ProtocolError(
            "request lacks a correlation 'id'", code=ErrorCode.BAD_REQUEST
        )
    op = obj.get("op")
    if not isinstance(op, str):
        raise ProtocolError(
            "request lacks an 'op' string", code=ErrorCode.BAD_REQUEST
        )
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r}; known ops: {list(OPS)}",
            code=ErrorCode.UNKNOWN_OP,
        )
    payload = {
        k: v for k, v in obj.items() if k not in ("v", "id", "op", "trace")
    }
    return op, obj["id"], payload


def error_code_for(exc: BaseException) -> str:
    """The wire code for an exception.

    Library exceptions carry a stable ``.code`` attribute (see
    :mod:`repro.core.errors` / :mod:`repro.api.errors`) which passes
    through verbatim; bare ``ValueError``/``TypeError`` — malformed
    payload values — map to ``bad-request``; anything else is
    ``internal``.
    """
    code = getattr(exc, "code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(exc, (ValueError, TypeError, KeyError)):
        return ErrorCode.BAD_REQUEST
    return ErrorCode.INTERNAL
