"""Adaptive micro-batching: coalesce compatible solves under a latency
budget.

Per-request engine calls pay per-call overhead — executor hand-off,
options normalization, cache bookkeeping — that dwarfs the solve itself
for small instances.  The batcher turns the request stream back into
the batch shape the engine is built for: requests whose options share
one cache token (the *compatibility* criterion — equal tokens means
:meth:`BatchSolver.solve_many` treats them identically) queue in one
group, and the group flushes as a single ``solve_many`` call when
either it reaches ``max_batch`` or its window expires.

The window is **adaptive** under a hard latency budget
(``max_delay_s``), on two signals:

* an EMA of request inter-arrival times estimates how fast a group
  would fill, and the window is sized to collect about ``max_batch``
  arrivals — clamped to the budget above and to ``min_delay_s`` below.
  When the EMA says no second request is likely within the budget
  (sparse traffic), the window collapses to zero, so a lone request
  never idles out its full budget waiting for company that is not
  coming;
* admission control tells the batcher how many admitted solve requests
  have yet to reach it (``pending_fn``, an *expected-arrivals* count:
  the server increments at admission and decrements the moment a
  request either enqueues here or turns out not to need the engine —
  a single-flight follower).  The moment it reads zero, no compatible
  request can still arrive — whatever the EMA believes — and
  everything queued flushes immediately (:meth:`maybe_flush`).  This
  is what keeps *closed-loop* clients (send, wait, send) at native
  latency: their inter-arrival gaps look dense to the EMA, but their
  lone in-flight request is provably alone.

Batching never changes *what* is computed — ``solve_many`` over a group
is bit-identical to per-request solves (asserted in the tests) — only
how often the per-call overhead is paid.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from functools import partial
from typing import TYPE_CHECKING

from ..api.options import SolveOptions
from ..api.result import SolveResult
from ..core.hypergraph import TaskHypergraph
from ..obs.trace import carry, span

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..engine.batch import BatchSolver
    from .metrics import Metrics

__all__ = ["MicroBatcher"]


@dataclass
class _Group:
    """Requests sharing one options cache token, awaiting one flush.

    Items are ``(instance, future, enqueue time)`` triples — the
    enqueue timestamp is what ``queue_s`` on ``SolveResult.stats``
    derives from."""

    options: SolveOptions
    items: list[tuple[TaskHypergraph, asyncio.Future, float]] = field(
        default_factory=list
    )
    timer: asyncio.TimerHandle | None = None


class MicroBatcher:
    """Coalesce compatible solve requests into ``solve_many`` calls.

    Parameters
    ----------
    engine:
        The :class:`~repro.engine.batch.BatchSolver` every flush runs
        on (in an executor thread, so the event loop never blocks on a
        solve).
    max_batch:
        Flush a group as soon as it holds this many requests.
    max_delay_s:
        The latency budget: no admitted request waits longer than this
        for its batch to flush.
    min_delay_s:
        Floor for the adaptive window (one event-loop tick's worth),
        so a dense burst still coalesces instead of degenerating into
        per-request flushes.
    pending_fn:
        Zero-argument callable reporting how many admitted solve
        requests have not yet arrived at the batcher (nor been exempted
        as dedup followers).  While it reads zero nothing compatible
        can still be in flight, so enqueues flush immediately
        (``None`` disables the signal and leaves only the window).
    """

    def __init__(
        self,
        engine: "BatchSolver",
        *,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        min_delay_s: float = 0.0002,
        metrics: "Metrics | None" = None,
        pending_fn=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_delay_s < 0 or min_delay_s < 0:
            raise ValueError("delays must be non-negative")
        self.engine = engine
        self.max_batch = int(max_batch)
        self.max_delay_s = float(max_delay_s)
        self.min_delay_s = float(min_delay_s)
        self.metrics = metrics
        self.pending_fn = pending_fn
        self._groups: dict[tuple, _Group] = {}
        self._tasks: set[asyncio.Task] = set()
        self._ema_gap: float | None = None
        self._last_arrival: float | None = None

    # ------------------------------------------------------------------
    async def solve(
        self,
        hg: TaskHypergraph,
        options: SolveOptions,
        token: tuple | None = None,
    ) -> SolveResult:
        """Enqueue one instance; resolves when its batch flushes.

        ``token`` is ``options.cache_token()`` when the caller already
        computed it (the server does, for the dedup key).
        """
        loop = asyncio.get_running_loop()
        now = loop.time()
        self._note_arrival(now)
        if token is None:
            token = options.cache_token()
        group = self._groups.get(token)
        if group is None:
            group = _Group(options=options)
            self._groups[token] = group
            delay = self._window()
            if delay > 0:
                group.timer = loop.call_later(
                    delay, self._flush, token
                )
        fut: asyncio.Future = loop.create_future()
        group.items.append((hg, fut, now))
        if len(group.items) >= self.max_batch or group.timer is None:
            self._flush(token)
        else:
            self.maybe_flush()
        return await fut

    def maybe_flush(self) -> None:
        """Flush everything if no further arrival can be in flight.

        Called on every enqueue, and by the server whenever a request
        leaves the expected-arrivals count without enqueueing (a dedup
        follower) — the event that may just have made the queued
        requests provably alone."""
        if (
            self._groups
            and self.pending_fn is not None
            and self.pending_fn() <= 0
        ):
            for token in list(self._groups):
                self._flush(token)

    async def flush_all(self) -> None:
        """Flush every pending group and wait for in-flight batches
        (shutdown path)."""
        for token in list(self._groups):
            self._flush(token)
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)

    # ------------------------------------------------------------------
    # adaptivity
    # ------------------------------------------------------------------
    def _note_arrival(self, now: float) -> None:
        if self._last_arrival is not None:
            # clamp: one idle period must read as "sparse", not blow the
            # EMA up so far that the first requests of the next burst
            # flush as singletons while the estimate decays back down
            gap = min(now - self._last_arrival, 2.0 * self.max_delay_s)
            self._ema_gap = (
                gap
                if self._ema_gap is None
                else 0.8 * self._ema_gap + 0.2 * gap
            )
        self._last_arrival = now

    def _window(self) -> float:
        """The coalescing window for a group opening now."""
        ema = self._ema_gap
        if ema is None:
            # cold start: no arrival-rate estimate yet, spend the budget
            return self.max_delay_s
        if ema >= self.max_delay_s:
            # sparse traffic: the budget would buy no companions, so a
            # lone request flushes immediately
            return 0.0
        return min(
            self.max_delay_s, max(ema * self.max_batch, self.min_delay_s)
        )

    # ------------------------------------------------------------------
    # flushing
    # ------------------------------------------------------------------
    def _flush(self, token: tuple) -> None:
        """Detach a group and start its batch (idempotent per group)."""
        group = self._groups.pop(token, None)
        if group is None:
            return
        if group.timer is not None:
            group.timer.cancel()
        task = asyncio.get_running_loop().create_task(
            self._run_batch(group)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_batch(self, group: _Group) -> None:
        loop = asyncio.get_running_loop()
        instances = [hg for hg, _, _ in group.items]
        # many requests may funnel into one flush; the flush span (and
        # the engine spans under it) lands in the trace of whichever
        # request triggered it — ``carry`` walks that context across
        # the executor-thread hop
        with span("service.batch.flush") as sp:
            if sp.recording:
                sp.set(size=len(instances))
            started = loop.time()
            try:
                results = await loop.run_in_executor(
                    None,
                    carry(
                        partial(
                            self.engine.solve_many,
                            instances,
                            options=group.options,
                        )
                    ),
                )
            except Exception as exc:
                for _, fut, _ in group.items:
                    if not fut.done():
                        fut.set_exception(exc)
                        fut.exception()  # mark retrieved when abandoned
                return
        if self.metrics is not None:
            self.metrics.observe_batch(len(group.items))
        for (_, fut, enqueued), result in zip(group.items, results):
            result.stats["queue_s"] = max(0.0, started - enqueued)
            if not fut.done():
                fut.set_result(result)
