"""Worker processes of the sharded solve service.

One :class:`Supervisor` owns a fixed-size pool of **solver worker
processes**.  Each worker is a full :class:`~repro.service.server.
SolveServer` (protocol, micro-batcher, single-flight, sessions,
metrics, tracing) bound to an ephemeral loopback port in its own
process — its ResultCache, kernel compile cache and GIL are private,
which is the whole point: the front-end fans admitted requests out to
them by consistent hash (:mod:`repro.service.shard`) and N workers
solve on N cores.

Lifecycle, parent side:

* **spawn** — workers start via the ``spawn`` context (a fork of an
  asyncio parent mid-loop is a deadlock lottery) and report their bound
  port back through a one-shot pipe; the handshake is awaited in the
  executor so the event loop never blocks on ``Connection.poll``;
* **death watch** — each worker's ``Process.sentinel`` is registered
  with ``loop.add_reader``: the moment the process exits (crash,
  SIGKILL, clean drain) the loop wakes and the supervisor's
  ``on_death`` callback fires, with no polling anywhere;
* **restart** — :meth:`Supervisor.restart` respawns a worker slot
  under a bumped *generation*, so stale state (pinned sessions,
  in-flight answers) addressed at the dead incarnation can never leak
  onto its replacement;
* **chaos** — :meth:`Supervisor.kill` SIGKILLs a worker outright; the
  chaos test uses it to assert the service converges.

Graceful drain is a front-end concern (stop routing, finish in-flight,
relocate sessions, then ``shutdown`` op) — see
:meth:`repro.service.shard.ShardedSolveServer.drain_worker`.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import signal
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Optional

__all__ = ["WorkerSpec", "WorkerHandle", "Supervisor", "worker_main"]

#: ``fork`` in a process already running event loops and executor
#: threads inherits locks in unknown states; ``spawn`` is the only
#: start method that is safe from inside an asyncio server.
_CTX = multiprocessing.get_context("spawn")


@dataclass(frozen=True)
class WorkerSpec:
    """The :class:`SolveServer` knobs every worker starts with.

    ``per_conn_inflight`` defaults high because the front-end funnels
    *all* of its traffic to a worker through one multiplexed
    connection — the real admission gate is the front-end's.
    """

    max_batch: int = 64
    max_delay_s: float = 0.002
    max_pending: int = 4096
    per_conn_inflight: int = 4096
    max_sessions: int = 64
    tracing: bool = True

    def server_kwargs(self) -> dict[str, Any]:
        return {
            "max_batch": self.max_batch,
            "max_delay_s": self.max_delay_s,
            "max_pending": self.max_pending,
            "per_conn_inflight": self.per_conn_inflight,
            "max_sessions": self.max_sessions,
            "tracing": self.tracing,
            # the front-end drains/retires workers via the shutdown op
            "allow_shutdown": True,
            # the front-end ships parsed instances as shm descriptors
            "accept_shm_instances": True,
        }


def worker_main(conn: Any, server_kwargs: dict[str, Any]) -> None:
    """Entry point of one worker process (``spawn`` target).

    Runs a :class:`SolveServer` on an ephemeral loopback port, reports
    the port through ``conn`` once bound, and serves until the
    ``shutdown`` op (graceful drain) or a signal ends the process.
    """
    # the parent handles operator signals; a worker must only ever die
    # by drain (shutdown op), SIGTERM from its supervisor, or a crash
    signal.signal(signal.SIGINT, signal.SIG_IGN)

    from .server import SolveServer

    server = SolveServer(host="127.0.0.1", port=0, **server_kwargs)

    async def _run() -> None:
        await server.start()
        conn.send(server.port)
        conn.close()
        await server.serve_forever()

    asyncio.run(_run())


@dataclass(eq=False)
class WorkerHandle:
    """One live (or dead) worker incarnation."""

    idx: int
    generation: int
    proc: Any  # multiprocessing.process.BaseProcess
    port: int
    started_s: float = field(default_factory=time.monotonic)

    @property
    def name(self) -> str:
        return f"w{self.idx}"

    @property
    def alive(self) -> bool:
        return bool(self.proc.is_alive())


def _await_port(conn: Any, proc: Any, timeout_s: float) -> int:
    """Block (executor-side) until the worker reports its port."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if conn.poll(0.05):
            return int(conn.recv())
        if not proc.is_alive():
            # repro: ignore[contract-sync] — supervisor-side raise: surfaces to the operator at startup, never crosses the wire
            raise RuntimeError(
                f"worker exited with code {proc.exitcode} before "
                f"reporting its port"
            )
    # repro: ignore[contract-sync] — supervisor-side raise: surfaces to the operator at startup, never crosses the wire
    raise RuntimeError(
        f"worker did not report its port within {timeout_s:g}s"
    )


class Supervisor:
    """Spawns, watches, restarts and stops the worker pool.

    Parameters
    ----------
    n_workers:
        Pool size; worker slots are indexed ``0..n_workers-1`` and a
        slot's index never changes across restarts (the consistent-hash
        ring hashes slot indices, so a restarted worker inherits
        exactly its predecessor's key range).
    spec:
        Per-worker :class:`SolveServer` configuration.
    on_death:
        Called **on the event loop** with the dead
        :class:`WorkerHandle` whenever a *watched* worker exits.
        Planned exits (drain, :meth:`stop`) unwatch first and never
        fire it.
    start_timeout_s:
        How long one worker gets to import, bind and report its port.
    """

    def __init__(
        self,
        n_workers: int,
        spec: WorkerSpec | None = None,
        *,
        on_death: Optional[Callable[[WorkerHandle], None]] = None,
        start_timeout_s: float = 60.0,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        self.n_workers = int(n_workers)
        self.spec = spec if spec is not None else WorkerSpec()
        self.on_death = on_death
        self.start_timeout_s = float(start_timeout_s)
        self.handles: dict[int, WorkerHandle] = {}
        self.spawns = 0
        self._generation = 0
        self._watched: dict[int, WorkerHandle] = {}  # sentinel fd -> handle
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stopping = False

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn the whole pool and wait for every port handshake."""
        self._loop = asyncio.get_running_loop()
        self._stopping = False
        launches = [self._launch(idx) for idx in range(self.n_workers)]
        await asyncio.gather(
            *(self._adopt(idx, proc, conn) for idx, (proc, conn) in
              zip(range(self.n_workers), launches))
        )

    def _launch(self, idx: int) -> tuple[Any, Any]:
        """Start one worker process (non-blocking parent side)."""
        recv_conn, send_conn = _CTX.Pipe(duplex=False)
        proc = _CTX.Process(
            target=worker_main,
            args=(send_conn, self.spec.server_kwargs()),
            name=f"semimatch-worker-{idx}",
            daemon=True,
        )
        proc.start()
        send_conn.close()
        self.spawns += 1
        return proc, recv_conn

    async def _adopt(self, idx: int, proc: Any, conn: Any) -> WorkerHandle:
        """Finish one launch: port handshake, registration, watch."""
        assert self._loop is not None
        try:
            port = await self._loop.run_in_executor(
                None, partial(_await_port, conn, proc, self.start_timeout_s)
            )
        finally:
            conn.close()
        self._generation += 1
        handle = WorkerHandle(
            idx=idx, generation=self._generation, proc=proc, port=port
        )
        self.handles[idx] = handle
        self._watch(handle)
        return handle

    async def restart(self, idx: int) -> WorkerHandle:
        """Respawn slot ``idx`` under a new generation."""
        if not 0 <= idx < self.n_workers:
            raise ValueError(f"no worker slot {idx}")
        old = self.handles.get(idx)
        if old is not None:
            self.unwatch(old)
        proc, conn = self._launch(idx)
        return await self._adopt(idx, proc, conn)

    # ------------------------------------------------------------------
    # death watch
    # ------------------------------------------------------------------
    def _watch(self, handle: WorkerHandle) -> None:
        """Arm the sentinel: the loop wakes the instant the process
        exits (no polling)."""
        assert self._loop is not None
        fd = handle.proc.sentinel
        self._watched[fd] = handle
        self._loop.add_reader(fd, self._sentinel_fired, fd)

    def unwatch(self, handle: WorkerHandle) -> None:
        """Disarm the death watch (planned exits must not alarm)."""
        fd = handle.proc.sentinel
        if self._watched.pop(fd, None) is not None and self._loop is not None:
            self._loop.remove_reader(fd)

    def _sentinel_fired(self, fd: int) -> None:
        handle = self._watched.pop(fd, None)
        if handle is None:
            return
        if self._loop is not None:
            self._loop.remove_reader(fd)
        if self._stopping or self.on_death is None:
            return
        self.on_death(handle)

    # ------------------------------------------------------------------
    # teardown / chaos
    # ------------------------------------------------------------------
    def kill(self, idx: int) -> WorkerHandle:
        """SIGKILL a worker outright (chaos testing) — the death watch
        stays armed, so the supervisor reacts exactly as it would to a
        real crash."""
        handle = self.handles[idx]
        if handle.alive:
            os.kill(handle.proc.pid, signal.SIGKILL)
        return handle

    async def join(self, handle: WorkerHandle, timeout_s: float = 10.0) -> None:
        """Wait (executor-side) for a worker process to exit; escalate
        to SIGKILL if it overstays."""
        assert self._loop is not None
        await self._loop.run_in_executor(
            None, partial(handle.proc.join, timeout_s)
        )
        if handle.alive:
            os.kill(handle.proc.pid, signal.SIGKILL)
            await self._loop.run_in_executor(
                None, partial(handle.proc.join, 5.0)
            )

    async def stop(self, *, timeout_s: float = 10.0) -> None:
        """Terminate every worker (SIGTERM, then SIGKILL stragglers)."""
        self._stopping = True
        for handle in self.handles.values():
            self.unwatch(handle)
            if handle.alive:
                handle.proc.terminate()
        for handle in self.handles.values():
            await self.join(handle, timeout_s)
        self.handles.clear()

    def stats(self) -> dict[str, Any]:
        return {
            "workers": self.n_workers,
            "spawns": self.spawns,
            "alive": sum(1 for h in self.handles.values() if h.alive),
            "restarts": max(self.spawns - self.n_workers, 0),
            "generations": {
                h.name: h.generation for h in self.handles.values()
            },
        }
