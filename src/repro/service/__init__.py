"""repro.service — the async solve server and its clients.

Everything before this package answers *library* calls; this one
answers **traffic**: a long-lived asyncio TCP server speaking
newline-delimited JSON (:mod:`~repro.service.protocol`), built so the
engine's throughput machinery finally amortizes across requests
instead of across one process's loop —

* **adaptive micro-batching** (:class:`MicroBatcher`) coalesces
  compatible requests into :meth:`BatchSolver.solve_many` calls under
  a latency budget;
* **single-flight dedup** (:class:`SingleFlight`) collapses concurrent
  identical requests into one solve keyed exactly like the engine's
  result cache;
* **sessions** (:class:`SessionManager`) host server-side
  :class:`~repro.dynamic.DynamicInstance` streams repaired by the
  :class:`~repro.dynamic.IncrementalSolver`;
* **admission control** sheds overload with a typed error instead of
  queueing into timeouts, and :class:`Metrics` serves counters and
  latency/batch-size histograms over the same protocol;
* **sharding** (:class:`ShardedSolveServer`) puts the same front-end
  over a supervised pool of solver worker processes, routed by
  consistent hash of the engine cache key so each worker's caches stay
  warm on its slice of the keyspace — ``semimatch serve --workers N``.

Quick start
-----------
Server::

    semimatch serve --port 7431

Client::

    from repro.service import ServiceClient
    with ServiceClient(port=7431) as client:
        result = client.solve(problem, method="EVG+ls")
        result.makespan, result.winner, result.deduped

Results are bit-identical to a local ``repro.api.solve`` of the same
``(instance, options)``.
"""

from .batching import MicroBatcher
from .client import (
    AsyncServiceClient,
    RemoteSession,
    RemoteSolveResult,
    ServiceClient,
    instance_to_wire,
    options_to_wire,
)
from .dedup import SingleFlight
from .metrics import Histogram, Metrics
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    OPS,
    PROTOCOL_VERSION,
    ErrorCode,
    OverloadedError,
    ProtocolError,
    RemoteError,
    ServiceError,
    SessionLimitError,
    SessionNotFoundError,
    SessionRelocatedError,
    WorkerLostError,
)
from .server import SolveServer
from .sessions import Session, SessionManager
from .shard import HashRing, ShardedSolveServer
from .supervisor import Supervisor, WorkerSpec

__all__ = [
    "SolveServer",
    "ShardedSolveServer",
    "HashRing",
    "Supervisor",
    "WorkerSpec",
    "ServiceClient",
    "AsyncServiceClient",
    "RemoteSolveResult",
    "RemoteSession",
    "MicroBatcher",
    "SingleFlight",
    "SessionManager",
    "Session",
    "Metrics",
    "Histogram",
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "OPS",
    "ERROR_CODES",
    "ErrorCode",
    "ServiceError",
    "ProtocolError",
    "OverloadedError",
    "RemoteError",
    "SessionNotFoundError",
    "SessionLimitError",
    "WorkerLostError",
    "SessionRelocatedError",
    "instance_to_wire",
    "options_to_wire",
]
