"""Single-flight deduplication of identical in-flight solves.

The engine's :class:`~repro.engine.cache.ResultCache` answers *repeat*
requests, but its get-miss → solve → put sequence is not atomic: N
identical requests arriving concurrently all miss and all solve.  On a
service front-end that is the common hot case (every client asking for
today's instance at once), so :class:`SingleFlight` closes the gap at
the coordination layer: the first request for a key becomes the
*leader* and runs the solve; every request for the same key that
arrives while the leader is in flight becomes a *follower* and awaits
the leader's future instead of solving.  The leader's result lands in
the shared ResultCache as usual, so requests arriving *after* the
flight completes are plain cache hits.

Keys are exactly the engine's cache keys —
``(instance_digest, *SolveOptions.cache_token())`` — so two requests
dedup iff they would have shared a cache entry.

Single event loop only (the server's); no locks needed because all
bookkeeping happens between awaits.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Hashable, TypeVar

from ..obs.trace import span

__all__ = ["SingleFlight"]

T = TypeVar("T")


class SingleFlight:
    """Coalesce concurrent calls with equal keys into one execution.

    ``leaders``/``followers`` count executions vs shared awaits —
    the service reports them as ``dedup_leaders``/``dedup_followers``.
    """

    def __init__(self) -> None:
        self._inflight: dict[Hashable, asyncio.Future] = {}
        self.leaders = 0
        self.followers = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def __contains__(self, key: Hashable) -> bool:
        """Whether a flight for ``key`` is currently in the air."""
        return key in self._inflight

    async def run(
        self, key: Hashable, thunk: Callable[[], Awaitable[T]]
    ) -> tuple[T, bool]:
        """Await ``thunk()`` — or an already-running flight for ``key``.

        Returns ``(result, shared)`` where ``shared`` tells whether this
        call was a follower.  A leader's exception propagates to every
        follower of its flight; each flight is one attempt (the next
        request after a failed flight leads a fresh one).  A *cancelled*
        leader (its connection dropped mid-flight) must not take its
        followers down with it: they retry the key — usually becoming a
        leader whose solve is answered by the result cache.
        """
        # one logical call counts as at most one follower, however many
        # retry iterations a cancelled leader forces it through —
        # ``dedup_followers`` must report deduped *requests*, not loop
        # turns, or the metric overstates the dedup benefit
        counted = False
        while True:
            existing = self._inflight.get(key)
            if existing is None:
                break
            if not counted:
                self.followers += 1
                counted = True
            # awaiting the shared future directly is safe: cancelling a
            # follower cancels only its own await, never the flight
            try:
                with span("service.dedup.follow"):
                    return await existing, True
            except asyncio.CancelledError:
                if not existing.cancelled():
                    raise  # this follower was cancelled, not the flight
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = fut
        self.leaders += 1
        try:
            with span("service.dedup.lead"):
                result = await thunk()
        except BaseException as exc:
            if isinstance(exc, asyncio.CancelledError):
                # the leader died mid-flight: followers must not hang
                fut.cancel()
            else:
                fut.set_exception(exc)
                # mark retrieved so a follower-less failed flight does
                # not warn "exception was never retrieved" at GC time
                fut.exception()
            raise
        else:
            fut.set_result(result)
            return result, False
        finally:
            del self._inflight[key]
