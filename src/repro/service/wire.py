"""Wire instance dicts → library objects, shared by every server op.

``solve`` and ``session.open`` both receive instances as the
:mod:`repro.io.serialize` dicts; parsing lives here once so the two
paths accept the same kinds and reject unknown ones with the same
``bad-request`` code (a client switching on error codes must not see
two different answers for the identical mistake).
"""

from __future__ import annotations

import threading
from typing import Any

from ..core.hypergraph import TaskHypergraph
from ..dynamic import DynamicInstance
from ..engine.transport import attach_instance, is_descriptor
from .protocol import ErrorCode, ProtocolError

__all__ = [
    "hypergraph_from_wire",
    "dynamic_from_wire",
    "hypergraph_from_descriptor",
    "is_descriptor",
]

#: The worker-side attachment cache in :mod:`repro.engine.transport`
#: assumes single-threaded chunk execution; a shard worker parses
#: instances from *executor threads*, so attaches serialise here.
_ATTACH_LOCK = threading.Lock()


def hypergraph_from_descriptor(data: dict) -> TaskHypergraph:
    """A shared-memory descriptor (see :mod:`repro.engine.transport`)
    as a zero-copy :class:`TaskHypergraph` view.

    This is the sharded front-end → worker fast path: the front-end
    already parsed and exported the instance, and the worker attaches
    the segment instead of re-deserialising JSON.  Only endpoints
    opted in via ``SolveServer(accept_shm_instances=True)`` reach
    here — an external client must not be able to name arbitrary
    segments."""
    try:
        with _ATTACH_LOCK:
            return attach_instance(data)
    except Exception as exc:
        raise ProtocolError(
            f"cannot attach shared-memory instance "
            f"{data.get('__shm__')!r}: {exc}",
            code=ErrorCode.BAD_REQUEST,
        ) from exc

_KINDS = ("hypergraph", "bipartite", "dynamic-instance")


def _checked_kind(data: Any, what: str) -> str:
    if not isinstance(data, dict):
        raise ProtocolError(
            f"{what} must be an object (a {'/'.join(_KINDS)} dict "
            "from repro.io.serialize / DynamicInstance.to_state)",
            code=ErrorCode.BAD_REQUEST,
        )
    kind = data.get("kind")
    if kind not in _KINDS:
        raise ProtocolError(
            f"unknown {what} kind {kind!r} (expected one of "
            f"{list(_KINDS)})",
            code=ErrorCode.BAD_REQUEST,
        )
    return kind


def hypergraph_from_wire(data: Any, what: str = "instance") -> TaskHypergraph:
    """The wire dict as an immutable :class:`TaskHypergraph`.

    ``dynamic-instance`` states are accepted too — solving one means
    solving its current compiled content."""
    kind = _checked_kind(data, what)
    if kind == "hypergraph":
        from ..io.serialize import hypergraph_from_dict

        return hypergraph_from_dict(data)
    if kind == "bipartite":
        from ..io.serialize import bipartite_from_dict

        return TaskHypergraph.from_bipartite(bipartite_from_dict(data))
    return DynamicInstance.from_state(data).to_hypergraph()


def dynamic_from_wire(data: Any, what: str = "baseline") -> DynamicInstance:
    """The wire dict as a (fresh) :class:`DynamicInstance`.

    ``dynamic-instance`` states restore with full fidelity
    (:meth:`DynamicInstance.from_state`); hypergraph/bipartite dicts
    seed via :meth:`DynamicInstance.from_hypergraph`, so trace handles
    line up with dense ids."""
    kind = _checked_kind(data, what)
    if kind == "dynamic-instance":
        return DynamicInstance.from_state(data)
    return DynamicInstance.from_hypergraph(hypergraph_from_wire(data, what))
