"""The sharded solve service: one front-end, N solver workers.

A single :class:`~repro.service.server.SolveServer` solves in executor
threads of one process, so one CPU-bound solve at a time no matter how
many cores the host has.  :class:`ShardedSolveServer` keeps that whole
front-end — protocol, admission control, single-flight, metrics,
tracing — and moves the *solving* into a pool of worker processes
(:mod:`repro.service.supervisor`), each a full ``SolveServer`` of its
own on a loopback port:

* **routing** is a consistent hash of the engine cache key,
  ``(instance_digest, *options.cache_token())``, over the worker
  slots: the same request always lands on the same worker, so each
  worker's ResultCache and kernel compile cache stay warm on *its*
  slice of the keyspace instead of every worker slowly learning all of
  it.  A down worker's range walks clockwise to the next live slot.
* **single-flight still applies in front**: concurrent identical
  requests collapse to one forward, and the worker's own result cache
  answers the stragglers.
* **instances cross the hop zero-copy** when they are big enough:
  the front-end parses once, exports the arrays to shared memory
  (:mod:`repro.engine.transport`) and forwards a descriptor; the
  worker attaches the segment instead of re-deserialising JSON.
* **sessions are pinned**: ``session.open`` picks the least-loaded
  live worker and every later op on that session goes to the same
  worker (incremental state cannot move).  If the worker drains or
  dies, the session is *relocated*: later ops answer the typed
  ``session-relocated`` code and the client re-opens from its own
  baseline.
* **failure is typed, never a hang**: a worker crash fails its
  in-flight forwards with ``worker-lost`` (solves are deterministic
  and side-effect free, so clients retry them transparently), the
  supervisor restarts the slot under a new generation, and the ring
  heals.

Run it with ``semimatch serve --workers N``.
"""

from __future__ import annotations

import asyncio
import bisect
import os
from dataclasses import dataclass, field
from functools import partial
from hashlib import blake2b
from typing import Any, Hashable

from ..core.hypergraph import TaskHypergraph
from ..engine.cache import instance_digest
from ..engine.transport import (
    ExportRegistry,
    instance_nbytes,
    transport_available,
)
from ..obs.fleet import aggregate_fleet, unreachable_marker
from ..obs.health import score_fleet
from ..obs.trace import carry, measured_span, span
from .client import AsyncServiceClient
from .protocol import (
    SessionNotFoundError,
    SessionRelocatedError,
    WorkerLostError,
)
from .server import SolveServer, _Conn, _SolveTicket
from .supervisor import Supervisor, WorkerHandle, WorkerSpec

__all__ = ["HashRing", "ShardedSolveServer"]

#: relocated-session tombstones kept so late ops answer the typed
#: ``session-relocated`` instead of decaying into ``session-not-found``
_RELOCATED_KEEP = 4096


# ----------------------------------------------------------------------
# consistent hashing
# ----------------------------------------------------------------------
def _h64(data: bytes) -> int:
    return int.from_bytes(blake2b(data, digest_size=8).digest(), "big")


class HashRing:
    """Consistent hash of request keys over worker slots.

    Each slot owns ``replicas`` points on a 64-bit ring; a key routes
    to the first point at or clockwise of its own hash.  Slots are
    stable identities (a restarted worker keeps its slot), so the key
    ranges — and therefore which worker's caches are warm for which
    instances — survive crashes and restarts.  Routing around a dead
    slot walks clockwise to the next *live* one, which spreads exactly
    the dead slot's range over its ring neighbours instead of
    reshuffling everything.
    """

    def __init__(self, n_slots: int, *, replicas: int = 64):
        if n_slots < 1:
            raise ValueError("n_slots must be at least 1")
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.n_slots = int(n_slots)
        self.replicas = int(replicas)
        points = sorted(
            (_h64(f"slot:{idx}:{rep}".encode()), idx)
            for idx in range(n_slots)
            for rep in range(replicas)
        )
        self._hashes = [h for h, _ in points]
        self._slots = [idx for _, idx in points]

    @staticmethod
    def key_hash(key: Hashable) -> int:
        """The ring position of a request key.

        Keys are the engine cache keys — tuples of strings, numbers
        and nested tuples — whose ``repr`` is deterministic within and
        across processes (no identity-based reprs allowed)."""
        return _h64(repr(key).encode())

    def route(self, key: Hashable, alive=None) -> int | None:
        """The slot owning ``key``; walks clockwise past slots for
        which ``alive(slot)`` is false.  ``None`` when nothing is
        alive."""
        start = bisect.bisect_right(self._hashes, self.key_hash(key))
        n = len(self._slots)
        seen: set[int] = set()
        for off in range(n):
            idx = self._slots[(start + off) % n]
            if idx in seen:
                continue
            seen.add(idx)
            if alive is None or alive(idx):
                return idx
            if len(seen) == self.n_slots:
                break
        return None


# ----------------------------------------------------------------------
# per-slot state
# ----------------------------------------------------------------------
@dataclass(eq=False)
class _Shard:
    """The front-end's view of one worker slot."""

    idx: int
    handle: WorkerHandle
    client: AsyncServiceClient | None
    generation: int
    state: str = "up"  # up | draining | down
    inflight: int = 0

    @property
    def name(self) -> str:
        return f"w{self.idx}"


@dataclass
class _Pin:
    """Where one front-end session id lives."""

    idx: int
    generation: int
    sid: str  # the worker's own session id
    owner: int  # front-end connection id


class ShardedSolveServer(SolveServer):
    """A :class:`SolveServer` front-end over a worker process pool.

    The public protocol is unchanged — clients cannot tell a sharded
    endpoint from a plain one except through the extra ``shard`` field
    on answers, the ``shards`` block in ``metrics``, and the two
    additional error codes (``worker-lost``, ``session-relocated``)
    that only a pool can produce.

    Parameters beyond :class:`SolveServer`'s
    -----------------------------------------
    n_workers:
        Worker pool size (default: the machine's CPU count).
    worker_spec:
        Per-worker server configuration; defaults to mirroring the
        front-end's own batching/admission knobs.
    ring_replicas:
        Virtual nodes per worker slot on the hash ring.
    shm_min_bytes:
        Instances at least this large cross the front-end → worker hop
        as shared-memory descriptors instead of JSON (0 forces shm for
        everything, ``None`` disables it).
    start_timeout_s:
        Per-worker startup budget (import + bind + port handshake).
    """

    def __init__(
        self,
        *,
        n_workers: int | None = None,
        worker_spec: WorkerSpec | None = None,
        ring_replicas: int = 64,
        shm_min_bytes: int | None = 32768,
        start_timeout_s: float = 60.0,
        **kwargs: Any,
    ):
        super().__init__(**kwargs)
        self.n_workers = int(n_workers or os.cpu_count() or 1)
        self.worker_spec = (
            worker_spec
            if worker_spec is not None
            else WorkerSpec(
                max_batch=self.batcher.max_batch,
                max_delay_s=self.batcher.max_delay_s,
                max_pending=self.max_pending,
                max_sessions=self.sessions.max_sessions,
                tracing=self.tracing,
            )
        )
        self.supervisor = Supervisor(
            self.n_workers,
            self.worker_spec,
            on_death=self._worker_died,
            start_timeout_s=start_timeout_s,
        )
        self.ring = HashRing(self.n_workers, replicas=ring_replicas)
        self.shm_min_bytes = shm_min_bytes
        self._exports: ExportRegistry | None = (
            ExportRegistry()
            if shm_min_bytes is not None and transport_available()
            else None
        )
        self._shards: dict[int, _Shard] = {}
        self._pins: dict[str, _Pin] = {}
        self._relocated: dict[str, str] = {}  # fid -> reason (bounded)
        self._recover_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Spawn and connect the pool, then start accepting clients.

        Order matters: the listener only opens once every worker has
        reported its port, so no request can ever observe a
        half-started pool."""
        await self.supervisor.start()
        for idx in range(self.n_workers):
            handle = self.supervisor.handles[idx]
            client = await AsyncServiceClient.connect(port=handle.port)
            self._shards[idx] = _Shard(
                idx=idx,
                handle=handle,
                client=client,
                generation=handle.generation,
            )
        await super().start()

    async def serve_forever(self) -> None:
        """Like the base server's, but a ``shutdown``-op stop is
        awaited to completion: ``_stopping`` sets mid-:meth:`stop`
        (inside the base drain), and returning then would let the
        caller's ``asyncio.run`` cancel the pool teardown."""
        await super().serve_forever()
        if self._stop_task is not None:
            await self._stop_task

    async def stop(self, *, drain_s: float = 5.0) -> None:
        """Front-end drain first (handlers may still need workers),
        then tear the pool down."""
        for task in list(self._recover_tasks):
            task.cancel()
        if self._recover_tasks:
            await asyncio.gather(
                *self._recover_tasks, return_exceptions=True
            )
            self._recover_tasks.clear()
        await super().stop(drain_s=drain_s)
        for shard in self._shards.values():
            await self._close_client(shard)
            shard.state = "down"
        await self.supervisor.stop()
        if self._exports is not None:
            self._exports.close()

    @staticmethod
    async def _close_client(shard: _Shard) -> None:
        client, shard.client = shard.client, None
        if client is not None:
            try:
                await client.close()
            except Exception:  # pragma: no cover - teardown best-effort
                pass

    # ------------------------------------------------------------------
    # routing + forwarding
    # ------------------------------------------------------------------
    def _route(self, key: Hashable) -> _Shard:
        idx = self.ring.route(
            key, alive=lambda i: self._shards[i].state == "up"
        )
        if idx is None:
            raise WorkerLostError(
                "no live worker in the pool (all restarting or "
                "draining); retry"
            )
        return self._shards[idx]

    async def _call_worker(
        self, shard: _Shard, op: str, payload: dict
    ) -> dict:
        """One forwarded request; worker death surfaces as the typed
        ``worker-lost`` instead of a hang (the dead client's read loop
        fails every outstanding waiter)."""
        client = shard.client
        if client is None or shard.state == "down":
            raise WorkerLostError(
                f"worker {shard.name} is down; retry"
            )
        shard.inflight += 1
        try:
            # the hop span: the worker's own spans ride back on the
            # response envelope (the client call runs inside this span,
            # so the forwarded envelope carries its context) and are
            # ingested as this span's descendants — one stitched tree.
            # On a crash the span closes with ``error=worker-lost``
            # (the wire code, not the exception class), marking the
            # failed hop in the retried request's trace.
            with span("service.shard.worker") as sp:
                if sp.recording:
                    sp.set(
                        worker=shard.name, generation=shard.generation
                    )
                try:
                    return await client.call(op, **payload)
                except (ConnectionError, OSError) as exc:
                    if sp.recording:
                        sp.set(error="worker-lost")
                    raise WorkerLostError(
                        f"worker {shard.name} was lost mid-request "
                        f"({exc}); retry"
                    ) from exc
        finally:
            shard.inflight -= 1

    async def _forward_solve(
        self, key: tuple, digest: str, hg: TaskHypergraph, payload: dict
    ) -> dict:
        shard = self._route(key)
        instance_wire: Any = payload.get("instance")
        exported: str | None = None
        if (
            self._exports is not None
            and instance_nbytes(hg) >= int(self.shm_min_bytes or 0)
        ):
            # the export memcpys the arrays into the segment — executor
            # work, same as the parse that produced them
            descriptor = await asyncio.get_running_loop().run_in_executor(
                None, partial(self._exports.export, hg, digest)
            )
            if descriptor is not None:
                instance_wire = descriptor
                exported = digest
        forward: dict[str, Any] = {"instance": instance_wire}
        if payload.get("options") is not None:
            forward["options"] = payload["options"]
        try:
            with span("service.shard.forward") as sp:
                if sp.recording:
                    sp.set(shard=shard.name, shm=exported is not None)
                wire = await self._call_worker(shard, "solve", forward)
        finally:
            if exported is not None and self._exports is not None:
                self._exports.release(exported)
        wire["shard"] = shard.name
        self.metrics.incr(f"shard.{shard.name}.solves")
        return wire

    async def _op_solve(
        self, payload: dict, ticket: _SolveTicket | None
    ) -> dict:
        with measured_span("service.op.solve") as op_sp:
            # parse off-loop exactly like the plain server: the digest
            # is the routing key, and the parsed arrays feed the shm
            # export, so the work is needed here either way
            hg = await asyncio.get_running_loop().run_in_executor(
                None,
                carry(
                    partial(self._parse_instance, payload.get("instance"))
                ),
            )
            self._consume(ticket)
            _, token = self._normalized_options(payload.get("options"))
            digest = instance_digest(hg)
            key = (digest, *token)
            wire, shared = await self.flight.run(
                key,
                lambda: self._forward_solve(key, digest, hg, payload),
            )
            if shared:
                self.metrics.incr("dedup_followers")
            if op_sp.recording:
                op_sp.set(deduped=shared, shard=wire.get("shard"))
        self.metrics.observe_latency(op_sp.duration_s)
        result = dict(wire)
        # deduped on either side of the hop reads as deduped: the
        # client asked "did my request share another's solve?"
        result["deduped"] = bool(shared or wire.get("deduped"))
        return result

    # ------------------------------------------------------------------
    # sessions (pinned)
    # ------------------------------------------------------------------
    def _fid(self, shard: _Shard, sid: str) -> str:
        return f"{shard.name}g{shard.generation}.{sid}"

    def _tombstone(self, fid: str, reason: str) -> None:
        self._relocated[fid] = reason
        while len(self._relocated) > _RELOCATED_KEEP:
            self._relocated.pop(next(iter(self._relocated)))

    def _relocate_pins(self, idx: int, generation: int, reason: str) -> None:
        moved = [
            fid
            for fid, pin in self._pins.items()
            if pin.idx == idx and pin.generation == generation
        ]
        for fid in moved:
            del self._pins[fid]
            self._tombstone(fid, reason)
        if moved:
            self.metrics.incr("sessions_relocated", len(moved))

    async def _op_session_open(self, conn: _Conn, payload: dict) -> dict:
        # sessions have no cache key to route by; least-loaded keeps
        # long-lived pins from piling onto one worker
        candidates = [
            s for s in self._shards.values() if s.state == "up"
        ]
        if not candidates:
            raise WorkerLostError(
                "no live worker to host the session; retry"
            )
        pins_on = {idx: 0 for idx in self._shards}
        for pin in self._pins.values():
            pins_on[pin.idx] = pins_on.get(pin.idx, 0) + 1
        shard = min(candidates, key=lambda s: (pins_on[s.idx], s.idx))
        info = await self._call_worker(shard, "session.open", payload)
        fid = self._fid(shard, info["session"])
        self._pins[fid] = _Pin(
            idx=shard.idx,
            generation=shard.generation,
            sid=info["session"],
            owner=conn.id,
        )
        info["session"] = fid
        info["shard"] = shard.name
        return info

    async def _op_session_call(
        self, conn: _Conn, op: str, payload: dict
    ) -> dict:
        fid = payload.get("session")
        reason = self._relocated.get(fid)
        if reason is not None:
            raise SessionRelocatedError(
                f"session {fid!r} is gone ({reason}); re-open it from "
                f"your own baseline"
            )
        pin = self._pins.get(fid)
        # connection-scoped like the plain server: do not leak other
        # owners' sessions
        if pin is None or pin.owner != conn.id:
            raise SessionNotFoundError(
                f"no session {fid!r} on this connection"
            )
        shard = self._shards[pin.idx]
        if shard.generation != pin.generation or shard.state != "up":
            # the relocation task has not caught up yet; same answer
            self._pins.pop(fid, None)
            self._tombstone(fid, "worker lost")
            self.metrics.incr("sessions_relocated")
            raise SessionRelocatedError(
                f"session {fid!r} is gone (worker lost); re-open it "
                f"from your own baseline"
            )
        forward = dict(payload)
        forward["session"] = pin.sid
        out = await self._call_worker(shard, op, forward)
        out["session"] = fid
        out["shard"] = shard.name
        if op == "session.close":
            self._pins.pop(fid, None)
        return out

    async def _reclaim_conn(self, conn: _Conn) -> None:
        """A dropped client reclaims its pinned sessions on whichever
        workers host them (the front-end holds one long-lived
        connection per worker, so the workers' own connection-drop
        reclamation never fires for individual clients)."""
        await super()._reclaim_conn(conn)
        owned = [
            fid
            for fid, pin in self._pins.items()
            if pin.owner == conn.id
        ]
        for fid in owned:
            pin = self._pins.pop(fid, None)
            if pin is None:
                continue
            # count before the worker-side close: "no pin" must imply
            # "counted as reclaimed" at every await point, or a metrics
            # reader can watch a session vanish without a trace
            self.metrics.incr("sessions_reclaimed")
            shard = self._shards.get(pin.idx)
            if (
                shard is not None
                and shard.generation == pin.generation
                and shard.state == "up"
            ):
                try:
                    await self._call_worker(
                        shard, "session.close", {"session": pin.sid}
                    )
                except Exception:
                    pass  # the worker (or its restart) reclaims it

    # ------------------------------------------------------------------
    # worker lifecycle: drain, death, restart
    # ------------------------------------------------------------------
    async def drain_worker(self, idx: int, *, timeout_s: float = 30.0) -> None:
        """Gracefully retire one worker: stop routing to it, let its
        in-flight forwards finish, relocate its sessions, then shut it
        down.  The slot stays down until :meth:`restart_worker`."""
        shard = self._shards[idx]
        if shard.state != "up":
            raise ValueError(
                f"worker {shard.name} is {shard.state}, not drainable"
            )
        shard.state = "draining"
        self.supervisor.unwatch(shard.handle)
        # sessions relocate at drain start: their state dies with the
        # worker either way, and answering the typed code now beats
        # accepting mutations that are about to be thrown away
        self._relocate_pins(idx, shard.generation, "worker drained")
        deadline = asyncio.get_running_loop().time() + timeout_s
        while (
            shard.inflight > 0
            and asyncio.get_running_loop().time() < deadline
        ):
            await asyncio.sleep(0.02)
        client = shard.client
        if client is not None:
            try:
                await client.call("shutdown")
            except Exception:
                pass  # already gone is drained enough
        await self._close_client(shard)
        await self.supervisor.join(shard.handle)
        shard.state = "down"
        self.metrics.incr("workers_drained")

    async def restart_worker(self, idx: int) -> None:
        """Bring a down (or drained) slot back under a new generation."""
        shard = self._shards[idx]
        if shard.state == "up":
            return
        await self._close_client(shard)
        handle = await self.supervisor.restart(idx)
        shard.handle = handle
        shard.generation = handle.generation
        shard.client = await AsyncServiceClient.connect(port=handle.port)
        shard.state = "up"
        self.metrics.incr("worker_restarts")

    def _worker_died(self, handle: WorkerHandle) -> None:
        """Supervisor death-watch callback (sync, on the loop)."""
        task = asyncio.get_running_loop().create_task(
            self._recover_worker(handle)
        )
        self._recover_tasks.add(task)
        task.add_done_callback(self._recover_tasks.discard)

    async def _recover_worker(self, handle: WorkerHandle) -> None:
        shard = self._shards.get(handle.idx)
        if shard is None or shard.generation != handle.generation:
            return  # a stale death report for an already-replaced slot
        self.metrics.incr("workers_lost")
        self.metrics.incr(f"shard.{shard.name}.lost")
        shard.state = "down"
        # closing the client cancels its read loop, which fails every
        # parked waiter with ConnectionError (surfacing as
        # worker-lost).  That close is load-bearing, not tidy-up: a
        # SIGKILLed worker's connection may never EOF — its engine-pool
        # children inherit the socket fd and keep it open — so a
        # forward that raced the death watch would otherwise wait on
        # the dead connection forever
        await self._close_client(shard)
        self._relocate_pins(handle.idx, handle.generation, "worker lost")
        try:
            await self.restart_worker(handle.idx)
        except Exception:
            # the slot stays down; the ring routes around it, and the
            # operator sees the counter
            self.metrics.incr("worker_restart_failures")

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def _execute(
        self,
        conn: _Conn,
        op: str,
        payload: dict,
        ticket: _SolveTicket | None = None,
    ) -> dict:
        if op == "session.open":
            return await self._op_session_open(conn, payload)
        if op in ("session.mutate", "session.close"):
            return await self._op_session_call(conn, op, payload)
        if op == "metrics":
            return await self._op_metrics_sharded(payload)
        return await super()._execute(conn, op, payload, ticket)

    async def _op_metrics_sharded(self, payload: dict | None) -> dict:
        snap = self._op_metrics(payload)
        if "text" in snap:
            return snap  # prometheus exposition: front-end counters only
        include_workers = bool((payload or {}).get("workers", True))
        aggregate = bool((payload or {}).get("aggregate", False))
        pins_on: dict[int, int] = {}
        for pin in self._pins.values():
            pins_on[pin.idx] = pins_on.get(pin.idx, 0) + 1
        shards: dict[str, Any] = {}
        scraped: dict[str, Any] = {}
        for idx in sorted(self._shards):
            shard = self._shards[idx]
            info: dict[str, Any] = {
                "state": shard.state,
                "generation": shard.generation,
                "port": shard.handle.port,
                "pid": shard.handle.proc.pid,
                "inflight": shard.inflight,
                "sessions": pins_on.get(idx, 0),
            }
            if include_workers and shard.state == "up":
                try:
                    info["metrics"] = await asyncio.wait_for(
                        self._call_worker(shard, "metrics", {}), 5.0
                    )
                except Exception as exc:
                    # a hung worker must be visible, not blank: a typed
                    # marker in place of the snapshot, plus a counter
                    info["metrics"] = unreachable_marker(
                        f"{type(exc).__name__}: {exc}"
                    )
                    self.metrics.incr("workers_unreachable")
                scraped[shard.name] = info["metrics"]
            shards[shard.name] = info
        snap["shards"] = shards
        if aggregate:
            # one fleet view over the scraped worker snapshots: summed
            # counters, bucket-merged histograms (fleet p50/p99 from
            # the merged cumulative walk).  The per-shard cumulative
            # snapshots stay under ``shards.*.metrics`` — scrapers
            # compute per-shard deltas from those, per the scrape
            # contract.
            snap["fleet"] = aggregate_fleet(scraped)
        snap["supervisor"] = self.supervisor.stats()
        snap["transport"] = (
            self._exports.stats() if self._exports is not None else None
        )
        snap["sessions"] = {"open": len(self._pins)}
        return snap

    async def _op_health(self, payload: dict) -> dict:
        """The sharded ``health`` op: the full fleet check set (the
        base server scores only its own subset)."""
        budget = self._health_budget(payload)
        up = sum(1 for s in self._shards.values() if s.state == "up")
        snap = await self._op_metrics_sharded(
            {"workers": True, "aggregate": True}
        )
        fleet = snap.get("fleet") or {}
        verdict = score_fleet(
            {
                "workers": self.n_workers,
                "workers_up": up,
                "workers_unreachable": len(
                    fleet.get("workers_unreachable") or ()
                ),
                "requests": self.metrics.counter("requests"),
                "load_shed": self.metrics.counter("load_shed"),
                # the client-visible SLO: the front-end's own latency
                # histogram, not a worker aggregate (one request would
                # count on both sides of the hop)
                "latency_p99_s": self.metrics.request_latency_s.quantile(
                    0.99
                ),
                "workers_lost": self.metrics.counter("workers_lost"),
                "uptime_s": self.uptime_s,
                "pins_open": len(self._pins),
                "pins_capacity": self.sessions.max_sessions,
                "tombstones": len(self._relocated),
                "tombstones_capacity": _RELOCATED_KEEP,
            },
            budget,
        )
        verdict["uptime_s"] = self.uptime_s
        verdict["workers"] = {"total": self.n_workers, "up": up}
        return verdict
