"""Server-side dynamic instances: sessions over ``repro.dynamic``.

A *session* hosts one :class:`~repro.dynamic.DynamicInstance` with an
attached :class:`~repro.dynamic.IncrementalSolver`.  The client opens
it from a baseline (a hypergraph dict, a bipartite dict, or a
full-fidelity ``DynamicInstance.to_state()`` dict), then streams the
existing :class:`~repro.dynamic.journal.Mutation` wire records —
exactly what ``Mutation.to_dict()`` emits and trace files store — and
each ``session.mutate`` answers with the incrementally repaired
bottleneck, so a client replaying a churn stream over TCP sees the
same numbers as an in-process :class:`IncrementalSolver` (asserted
bit-equal in the tests).

Mutation batches are **transactional**: they apply through the
instance's journal under a snapshot, and any failure (unknown handle,
infeasible processor removal, ...) rolls the whole batch back before
the error reaches the wire — the session state never reflects half a
request.

Sessions are owned by the connection that opened them: other
connections cannot address them, and a dropped connection reclaims its
sessions.  All methods are thread-safe (the server calls them from
executor threads); a per-session lock serialises mutations so one
session's repairs stay ordered even if a client misbehaves and
pipelines conflicting batches.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any

from ..dynamic import DynamicInstance, IncrementalSolver, Mutation
from .protocol import ProtocolError, SessionLimitError, SessionNotFoundError
from .wire import dynamic_from_wire

__all__ = ["Session", "SessionManager"]


@dataclass
class Session:
    """One hosted dynamic instance and its incremental solver."""

    id: str
    owner: int
    instance: DynamicInstance
    solver: IncrementalSolver
    created_s: float = field(default_factory=time.monotonic)
    mutations: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)

    def describe(self) -> dict[str, Any]:
        return {
            "session": self.id,
            "n_tasks": self.instance.n_tasks,
            "n_procs": self.instance.n_procs,
            "version": self.instance.version,
            "bottleneck": self.solver.bottleneck(),
            "mutations": self.mutations,
            "repair": self.solver.stats.as_dict(),
            # the instance's patched-compilation counters: a session's
            # Nth snapshot is array edits on the first, never a fresh
            # compile — ``full_builds`` staying at 1 across a mutation
            # stream is the observable form of that guarantee
            "compile": self.instance.compile_stats(),
        }


class SessionManager:
    """Owns every live session of one server."""

    def __init__(self, *, max_sessions: int = 64):
        if max_sessions < 1:
            raise ValueError("max_sessions must be at least 1")
        self.max_sessions = int(max_sessions)
        self._lock = threading.Lock()
        self._sessions: dict[str, Session] = {}
        self._next = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    # ------------------------------------------------------------------
    def open(self, payload: dict[str, Any], *, owner: int) -> dict[str, Any]:
        """Create a session; returns its initial description."""
        instance = dynamic_from_wire(payload.get("baseline"))
        solver = IncrementalSolver(
            instance,
            method=str(payload.get("method", "auto")),
            fallback_ratio=float(payload.get("fallback_ratio", 0.25)),
            min_fallback_region=int(payload.get("min_fallback_region", 4)),
            ls_moves=int(payload.get("ls_moves", 64)),
        )
        with self._lock:
            if len(self._sessions) >= self.max_sessions:
                solver.detach()
                raise SessionLimitError(
                    f"server already hosts {self.max_sessions} sessions"
                )
            self._next += 1
            session = Session(
                id=f"s{self._next}",
                owner=owner,
                instance=instance,
                solver=solver,
            )
            self._sessions[session.id] = session
        return session.describe()

    def _get(self, sid: Any, owner: int) -> Session:
        with self._lock:
            session = self._sessions.get(sid)
        # sessions are connection-scoped: do not leak existence of other
        # owners' sessions — both cases answer session-not-found
        if session is None or session.owner != owner:
            raise SessionNotFoundError(f"no session {sid!r} on this connection")
        return session

    def mutate(
        self,
        sid: Any,
        mutations: list[dict[str, Any]],
        *,
        owner: int,
        include_assignment: bool = False,
    ) -> dict[str, Any]:
        """Apply a batch of wire mutation records transactionally.

        Returns the session description (repaired bottleneck included),
        plus the handle-level assignment and per-processor loads when
        ``include_assignment`` is set.  An empty batch is a pure read.
        """
        session = self._get(sid, owner)
        if not isinstance(mutations, list):
            raise ProtocolError(
                "'mutations' must be a list of mutation records",
                code="bad-request",
            )
        with session.lock:
            marker = session.instance.snapshot()
            try:
                for record in mutations:
                    if not isinstance(record, dict):
                        raise ProtocolError(
                            "each mutation record must be an object",
                            code="bad-request",
                        )
                    session.instance.apply(Mutation.from_dict(record))
            except Exception:
                session.instance.rollback(marker)
                raise
            session.mutations += len(mutations)
            out = session.describe()
            out["applied"] = len(mutations)
            if include_assignment:
                out["assignment"] = {
                    str(task): cfg
                    for task, cfg in sorted(
                        session.solver.assignment().items()
                    )
                }
                out["loads"] = {
                    str(proc): load
                    for proc, load in sorted(session.solver.loads().items())
                }
            return out

    def close(self, sid: Any, *, owner: int) -> dict[str, Any]:
        """Tear one session down; returns its final description."""
        session = self._get(sid, owner)
        with self._lock:
            self._sessions.pop(session.id, None)
        with session.lock:
            out = session.describe()
            session.solver.detach()
        return out

    def close_owned(self, owner: int) -> int:
        """Reclaim every session of a dropped connection.

        Taking each session's lock before detaching serialises the
        reclaim against an in-flight ``mutate`` batch still running in
        an executor thread: the batch finishes (or rolls back) first,
        and only then is the solver detached — never mid-apply.  The
        caller must therefore run this off the event loop (the server
        does, via ``_reclaim_conn``)."""
        with self._lock:
            owned = [
                s for s in self._sessions.values() if s.owner == owner
            ]
            for s in owned:
                del self._sessions[s.id]
        for s in owned:
            with s.lock:
                s.solver.detach()
        return len(owned)
