"""Clients for the solve service: blocking sockets and asyncio.

:class:`ServiceClient` is the ergonomic blocking client — one call,
one answer — with an explicit :meth:`~ServiceClient.solve_pipelined`
for throughput (send every frame, then collect the out-of-order
responses by correlation id).  :class:`AsyncServiceClient` multiplexes
any number of concurrent coroutine calls over one connection, which is
what actually exercises the server's micro-batcher and single-flight
layers from a single process.

Solve answers come back as :class:`RemoteSolveResult`: the assignment
as an int64 array plus the provenance the server reported.  Matchings
are **bit-identical** to a local :func:`repro.api.solve` of the same
``(instance, options)`` — the wire is JSON, ints survive exactly and
floats round-trip through the shortest-repr encoding — and
:meth:`RemoteSolveResult.matching` re-validates against the caller's
own instance, exactly like the engine's cache-hit path does.
"""

from __future__ import annotations

import asyncio
import itertools
import socket
import time
from dataclasses import dataclass
from typing import Any, Iterable, Sequence

import numpy as np

from ..api.options import SolveOptions
from ..core.bipartite import BipartiteGraph
from ..core.hypergraph import TaskHypergraph
from ..core.semimatching import HyperSemiMatching
from ..dynamic import DynamicInstance, Mutation
from ..obs.trace import ingest, wire_context
from ..sched.model import SchedulingProblem
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    RemoteError,
    decode_frame,
    encode_frame,
    request,
)

#: how many times the clients re-send a solve answered ``worker-lost``
#: before giving up.  Solves are deterministic and side-effect free, so
#: the retry is always safe; the sharded front-end routes the re-send
#: around the dead worker (or onto its restarted successor), and a
#: couple of attempts outlive any single crash.
WORKER_LOST_RETRIES = 3

__all__ = [
    "RemoteSolveResult",
    "RemoteSession",
    "ServiceClient",
    "AsyncServiceClient",
    "instance_to_wire",
    "options_to_wire",
    "WORKER_LOST_RETRIES",
]


# ----------------------------------------------------------------------
# wire conversion
# ----------------------------------------------------------------------
def instance_to_wire(instance: Any) -> dict:
    """An instance as its protocol dict (pass-through for dicts)."""
    if isinstance(instance, dict):
        return instance
    if isinstance(instance, SchedulingProblem):
        instance = instance.to_hypergraph()
    if isinstance(instance, DynamicInstance):
        return instance.to_state()
    if isinstance(instance, TaskHypergraph):
        from ..io.serialize import hypergraph_to_dict

        return hypergraph_to_dict(instance)
    if isinstance(instance, BipartiteGraph):
        from ..io.serialize import bipartite_to_dict

        return bipartite_to_dict(instance)
    raise TypeError(
        "instance must be a SchedulingProblem, TaskHypergraph, "
        f"BipartiteGraph, DynamicInstance or dict, got "
        f"{type(instance).__name__}"
    )


def options_to_wire(
    options: SolveOptions | None = None, **fields: Any
) -> dict | None:
    """A :class:`SolveOptions` (or its keyword fields) as the protocol's
    options dict; ``None`` when nothing was requested (server
    defaults)."""
    if options is None:
        if not fields:
            return None
        options = SolveOptions(**fields)
    elif fields:
        raise TypeError("pass options= or keyword fields, not both")
    method = options.method
    out: dict[str, Any] = {
        "method": method if isinstance(method, str) else method.canonical(),
        "refine": options.refine,
        "seed": options.seed,
        "backend": options.backend,
    }
    if options.portfolio is not None:
        out["portfolio"] = [
            e if isinstance(e, str) else e.canonical()
            for e in options.portfolio
        ]
    if options.time_budget is not None:
        out["time_budget"] = options.time_budget
    return out


def _mutation_to_wire(mutation: Mutation | dict) -> dict:
    return mutation.to_dict() if isinstance(mutation, Mutation) else mutation


def _traced_request(op: str, rid: Any, payload: dict) -> dict:
    """A request envelope carrying the caller's trace context (when the
    caller is inside an enabled span — see the protocol's ``trace``
    envelope field)."""
    envelope = request(op, rid, **payload)
    ctx = wire_context()
    if ctx is not None:
        envelope["trace"] = ctx
    return envelope


# ----------------------------------------------------------------------
# results
# ----------------------------------------------------------------------
@dataclass
class RemoteSolveResult:
    """One solve answer as it came off the wire."""

    assignment: np.ndarray
    makespan: float
    winner: str | None
    method: str
    cache_hit: bool
    deduped: bool
    wall_time_s: float
    stats: dict
    raw: dict

    @staticmethod
    def from_wire(result: dict) -> "RemoteSolveResult":
        return RemoteSolveResult(
            assignment=np.asarray(result["assignment"], dtype=np.int64),
            makespan=float(result["makespan"]),
            winner=result.get("winner"),
            method=result.get("method", ""),
            cache_hit=bool(result.get("cache_hit", False)),
            deduped=bool(result.get("deduped", False)),
            wall_time_s=float(result.get("wall_time_s", 0.0)),
            stats=dict(result.get("stats") or {}),
            raw=result,
        )

    @property
    def hedge_of_task(self) -> np.ndarray:
        return self.assignment

    def matching(self, instance: Any) -> HyperSemiMatching:
        """Rebuild (and thereby re-validate) the matching against the
        caller's own copy of the instance."""
        if isinstance(instance, SchedulingProblem):
            instance = instance.to_hypergraph()
        return HyperSemiMatching(instance, self.assignment)


class RemoteSession:
    """Client handle of one server-side dynamic session."""

    def __init__(self, client: "ServiceClient", info: dict):
        self._client = client
        self.id = info["session"]
        self.info = info

    def mutate(
        self,
        mutations: Iterable[Mutation | dict],
        *,
        include_assignment: bool = False,
    ) -> dict:
        """Apply a transactional batch of mutations; returns the
        session description with the repaired bottleneck."""
        self.info = self._client.call(
            "session.mutate",
            session=self.id,
            mutations=[_mutation_to_wire(m) for m in mutations],
            include_assignment=include_assignment,
        )
        return self.info

    def apply(self, mutation: Mutation | dict, **kw: Any) -> dict:
        """Apply one mutation (sugar over :meth:`mutate`)."""
        return self.mutate([mutation], **kw)

    def bottleneck(self) -> float:
        """The current repaired bottleneck (an empty mutate batch)."""
        return float(self.mutate([])["bottleneck"])

    def close(self) -> dict:
        """Tear the server-side session down; returns its final
        description."""
        return self._client.call("session.close", session=self.id)


# ----------------------------------------------------------------------
# blocking client
# ----------------------------------------------------------------------
class ServiceClient:
    """Blocking NDJSON client over one TCP connection.

    Not thread-safe (one request/response conversation at a time);
    use one client per thread, or :class:`AsyncServiceClient` for
    in-process concurrency.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7431,
        *,
        timeout: float | None = 60.0,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        self._rfile = self._sock.makefile("rb")
        self._ids = itertools.count(1)

    # -- plumbing --------------------------------------------------------
    def _send(self, op: str, payload: dict) -> int:
        rid = next(self._ids)
        self._sock.sendall(encode_frame(_traced_request(op, rid, payload)))
        return rid

    def _recv(self) -> dict:
        line = self._rfile.readline(MAX_FRAME_BYTES)
        if not line:
            # repro: ignore[contract-sync] — client-side raise: surfaces to the local caller, never crosses the wire
            raise ConnectionError("server closed the connection")
        return decode_frame(line)

    @staticmethod
    def _unwrap(envelope: dict) -> dict:
        # a traced request's response may piggyback the server-side
        # spans (see API.md "Fleet observability"): file them before
        # unwrapping, so even an error envelope — the worker-lost hop
        # above all — contributes its spans to the caller's trace
        spans = envelope.get("spans")
        if isinstance(spans, list):
            ingest(spans)
        if envelope.get("ok"):
            return envelope["result"]
        err = envelope.get("error") or {}
        raise RemoteError(
            err.get("code", "internal"), err.get("message", "unknown error")
        )

    def call(self, op: str, **payload: Any) -> dict:
        """One request, one response (the building block)."""
        rid = self._send(op, payload)
        envelope = self._recv()
        if envelope.get("id") != rid:
            raise RemoteError(
                "bad-frame",
                f"response correlates to {envelope.get('id')!r}, "
                f"expected {rid!r}",
            )
        return self._unwrap(envelope)

    # -- surface ---------------------------------------------------------
    def ping(self) -> dict:
        return self.call("ping")

    def solve(
        self,
        instance: Any,
        *,
        options: SolveOptions | None = None,
        retries: int = WORKER_LOST_RETRIES,
        **fields: Any,
    ) -> RemoteSolveResult:
        """Solve one instance remotely.

        A ``worker-lost`` answer (a sharded endpoint's worker died with
        this request in flight) is retried up to ``retries`` times —
        solves are deterministic and side-effect free, so the re-send
        is always safe.  Every other error propagates untouched."""
        payload: dict[str, Any] = {"instance": instance_to_wire(instance)}
        wire_options = options_to_wire(options, **fields)
        if wire_options is not None:
            payload["options"] = wire_options
        attempt = 0
        while True:
            try:
                return RemoteSolveResult.from_wire(
                    self.call("solve", **payload)
                )
            except RemoteError as exc:
                if exc.code != ErrorCode.WORKER_LOST or attempt >= retries:
                    raise
                attempt += 1
                # brief linear backoff: restart takes the supervisor a
                # few tens of milliseconds, and the ring routes around
                # the dead slot meanwhile
                time.sleep(0.05 * attempt)

    def solve_pipelined(
        self,
        instances: Sequence[Any],
        *,
        options: SolveOptions | None = None,
        retries: int = WORKER_LOST_RETRIES,
        **fields: Any,
    ) -> list[RemoteSolveResult]:
        """Send every request up front, then collect the out-of-order
        responses; results come back in input order.

        This is the sync client's throughput mode: the whole burst goes
        out as one write, so the server sees it in as few reads as the
        transport allows and is free to micro-batch and dedup across
        all of it.  Requests answered ``worker-lost`` are re-sent (as a
        fresh burst) up to ``retries`` rounds, same contract as
        :meth:`solve`."""
        wire_options = options_to_wire(options, **fields)
        payloads: list[dict[str, Any]] = []
        for instance in instances:
            payload: dict[str, Any] = {
                "instance": instance_to_wire(instance)
            }
            if wire_options is not None:
                payload["options"] = wire_options
            payloads.append(payload)

        envelopes: dict[int, dict] = {}
        pending = list(range(len(payloads)))
        for attempt in range(retries + 1):
            rid_to_index = {}
            frames = []
            for index in pending:
                rid = next(self._ids)
                rid_to_index[rid] = index
                frames.append(
                    encode_frame(
                        _traced_request("solve", rid, payloads[index])
                    )
                )
            self._sock.sendall(b"".join(frames))
            lost: list[int] = []
            want = set(rid_to_index)
            while want:
                envelope = self._recv()
                rid = envelope.get("id")
                if rid not in want:
                    continue
                want.discard(rid)
                error = envelope.get("error") or {}
                if (
                    not envelope.get("ok")
                    and error.get("code") == ErrorCode.WORKER_LOST
                    and attempt < retries
                ):
                    lost.append(rid_to_index[rid])
                else:
                    envelopes[rid_to_index[rid]] = envelope
            if not lost:
                break
            pending = sorted(lost)
        return [
            RemoteSolveResult.from_wire(self._unwrap(envelopes[index]))
            for index in range(len(payloads))
        ]

    def open_session(
        self,
        baseline: Any,
        *,
        method: str = "auto",
        fallback_ratio: float = 0.25,
        min_fallback_region: int = 4,
        ls_moves: int = 64,
    ) -> RemoteSession:
        """Host ``baseline`` in a server-side dynamic session."""
        info = self.call(
            "session.open",
            baseline=instance_to_wire(baseline),
            method=method,
            fallback_ratio=fallback_ratio,
            min_fallback_region=min_fallback_region,
            ls_moves=ls_moves,
        )
        return RemoteSession(self, info)

    def metrics(self, *, format: str = "json") -> dict:
        """The server's ``metrics`` snapshot (or, with
        ``format="prometheus"``, ``{"text": <exposition text>}``)."""
        if format == "json":
            return self.call("metrics")
        return self.call("metrics", format=format)

    def traces(self, count: int | None = None) -> dict:
        """The server's flight recorder: its retained slow traces."""
        if count is None:
            return self.call("trace")
        return self.call("trace", count=count)

    def health(self, *, budget: dict | None = None) -> dict:
        """The server's ``health`` verdict, optionally graded against
        a caller-supplied budget (see ``repro.obs.health``)."""
        if budget is None:
            return self.call("health")
        return self.call("health", budget=budget)

    def shutdown(self) -> dict:
        return self.call("shutdown")

    def close(self) -> None:
        try:
            self._rfile.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ----------------------------------------------------------------------
# asyncio client
# ----------------------------------------------------------------------
class AsyncServiceClient:
    """Multiplexing asyncio client: any number of concurrent calls on
    one connection, correlated by request id.

    >>> client = await AsyncServiceClient.connect(port=port)  # doctest: +SKIP
    >>> results = await asyncio.gather(                       # doctest: +SKIP
    ...     *(client.solve(hg) for hg in instances))
    """

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ):
        self._reader = reader
        self._writer = writer
        self._ids = itertools.count(1)
        self._waiters: dict[Any, asyncio.Future] = {}
        self._dead: Exception | None = None
        self._pump = asyncio.get_running_loop().create_task(self._read_loop())

    @classmethod
    async def connect(
        cls, host: str = "127.0.0.1", port: int = 7431
    ) -> "AsyncServiceClient":
        reader, writer = await asyncio.open_connection(
            host, port, limit=MAX_FRAME_BYTES
        )
        return cls(reader, writer)

    async def _read_loop(self) -> None:
        try:
            while True:
                line = await self._reader.readline()
                if not line:
                    # repro: ignore[contract-sync] — client-side raise: surfaces to the local caller, never crosses the wire
                    raise ConnectionError("server closed the connection")
                envelope = decode_frame(line)
                fut = self._waiters.pop(envelope.get("id"), None)
                if fut is not None and not fut.done():
                    fut.set_result(envelope)
        except asyncio.CancelledError:
            # close() cancels this task; CancelledError is a
            # BaseException, so without this clause in-flight waiters
            # would never be failed and their callers would hang
            self._fail_waiters(ConnectionError("connection closed locally"))
            raise
        except Exception as exc:
            self._fail_waiters(exc)

    def _fail_waiters(self, exc: Exception) -> None:
        # flag first, then fail the waiters: a call() racing this
        # cleanup either registered in time to be failed here, or
        # sees the flag on its post-registration check
        self._dead = exc
        for fut in self._waiters.values():
            if not fut.done():
                fut.set_exception(exc)
                fut.exception()
        self._waiters.clear()

    async def call(self, op: str, **payload: Any) -> dict:
        if self._dead is not None:
            # repro: ignore[contract-sync] — client-side raise: surfaces to the local caller, never crosses the wire
            raise ConnectionError(
                f"connection is closed: {self._dead}"
            ) from self._dead
        rid = next(self._ids)
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._waiters[rid] = fut
        if self._dead is not None and not fut.done():
            # the read loop died between the check above and now: no
            # reader exists to resolve this waiter
            self._waiters.pop(rid, None)
            # repro: ignore[contract-sync] — client-side raise: surfaces to the local caller, never crosses the wire
            raise ConnectionError(
                f"connection is closed: {self._dead}"
            ) from self._dead
        self._writer.write(encode_frame(_traced_request(op, rid, payload)))
        await self._writer.drain()
        envelope = await fut
        return ServiceClient._unwrap(envelope)

    async def ping(self) -> dict:
        return await self.call("ping")

    async def solve(
        self,
        instance: Any,
        *,
        options: SolveOptions | None = None,
        retries: int = WORKER_LOST_RETRIES,
        **fields: Any,
    ) -> RemoteSolveResult:
        """Solve one instance remotely, retrying ``worker-lost``
        answers up to ``retries`` times (see :meth:`ServiceClient
        .solve` — same contract)."""
        payload: dict[str, Any] = {"instance": instance_to_wire(instance)}
        wire_options = options_to_wire(options, **fields)
        if wire_options is not None:
            payload["options"] = wire_options
        attempt = 0
        while True:
            try:
                return RemoteSolveResult.from_wire(
                    await self.call("solve", **payload)
                )
            except RemoteError as exc:
                if exc.code != ErrorCode.WORKER_LOST or attempt >= retries:
                    raise
                attempt += 1
                await asyncio.sleep(0.05 * attempt)

    async def metrics(self, *, format: str = "json") -> dict:
        if format == "json":
            return await self.call("metrics")
        return await self.call("metrics", format=format)

    async def traces(self, count: int | None = None) -> dict:
        if count is None:
            return await self.call("trace")
        return await self.call("trace", count=count)

    async def health(self, *, budget: dict | None = None) -> dict:
        if budget is None:
            return await self.call("health")
        return await self.call("health", budget=budget)

    async def shutdown(self) -> dict:
        return await self.call("shutdown")

    async def close(self) -> None:
        self._pump.cancel()
        try:
            await self._pump
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
