"""The asyncio solve server.

One :class:`SolveServer` owns the whole serving stack on one TCP
endpoint:

* the **protocol** layer (:mod:`repro.service.protocol`) frames and
  validates NDJSON envelopes;
* **admission control** bounds work before it starts: a global cap on
  queued solves plus a per-connection in-flight cap, and anything over
  either limit is answered immediately with the ``overloaded``
  load-shed error instead of silently queueing to time out;
* the **single-flight** layer (:mod:`repro.service.dedup`) collapses
  concurrent identical requests — same instance digest, same canonical
  options — into one engine solve whose result every caller shares;
* the **micro-batcher** (:mod:`repro.service.batching`) coalesces the
  surviving compatible requests into
  :meth:`~repro.engine.batch.BatchSolver.solve_many` calls under a
  latency budget;
* **sessions** (:mod:`repro.service.sessions`) host server-side
  :class:`~repro.dynamic.DynamicInstance` + incremental solvers fed by
  wire mutation records;
* **metrics** (:mod:`repro.service.metrics`) count it all and serve it
  back through the ``metrics`` op.

The engine is shared across every path — by default a serial
:class:`BatchSolver` on the process-wide result cache, so warm-path
requests are answered from the same content-addressed
:class:`~repro.engine.cache.ResultCache` (and the kernels' digest-keyed
compile cache) that in-process ``solve()`` calls feed, and repeated
instances never recompile.  Solves run in executor threads; the event
loop only parses, routes and frames.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time
from dataclasses import dataclass, field
from functools import partial
from typing import Any

from ..api.options import SolveOptions
from ..api.result import SolveResult
from ..core.hypergraph import TaskHypergraph
from ..engine.batch import BatchSolver
from ..engine.cache import instance_digest
from ..obs.health import HealthBudget, score_fleet
from ..obs.trace import (
    RECORDER,
    attached,
    carry,
    collecting,
    disable_tracing,
    enable_tracing,
    measured_span,
    shippable,
    span,
    tracing_enabled,
)
from .batching import MicroBatcher
from .dedup import SingleFlight
from .metrics import Metrics
from .protocol import (
    MAX_FRAME_BYTES,
    ErrorCode,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_code_for,
    error_response,
    ok_response,
    validate_request,
)
from .sessions import SessionManager
from .wire import (
    hypergraph_from_descriptor,
    hypergraph_from_wire,
    is_descriptor,
)

__all__ = ["SolveServer"]

#: Ops that represent real solving work and therefore pass admission
#: control (``ping``/``metrics``/``session.close`` stay answerable even
#: on a saturated server — you can always ask it how it is doing).
_ADMITTED_OPS = ("solve", "session.open", "session.mutate")


@dataclass(eq=False)  # identity semantics: conns live in a set
class _Conn:
    """Per-connection state."""

    id: int
    writer: asyncio.StreamWriter
    write_lock: asyncio.Lock = field(default_factory=asyncio.Lock)
    inflight: int = 0
    tasks: set = field(default_factory=set)


class _SolveTicket:
    """One admitted solve's slot in the expected-arrivals count.

    Consumed exactly once — normally by :meth:`SolveServer._op_solve`
    the moment the request reaches the batching layer (or proves to be
    a dedup follower), and as a fallback by the task's done-callback if
    the handler was cancelled or failed before ever getting there."""

    __slots__ = ("consumed",)

    def __init__(self) -> None:
        self.consumed = False


class SolveServer:
    """A long-lived NDJSON-over-TCP solve service.

    Parameters
    ----------
    host, port:
        Bind address; port ``0`` picks an ephemeral port (read it back
        from :attr:`port` after :meth:`start`).
    engine:
        The :class:`BatchSolver` behind every solve.  Defaults to a
        serial engine on the process-wide shared result cache — solves
        then run one at a time inside executor threads, where the
        kernels' compile cache and the result cache stay warm.
    max_batch, max_delay_s:
        Micro-batcher knobs (see :class:`MicroBatcher`).
    max_pending:
        Global admission cap: solving-class requests in flight across
        all connections.
    per_conn_inflight:
        Per-connection in-flight cap for solving-class requests.
    max_sessions:
        Cap on concurrently hosted dynamic sessions.
    allow_shutdown:
        Honor the ``shutdown`` op (tests, benches and supervised
        deployments); off by default.
    accept_shm_instances:
        Accept ``solve`` instances as shared-memory descriptors
        (:mod:`repro.engine.transport`) and attach them zero-copy.
        Only the sharded front-end's workers turn this on — a public
        endpoint must not let clients name arbitrary segments.
    tracing:
        Enable cross-layer span tracing for the server's lifetime
        (on by default — span cost is negligible next to wire I/O, and
        the flight recorder is the whole point of running a server you
        can ask "why was that solve slow?").
    trace_threshold_s, trace_keep:
        Flight-recorder knobs: completed traces whose root span lasted
        at least ``trace_threshold_s`` are retained, newest
        ``trace_keep`` of them, served by the ``trace`` op.
    """

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        engine: BatchSolver | None = None,
        max_batch: int = 64,
        max_delay_s: float = 0.002,
        max_pending: int = 1024,
        per_conn_inflight: int = 256,
        max_sessions: int = 64,
        allow_shutdown: bool = False,
        accept_shm_instances: bool = False,
        tracing: bool = True,
        trace_threshold_s: float = 0.05,
        trace_keep: int = 32,
    ):
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        if per_conn_inflight < 1:
            raise ValueError("per_conn_inflight must be at least 1")
        self.host = host
        self.port = port
        self.engine = (
            engine
            if engine is not None
            else BatchSolver(max_workers=1, executor="serial", cache=True)
        )
        self.metrics = Metrics()
        self.batcher = MicroBatcher(
            self.engine,
            max_batch=max_batch,
            max_delay_s=max_delay_s,
            metrics=self.metrics,
            pending_fn=lambda: self._solve_expected,
        )
        self.flight = SingleFlight()
        self.sessions = SessionManager(max_sessions=max_sessions)
        self.max_pending = int(max_pending)
        self.per_conn_inflight = int(per_conn_inflight)
        self.allow_shutdown = bool(allow_shutdown)
        self.accept_shm_instances = bool(accept_shm_instances)
        self.tracing = bool(tracing)
        self.trace_threshold_s = float(trace_threshold_s)
        self.trace_keep = int(trace_keep)
        self._trace_prev: bool | None = None
        self._pending = 0
        #: admitted solve requests that have not yet reached the
        #: batcher (nor been exempted as dedup followers) — the
        #: batcher's early-flush signal
        self._solve_expected = 0
        self._conn_ids = itertools.count(1)
        self._conns: set[_Conn] = set()
        self._started_monotonic: float | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stop_task: asyncio.Task | None = None
        self._stopping = asyncio.Event()
        # normalizing SolveOptions walks the registry; requests in one
        # workload overwhelmingly repeat a handful of option dicts, so
        # memoize wire dict -> (normalized options, cache token)
        self._options_memo: dict[str, tuple[SolveOptions, tuple]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting connections."""
        if self.tracing:
            self._trace_prev = tracing_enabled()
            RECORDER.configure(
                threshold_s=self.trace_threshold_s, keep=self.trace_keep
            )
            enable_tracing()
        self._server = await asyncio.start_server(
            self._serve_connection,
            host=self.host,
            port=self.port,
            limit=MAX_FRAME_BYTES,
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started_monotonic = time.monotonic()

    async def serve_forever(self) -> None:
        """:meth:`start` (when needed) and run until :meth:`stop`."""
        if self._server is None:
            await self.start()
        await self._stopping.wait()

    async def stop(self, *, drain_s: float = 5.0) -> None:
        """Stop accepting, drain in-flight handlers, release sessions.

        Drain is **bounded**: in-flight handler tasks get up to
        ``drain_s`` to finish (their responses still go out), then the
        stragglers are cancelled and awaited — no handler task survives
        ``stop()``, so nothing keeps mutating ``_pending`` or session
        state after it returns.

        Lingering connections are then closed outright rather than
        awaited: on Python >= 3.12.1 ``Server.wait_closed`` blocks
        until every client disconnects, which would let one idle client
        hold shutdown hostage."""
        if self._server is not None:
            self._server.close()
            self._server = None
        # resolve queued batch futures first: most handlers are blocked
        # exactly there, and flushing lets them finish inside the drain
        # window instead of being cancelled mid-solve
        await self.batcher.flush_all()
        tasks = {t for conn in list(self._conns) for t in conn.tasks}
        tasks.discard(asyncio.current_task())
        if tasks:
            done, pending = await asyncio.wait(tasks, timeout=drain_s)
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
        # a drained handler may have enqueued new batch work (admitted
        # before the listener closed): flush again so nothing dangles
        await self.batcher.flush_all()
        for conn in list(self._conns):
            conn.writer.close()
        if self.tracing and self._trace_prev is not None:
            if not self._trace_prev:
                disable_tracing()
            self._trace_prev = None
        self._stopping.set()

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        conn = _Conn(id=next(self._conn_ids), writer=writer)
        self._conns.add(conn)
        self.metrics.incr("connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # an overlong line cannot be re-synchronised: report
                    # and drop the connection
                    await self._send(
                        conn,
                        error_response(
                            None,
                            ErrorCode.FRAME_TOO_LARGE,
                            f"frame exceeds {MAX_FRAME_BYTES} bytes",
                        ),
                    )
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                await self._dispatch_frame(conn, line)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._conns.discard(conn)
            for task in list(conn.tasks):
                task.cancel()
            try:
                await self._reclaim_conn(conn)
            except asyncio.CancelledError:
                # loop teardown (asyncio.run cancelling leftovers)
                # caught us mid-reclaim: the sessions die with the
                # process, and finishing normally keeps the streams
                # done-callback from logging a spurious CancelledError
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _reclaim_conn(self, conn: _Conn) -> None:
        """Release everything a dropped connection owned.

        Runs in the executor: ``close_owned`` takes each session's lock
        to serialise against an in-flight ``mutate`` batch, and that
        wait must never stall the event loop."""
        closed = await asyncio.get_running_loop().run_in_executor(
            None, partial(self.sessions.close_owned, conn.id)
        )
        if closed:
            self.metrics.incr("sessions_reclaimed", closed)

    async def _dispatch_frame(self, conn: _Conn, line: bytes) -> None:
        req_id: Any = None
        trace_ctx = None
        try:
            obj = decode_frame(line)
            req_id = obj.get("id")
            trace_ctx = obj.get("trace")
            op, req_id, payload = validate_request(obj)
        except ProtocolError as exc:
            self.metrics.incr("requests")
            self.metrics.incr(f"errors.{exc.code}")
            await self._send(
                conn, error_response(req_id, exc.code, str(exc))
            )
            return
        self.metrics.incr("requests")
        self.metrics.incr(f"requests.{op}")
        admitted = op in _ADMITTED_OPS
        if admitted and (
            self._pending >= self.max_pending
            or conn.inflight >= self.per_conn_inflight
        ):
            self.metrics.incr("load_shed")
            self.metrics.incr(f"errors.{ErrorCode.OVERLOADED}")
            # a shed request still leaves a (tiny) trace: "the server
            # turned me away" is exactly what a latency investigation
            # wants to see in the timeline
            with attached(trace_ctx):
                with span("service.shed", local_root=True) as sp:
                    if sp.recording:
                        sp.set(op=op)
                    await self._send(
                        conn,
                        error_response(
                            req_id,
                            ErrorCode.OVERLOADED,
                            f"server over capacity ({self._pending} "
                            f"pending, {conn.inflight} on this "
                            f"connection); retry later",
                        ),
                    )
            return
        ticket: _SolveTicket | None = None
        if admitted:
            # account at admission time, not inside the handler task:
            # a burst must not slip past the cap while tasks spin up
            self._pending += 1
            conn.inflight += 1
            if op == "solve":
                self._solve_expected += 1
                ticket = _SolveTicket()
        task = asyncio.get_running_loop().create_task(
            self._handle(conn, op, req_id, payload, ticket, trace_ctx)
        )
        conn.tasks.add(task)

        def _release(t, conn=conn, admitted=admitted, ticket=ticket):
            # done-callbacks run even for tasks cancelled before their
            # first step, so admission accounting can never leak the
            # way a `finally` inside the (never-started) coroutine would
            conn.tasks.discard(t)
            if admitted:
                self._pending -= 1
                conn.inflight -= 1
            self._consume(ticket)

        task.add_done_callback(_release)

    def _consume(self, ticket: _SolveTicket | None) -> None:
        """Retire a solve's expected-arrivals slot (idempotent)."""
        if ticket is not None and not ticket.consumed:
            ticket.consumed = True
            self._solve_expected -= 1

    async def _send(self, conn: _Conn, envelope: dict) -> None:
        frame = encode_frame(envelope)
        async with conn.write_lock:
            conn.writer.write(frame)
            try:
                await conn.writer.drain()
            except (ConnectionResetError, BrokenPipeError):
                pass

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def _handle(
        self,
        conn: _Conn,
        op: str,
        req_id: Any,
        payload: dict,
        ticket: _SolveTicket | None,
        trace_ctx: dict | None = None,
    ) -> None:
        # ``local_root``: the client's envelope may name a remote
        # parent span, but *this* span is the one that completes the
        # trace in the server's recorder — the remote root never
        # reports here.  When the envelope carried a trace context the
        # request's spans divert into ``shipped`` instead and ride back
        # on the response (success or error — a traced client wants the
        # failed hop most of all), so the caller can stitch one tree
        # across the hop.
        with attached(trace_ctx):
            with collecting(trace_ctx) as shipped:
                with span("service.request", local_root=True) as sp:
                    if sp.recording:
                        sp.set(op=op, conn=conn.id)
                    try:
                        result = await self._execute(
                            conn, op, payload, ticket
                        )
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:
                        code = error_code_for(exc)
                        self.metrics.incr(f"errors.{code}")
                        envelope = error_response(req_id, code, str(exc))
                    else:
                        envelope = ok_response(req_id, result)
            if shipped:
                envelope["spans"] = shippable(shipped)
            await self._send(conn, envelope)

    async def _execute(
        self,
        conn: _Conn,
        op: str,
        payload: dict,
        ticket: _SolveTicket | None = None,
    ) -> dict:
        if op == "ping":
            return {
                "pong": True,
                "server": {
                    "max_batch": self.batcher.max_batch,
                    "max_delay_s": self.batcher.max_delay_s,
                    "max_pending": self.max_pending,
                    "per_conn_inflight": self.per_conn_inflight,
                    "max_sessions": self.sessions.max_sessions,
                },
            }
        if op == "solve":
            return await self._op_solve(payload, ticket)
        if op == "session.open":
            return await asyncio.get_running_loop().run_in_executor(
                None, partial(self.sessions.open, payload, owner=conn.id)
            )
        if op == "session.mutate":
            return await asyncio.get_running_loop().run_in_executor(
                None,
                partial(
                    self.sessions.mutate,
                    payload.get("session"),
                    payload.get("mutations", []),
                    owner=conn.id,
                    include_assignment=bool(
                        payload.get("include_assignment", False)
                    ),
                ),
            )
        if op == "session.close":
            return await asyncio.get_running_loop().run_in_executor(
                None,
                partial(
                    self.sessions.close,
                    payload.get("session"),
                    owner=conn.id,
                ),
            )
        if op == "metrics":
            return self._op_metrics(payload)
        if op == "trace":
            return self._op_trace(payload)
        if op == "health":
            return await self._op_health(payload)
        if op == "shutdown":
            if not self.allow_shutdown:
                raise ProtocolError(
                    "shutdown is disabled on this server",
                    code=ErrorCode.BAD_REQUEST,
                )
            # keep a strong reference: an unreferenced task may be
            # garbage-collected mid-await and shutdown would never land
            self._stop_task = asyncio.get_running_loop().create_task(
                self.stop()
            )
            return {"stopping": True}
        raise ProtocolError(  # pragma: no cover - validate_request guards
            f"unknown op {op!r}", code=ErrorCode.UNKNOWN_OP
        )

    # -- solve -----------------------------------------------------------
    async def _op_solve(
        self, payload: dict, ticket: _SolveTicket | None
    ) -> dict:
        # ``measured_span`` always times — its duration feeds the
        # latency histogram whether or not tracing is enabled
        with measured_span("service.op.solve") as op_sp:
            # parse off-loop: deserializing a multi-MB instance builds
            # numpy arrays and would stall every other connection.  It
            # must also happen *before* the ticket is consumed — the
            # request still counts toward the batcher's
            # expected-arrivals signal while it awaits the executor.
            hg = await asyncio.get_running_loop().run_in_executor(
                None,
                carry(
                    partial(self._parse_instance, payload.get("instance"))
                ),
            )
            # this request has arrived at the solving layer: it no
            # longer counts toward the batcher's expected-arrivals
            # signal (there are no awaits between here and its enqueue
            # below, so the window where it is counted nowhere cannot
            # be observed)
            self._consume(ticket)
            normalized, token = self._normalized_options(
                payload.get("options")
            )
            key = (instance_digest(hg), *token)
            if key in self.flight:
                # a follower never enqueues: its exit from the expected
                # count may have just made the queued requests provably
                # alone, which only the batcher can act on
                self.batcher.maybe_flush()
            wire, shared = await self.flight.run(
                key, lambda: self._solve_batched(hg, normalized, token)
            )
            if shared:
                self.metrics.incr("dedup_followers")
            elif wire["cache_hit"]:
                self.metrics.incr("cache_hits")
            if op_sp.recording:
                op_sp.set(deduped=shared, cache_hit=wire["cache_hit"])
        self.metrics.observe_latency(op_sp.duration_s)
        result = dict(wire)
        result["deduped"] = shared
        return result

    async def _solve_batched(
        self, hg: TaskHypergraph, options: SolveOptions, token: tuple
    ) -> dict:
        result = await self.batcher.solve(hg, options, token)
        return self._solve_wire(result)

    @staticmethod
    def _solve_wire(result: SolveResult) -> dict:
        method = result.options.method
        return {
            "assignment": result.matching.hedge_of_task.tolist(),
            "makespan": float(result.makespan),
            "winner": result.winner,
            "method": (
                method if isinstance(method, str) else method.canonical()
            ),
            "cache_hit": bool(result.cache_hit),
            "wall_time_s": float(result.wall_time_s),
            "stats": dict(result.stats),
        }

    def _parse_instance(self, data: Any) -> TaskHypergraph:
        if is_descriptor(data):
            # shard workers attach the front-end's shared-memory export
            # zero-copy; every other endpoint rejects descriptors — an
            # external client must not get to name arbitrary segments
            if not self.accept_shm_instances:
                raise ProtocolError(
                    "shared-memory instance descriptors are not "
                    "accepted on this endpoint",
                    code=ErrorCode.BAD_REQUEST,
                )
            return hypergraph_from_descriptor(data)
        return hypergraph_from_wire(data)

    _OPTION_FIELDS = (
        "method", "refine", "seed", "portfolio", "time_budget", "backend",
    )

    def _normalized_options(
        self, data: Any
    ) -> tuple[SolveOptions, tuple]:
        """Parse + normalize a wire options dict, memoized.

        Normalization resolves the method expression against the
        registry — measurable per-request work that a burst repeats
        with the very same dict, so the memo is a large slice of the
        warm path's overhead budget."""
        try:
            memo_key = json.dumps(data, sort_keys=True)
        except (TypeError, ValueError):
            memo_key = None
        if memo_key is not None:
            hit = self._options_memo.get(memo_key)
            if hit is not None:
                return hit
        options = self._parse_options(data)
        normalized = options.normalized()
        token = normalized.cache_token()
        if memo_key is not None:
            if len(self._options_memo) >= 1024:
                self._options_memo.clear()
            self._options_memo[memo_key] = (normalized, token)
        return normalized, token

    def _parse_options(self, data: Any) -> SolveOptions:
        if data is None:
            return self.engine.defaults
        if not isinstance(data, dict):
            raise ProtocolError(
                "'options' must be an object of SolveOptions fields",
                code=ErrorCode.BAD_REQUEST,
            )
        unknown = sorted(set(data) - set(self._OPTION_FIELDS))
        if unknown:
            raise ProtocolError(
                f"unknown options field(s) {unknown}; known: "
                f"{list(self._OPTION_FIELDS)}",
                code=ErrorCode.BAD_REQUEST,
            )
        fields = dict(data)
        if "portfolio" in fields and fields["portfolio"] is not None:
            if not isinstance(fields["portfolio"], list):
                raise ProtocolError(
                    "'portfolio' must be a list of method strings",
                    code=ErrorCode.BAD_REQUEST,
                )
            fields["portfolio"] = tuple(fields["portfolio"])
        return SolveOptions(**fields)

    # -- observability ---------------------------------------------------
    def _op_trace(self, payload: dict) -> dict:
        """The ``trace`` op: the flight recorder's retained slow traces."""
        count = payload.get("count")
        if count is not None and (
            isinstance(count, bool) or not isinstance(count, int)
        ):
            raise ProtocolError(
                "'count' must be an integer",
                code=ErrorCode.BAD_REQUEST,
            )
        return {
            "enabled": tracing_enabled(),
            "threshold_s": RECORDER.threshold_s,
            "keep": RECORDER.keep,
            "traces": RECORDER.flight(count),
        }

    def _op_metrics(self, payload: dict | None = None) -> dict:
        fmt = (payload or {}).get("format", "json")
        if fmt == "prometheus":
            return {"text": self.metrics.prometheus_text()}
        if fmt != "json":
            raise ProtocolError(
                f"unknown metrics format {fmt!r}; "
                "known: 'json', 'prometheus'",
                code=ErrorCode.BAD_REQUEST,
            )
        snap = self.metrics.snapshot()
        snap["dedup"] = {
            "leaders": self.flight.leaders,
            "followers": self.flight.followers,
            "inflight": len(self.flight),
        }
        snap["engine_cache"] = (
            self.engine.cache.stats()
            if self.engine.cache is not None
            else None
        )
        snap["sessions"] = {"open": len(self.sessions)}
        snap["pending"] = self._pending
        snap["uptime_s"] = self.uptime_s
        return snap

    @property
    def uptime_s(self) -> float:
        """Seconds since :meth:`start` bound the listener (0 before)."""
        if self._started_monotonic is None:
            return 0.0
        return time.monotonic() - self._started_monotonic

    def _health_budget(self, payload: dict) -> HealthBudget:
        try:
            return HealthBudget.from_wire(payload.get("budget"))
        except ValueError as exc:
            raise ProtocolError(str(exc), code=ErrorCode.BAD_REQUEST)

    async def _op_health(self, payload: dict) -> dict:
        """The ``health`` op: single-server subset of the fleet checks
        (the sharded front-end overrides this with the full set)."""
        budget = self._health_budget(payload)
        verdict = score_fleet(
            {
                "requests": self.metrics.counter("requests"),
                "load_shed": self.metrics.counter("load_shed"),
                "latency_p99_s": self.metrics.request_latency_s.quantile(
                    0.99
                ),
                "uptime_s": self.uptime_s,
            },
            budget,
        )
        verdict["uptime_s"] = self.uptime_s
        return verdict
