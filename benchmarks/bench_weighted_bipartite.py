"""Extension experiment: weighted SINGLEPROC — heuristics vs the
2-approximation.

The paper evaluates only unit bipartite instances (the weighted problem
is NP-complete).  This bench covers the weighted side the library adds:
random-weight FewgManyg bipartite instances, comparing the greedy
heuristics against the certified LST 2-approximation and the averaged-
work lower bound.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    basic_greedy,
    expected_greedy,
    lst_approximation,
    sorted_greedy,
)
from repro.algorithms.lower_bounds import averaged_work_bound_bipartite
from repro.generators import fewgmanyg_bipartite


@pytest.fixture(scope="module")
def weighted_graph():
    g = fewgmanyg_bipartite(640, 128, 16, 10, seed=0)
    rng = np.random.default_rng(1)
    return g.with_weights(
        rng.integers(1, 20, size=g.n_edges).astype(float)
    )


@pytest.mark.parametrize(
    "algo",
    [basic_greedy, sorted_greedy, expected_greedy],
    ids=lambda f: f.__name__,
)
def test_weighted_greedy(benchmark, weighted_graph, algo):
    m = benchmark(algo, weighted_graph)
    lb = averaged_work_bound_bipartite(weighted_graph, integral=False)
    benchmark.extra_info["quality_vs_lb"] = round(m.makespan / lb, 3)
    assert m.makespan >= lb


def test_lst_two_approximation(benchmark, weighted_graph):
    rep = benchmark.pedantic(
        lst_approximation, args=(weighted_graph,), rounds=1, iterations=1
    )
    lb = averaged_work_bound_bipartite(weighted_graph, integral=False)
    benchmark.extra_info.update(
        {
            "quality_vs_lb": round(rep.matching.makespan / lb, 3),
            "certified_threshold": round(rep.threshold, 2),
            "certified_ratio": round(rep.certified_ratio, 3),
            "lp_rounds": rep.lp_rounds,
        }
    )
    # the certificate: makespan within 2x of the LP threshold <= OPT
    assert rep.matching.makespan <= 2 * rep.threshold + 1e-6


def test_greedy_vs_lst_quality(benchmark, weighted_graph):
    """How close do the O(E) greedies get to the LP-based guarantee?"""

    def both():
        return (
            expected_greedy(weighted_graph).makespan,
            sorted_greedy(weighted_graph).makespan,
        )

    mk_exp, mk_sorted = benchmark(both)
    benchmark.extra_info.update(
        {"expected": mk_exp, "sorted": mk_sorted}
    )
    assert mk_exp > 0 and mk_sorted > 0
