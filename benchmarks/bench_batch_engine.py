"""Batch engine throughput: sequential loop vs pooled vs cached sweeps.

Three scenarios over the same >=32-instance workload (the Table I small
rows, several seeds each):

* ``sequential_loop`` — the seed's one-at-a-time baseline;
* ``batch_pool`` — :class:`repro.engine.BatchSolver` on a process pool
  with chunked distribution (real parallelism scales with the core
  count of the machine);
* ``resweep_cached`` — a second pass over a workload the engine has
  already seen: the content-addressed result cache answers without
  recomputing (this is the Table I–III harness / ``experiments.sweep``
  pattern, and is where the engine's throughput win is hardware-
  independent).

``test_throughput_gain`` asserts the engine's >1.5x gain over the
sequential loop: on the cached-resweep path unconditionally, and on the
pool path whenever the machine has >=2 usable cores.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.engine import BatchSolver, ResultCache, solve_hypergraph

from conftest import cached_instance

N_INSTANCES = 32
_NAMES = ("FG-5-1-MP", "MG-5-1-MP", "HLF-5-1-MP", "HLM-5-1-MP")


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def workload():
    """>=32 distinct instances: 4 small families x 8 seeds."""
    return [
        cached_instance(name, "unit", seed)
        for name in _NAMES
        for seed in range(N_INSTANCES // len(_NAMES))
    ]


def _sequential(hgs):
    return [solve_hypergraph(hg, method="EVG") for hg in hgs]


def test_sequential_loop(benchmark):
    hgs = workload()
    out = benchmark.pedantic(_sequential, args=(hgs,), rounds=1, iterations=1)
    benchmark.extra_info["instances"] = len(hgs)
    assert len(out) == len(hgs)


def test_batch_pool(benchmark):
    hgs = workload()
    engine = BatchSolver(executor="process", cache=False)
    out = benchmark.pedantic(
        engine.solve_many, args=(hgs,), kwargs={"method": "EVG"},
        rounds=1, iterations=1,
    )
    benchmark.extra_info.update(
        {"instances": len(hgs), "workers": engine.max_workers}
    )
    assert [m.makespan for m in out] == [m.makespan for m in _sequential(hgs)]


def test_resweep_cached(benchmark):
    hgs = workload()
    engine = BatchSolver(max_workers=1, cache=ResultCache())
    engine.solve_many(hgs, method="EVG")  # cold pass fills the cache
    out = benchmark.pedantic(
        engine.solve_many, args=(hgs,), kwargs={"method": "EVG"},
        rounds=1, iterations=1,
    )
    benchmark.extra_info["cache"] = engine.cache.stats()
    assert engine.cache.hits == len(hgs)
    assert len(out) == len(hgs)


def test_throughput_gain():
    """The engine beats the sequential loop by >1.5x on >=32 instances."""
    hgs = workload()
    assert len(hgs) >= 32

    t0 = time.perf_counter()
    reference = _sequential(hgs)
    t_seq = time.perf_counter() - t0

    # cached re-sweep: >1.5x on any hardware (it is nearly free)
    engine = BatchSolver(max_workers=1, cache=ResultCache())
    warm = engine.solve_many(hgs, method="EVG")
    t0 = time.perf_counter()
    cached = engine.solve_many(hgs, method="EVG")
    t_cached = time.perf_counter() - t0
    assert [m.makespan for m in warm] == [m.makespan for m in reference]
    assert [m.makespan for m in cached] == [m.makespan for m in reference]
    assert t_seq > 1.5 * t_cached, (t_seq, t_cached)

    # process pool: real parallel speedup needs real cores
    if _cpus() >= 2:
        with BatchSolver(executor="process", cache=False) as pool:
            pool.solve_many(hgs[:1], method="EVG")  # warm the pool up
            t0 = time.perf_counter()
            pooled = pool.solve_many(hgs, method="EVG")
            t_pool = time.perf_counter() - t0
        assert [m.makespan for m in pooled] == [
            m.makespan for m in reference
        ]
        print(f"pool speedup over sequential: {t_seq / t_pool:.2f}x "
              f"on {_cpus()} cores")
        if _cpus() >= 4:
            # below 4 cores, pool overhead can eat the 1.5x margin on
            # this small workload — report instead of asserting
            assert t_seq > 1.5 * t_pool, (t_seq, t_pool)
    else:
        pytest.skip(
            f"only {_cpus()} usable core(s): pool speedup not measurable; "
            "cached-resweep gain asserted above"
        )
