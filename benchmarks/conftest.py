"""Shared benchmark configuration.

Environment knobs (so the same files serve smoke runs and full paper
reproductions):

* ``SEMIMATCH_BENCH_SCALE`` — ``small`` (default; the n=1280 Table I rows),
  ``medium`` (n <= 5120) or ``full`` (all 24 families);
* ``SEMIMATCH_BENCH_SEEDS`` — random instances per family (default 3;
  paper protocol is 10).

Quality numbers (makespan / LB and the paper's printed value) are attached
to each benchmark via ``extra_info``, so ``--benchmark-json`` output
carries the full paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.experiments.instances import (
    MEDIUM_SPECS,
    SMALL_SPECS,
    TABLE1_SPECS,
    InstanceSpec,
)

SCALE = os.environ.get("SEMIMATCH_BENCH_SCALE", "small")
SEEDS = int(os.environ.get("SEMIMATCH_BENCH_SEEDS", "3"))

_SPECS = {
    "small": SMALL_SPECS,
    "medium": MEDIUM_SPECS,
    "full": TABLE1_SPECS,
}[SCALE]


def bench_specs() -> tuple[InstanceSpec, ...]:
    """The Table I rows selected by ``SEMIMATCH_BENCH_SCALE``."""
    return _SPECS


@lru_cache(maxsize=None)
def cached_instance(name: str, weights: str, seed: int):
    """Generate (once) a named instance under a weight scheme."""
    from repro.experiments.instances import spec_by_name

    spec = spec_by_name(name).with_weights(weights)
    return spec.generate(seed)


@lru_cache(maxsize=None)
def cached_lower_bound(name: str, weights: str, seed: int) -> float:
    from repro.algorithms import averaged_work_bound

    return averaged_work_bound(cached_instance(name, weights, seed))


@pytest.fixture(scope="session")
def seeds() -> range:
    return range(SEEDS)
