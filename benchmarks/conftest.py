"""Shared benchmark configuration.

Environment knobs (so the same files serve smoke runs and full paper
reproductions):

* ``SEMIMATCH_BENCH_SCALE`` — ``small`` (default; the n=1280 Table I rows),
  ``medium`` (n <= 5120) or ``full`` (all 24 families);
* ``SEMIMATCH_BENCH_SEEDS`` — random instances per family (default 3;
  paper protocol is 10).

One pytest option, ``--bench-seed`` (default 0), is the single root
every benchmark's instance seeds derive from: the ``seeds`` fixture
yields ``range(bench_seed, bench_seed + SEEDS)`` and per-test instance
generation offsets from it, so BENCH json numbers are reproducible
run-to-run (and shiftable deliberately, never accidentally).

Quality numbers (makespan / LB and the paper's printed value) are attached
to each benchmark via ``extra_info``, so ``--benchmark-json`` output
carries the full paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from functools import lru_cache

import pytest

from repro.experiments.instances import (
    MEDIUM_SPECS,
    SMALL_SPECS,
    TABLE1_SPECS,
    InstanceSpec,
)

SCALE = os.environ.get("SEMIMATCH_BENCH_SCALE", "small")
SEEDS = int(os.environ.get("SEMIMATCH_BENCH_SEEDS", "3"))

_SPECS = {
    "small": SMALL_SPECS,
    "medium": MEDIUM_SPECS,
    "full": TABLE1_SPECS,
}[SCALE]


def bench_specs() -> tuple[InstanceSpec, ...]:
    """The Table I rows selected by ``SEMIMATCH_BENCH_SCALE``."""
    return _SPECS


@lru_cache(maxsize=None)
def cached_instance(name: str, weights: str, seed: int):
    """Generate (once) a named instance under a weight scheme."""
    from repro.experiments.instances import spec_by_name

    spec = spec_by_name(name).with_weights(weights)
    return spec.generate(seed)


@lru_cache(maxsize=None)
def cached_lower_bound(name: str, weights: str, seed: int) -> float:
    from repro.algorithms import averaged_work_bound

    return averaged_work_bound(cached_instance(name, weights, seed))


def pytest_addoption(parser):
    parser.addoption(
        "--bench-seed",
        type=int,
        default=0,
        help="root seed every benchmark instance derives from "
        "(default 0; fixed so BENCH json numbers reproduce)",
    )


@pytest.fixture(scope="session")
def bench_seed(request) -> int:
    """The run's root seed (``--bench-seed``)."""
    return request.config.getoption("--bench-seed")


@pytest.fixture(scope="session")
def seeds(bench_seed) -> range:
    return range(bench_seed, bench_seed + SEEDS)
