"""Experiment ``fig3``: the worst-case families of Figures 1 and 3.

Regenerates the paper's analytical results as measurements: on the
factor-``k`` family, basic- and sorted-greedy really produce makespan
``k`` while the exact algorithm (and expected-greedy's foolers'
counterparts) certify the optimum of 1 — the gap grows without bound.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    basic_greedy,
    double_sorted,
    exact_singleproc_unit,
    expected_greedy,
    harvey_optimal_semi_matching,
    sorted_greedy,
)
from repro.generators import (
    double_sorted_fooler,
    expected_greedy_fooler,
    fig1_toy,
    fig3_family,
)


@pytest.mark.parametrize("k", [2, 4, 6, 8, 10])
def test_fig3_greedy_gap(benchmark, k):
    graph = fig3_family(k)

    matching = benchmark(sorted_greedy, graph)

    opt = exact_singleproc_unit(graph).optimal_makespan
    benchmark.extra_info.update(
        {
            "k": k,
            "greedy_makespan": matching.makespan,
            "optimal_makespan": opt,
            "gap_factor": matching.makespan / opt,
        }
    )
    assert matching.makespan == float(k)
    assert opt == 1


@pytest.mark.parametrize("k", [2, 4, 6, 8, 10])
def test_fig3_exact_cost(benchmark, k):
    """Cost of certifying optimality on the adversarial family."""
    graph = fig3_family(k)
    rep = benchmark(exact_singleproc_unit, graph)
    assert rep.optimal_makespan == 1


@pytest.mark.parametrize("k", [4, 8])
def test_fig3_harvey_cost(benchmark, k):
    graph = fig3_family(k)
    m = benchmark(harvey_optimal_semi_matching, graph)
    assert m.makespan == 1.0


def test_fig1_toy_gap(benchmark):
    graph = fig1_toy()
    m = benchmark(basic_greedy, graph)
    assert m.makespan == 2.0
    assert sorted_greedy(graph).makespan == 1.0


def test_double_sorted_fooler(benchmark):
    graph = double_sorted_fooler()
    m = benchmark(double_sorted, graph)
    benchmark.extra_info.update(
        {
            "double_sorted": m.makespan,
            "expected": expected_greedy(graph).makespan,
        }
    )
    assert m.makespan == 3.0
    assert expected_greedy(graph).makespan == 1.0


def test_expected_greedy_fooler(benchmark):
    graph = expected_greedy_fooler()
    m = benchmark(expected_greedy, graph)
    assert m.makespan == 3.0
    assert exact_singleproc_unit(graph).optimal_makespan == 1
