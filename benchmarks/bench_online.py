"""Extension experiment: the price of being online.

The offline greedies see the whole instance and sort tasks by degree; the
online scheduler must place each arriving task irrevocably.  This bench
measures (a) the throughput of the online scheduler and (b) the makespan
penalty relative to offline SGH and the lower bound, for both online
policies, plus the load-oblivious baselines for context.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    OnlineScheduler,
    first_fit,
    min_work,
    random_assignment,
    sorted_greedy_hyp,
)

from conftest import cached_instance, cached_lower_bound


@pytest.mark.parametrize("policy", ["greedy", "vector"])
@pytest.mark.parametrize("weights", ["unit", "related"])
def test_online_policy(benchmark, policy, weights):
    hg = cached_instance("FG-5-1-MP", weights, 0)

    sched = benchmark(
        OnlineScheduler.replay_hypergraph, hg, policy=policy
    )

    lb = cached_lower_bound("FG-5-1-MP", weights, 0)
    offline = sorted_greedy_hyp(hg).makespan
    benchmark.extra_info.update(
        {
            "online_quality": round(sched.makespan / lb, 3),
            "offline_quality": round(offline / lb, 3),
            "price_of_online": round(sched.makespan / offline, 3),
        }
    )
    assert sched.makespan >= lb - 1e-9


@pytest.mark.parametrize(
    "baseline", ["first_fit", "min_work", "random"]
)
def test_baseline_quality(benchmark, baseline):
    """Load-oblivious baselines: the floor the heuristics must beat."""
    hg = cached_instance("FG-5-1-MP", "related", 0)
    fns = {
        "first_fit": first_fit,
        "min_work": min_work,
        "random": lambda h: random_assignment(h, seed=0),
    }

    m = benchmark(fns[baseline], hg)

    lb = cached_lower_bound("FG-5-1-MP", "related", 0)
    sgh = sorted_greedy_hyp(hg).makespan
    benchmark.extra_info.update(
        {
            "baseline_quality": round(m.makespan / lb, 3),
            "SGH_quality": round(sgh / lb, 3),
        }
    )
    # the paper's simplest heuristic clearly beats load-oblivious picks
    assert sgh <= m.makespan
