"""Experiment ``random-weights``: the technical report's robustness check
(its Table 8): rerun the Table III protocol with independent uniform
random hyperedge weights.  The paper states the heuristic ranking is
unchanged and that EVG's advantage grows."""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_registry
from repro.experiments.runner import DEFAULT_ALGOS

from conftest import SEEDS, bench_specs, cached_instance, cached_lower_bound



def _hyp_algo(name):
    """Resolve a MULTIPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="hypergraph").fn


@pytest.mark.parametrize("algo", DEFAULT_ALGOS)
@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_random_weight_quality(benchmark, spec, algo):
    fn = _hyp_algo(algo)
    hg = cached_instance(spec.name, "random", 0)

    matching = benchmark(fn, hg)

    ratios = []
    for s in range(SEEDS):
        inst = cached_instance(spec.name, "random", s)
        lb = cached_lower_bound(spec.name, "random", s)
        ratios.append(fn(inst).makespan / lb)
    benchmark.extra_info["quality_median"] = round(
        float(np.median(ratios)), 3
    )
    assert matching.makespan > 0


@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_ranking_under_random_weights(benchmark, spec):
    """Record the SGH-vs-EVG ranking under random weights.

    Reproduction finding (see EXPERIMENTS.md): the technical report says
    EVG wins clearly on random weights, but with wide uniform weights
    ([1, 100]) the expected strategy's ``o`` values are dominated by
    other tasks' weight noise and EVG falls *behind* SGH on FewgManyg
    instances; the report's ranking re-emerges for narrow ranges
    (e.g. [1, 3]).  We therefore record both medians rather than assert
    the paper's ordering, and only sanity-bound the gap.
    """
    sgh = _hyp_algo("SGH")
    evg = _hyp_algo("EVG")

    def both():
        inst = cached_instance(spec.name, "random", 0)
        return sgh(inst).makespan, evg(inst).makespan

    benchmark(both)
    qs, qe = [], []
    for s in range(SEEDS):
        inst = cached_instance(spec.name, "random", s)
        lb = cached_lower_bound(spec.name, "random", s)
        qs.append(sgh(inst).makespan / lb)
        qe.append(evg(inst).makespan / lb)
    med_s, med_e = float(np.median(qs)), float(np.median(qe))
    benchmark.extra_info.update({"SGH": round(med_s, 3),
                                 "EVG": round(med_e, 3)})
    assert med_e <= 1.5 * med_s  # sanity: same order of magnitude
