"""Experiment ``theorem1``: the X3C reduction in action.

Measures the Theorem 1 pipeline: build the MULTIPROC-UNIT instance from a
planted X3C yes-instance, certify makespan 1 with the exhaustive solver,
and extract the exact cover.  Also measures the greedy heuristics' gap on
reduction instances — they may legitimately return 2 (which is exactly
why no ``(2 - eps)``-approximation can exist)."""

from __future__ import annotations

import pytest

from repro.algorithms import exhaustive_multiproc, sorted_greedy_hyp
from repro.generators import (
    cover_from_matching,
    is_exact_cover,
    planted_x3c,
    x3c_to_multiproc,
)


@pytest.mark.parametrize("q", [3, 5, 7])
def test_reduction_build(benchmark, q):
    inst = planted_x3c(q, extra_triples=2 * q, seed=0)

    hg = benchmark(x3c_to_multiproc, inst)

    assert hg.n_tasks == q
    assert hg.n_procs == 3 * q
    benchmark.extra_info.update(
        {"q": q, "hyperedges": hg.n_hedges, "pins": hg.total_pins}
    )


@pytest.mark.parametrize("q", [3, 4, 5])
def test_solve_planted_cover(benchmark, q):
    inst = planted_x3c(q, extra_triples=q, seed=1)
    hg = x3c_to_multiproc(inst)

    matching = benchmark(exhaustive_multiproc, hg)

    assert matching.makespan == 1.0
    cover = cover_from_matching(inst, matching)
    assert is_exact_cover(inst, cover)


@pytest.mark.parametrize("q", [5, 10, 20])
def test_greedy_on_reduction(benchmark, q):
    """Greedy cost on reduction instances, and the 1-vs-2 gap it may hit."""
    inst = planted_x3c(q, extra_triples=3 * q, seed=2)
    hg = x3c_to_multiproc(inst)

    matching = benchmark(sorted_greedy_hyp, hg)

    benchmark.extra_info["greedy_makespan"] = matching.makespan
    assert 1.0 <= matching.makespan
