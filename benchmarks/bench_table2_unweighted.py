"""Experiment ``table2``: the paper's Table II — SGH/VGH/EGH/EVG quality
(makespan / LB) and running time on *unweighted* Table I instances.

Shape expectations from the paper, asserted loosely here and in full in
EXPERIMENTS.md:

* FewgManyg: VGH gives the best ratios; EVG does not beat VGH; SGH and
  EGH are close;
* HiLo: all four heuristics essentially tie;
* times: SGH and EGH are the fast pair, VGH slower, EVG slowest.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_registry
from repro.experiments.instances import PAPER_TABLE2
from repro.experiments.runner import DEFAULT_ALGOS

from conftest import SEEDS, bench_specs, cached_instance, cached_lower_bound


def _hyp_algo(name):
    """Resolve a MULTIPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="hypergraph").fn


_ALGO_COLUMN = {a: i + 1 for i, a in enumerate(DEFAULT_ALGOS)}


@pytest.mark.parametrize("algo", DEFAULT_ALGOS)
@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_unweighted_quality(benchmark, spec, algo):
    fn = _hyp_algo(algo)
    hg = cached_instance(spec.name, "unit", 0)

    matching = benchmark(fn, hg)

    ratios = []
    for s in range(SEEDS):
        inst = cached_instance(spec.name, "unit", s)
        lb = cached_lower_bound(spec.name, "unit", s)
        ratios.append(fn(inst).makespan / lb)
    measured = float(np.median(ratios))
    paper = PAPER_TABLE2[spec.name]
    benchmark.extra_info.update(
        {
            "quality_median": round(measured, 3),
            "paper_quality": paper[_ALGO_COLUMN[algo]],
            "lower_bound": cached_lower_bound(spec.name, "unit", 0),
            "paper_lb": paper[0],
        }
    )
    assert matching.makespan >= 1.0
    # heuristics stay within a generous factor of the paper's ratio —
    # the instances are fresh samples, not the authors' exact graphs
    assert measured < max(4.0, 2.0 * paper[_ALGO_COLUMN[algo]])
