"""Incremental repair vs from-scratch re-solving on a churn stream.

The dynamic subsystem's headline claim: on a low-churn mutation stream
(every event touches ~1 task of hundreds — well under 1% of the
instance), repairing the maintained assignment is **at least 3x
faster** than re-solving from scratch after every mutation, at an
equal-or-better final bottleneck.

Two contenders over the *same* generated trace
(:func:`repro.generators.churn_trace` on a Table-I-style family):

* ``from_scratch`` — after every mutation, compile the instance and run
  the registry's ``auto`` solve (the only option the static API
  offers);
* ``incremental`` — one :class:`repro.dynamic.IncrementalSolver`
  follows the instance, repairing locally and falling back to a full
  re-solve only past its displacement threshold.

Run:    PYTHONPATH=src python -m pytest benchmarks/bench_dynamic_churn.py -v
Smoke:  SEMIMATCH_BENCH_SMOKE=1 ... (shorter stream, same assertions —
        this is what CI runs on every push)

No pytest-benchmark dependency: plain perf_counter timing, so the file
runs anywhere the test suite runs.
"""

from __future__ import annotations

import os
import time

from repro.dynamic import DynamicInstance, IncrementalSolver
from repro.engine.dispatch import solve_hypergraph
from repro.generators import churn_trace, generate_multiproc

SMOKE = os.environ.get("SEMIMATCH_BENCH_SMOKE", "0") == "1"

#: Stream length; the instance size stays fixed (the speedup comes from
#: repair touching a region while the baseline re-touches the world, so
#: shrinking the *stream* is what makes smoke mode fast).
N_EVENTS = 30 if SMOKE else 150
N_TASKS, N_PROCS = 640, 128

MIN_SPEEDUP = 3.0


def _workload():
    hg = generate_multiproc(
        N_TASKS, N_PROCS, family="fewgmanyg", g=8, dv=5, dh=10,
        weights="related", seed=0,
    )
    return hg, churn_trace(hg, N_EVENTS, seed=1)


def test_incremental_beats_from_scratch():
    hg, trace = _workload()
    per_event = 1.0 / hg.n_tasks
    assert per_event < 0.01, "stream is not low-churn"

    # -- baseline: per-mutation from-scratch solves (uncached dispatch;
    # patching off so the kernel patcher cannot subsidize the static
    # API's compile cost — that contrast is test_churn_compile's job)
    fresh = DynamicInstance.from_hypergraph(hg, patching=False)
    t0 = time.perf_counter()
    scratch = solve_hypergraph(fresh.to_hypergraph(), method="auto")
    for m in trace:
        fresh.apply(m)
        scratch = solve_hypergraph(fresh.to_hypergraph(), method="auto")
    t_scratch = time.perf_counter() - t0

    # -- incremental: one solver follows the same stream
    inst = DynamicInstance.from_hypergraph(hg)
    t0 = time.perf_counter()
    solver = IncrementalSolver(inst)
    inst.replay(trace)
    bottleneck = solver.bottleneck()
    t_inc = time.perf_counter() - t0

    stats = solver.stats
    speedup = t_scratch / max(t_inc, 1e-9)
    print(
        f"\n{len(trace)} mutations on {hg.n_tasks}x{hg.n_procs}: "
        f"scratch={t_scratch:.3f}s incremental={t_inc:.3f}s "
        f"-> {speedup:.1f}x  "
        f"({stats.local_repairs} local repairs, {stats.fallbacks} "
        f"fallbacks, {stats.ls_moves} moves)"
    )
    print(
        f"final bottleneck: incremental={bottleneck:g} "
        f"scratch={scratch.makespan:g}"
    )

    # identical final content...
    assert fresh.digest() == inst.digest()
    # ...equal-or-better quality (repair starts from a good assignment
    # and polishes the damage; it never has to rediscover the world)...
    assert bottleneck <= scratch.makespan + 1e-9
    # ...and the headline speed claim
    assert speedup >= MIN_SPEEDUP, (
        f"incremental repair only {speedup:.2f}x faster than "
        f"per-mutation re-solving (need >= {MIN_SPEEDUP}x)"
    )


def test_churn_compile_amortizes_patching():
    """``churn_compile`` workload: the *compile* half of the churn
    story.  Driving the same trace through a patching instance and
    emitting kernels after every record must beat per-mutation
    from-scratch compilation well past 2x, while performing exactly one
    full array build (the initial compile — everything after is a
    patch, a delta splice, or a copy-on-write weight emit).

    The hard 10%-of-full-compile marginal-cost bar lives in
    ``bench_scaling.py`` at n>=5120, where full compiles are expensive
    enough to time stably; this n=640 guard is the smoke-sized
    regression tripwire for the same path.
    """
    from repro.kernels import clear_compile_cache

    hg, trace = _workload()

    # -- baseline: recompile from scratch after every mutation (twin
    # with patching disabled so the patcher can't help it)
    off = DynamicInstance.from_hypergraph(hg, patching=False)
    t0 = time.perf_counter()
    for m in trace:
        off.apply(m)
        clear_compile_cache()
        off.compiled_kernels()
    t_full = time.perf_counter() - t0

    # -- patched: one patcher follows the stream, emitting per record
    clear_compile_cache()
    on = DynamicInstance.from_hypergraph(hg)
    on.compiled_kernels()
    t0 = time.perf_counter()
    for m in trace:
        on.apply(m)
        on.compiled_kernels()
    t_patch = time.perf_counter() - t0

    stats = on.compile_stats()
    speedup = t_full / max(t_patch, 1e-9)
    print(
        f"\nchurn_compile {len(trace)} mutations on "
        f"{hg.n_tasks}x{hg.n_procs}: scratch={t_full:.3f}s "
        f"patched={t_patch:.3f}s -> {speedup:.1f}x  "
        f"({stats['emits_delta']} delta, {stats['emits_weight']} weight, "
        f"{stats['emits_full']} full emits, "
        f"{stats['full_builds']} full builds)"
    )

    # bit-identical terminal state (the conformance suite pins this per
    # record; here we just anchor the endpoints agree)
    assert on.digest() == off.digest()
    # one full array build: the initial compile, and nothing since
    assert stats["full_builds"] == 1, stats
    assert stats["compactions"] == 0, stats
    # the stream is structure-dominated, so the delta path must carry it
    assert stats["emits_delta"] >= 0.3 * len(trace), stats
    assert speedup >= 2.0, (
        f"patched compilation only {speedup:.2f}x faster than "
        f"per-mutation recompiles (need >= 2.0x)"
    )


def test_repair_is_dominated_by_local_work():
    """On a low-churn stream the solver must *stay* local: full
    re-solves are the exception, not the steady state."""
    hg, trace = _workload()
    inst = DynamicInstance.from_hypergraph(hg)
    solver = IncrementalSolver(inst)
    inst.replay(trace)
    stats = solver.stats
    assert stats.mutations == len(trace)
    # the initial solve is a full solve; churn must not add many more
    assert stats.fallbacks <= 0.1 * len(trace), stats.as_dict()
    assert stats.local_repairs >= 0.5 * len(trace), stats.as_dict()
