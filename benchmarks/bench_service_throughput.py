"""Service throughput bench: ``BENCH_service.json`` + two hard guards.

Four workloads against a real :class:`repro.service.SolveServer` on a
loopback TCP port (a fresh server — and a fresh private result cache —
per workload, so the numbers never bleed into each other):

* ``serial_cold`` — one blocking request at a time over distinct
  instances: the per-request baseline (closed-loop, so the adaptive
  batcher flushes every request immediately);
* ``batched_cold`` — the same number of distinct instances as one
  pipelined burst: the micro-batcher coalesces them into a few
  ``solve_many`` calls, amortising the per-request overhead;
* ``batched_warm`` — the burst again on the same server: every answer
  comes from the shared ResultCache without recompiling;
* ``dedup_identical`` — an all-duplicates burst of one larger
  instance, cold cache: single-flight collapses N requests into ONE
  engine solve.

Hard assertions (the PR's acceptance numbers, run by CI in ``--smoke``
mode on every push):

* micro-batching: ``batched_cold`` throughput >= ``MIN_BATCHING_GAIN``
  (2x) the serial per-request throughput;
* single-flight: the all-duplicates burst completes at least
  ``MIN_DEDUP_GAIN`` (10x) faster than N serial engine solves of the
  same instance would take (N x a measured single-solve time);
* sharding: 4 supervised workers solve a CPU-bound cold workload at
  least ``MIN_SHARDED_GAIN`` (1.8x) faster than 1 worker.  This guard
  needs real cores — on hosts with fewer than 4 CPUs it is *waived*
  (recorded in the report, never fabricated).

A fifth workload block, ``sharded_sweep``, ramps concurrency
100 → 1000 → 10000 against a 4-worker :class:`ShardedSolveServer` and
records req/s plus per-shard latency at each level.

Run:    PYTHONPATH=src python benchmarks/bench_service_throughput.py
Smoke:  ... bench_service_throughput.py --smoke --out BENCH_service.json
Pytest: PYTHONPATH=src python -m pytest benchmarks/bench_service_throughput.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.engine import ResultCache
from repro.engine.batch import BatchSolver
from repro.generators import generate_multiproc
from repro.service import (
    AsyncServiceClient,
    ServiceClient,
    ShardedSolveServer,
    SolveServer,
)
from repro.service.supervisor import WorkerSpec

MIN_BATCHING_GAIN = 2.0
MIN_DEDUP_GAIN = 10.0
MIN_SHARDED_GAIN = 1.8

#: tiny instances: the per-request overhead the batcher amortises
#: dominates, which is exactly the regime micro-batching exists for
SMALL_TASKS, SMALL_PROCS = 6, 4
#: the dedup workload runs a genuinely expensive solve (multi-start
#: GRASP) on a mid-size instance, so sharing ONE solve across the
#: burst dwarfs the per-request parse cost it cannot share
DEDUP_TASKS, DEDUP_PROCS = 320, 64
DEDUP_METHOD = "grasp"

#: the scaling workload is deliberately CPU-bound (multi-start GRASP on
#: mid-size instances): worker processes can only show a speedup when
#: the solve itself, not the protocol, dominates
SCALE_TASKS, SCALE_PROCS = 96, 16
SCALE_METHOD = "grasp"


class _ServerHarness:
    """One live server on a background event loop (private cache)."""

    def __init__(self, **config):
        config.setdefault(
            "engine",
            BatchSolver(
                max_workers=1, executor="serial", cache=ResultCache()
            ),
        )
        # a throughput bench must not trip admission control: the
        # pipelined bursts intentionally exceed the serving defaults
        config.setdefault("max_pending", 4096)
        config.setdefault("per_conn_inflight", 4096)
        self.server = SolveServer(port=0, allow_shutdown=True, **config)
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(10):
            raise RuntimeError("service failed to start")

    def __enter__(self) -> "_ServerHarness":
        return self

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(10)
        self.loop.close()


class _ShardedHarness:
    """A live 4-ish-worker sharded server on a background loop."""

    def __init__(self, n_workers: int, **config):
        inflight = config.pop("per_conn_inflight", 16384)
        config.setdefault("max_pending", 16384)
        # the front-end holds ONE connection per worker, so the
        # worker-side per-connection cap must admit the whole burst
        spec = WorkerSpec(
            max_pending=config["max_pending"],
            per_conn_inflight=inflight,
        )
        self.server = ShardedSolveServer(
            n_workers=n_workers,
            worker_spec=spec,
            port=0,
            allow_shutdown=True,
            per_conn_inflight=inflight,
            **config,
        )
        self.loop = asyncio.new_event_loop()
        started = threading.Event()

        def run() -> None:
            asyncio.set_event_loop(self.loop)
            self.loop.run_until_complete(self.server.start())
            started.set()
            self.loop.run_forever()

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()
        if not started.wait(180):
            raise RuntimeError("sharded service failed to start")

    def __enter__(self) -> "_ShardedHarness":
        return self

    def __exit__(self, *exc) -> None:
        asyncio.run_coroutine_threadsafe(
            self.server.stop(), self.loop
        ).result(60)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(30)
        self.loop.close()


def _instances(n: int, *, n_tasks: int, n_procs: int, seed0: int = 0):
    small = n_tasks <= 16
    return [
        generate_multiproc(
            n_tasks, n_procs, family="fewgmanyg",
            g=2 if small else 4,
            dv=2 if small else 3,
            dh=3 if small else 5,
            weights="related", seed=seed0 + k,
        )
        for k in range(n)
    ]


def _histogram_ms(server: SolveServer) -> dict:
    snap = server.metrics.snapshot()["request_latency_s"]
    return {
        "p50_ms": snap["p50"] * 1e3,
        "p99_ms": snap["p99"] * 1e3,
        "mean_ms": snap["mean"] * 1e3,
    }


def bench_serial_vs_batched(
    n_requests: int, repeats: int = 3
) -> tuple[dict, dict, dict]:
    """One paired measurement on one server: closed-loop serial vs
    pipelined bursts (cold cache for both — distinct instances per
    repeat), plus a warm re-burst.  Best-of-``repeats`` each, so one
    scheduler hiccup cannot poison a side."""
    with _ServerHarness(max_batch=128) as h:
        with ServiceClient(port=h.server.port) as client:
            # warm both paths: executor threads, code paths, option memo
            warmup = _instances(
                8, n_tasks=SMALL_TASKS, n_procs=SMALL_PROCS, seed0=10**6
            )
            for hg in warmup:
                client.solve(hg, method="SGH")
            client.solve_pipelined(warmup, method="SGH")

            serial_best = 0.0
            for rep in range(repeats):
                instances = _instances(
                    n_requests, n_tasks=SMALL_TASKS,
                    n_procs=SMALL_PROCS, seed0=1000 * (rep + 1),
                )
                t0 = time.perf_counter()
                for hg in instances:
                    client.solve(hg, method="SGH")
                serial_best = max(
                    serial_best,
                    n_requests / (time.perf_counter() - t0),
                )
            serial_stats = _histogram_ms(h.server)

            batched_best, last_cold = 0.0, None
            for rep in range(repeats):
                instances = _instances(
                    n_requests, n_tasks=SMALL_TASKS,
                    n_procs=SMALL_PROCS, seed0=100_000 * (rep + 1),
                )
                t0 = time.perf_counter()
                last_cold = client.solve_pipelined(instances, method="SGH")
                batched_best = max(
                    batched_best,
                    n_requests / (time.perf_counter() - t0),
                )
            counters = h.server.metrics.snapshot()["counters"]
            batched_stats = _histogram_ms(h.server)

            t0 = time.perf_counter()
            warm_results = client.solve_pipelined(instances, method="SGH")
            warm_wall = time.perf_counter() - t0
        assert all(not r.cache_hit for r in last_cold)
        assert all(r.cache_hit for r in warm_results)
    batches = counters.get("batches", 0)
    serial = {
        "requests": n_requests,
        "repeats": repeats,
        "req_per_s": serial_best,
        **serial_stats,
    }
    cold = {
        "requests": n_requests,
        "repeats": repeats,
        "req_per_s": batched_best,
        "batches_total": batches,
        **batched_stats,
    }
    warm = {
        "requests": n_requests,
        "wall_s": warm_wall,
        "req_per_s": n_requests / warm_wall,
        "cache_hits": n_requests,
    }
    return serial, cold, warm


def bench_dedup(n_requests: int) -> dict:
    (hg,) = _instances(
        1, n_tasks=DEDUP_TASKS, n_procs=DEDUP_PROCS, seed0=999
    )
    # the serial reference: what one engine solve of this instance
    # costs, measured uncached (median of 3)
    singles = []
    for _ in range(3):
        engine = BatchSolver(max_workers=1, executor="serial", cache=False)
        t0 = time.perf_counter()
        engine.solve(hg, method=DEDUP_METHOD)
        singles.append(time.perf_counter() - t0)
    t_single = statistics.median(singles)

    with _ServerHarness() as h:
        with ServiceClient(port=h.server.port) as client:
            t0 = time.perf_counter()
            results = client.solve_pipelined(
                [hg] * n_requests, method=DEDUP_METHOD
            )
            wall = time.perf_counter() - t0
        followers = h.server.flight.followers
        engine_cache = h.server.engine.cache.stats()
    assert len({r.makespan for r in results}) == 1
    # the dedup guarantee: ONE engine solve answered all N requests —
    # concurrent arrivals share the flight (followers), anything
    # arriving after it completed is a result-cache hit; either way the
    # cache records exactly one miss
    assert engine_cache["misses"] == 1, engine_cache
    assert followers >= 1, followers
    return {
        "requests": n_requests,
        "wall_s": wall,
        "req_per_s": n_requests / wall,
        "t_single_ms": t_single * 1e3,
        "dedup_followers": followers,
        "speedup_vs_serial_solves": (n_requests * t_single) / wall,
    }


def bench_sharded_sweep(levels: list[int], n_workers: int = 4) -> dict:
    """Concurrency ramp against one 4-worker pool: ``levels[k]``
    distinct cold instances dispatched as one asyncio burst.  Records
    req/s per level plus the per-shard view (requests landed and the
    worker's cumulative p99) straight off the sharded ``metrics`` op."""
    out: dict = {"n_workers": n_workers, "levels": []}
    with _ShardedHarness(n_workers=n_workers) as h:
        with ServiceClient(port=h.server.port, timeout=600.0) as probe:
            # warm the wire path end to end before timing anything
            for hg in _instances(
                8, n_tasks=SMALL_TASKS, n_procs=SMALL_PROCS, seed0=10**6
            ):
                probe.solve(hg, method="SGH")
            seed0 = 1
            for level in levels:
                instances = _instances(
                    level, n_tasks=SMALL_TASKS, n_procs=SMALL_PROCS,
                    seed0=seed0,
                )
                seed0 += level

                async def burst():
                    client = await AsyncServiceClient.connect(
                        port=h.server.port
                    )
                    try:
                        t0 = time.perf_counter()
                        results = await asyncio.gather(
                            *(
                                client.solve(hg, method="SGH")
                                for hg in instances
                            )
                        )
                        return results, time.perf_counter() - t0
                    finally:
                        await client.close()

                results, wall = asyncio.run_coroutine_threadsafe(
                    burst(), h.loop
                ).result(1200)
                assert not any(r.cache_hit for r in results)  # cold
                snap = probe.metrics()
                per_shard = {
                    name: {
                        "state": info["state"],
                        "requests": info["metrics"]["counters"].get(
                            "requests.solve", 0
                        ),
                        "p99_ms_cumulative": info["metrics"][
                            "request_latency_s"
                        ]["p99"] * 1e3,
                    }
                    for name, info in snap["shards"].items()
                }
                out["levels"].append(
                    {
                        "concurrency": level,
                        "wall_s": wall,
                        "req_per_s": level / wall,
                        "per_shard": per_shard,
                    }
                )
    return out


def bench_sharded_scaling(n_requests: int) -> dict:
    """The 4-worker acceptance ratio: the same CPU-bound cold workload
    against a 1-worker and a 4-worker pool (fresh pools, fresh caches —
    worker caches die with their processes)."""
    instances = _instances(
        n_requests, n_tasks=SCALE_TASKS, n_procs=SCALE_PROCS, seed0=777
    )

    def throughput(n_workers: int) -> float:
        with _ShardedHarness(n_workers=n_workers) as h:

            async def burst():
                client = await AsyncServiceClient.connect(
                    port=h.server.port
                )
                try:
                    t0 = time.perf_counter()
                    results = await asyncio.gather(
                        *(
                            client.solve(hg, method=SCALE_METHOD, seed=1)
                            for hg in instances
                        )
                    )
                    return results, time.perf_counter() - t0
                finally:
                    await client.close()

            results, wall = asyncio.run_coroutine_threadsafe(
                burst(), h.loop
            ).result(1200)
            assert not any(r.cache_hit or r.deduped for r in results)
        return n_requests / wall

    one = throughput(1)
    four = throughput(4)
    return {
        "requests": n_requests,
        "instance": [SCALE_TASKS, SCALE_PROCS],
        "method": SCALE_METHOD,
        "workers_1_req_per_s": one,
        "workers_4_req_per_s": four,
        "sharded_gain": four / one,
    }


def run_bench(smoke: bool) -> dict:
    n_small = 100 if smoke else 300
    n_dedup = 32 if smoke else 128

    # a perf ratio on shared CI hardware deserves a retry: each attempt
    # is already best-of-3 per side, and every attempt is recorded
    attempts = []
    for _ in range(3):
        serial, cold, warm = bench_serial_vs_batched(n_small)
        attempts.append(cold["req_per_s"] / serial["req_per_s"])
        if attempts[-1] >= MIN_BATCHING_GAIN:
            break
    batching_gain = max(attempts)

    dedup = bench_dedup(n_dedup)
    dedup_gain = dedup["speedup_vs_serial_solves"]

    sweep_levels = [100, 1000] if smoke else [100, 1000, 10000]
    sweep = bench_sharded_sweep(sweep_levels)
    scaling = bench_sharded_scaling(24 if smoke else 48)
    cpus = os.cpu_count() or 1
    sharded_waived = cpus < 4
    report = {
        "bench": "service_throughput",
        "smoke": smoke,
        "config": {
            "small_instance": [SMALL_TASKS, SMALL_PROCS],
            "dedup_instance": [DEDUP_TASKS, DEDUP_PROCS],
            "dedup_method": DEDUP_METHOD,
        },
        "workloads": {
            "serial_cold": serial,
            "batched_cold": cold,
            "batched_warm": warm,
            "dedup_identical": dedup,
            "sharded_sweep": sweep,
            "sharded_scaling": scaling,
        },
        "assertions": {
            "batching_gain": batching_gain,
            "batching_gain_attempts": attempts,
            "min_batching_gain": MIN_BATCHING_GAIN,
            "dedup_gain": dedup_gain,
            "min_dedup_gain": MIN_DEDUP_GAIN,
            "sharded_gain": scaling["sharded_gain"],
            "min_sharded_gain": MIN_SHARDED_GAIN,
            "sharded_guard_waived": sharded_waived,
        },
    }
    if sharded_waived:
        report["assertions"]["sharded_guard_waiver_reason"] = (
            f"host has {cpus} cpu(s); the 4-worker scaling guard needs "
            f">= 4 real cores to mean anything"
        )
    return report


def check(report: dict) -> None:
    a = report["assertions"]
    assert a["batching_gain"] >= a["min_batching_gain"], (
        f"micro-batching gained only {a['batching_gain']:.2f}x over "
        f"serial per-request throughput (floor "
        f"{a['min_batching_gain']:g}x)"
    )
    assert a["dedup_gain"] >= a["min_dedup_gain"], (
        f"single-flight dedup gained only {a['dedup_gain']:.2f}x on the "
        f"all-duplicates workload (floor {a['min_dedup_gain']:g}x)"
    )
    if not a.get("sharded_guard_waived"):
        assert a["sharded_gain"] >= a["min_sharded_gain"], (
            f"4 workers gained only {a['sharded_gain']:.2f}x over 1 "
            f"worker on the CPU-bound cold workload (floor "
            f"{a['min_sharded_gain']:g}x)"
        )


def test_service_throughput_smoke():
    """Pytest entry point (what ``pytest benchmarks`` exercises)."""
    check(run_bench(smoke=True))


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="smaller request counts, same assertions (what CI runs)",
    )
    ap.add_argument(
        "--out", default="BENCH_service.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = ap.parse_args(argv)

    report = run_bench(smoke=args.smoke)
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    w = report["workloads"]
    print(f"serial   : {w['serial_cold']['req_per_s']:8.0f} req/s")
    print(
        f"batched  : {w['batched_cold']['req_per_s']:8.0f} req/s "
        f"({report['assertions']['batching_gain']:.1f}x)"
    )
    print(f"warm     : {w['batched_warm']['req_per_s']:8.0f} req/s")
    print(
        f"dedup    : {w['dedup_identical']['req_per_s']:8.0f} req/s "
        f"({report['assertions']['dedup_gain']:.1f}x vs serial solves)"
    )
    for level in w["sharded_sweep"]["levels"]:
        print(
            f"sharded  : {level['req_per_s']:8.0f} req/s "
            f"@ {level['concurrency']} concurrent "
            f"({w['sharded_sweep']['n_workers']} workers)"
        )
    scaling = w["sharded_scaling"]
    waived = report["assertions"]["sharded_guard_waived"]
    print(
        f"scaling  : {scaling['sharded_gain']:.2f}x (4 vs 1 workers, "
        f"cold {SCALE_METHOD})"
        + ("  [guard waived: too few cpus]" if waived else "")
    )
    print(f"wrote {args.out}")
    check(report)
    print(
        f"OK: batching >= {MIN_BATCHING_GAIN:g}x, "
        f"dedup >= {MIN_DEDUP_GAIN:g}x"
        + (
            ""
            if waived
            else f", sharding >= {MIN_SHARDED_GAIN:g}x"
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
