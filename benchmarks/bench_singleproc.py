"""Experiment ``singleproc``: Section V-B — the bipartite greedies against
the exact algorithm on HiLo and FewgManyg instances (detailed d = 10).

Shape expectations from the paper's summary:

* basic-greedy is fastest but worst;
* sorted-greedy close to basic in time, visibly better in quality;
* double-sorted adds nothing over sorted;
* expected-greedy gives the best quality (clearly so on HiLo) at higher
  cost; the exact algorithm is slowest.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.api import get_registry
from repro.algorithms.exact_unit import exact_singleproc_unit
from repro.experiments.singleproc import GREEDY_NAMES, SingleProcSpec


def _bip_algo(name):
    """Resolve a SINGLEPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="bipartite").fn


SCALE = os.environ.get("SEMIMATCH_BENCH_SCALE", "small")
_SIZES = {
    "small": ((5, 1),),
    "medium": ((5, 1), (20, 1), (20, 4)),
    "full": ((5, 1), (20, 1), (20, 4), (80, 1), (80, 4), (80, 16)),
}[SCALE]


def _specs():
    out = []
    for prefix, family, g in (
        ("FG", "fewgmanyg", 32),
        ("MG", "fewgmanyg", 128),
        ("HLF", "hilo", 32),
        ("HLM", "hilo", 128),
    ):
        for x, y in _SIZES:
            out.append(
                SingleProcSpec(
                    name=f"{prefix}-{x}-{y}-SP",
                    family=family,
                    g=g,
                    n=256 * x,
                    p=256 * y,
                    d=10,
                )
            )
    return tuple(out)


@pytest.mark.parametrize("algo", GREEDY_NAMES)
@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
def test_greedy_quality_vs_exact(benchmark, spec, algo):
    graph = spec.generate(0)
    fn = _bip_algo(algo)

    matching = benchmark(fn, graph)

    opt = exact_singleproc_unit(graph).optimal_makespan
    benchmark.extra_info.update(
        {
            "makespan": matching.makespan,
            "optimum": opt,
            "quality": round(matching.makespan / opt, 3),
        }
    )
    assert matching.makespan >= opt


@pytest.mark.parametrize("spec", _specs(), ids=lambda s: s.name)
def test_exact_algorithm_time(benchmark, spec):
    """The exact algorithm's cost — the baseline the greedies undercut."""
    graph = spec.generate(0)
    rep = benchmark(exact_singleproc_unit, graph)
    benchmark.extra_info["optimum"] = rep.optimal_makespan
    benchmark.extra_info["probes"] = len(rep.probes)


def test_expected_beats_basic_on_hilo(benchmark):
    """Section V-B: on HiLo instances expected-greedy's advantage over
    basic-greedy is pronounced."""
    spec = SingleProcSpec(
        name="HLF-5-1-SP", family="hilo", g=32, n=1280, p=256, d=10
    )
    graph = spec.generate(0)
    basic = _bip_algo("basic-greedy")
    expected = _bip_algo("expected-greedy")

    def both():
        return basic(graph).makespan, expected(graph).makespan

    mk_basic, mk_expected = benchmark(both)
    benchmark.extra_info.update(
        {"basic": mk_basic, "expected": mk_expected}
    )
    assert mk_expected <= mk_basic
