"""Kernel regression harness: backend scaling + ``BENCH_kernels.json``.

Two entry points over the same workload (the Table-I-style fewgmanyg
family swept at fixed ``n/p`` ratio):

* ``pytest benchmarks/bench_scaling.py`` — pytest-benchmark timings of
  every heuristic on both backends (the historical scaling bench, now
  backend-aware);
* ``python benchmarks/bench_scaling.py [--smoke] [--bench-seed N]
  [--out PATH]`` — the dependency-free regression harness CI runs on
  every push: per-solver wall time and bottleneck for both backends at
  several sizes, written to ``BENCH_kernels.json`` so the bench
  trajectory is recorded run-over-run, plus two hard assertions at the
  largest size:

  - backends are **bit-identical** per solver (conformance re-check);
  - the vector heuristics (VGH, EVG — the kernels' raison d'être) are
    at least ``MIN_SPEEDUP``x faster on the numpy backend.

All instances derive from one ``--bench-seed`` (default 0), so the
JSON numbers are reproducible run-to-run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

from repro.api import get_registry
from repro.generators import generate_multiproc
from repro.kernels import compile_instance

SIZES = [(320, 64), (1280, 256), (5120, 1024)]
FULL_SIZES = SIZES + [(10240, 2048)]
SOLVERS = ("SGH", "VGH", "EGH", "EVG")
#: solvers held to the speedup floor (the vector heuristics, whose
#: per-candidate comparisons the kernel core exists to batch)
GUARDED = ("VGH", "EVG")
MIN_SPEEDUP = 3.0

#: churn guard: the steady-state per-mutation cost of keeping the
#: compilation patched (KernelPatcher) must stay at or below this
#: fraction of a from-scratch compile at the guarded size
MAX_PATCH_RATIO = 0.10
CHURN_EVENTS = 60
#: records skipped before measuring: the first emissions run while the
#: allocator heap is still filling toward the compile-cache byte
#: budgets; "marginal cost under churn" means the steady state after
#: page recycling kicks in
CHURN_WARMUP = 15

#: transport guard workload: shared-memory instance shipping must beat
#: pickling on a warm batch of large instances
TRANSPORT_N, TRANSPORT_P = 10240, 2048
TRANSPORT_BATCH = 4


def _hyp_algo(name):
    """Resolve a MULTIPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="hypergraph").fn


def _instance(n, p, seed):
    return generate_multiproc(
        n, p, family="fewgmanyg", g=32, dv=5, dh=10,
        weights="related", seed=seed,
    )


# ---------------------------------------------------------------------------
# pytest-benchmark entry point (optional dependency)
# ---------------------------------------------------------------------------
try:  # pragma: no cover - import guard for the standalone runner
    import pytest
except ImportError:  # pragma: no cover
    pytest = None

if pytest is not None:

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    @pytest.mark.parametrize("algo", list(SOLVERS))
    @pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s[0]}")
    def test_heuristic_scaling(benchmark, bench_seed, algo, size, backend):
        n, p = size
        hg = _instance(n, p, bench_seed)
        fn = _hyp_algo(algo)
        compile_instance(hg)  # amortized in production; exclude here

        m = benchmark(fn, hg, backend=backend)

        benchmark.extra_info.update(
            {
                "n": n,
                "p": p,
                "pins": hg.total_pins,
                "makespan": m.makespan,
                "backend": backend,
                "seed": bench_seed,
            }
        )
        assert m.makespan > 0


# ---------------------------------------------------------------------------
# the standalone regression harness (CI smoke)
# ---------------------------------------------------------------------------
def _time(fn, *args, repeats=1, **kwargs):
    best, result = np.inf, None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def _compile_section(sizes, seed: int) -> list[dict]:
    """Full-compile vs patched per-mutation compile cost under the
    canonical churn model (:func:`repro.generators.churn_trace`).

    ``full`` is what a non-patching instance pays for *one* mutation:
    rebuild the canonical hypergraph and recompile the kernels.
    ``patch`` is the steady-state mean over a churn stream with one
    emission per journal record — the solve-per-mutate session
    pattern the patcher exists for.
    """
    from repro.dynamic import DynamicInstance
    from repro.generators import churn_trace
    from repro.kernels import clear_compile_cache

    rows = []
    for n, p in sizes:
        hg = _instance(n, p, seed)
        off = DynamicInstance.from_hypergraph(hg, patching=False)
        task = off.tasks()[0]
        cfg, _pins, w0 = off.task_configs(task)[0]
        t_full = np.inf
        for r in range(3):
            off.update_weight(task, cfg, w0 + r + 1.0)
            clear_compile_cache()
            t0 = time.perf_counter()
            off.compiled_kernels()
            t_full = min(t_full, time.perf_counter() - t0)

        on = DynamicInstance.from_hypergraph(hg)
        on.compiled_kernels()
        trace = churn_trace(hg, CHURN_EVENTS, seed=seed + 1)
        total, measured = 0.0, 0
        for i, m in enumerate(trace):
            on.apply(m)
            t0 = time.perf_counter()
            on.compiled_kernels()
            dt = time.perf_counter() - t0
            if i >= CHURN_WARMUP:
                total += dt
                measured += 1
        t_patch = total / max(measured, 1)
        stats = on.compile_stats()
        rows.append(
            {
                "n": n,
                "p": p,
                "records": len(trace),
                "measured": measured,
                "t_full_compile_s": round(t_full, 6),
                "t_patch_per_mutation_s": round(t_patch, 6),
                "patch_ratio": round(t_patch / max(t_full, 1e-9), 4),
                "emits": {
                    k: stats[k]
                    for k in (
                        "full_builds",
                        "compactions",
                        "emits_full",
                        "emits_weight",
                        "emits_delta",
                    )
                },
            }
        )
        print(
            f"compile n={n:6d}: full={t_full * 1000:7.1f}ms "
            f"patch/mutation={t_patch * 1000:6.2f}ms "
            f"-> ratio {t_patch / max(t_full, 1e-9):.3f}"
        )
    return rows


def _transport_section(seed: int, repeats: int) -> dict:
    """``solve_many`` shared-memory shipping vs pickling on a warm
    batch of ``TRANSPORT_BATCH`` instances at n=``TRANSPORT_N``.

    The cold call pays pool spawn + per-worker kernel compiles on both
    sides; the warm calls isolate the per-call transport cost (shm
    re-sends a name, pickling re-serializes every array)."""
    from repro.engine import BatchSolver

    batch = [
        _instance(TRANSPORT_N, TRANSPORT_P, seed + i)
        for i in range(TRANSPORT_BATCH)
    ]
    out = {
        "n": TRANSPORT_N,
        "p": TRANSPORT_P,
        "batch": TRANSPORT_BATCH,
    }
    for transport in ("pickle", "shm"):
        eng = BatchSolver(
            max_workers=2,
            executor="process",
            cache=False,
            transport=transport,
        )
        try:
            t_cold, _ = _time(eng.solve_many, batch, method="SGH")
            t_warm = np.inf
            for _ in range(repeats + 1):
                t, _ = _time(eng.solve_many, batch, method="SGH")
                t_warm = min(t_warm, t)
            stats = eng.transport_stats()
        finally:
            eng.close()
        out[transport] = {
            "cold_s": round(t_cold, 6),
            "warm_s": round(t_warm, 6),
            "exports": stats.get("exports", 0),
            "reuses": stats.get("reuses", 0),
        }
        print(
            f"transport {transport:6s}: cold={t_cold:6.3f}s "
            f"warm={t_warm:6.3f}s"
        )
    out["warm_speedup"] = round(
        out["pickle"]["warm_s"] / max(out["shm"]["warm_s"], 1e-9), 3
    )
    return out


def run_harness(
    *, smoke: bool = True, seed: int = 0, out: str | Path | None = None
) -> dict:
    sizes = SIZES if smoke else FULL_SIZES
    # min-of-N timing: N=2 even in smoke keeps the guard's speedup
    # ratio stable on noisy CI runners at ~2s extra wall time
    repeats = 2 if smoke else 3
    rows = []
    for n, p in sizes:
        hg = _instance(n, p, seed)
        t_compile, _ = _time(compile_instance, hg)
        for name in SOLVERS:
            fn = _hyp_algo(name)
            t_py, m_py = _time(
                fn, hg, backend="python", repeats=repeats
            )
            t_np, m_np = _time(
                fn, hg, backend="numpy", repeats=repeats
            )
            if not np.array_equal(
                m_py.hedge_of_task, m_np.hedge_of_task
            ):
                raise AssertionError(
                    f"{name} backends diverged at n={n}"
                )
            rows.append(
                {
                    "solver": name,
                    "n": n,
                    "p": p,
                    "pins": int(hg.total_pins),
                    "bottleneck": m_np.makespan,
                    "t_python_s": round(t_py, 6),
                    "t_numpy_s": round(t_np, 6),
                    "t_compile_s": round(t_compile, 6),
                    "speedup": round(t_py / max(t_np, 1e-9), 3),
                }
            )
            print(
                f"n={n:6d} p={p:5d} {name:4s} "
                f"python={t_py * 1000:8.1f}ms "
                f"numpy={t_np * 1000:8.1f}ms "
                f"-> {t_py / max(t_np, 1e-9):5.2f}x "
                f"(bottleneck {m_np.makespan:g})"
            )

    compile_rows = _compile_section(sizes, seed)
    transport = _transport_section(seed, repeats)

    # the speedup floor is asserted at the largest *smoke* size (the
    # size CI measures every push); the full sweep's extra sizes are
    # recorded but only guarded by the bit-equality check above
    n_max, p_max = SIZES[-1]
    largest = {
        r["solver"]: r["speedup"] for r in rows if r["n"] == n_max
    }
    report = {
        "bench": "kernels",
        "note": "wall times are per-machine; CI regenerates this file "
        "as an artifact on every push — compare speedup ratios, not "
        "absolute seconds",
        "seed": seed,
        "smoke": smoke,
        "min_speedup": MIN_SPEEDUP,
        "guarded_solvers": list(GUARDED),
        "guarded_size": {"n": n_max, "p": p_max},
        "max_patch_ratio": MAX_PATCH_RATIO,
        "results": rows,
        "compile": compile_rows,
        "transport": transport,
    }
    if out:
        Path(out).write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {out}")

    for name in GUARDED:
        if largest[name] < MIN_SPEEDUP:
            raise AssertionError(
                f"kernel speedup regression: {name} only "
                f"{largest[name]:.2f}x at n={n_max} "
                f"(need >= {MIN_SPEEDUP}x)"
            )
    print(
        f"kernel speedup guard OK at n={n_max}: "
        + ", ".join(f"{s}={largest[s]:.2f}x" for s in GUARDED)
    )

    # churn-compile guard: patched compilation must stay marginal
    for row in compile_rows:
        if row["n"] >= 5120 and row["patch_ratio"] > MAX_PATCH_RATIO:
            raise AssertionError(
                f"patch-compile regression: per-mutation cost is "
                f"{row['patch_ratio']:.3f} of a full compile at "
                f"n={row['n']} (budget {MAX_PATCH_RATIO})"
            )
    print(
        "patch-compile guard OK: "
        + ", ".join(
            f"n={r['n']}:{r['patch_ratio']:.3f}" for r in compile_rows
        )
    )

    # transport guard: shm must beat pickling once the pool is warm
    if transport["shm"]["warm_s"] >= transport["pickle"]["warm_s"]:
        raise AssertionError(
            f"shm transport regression: warm batch "
            f"{transport['shm']['warm_s']:.3f}s vs pickle "
            f"{transport['pickle']['warm_s']:.3f}s at "
            f"n={TRANSPORT_N}"
        )
    print(
        f"transport guard OK at n={TRANSPORT_N}: shm beats pickle "
        f"{transport['warm_speedup']:.2f}x warm"
    )
    return report


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="CI sizes / single repetition",
    )
    ap.add_argument(
        "--bench-seed", type=int, default=0,
        help="seed every generated instance derives from",
    )
    ap.add_argument(
        "--out", default="BENCH_kernels.json",
        help="where to write the JSON report",
    )
    args = ap.parse_args(argv)
    run_harness(smoke=args.smoke, seed=args.bench_seed, out=args.out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
