"""Extension experiment: running-time scaling of the four heuristics.

The paper reports average times on fixed instance sizes; this bench
sweeps ``n`` at fixed ``n/p`` ratio to expose the asymptotics the paper
derives analytically: SGH/EGH are linear in the pin count, VGH/EVG carry
the vector-comparison overhead (here with the lemma-based fast
comparison, so also near-linear — the naive variant's quadratic blow-up
is covered in bench_ablation.py).
"""

from __future__ import annotations

import pytest

from repro.api import get_registry
from repro.generators import generate_multiproc


def _hyp_algo(name):
    """Resolve a MULTIPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="hypergraph").fn


SIZES = [(320, 64), (1280, 256), (5120, 1024)]


@pytest.mark.parametrize("algo", ["SGH", "VGH", "EGH", "EVG"])
@pytest.mark.parametrize("size", SIZES, ids=lambda s: f"n{s[0]}")
def test_heuristic_scaling(benchmark, algo, size):
    n, p = size
    hg = generate_multiproc(
        n, p, family="fewgmanyg", g=32, dv=5, dh=10,
        weights="related", seed=0,
    )
    fn = _hyp_algo(algo)

    m = benchmark(fn, hg)

    benchmark.extra_info.update(
        {"n": n, "p": p, "pins": hg.total_pins, "makespan": m.makespan}
    )
    assert m.makespan > 0
