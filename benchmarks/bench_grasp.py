"""Ablation: the GRASP metaheuristic against the paper's single-shot
heuristics (extension of the paper's future-work direction).

Measures quality-vs-cost of multi-start randomised greedy + local search
at several iteration budgets, against EVG (the paper's best) and the
lower bound, plus the effect of kernelisation (preprocessing) on
instance size.
"""

from __future__ import annotations

import pytest

from repro.algorithms import (
    expected_vector_greedy_hyp,
    grasp,
    preprocess,
    sorted_greedy_hyp,
)

from conftest import cached_instance, cached_lower_bound


@pytest.mark.parametrize("iterations", [1, 4, 8])
def test_grasp_budget(benchmark, iterations):
    hg = cached_instance("MG-5-1-MP", "related", 0)

    rep = benchmark.pedantic(
        grasp,
        args=(hg,),
        kwargs={"iterations": iterations, "seed": 0},
        rounds=1,
        iterations=1,
    )

    lb = cached_lower_bound("MG-5-1-MP", "related", 0)
    evg = expected_vector_greedy_hyp(hg).makespan
    benchmark.extra_info.update(
        {
            "grasp_quality": round(rep.best_makespan / lb, 3),
            "EVG_quality": round(evg / lb, 3),
            "best_iteration": rep.best_iteration,
        }
    )
    # GRASP at any budget is at least as good as plain SGH
    assert rep.best_makespan <= sorted_greedy_hyp(hg).makespan + 1e-9


@pytest.mark.parametrize("weights", ["unit", "related"])
def test_preprocessing_kernel_size(benchmark, weights):
    """How much do forced tasks and dominated configurations shrink the
    paper's instances?"""
    hg = cached_instance("HLM-5-1-MP", weights, 0)

    red = benchmark(preprocess, hg)

    benchmark.extra_info.update(
        {
            "tasks": hg.n_tasks,
            "free_tasks": int(red.free_tasks.size),
            "hedges": hg.n_hedges,
            "kernel_hedges": (
                red.kernel.n_hedges if red.kernel is not None else 0
            ),
            "dropped_dominated": red.dropped_configurations,
        }
    )
    assert red.lift(
        sorted_greedy_hyp(red.kernel) if red.kernel is not None else None
    ).makespan > 0
