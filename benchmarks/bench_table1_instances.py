"""Experiment ``table1``: regenerate the paper's Table I instance statistics.

For every named family, benchmark the two-step generator and record the
sampled ``|N|`` and ``sum |h ∩ V2|`` against the paper's printed values.
The statistics land within sampling noise of Table I (see EXPERIMENTS.md);
generation time is our own metric (the paper does not report it).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.instances import PAPER_TABLE1

from conftest import SEEDS, bench_specs


@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_generate_instance(benchmark, bench_seed, spec):
    # a per-test cycle rooted at --bench-seed: which seeds a timing
    # round sees no longer depends on how many rounds pytest-benchmark
    # chose for *other* tests, so numbers reproduce run-to-run
    seed_cycle = iter(range(bench_seed, bench_seed + 10_000))

    def gen():
        return spec.generate(next(seed_cycle))

    hg = benchmark(gen)

    hedge_counts = []
    pin_counts = []
    for s in range(bench_seed, bench_seed + SEEDS):
        h = spec.generate(s)
        hedge_counts.append(h.n_hedges)
        pin_counts.append(h.total_pins)
    paper = PAPER_TABLE1[spec.name]
    benchmark.extra_info.update(
        {
            "n_tasks": spec.n,
            "n_procs": spec.p,
            "median_hedges": int(np.median(hedge_counts)),
            "paper_hedges": paper[2],
            "median_pins": int(np.median(pin_counts)),
            "paper_pins": paper[3],
        }
    )
    # sanity: the sampled statistics sit near the paper's Table I
    assert abs(np.median(hedge_counts) - paper[2]) / paper[2] < 0.10
    assert abs(np.median(pin_counts) - paper[3]) / paper[3] < 0.30
    assert hg.n_tasks == spec.n
