"""Ablation experiments for the design choices called out in DESIGN.md.

* ``lookahead`` — Algorithm 4 as printed (compare ``max l(u)``) versus
  the post-assignment bottleneck (``max l(u) + w_h``): the lookahead
  matters on weighted instances and is a wash on unit ones.
* ``local-search`` — how much the hill-climbing extension improves each
  greedy's solution, and its cost.
* ``vector comparison`` — the lemma-based fast comparison versus the
  naive full-vector sort the paper implemented (identical decisions,
  different cost).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algorithms import (
    expected_vector_greedy_hyp,
    local_search,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)
from repro.algorithms.lower_bounds import averaged_work_bound

from conftest import SEEDS, cached_instance, cached_lower_bound


@pytest.mark.parametrize("weights", ["unit", "related"])
@pytest.mark.parametrize("lookahead", [True, False], ids=["post", "literal"])
def test_sgh_lookahead(benchmark, weights, lookahead):
    hg = cached_instance("FG-5-1-MP", weights, 0)

    m = benchmark(sorted_greedy_hyp, hg, lookahead=lookahead)

    lb = cached_lower_bound("FG-5-1-MP", weights, 0)
    benchmark.extra_info.update(
        {"quality": round(m.makespan / lb, 3), "weights": weights}
    )


def test_lookahead_never_hurts_on_unit(benchmark):
    """On unit instances the two SGH variants pick identically."""
    hg = cached_instance("MG-5-1-MP", "unit", 0)

    def both():
        a = sorted_greedy_hyp(hg, lookahead=True)
        b = sorted_greedy_hyp(hg, lookahead=False)
        return a, b

    a, b = benchmark(both)
    assert np.array_equal(a.hedge_of_task, b.hedge_of_task)


@pytest.mark.parametrize("weights", ["unit", "related"])
def test_local_search_refinement(benchmark, weights):
    hg = cached_instance("FG-5-1-MP", weights, 0)
    start = sorted_greedy_hyp(hg)

    report = benchmark(local_search, start)

    lb = averaged_work_bound(hg)
    benchmark.extra_info.update(
        {
            "initial_quality": round(report.initial_makespan / lb, 3),
            "final_quality": round(report.final_makespan / lb, 3),
            "moves": report.moves,
        }
    )
    assert report.final_makespan <= report.initial_makespan


@pytest.mark.parametrize("method", ["fast", "naive"])
def test_vgh_comparison_method(benchmark, method):
    """Cost of the lemma-based vs full-sort vector comparison (VGH)."""
    hg = cached_instance("MG-5-1-MP", "unit", 0)

    m = benchmark(vector_greedy_hyp, hg, method=method)

    benchmark.extra_info["makespan"] = m.makespan


@pytest.mark.parametrize("method", ["fast", "naive"])
def test_evg_comparison_method(benchmark, method):
    """Same ablation for EVG, where the affected set is the pin union."""
    hg = cached_instance("MG-5-1-MP", "related", 0)

    m = benchmark(expected_vector_greedy_hyp, hg, method=method)

    benchmark.extra_info["makespan"] = m.makespan


def test_fast_and_naive_identical_decisions(benchmark):
    hg = cached_instance("MG-5-1-MP", "related", 1)

    def run():
        return vector_greedy_hyp(hg, method="fast")

    fast = benchmark(run)
    naive = vector_greedy_hyp(hg, method="naive")
    assert np.array_equal(fast.hedge_of_task, naive.hedge_of_task)
