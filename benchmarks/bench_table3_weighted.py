"""Experiment ``table3``: the paper's Table III — quality and time on
*related-weight* instances (``w_h = ceil(min_s * max_s / s_h)``).

Shape expectations from the paper:

* the expected strategies win: EGH beats SGH, EVG is the best overall;
* the vector strategy alone (VGH) does not improve on SGH here;
* timing ranking unchanged (SGH ~ EGH fast, VGH slower, EVG slowest).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.api import get_registry
from repro.experiments.instances import PAPER_TABLE3
from repro.experiments.runner import DEFAULT_ALGOS

from conftest import SEEDS, bench_specs, cached_instance, cached_lower_bound


def _hyp_algo(name):
    """Resolve a MULTIPROC solver through the unified registry."""
    return get_registry().resolve(name, domain="hypergraph").fn


_ALGO_COLUMN = {a: i + 1 for i, a in enumerate(DEFAULT_ALGOS)}


@pytest.mark.parametrize("algo", DEFAULT_ALGOS)
@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_weighted_quality(benchmark, spec, algo):
    fn = _hyp_algo(algo)
    hg = cached_instance(spec.name, "related", 0)

    matching = benchmark(fn, hg)

    ratios = []
    for s in range(SEEDS):
        inst = cached_instance(spec.name, "related", s)
        lb = cached_lower_bound(spec.name, "related", s)
        ratios.append(fn(inst).makespan / lb)
    measured = float(np.median(ratios))
    paper = PAPER_TABLE3[spec.name + "-W"]
    benchmark.extra_info.update(
        {
            "quality_median": round(measured, 3),
            "paper_quality": paper[_ALGO_COLUMN[algo]],
            "lower_bound": cached_lower_bound(spec.name, "related", 0),
            "paper_lb": paper[0],
        }
    )
    assert matching.makespan >= 1.0
    assert measured < max(4.0, 2.0 * paper[_ALGO_COLUMN[algo]])


@pytest.mark.parametrize("spec", bench_specs(), ids=lambda s: s.name)
def test_expected_strategy_helps_on_weights(benchmark, spec):
    """Table III's headline: median EGH quality <= median SGH quality
    (with slack for sampling noise) on related-weight instances."""
    sgh = _hyp_algo("SGH")
    egh = _hyp_algo("EGH")

    def both():
        inst = cached_instance(spec.name, "related", 0)
        return sgh(inst).makespan, egh(inst).makespan

    mk_sgh, mk_egh = benchmark(both)
    q = []
    for s in range(SEEDS):
        inst = cached_instance(spec.name, "related", s)
        lb = cached_lower_bound(spec.name, "related", s)
        q.append((sgh(inst).makespan / lb, egh(inst).makespan / lb))
    med_sgh = float(np.median([a for a, _ in q]))
    med_egh = float(np.median([b for _, b in q]))
    benchmark.extra_info.update(
        {"SGH": round(med_sgh, 3), "EGH": round(med_egh, 3)}
    )
    assert med_egh <= med_sgh + 0.05
