"""Registry-dispatch overhead: the unified API must cost ~nothing.

The API redesign replaced two direct name->callable dicts with the
capability-aware registry, expression parsing and options
normalization.  This benchmark pins down what that layer costs per
solve and asserts it stays negligible:

* ``direct``    — ``expected_vector_greedy_hyp(hg)``, the old
  dict-lookup path (lookup itself was ~free);
* ``dispatch``  — ``solve_hypergraph(hg, method="EVG")``: parse +
  normalize + resolve + evaluate;
* ``engine``    — the full ``BatchSolver.solve`` path producing a
  ``SolveResult`` (uncached, serial).

Run:  PYTHONPATH=src python -m pytest benchmarks/bench_api_overhead.py -v

No pytest-benchmark dependency: plain perf_counter loops with
min-of-repeats, so the file runs anywhere the test suite runs.
"""

from __future__ import annotations

import time

from repro.algorithms import expected_vector_greedy_hyp
from repro.engine import BatchSolver, solve_hypergraph
from repro.generators import generate_multiproc

N_CALLS = 50
REPEATS = 5

#: Per-call dispatch overhead budget.  Resolution is a couple of dict
#: hits and one small object graph; even on a loaded CI box it should
#: stay far below a millisecond.
MAX_OVERHEAD_S = 1e-3
#: And on a realistically-sized instance the whole API layer must stay
#: a small fraction of the actual solve.
MAX_RELATIVE_OVERHEAD = 0.5


def _instance():
    return generate_multiproc(
        200, 16, family="fewgmanyg", g=2, dv=4, dh=5,
        weights="related", seed=0,
    )


def _best_of(fn, *args) -> float:
    """Min-of-repeats mean seconds per call (robust to CI jitter)."""
    best = float("inf")
    for _ in range(REPEATS):
        t0 = time.perf_counter()
        for _ in range(N_CALLS):
            fn(*args)
        best = min(best, (time.perf_counter() - t0) / N_CALLS)
    return best


def test_dispatch_overhead_is_negligible():
    hg = _instance()

    t_direct = _best_of(expected_vector_greedy_hyp, hg)
    t_dispatch = _best_of(
        lambda h: solve_hypergraph(h, method="EVG"), hg
    )

    overhead = t_dispatch - t_direct
    print(
        f"\ndirect={t_direct * 1e6:.1f}us  "
        f"dispatch={t_dispatch * 1e6:.1f}us  "
        f"overhead={overhead * 1e6:.1f}us/call"
    )
    assert overhead < MAX_OVERHEAD_S, (
        f"registry dispatch adds {overhead * 1e6:.1f}us/call "
        f"(budget {MAX_OVERHEAD_S * 1e6:.0f}us)"
    )
    assert t_dispatch < t_direct * (1 + MAX_RELATIVE_OVERHEAD), (
        f"dispatch path is {t_dispatch / t_direct:.2f}x the direct call"
    )


def test_full_engine_path_overhead_is_bounded():
    hg = _instance()
    engine = BatchSolver(max_workers=1, executor="serial", cache=False)

    t_direct = _best_of(expected_vector_greedy_hyp, hg)
    t_engine = _best_of(lambda h: engine.solve(h, method="EVG"), hg)

    overhead = t_engine - t_direct
    print(
        f"\ndirect={t_direct * 1e6:.1f}us  "
        f"engine={t_engine * 1e6:.1f}us  "
        f"overhead={overhead * 1e6:.1f}us/call"
    )
    # the engine adds SolveResult construction and batch plumbing on
    # top of dispatch; still well under a millisecond per call
    assert overhead < 2 * MAX_OVERHEAD_S, (
        f"engine path adds {overhead * 1e6:.1f}us/call "
        f"(budget {2 * MAX_OVERHEAD_S * 1e6:.0f}us)"
    )
