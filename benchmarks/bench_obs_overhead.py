"""Tracing overhead bench: ``BENCH_obs.json`` + two hard guards.

The observability layer's bargain is "always compiled in, never felt":
every hot path in the engine carries ``span(...)`` calls, so their cost
must be provably negligible.  This bench measures the same engine
workload three ways:

* ``stubbed`` — the span factories in every instrumented module are
  monkey-patched to inert stand-ins (``measured_span`` keeps its one
  ``perf_counter`` pair, which the pre-tracing code paid anyway for
  ``wall_time_s``): the counterfactual un-instrumented engine;
* ``disabled`` — the real tracer, tracing off (the library default):
  one module-flag check per span site, no allocation;
* ``enabled`` — tracing on, every span recorded into the ring buffer
  (the server default).

Hard assertions (run by CI in ``--smoke`` mode on every push):

* ``disabled``  <= ``MAX_DISABLED_RATIO``  (1.02x) of ``stubbed``;
* ``enabled``   <= ``MAX_ENABLED_RATIO``   (1.10x) of ``stubbed``;
* ``stitched``  <= ``MAX_STITCHED_RATIO``  (1.10x) of the untraced
  worker hop — a **sharded leg** runs the same warm burst against a
  2-worker pool with tracing (and therefore span piggybacking across
  the hop) off vs on, so the ratio prices exactly the distributed
  stitching: span collection, the envelope ``spans`` field, and the
  client-side ingest;

each with a small absolute slack so a sub-millisecond jitter on a fast
workload cannot fail a ratio that is meaningless at that scale.  Times
are min-of-``repeats`` per mode, interleaved round-robin so drift hits
every mode equally (the sharded pools run sequentially — two pools
sharing one process would share the process-wide tracing flag).

Run:    PYTHONPATH=src python benchmarks/bench_obs_overhead.py
Smoke:  ... bench_obs_overhead.py --smoke --out BENCH_obs.json
Pytest: PYTHONPATH=src python -m pytest benchmarks/bench_obs_overhead.py
"""

from __future__ import annotations

import argparse
import contextlib
import json
import sys
import time
from pathlib import Path

from repro.engine.batch import BatchSolver
from repro.generators import generate_multiproc
from repro.obs import trace as obs_trace

MAX_DISABLED_RATIO = 1.02
MAX_ENABLED_RATIO = 1.10
MAX_STITCHED_RATIO = 1.10
#: absolute slack per guard: ratios below this wall-clock delta are
#: noise, not overhead (CI runners jitter by more than this)
ABS_SLACK_S = 0.010
#: the sharded leg crosses process boundaries, where scheduler jitter
#: dwarfs the in-process slack
SHARDED_SLACK_S = 0.025

#: every module holding a from-import of the span factories; stubbing
#: must patch the *bound names*, not repro.obs.trace itself
_INSTRUMENTED = {
    "repro.engine.batch": (
        "span", "measured_span", "adopt", "collect_timings",
        "ingest", "ship_context",
    ),
    "repro.engine.dispatch": ("span",),
    "repro.engine.cache": ("span",),
    "repro.engine.transport": ("span",),
    "repro.kernels.compiled": ("span",),
    "repro.kernels.patch": ("span",),
    "repro.dynamic.solver": ("span",),
}


# ---------------------------------------------------------------------------
# the counterfactual: inert stand-ins for the tracing surface
# ---------------------------------------------------------------------------
class _StubSpan:
    recording = False
    duration_s = 0.0

    def set(self, **attrs):
        return self

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_STUB = _StubSpan()


class _StubMeasured:
    """Times like the pre-tracing code did (one perf_counter pair)."""

    __slots__ = ("_t0", "duration_s")
    recording = False

    def set(self, **attrs):
        return self

    def __enter__(self):
        self.duration_s = 0.0
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.duration_s = time.perf_counter() - self._t0
        return False


def _stub_span(name, **attrs):
    return _STUB


def _stub_measured(name, **attrs):
    return _StubMeasured()


@contextlib.contextmanager
def _stub_timings():
    yield {}


@contextlib.contextmanager
def _stub_adopt(ctx):
    yield None


_STUBS = {
    "span": _stub_span,
    "measured_span": _stub_measured,
    "adopt": _stub_adopt,
    "collect_timings": _stub_timings,
    "ingest": lambda records: None,
    "ship_context": lambda: None,
}


@contextlib.contextmanager
def stubbed_tracing():
    """Replace every instrumented module's span bindings with stubs."""
    saved = []
    for modname, names in _INSTRUMENTED.items():
        mod = sys.modules.get(modname)
        if mod is None:  # imported below via repro.engine.batch
            __import__(modname)
            mod = sys.modules[modname]
        for name in names:
            saved.append((mod, name, getattr(mod, name)))
            setattr(mod, name, _STUBS[name])
    try:
        yield
    finally:
        for mod, name, original in saved:
            setattr(mod, name, original)


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------
def _instances(n: int, *, n_tasks: int, seed0: int):
    return [
        generate_multiproc(
            n_tasks, 256, family="fewgmanyg", g=32, dv=5, dh=10,
            weights="related", seed=seed0 + k,
        )
        for k in range(n)
    ]


def _run_once(instances) -> float:
    # a fresh serial engine per measurement: no result cache (every
    # solve runs), and the kernels' compile cache is digest-keyed so
    # it is warm for every mode equally after the warmup pass
    solver = BatchSolver(max_workers=1, executor="serial", cache=False)
    t0 = time.perf_counter()
    solver.solve_many(instances)
    return time.perf_counter() - t0


def _measure(modes: dict, instances, repeats: int) -> dict[str, float]:
    best = {name: float("inf") for name in modes}
    # interleave: mode A, B, C, A, B, C ... so thermal/load drift is
    # shared instead of biasing whichever mode ran last
    for _ in range(repeats):
        for name, runner in modes.items():
            best[name] = min(best[name], runner(instances))
    return best


def run_bench(smoke: bool, seed: int = 0) -> dict:
    n_tasks = 320 if smoke else 1280
    n_instances = 6 if smoke else 12
    repeats = 5 if smoke else 7
    instances = _instances(
        n_instances, n_tasks=n_tasks, seed0=1000 * seed
    )

    def run_stubbed(batch):
        with stubbed_tracing():
            return _run_once(batch)

    def run_disabled(batch):
        assert not obs_trace.tracing_enabled()
        return _run_once(batch)

    def run_enabled(batch):
        with obs_trace.tracing():
            wall = _run_once(batch)
        obs_trace.RECORDER.clear()
        return wall

    # warmup: compile every instance once so each mode measures solves,
    # not digest-cache misses
    _run_once(instances)

    best = _measure(
        {
            "stubbed": run_stubbed,
            "disabled": run_disabled,
            "enabled": run_enabled,
        },
        instances,
        repeats,
    )
    base = best["stubbed"]
    report = {
        "bench": "obs_overhead",
        "smoke": smoke,
        "config": {
            "n_tasks": n_tasks,
            "n_procs": 256,
            "instances": n_instances,
            "repeats": repeats,
            "abs_slack_s": ABS_SLACK_S,
        },
        "wall_s": best,
        "assertions": {
            "disabled_ratio": best["disabled"] / base,
            "max_disabled_ratio": MAX_DISABLED_RATIO,
            "enabled_ratio": best["enabled"] / base,
            "max_enabled_ratio": MAX_ENABLED_RATIO,
        },
    }
    return report


# ---------------------------------------------------------------------------
# sharded leg: stitched tracing across the worker hop
# ---------------------------------------------------------------------------
@contextlib.contextmanager
def _sharded_pool(*, tracing: bool, n_workers: int = 2):
    """A live worker pool on a private loop thread (the bench cannot
    import the test harness, so it carries its own light copy)."""
    import asyncio
    import threading

    from repro.service.shard import ShardedSolveServer
    from repro.service.supervisor import WorkerSpec

    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    server = ShardedSolveServer(
        n_workers=n_workers,
        allow_shutdown=True,
        shm_min_bytes=0,
        tracing=tracing,
        # never retain: the bench measures, the flight recorder is not
        # under test and a retained burst trace would skew nothing but
        # memory
        trace_threshold_s=1e9,
        worker_spec=WorkerSpec(tracing=tracing),
    )
    asyncio.run_coroutine_threadsafe(server.start(), loop).result(
        timeout=120
    )
    try:
        yield server
    finally:
        asyncio.run_coroutine_threadsafe(server.stop(), loop).result(
            timeout=60
        )
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)
        loop.close()


def run_sharded_bench(smoke: bool, seed: int = 0) -> dict:
    """The worker-hop leg: the same warm pipelined burst against a
    2-worker pool, untraced vs traced client on a tracing pool.

    The instances are warmed first so every measured solve is a worker
    result-cache hit — wall time is then hop-dominated, which is
    exactly the stitching overhead under test."""
    from repro.service.client import ServiceClient

    rounds = 3 if smoke else 6
    repeats = 3 if smoke else 5
    instances = _instances(8, n_tasks=64, seed0=777 + 1000 * seed)

    def burst(client) -> float:
        t0 = time.perf_counter()
        for _ in range(rounds):
            client.solve_pipelined(instances)
        return time.perf_counter() - t0

    wall: dict[str, float] = {}
    for mode, tracing in (("plain", False), ("stitched", True)):
        with _sharded_pool(tracing=tracing) as server:
            with ServiceClient(port=server.port, timeout=120) as client:
                client.solve_pipelined(instances)  # warm caches
                best = float("inf")
                for _ in range(repeats):
                    if tracing:
                        # a live client span: the burst's envelopes
                        # carry its context, so every worker span
                        # piggybacks back and is ingested — the full
                        # stitching path
                        with obs_trace.span("bench.sharded.burst"):
                            best = min(best, burst(client))
                        obs_trace.RECORDER.clear()
                    else:
                        best = min(best, burst(client))
                wall[mode] = best
    return {
        "config": {
            "n_workers": 2,
            "instances": 8,
            "n_tasks": 64,
            "rounds": rounds,
            "repeats": repeats,
            "slack_s": SHARDED_SLACK_S,
        },
        "wall_s": wall,
        "assertions": {
            "stitched_ratio": wall["stitched"] / wall["plain"],
            "max_stitched_ratio": MAX_STITCHED_RATIO,
        },
    }


def check(report: dict) -> None:
    wall = report["wall_s"]
    a = report["assertions"]
    slack = report["config"]["abs_slack_s"]
    for mode, cap in (
        ("disabled", a["max_disabled_ratio"]),
        ("enabled", a["max_enabled_ratio"]),
    ):
        ratio = a[f"{mode}_ratio"]
        delta = wall[mode] - wall["stubbed"]
        assert ratio <= cap or delta <= slack, (
            f"tracing ({mode}) costs {ratio:.3f}x the stubbed engine "
            f"(+{delta * 1e3:.1f}ms, floor {cap:g}x / {slack * 1e3:g}ms "
            f"slack)"
        )
    sharded = report.get("sharded")
    if sharded is not None:
        s_wall = sharded["wall_s"]
        s_a = sharded["assertions"]
        s_slack = sharded["config"]["slack_s"]
        ratio = s_a["stitched_ratio"]
        delta = s_wall["stitched"] - s_wall["plain"]
        assert ratio <= s_a["max_stitched_ratio"] or delta <= s_slack, (
            f"stitched tracing costs {ratio:.3f}x the untraced worker "
            f"hop (+{delta * 1e3:.1f}ms, floor "
            f"{s_a['max_stitched_ratio']:g}x / {s_slack * 1e3:g}ms slack)"
        )


def test_obs_overhead_smoke():
    """Pytest entry point (what ``pytest benchmarks`` exercises)."""
    report = run_bench(smoke=True)
    report["sharded"] = run_sharded_bench(smoke=True)
    check(report)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "--smoke", action="store_true",
        help="smaller workload, same assertions (what CI runs)",
    )
    ap.add_argument("--bench-seed", type=int, default=0)
    ap.add_argument(
        "--out", default="BENCH_obs.json", metavar="PATH",
        help="where to write the JSON report",
    )
    args = ap.parse_args(argv)

    report = run_bench(smoke=args.smoke, seed=args.bench_seed)
    report["sharded"] = run_sharded_bench(
        smoke=args.smoke, seed=args.bench_seed
    )
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    wall = report["wall_s"]
    a = report["assertions"]
    print(f"stubbed  : {wall['stubbed'] * 1e3:8.1f} ms")
    print(
        f"disabled : {wall['disabled'] * 1e3:8.1f} ms "
        f"({a['disabled_ratio']:.3f}x)"
    )
    print(
        f"enabled  : {wall['enabled'] * 1e3:8.1f} ms "
        f"({a['enabled_ratio']:.3f}x)"
    )
    s_wall = report["sharded"]["wall_s"]
    s_a = report["sharded"]["assertions"]
    print(f"hop plain   : {s_wall['plain'] * 1e3:8.1f} ms")
    print(
        f"hop stitched: {s_wall['stitched'] * 1e3:8.1f} ms "
        f"({s_a['stitched_ratio']:.3f}x)"
    )
    print(f"wrote {args.out}")
    check(report)
    print(
        f"OK: disabled <= {MAX_DISABLED_RATIO:g}x, "
        f"enabled <= {MAX_ENABLED_RATIO:g}x, "
        f"stitched hop <= {MAX_STITCHED_RATIO:g}x (or within slack)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
