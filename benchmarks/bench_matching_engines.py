"""Ablation ``ablation-exact``: matching engines and search strategies
inside the exact SINGLEPROC-UNIT algorithm.

The paper used MatchMaker's push-relabel code and a linear scan over the
deadline ``D``, noting that bisection would improve the worst case.  This
benchmark quantifies both choices: four engines (pure-Python Kuhn,
Hopcroft-Karp, push-relabel; C Hopcroft-Karp via scipy) times two search
strategies, on a FewgManyg bipartite workload.
"""

from __future__ import annotations

import pytest

from repro.algorithms.exact_unit import exact_singleproc_unit
from repro.generators import fewgmanyg_bipartite
from repro.matching import ENGINES

_N, _P, _G, _D = 1280, 256, 32, 10


@pytest.fixture(scope="module")
def graph():
    return fewgmanyg_bipartite(_N, _P, _G, _D, seed=0)


@pytest.mark.parametrize("engine", sorted(ENGINES))
def test_engine_single_probe(benchmark, graph, engine):
    """One capacity-5 feasibility probe (the exact algorithm's inner step)."""
    run = ENGINES[engine]

    res = benchmark(
        run, graph.n_tasks, graph.n_procs, graph.task_ptr, graph.task_adj, 5
    )

    benchmark.extra_info["cardinality"] = res.cardinality


@pytest.mark.parametrize("engine", ["scipy", "push-relabel"])
@pytest.mark.parametrize("strategy", ["linear", "bisection"])
def test_exact_end_to_end(benchmark, graph, engine, strategy):
    rep = benchmark(
        exact_singleproc_unit, graph, strategy=strategy, engine=engine
    )
    benchmark.extra_info.update(
        {"optimum": rep.optimal_makespan, "probes": len(rep.probes)}
    )


def test_bisection_fewer_probes(graph, benchmark):
    """Bisection's probe count is logarithmic versus linear's M_opt."""
    lin = exact_singleproc_unit(graph, strategy="linear")

    rep = benchmark(exact_singleproc_unit, graph, strategy="bisection")

    benchmark.extra_info.update(
        {"linear_probes": len(lin.probes), "bisect_probes": len(rep.probes)}
    )
    assert len(rep.probes) <= len(lin.probes) + 1
