"""Setup shim.

All metadata lives in pyproject.toml.  This file exists so that
``pip install -e .`` / ``python setup.py develop`` keep working on minimal
offline environments whose setuptools lacks the ``wheel`` package (editable
installs via PEP 660 require building a wheel).
"""

from setuptools import setup

setup()
