#!/usr/bin/env python
"""The paper's worst-case constructions, executed (Figures 1 and 3).

Section IV-B proves the greedy heuristics carry no approximation
guarantee by exhibiting adversarial families.  This script builds each
construction and runs every heuristic on it, reproducing the narrative:

* Fig. 1 — basic-greedy doubles the optimum on two tasks;
* Fig. 3 — basic/sorted-greedy are a factor k from optimal, for any k;
* the Section IV-B3 instance fools double-sorted but not expected-greedy;
* the Section IV-B4 instance fools expected-greedy too.

Run:  python examples/worst_cases.py
"""

from repro import (
    basic_greedy,
    double_sorted,
    exact_singleproc_unit,
    expected_greedy,
    sorted_greedy,
)
from repro.generators import (
    double_sorted_fooler,
    expected_greedy_fooler,
    fig1_toy,
    fig3_family,
)

ALGOS = [
    ("basic-greedy", basic_greedy),
    ("sorted-greedy", sorted_greedy),
    ("double-sorted", double_sorted),
    ("expected-greedy", expected_greedy),
]


def report(title: str, graph) -> None:
    opt = exact_singleproc_unit(graph).optimal_makespan
    print(f"\n{title}")
    print(f"  tasks={graph.n_tasks} procs={graph.n_procs} optimum={opt}")
    for name, fn in ALGOS:
        mk = fn(graph).makespan
        marker = "  <- fooled" if mk > opt else ""
        print(f"  {name:<16} makespan {mk:g}{marker}")


def main() -> None:
    report("Figure 1 toy (T1 on P1/P2, T2 on P1 only)", fig1_toy())

    for k in (3, 5, 7):
        report(f"Figure 3 family, k={k} (greedy gap grows with k)",
               fig3_family(k))

    report(
        "Section IV-B3: in-degrees equalised — double-sorted's tie-break "
        "is useless",
        double_sorted_fooler(),
    )
    report(
        "Section IV-B4: expected loads tie at 1.5 — expected-greedy "
        "falls too",
        expected_greedy_fooler(),
    )

    print(
        "\nConclusion (paper): every greedy can be arbitrarily far from"
        "\noptimal in theory, yet Section V shows they are near-optimal on"
        "\nrealistic random workloads."
    )


if __name__ == "__main__":
    main()
