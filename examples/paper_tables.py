#!/usr/bin/env python
"""Regenerate miniature versions of the paper's Tables I, II and III.

The full-size reproduction is driven by the ``semimatch`` CLI or the
benchmark suite; this example keeps runtimes in seconds by using the
n=1280 rows with 3 seeds and prints measured-vs-paper side by side.

Run:  python examples/paper_tables.py [--full]
"""

import sys

from repro.experiments import (
    PAPER_TABLE2,
    PAPER_TABLE3,
    SMALL_SPECS,
    TABLE1_SPECS,
    render_comparison,
    render_table1,
    run_instances,
)


def main() -> None:
    full = "--full" in sys.argv
    specs = TABLE1_SPECS if full else SMALL_SPECS
    seeds = 10 if full else 3

    print("=== Table I: instance statistics (median of "
          f"{seeds} seeds) ===")
    res1 = run_instances(
        [s.with_weights("unit") for s in specs],
        n_seeds=seeds,
        algorithms=("SGH",),
    )
    print(render_table1(res1))

    print("\n=== Table II: unweighted quality vs LB ===")
    res2 = run_instances(
        [s.with_weights("unit") for s in specs], n_seeds=seeds
    )
    print(render_comparison(res2, PAPER_TABLE2))

    print("\n=== Table III: related-weight quality vs LB ===")
    res3 = run_instances(
        [s.with_weights("related") for s in specs], n_seeds=seeds
    )
    print(render_comparison(res3, PAPER_TABLE3))

    print(
        "\nShape checks (paper's conclusions):"
        "\n  - unweighted FewgManyg: VGH best, EVG does not beat VGH"
        "\n  - unweighted HiLo: all heuristics tie"
        "\n  - weighted: EGH < SGH and EVG best overall"
    )


if __name__ == "__main__":
    main()
