#!/usr/bin/env python
"""Quickstart: schedule a handful of tasks on a heterogeneous machine.

The scenario from the paper's introduction: tasks may have a *choice*
among combinations of computational resources — e.g. run on the GPU
alone, or split across two CPU cores.  We state the problem with named
tasks and processors, solve it, and inspect the schedule.

Run:  python examples/quickstart.py
"""

from repro import SchedulingProblem, averaged_work_bound, solve


def main() -> None:
    # A node with two CPU cores and one accelerator.
    prob = SchedulingProblem(processors=["cpu0", "cpu1", "gpu"])

    # Each task lists its configurations: (processor set, time on each).
    prob.add_task("render", [(("gpu",), 2.0), (("cpu0", "cpu1"), 5.0)])
    prob.add_task("encode", [(("cpu0",), 3.0), (("cpu1",), 3.0)])
    prob.add_task("analyze", [(("cpu0", "cpu1"), 2.0), (("gpu",), 6.0)])
    prob.add_task("upload", [(("cpu1",), 1.0), (("cpu0",), 1.0)])

    schedule = solve(prob)  # picks the right algorithm automatically

    print(schedule.summary())
    print()
    print("Chosen configurations (alloc):")
    for task, procs in schedule.allocation().items():
        print(f"  {task:<8} -> {', '.join(map(str, procs))}")
    print()
    print(schedule.gantt(width=48))
    print()

    lb = averaged_work_bound(prob.to_hypergraph(), integral=False)
    print(f"Averaged-work lower bound (paper eq. (1)): {lb:.2f}")
    print(f"Achieved makespan:                         {schedule.makespan:g}")


if __name__ == "__main__":
    main()
