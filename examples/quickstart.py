#!/usr/bin/env python
"""Quickstart: schedule a handful of tasks on a heterogeneous machine.

The scenario from the paper's introduction: tasks may have a *choice*
among combinations of computational resources — e.g. run on the GPU
alone, or split across two CPU cores.  We state the problem with named
tasks and processors, solve it, and inspect the schedule.

Run:  python examples/quickstart.py
"""

import time

from repro import SchedulingProblem, averaged_work_bound, solve


def backend_demo() -> None:
    """The backend switch: identical matchings, kernel-speed solves."""
    import numpy as np

    from repro.engine.dispatch import solve_hypergraph
    from repro.generators import generate_multiproc
    from repro.kernels import compile_instance

    hg = generate_multiproc(
        2560, 512, family="fewgmanyg", g=16, dv=5, dh=10,
        weights="related", seed=0,
    )
    compile_instance(hg)  # compiled once, cached by content digest

    t0 = time.perf_counter()
    slow = solve_hypergraph(hg, method="EVG", backend="python")
    t_py = time.perf_counter() - t0
    t0 = time.perf_counter()
    fast = solve_hypergraph(hg, method="EVG", backend="numpy")
    t_np = time.perf_counter() - t0

    assert np.array_equal(slow.hedge_of_task, fast.hedge_of_task)
    print(
        f"EVG on {hg.n_tasks} tasks x {hg.n_procs} procs: "
        f"python backend {t_py * 1000:.0f} ms, "
        f"numpy kernels {t_np * 1000:.0f} ms "
        f"-> {t_py / max(t_np, 1e-9):.1f}x speedup, "
        "bit-identical matching"
    )


def main() -> None:
    # A node with two CPU cores and one accelerator.
    prob = SchedulingProblem(processors=["cpu0", "cpu1", "gpu"])

    # Each task lists its configurations: (processor set, time on each).
    prob.add_task("render", [(("gpu",), 2.0), (("cpu0", "cpu1"), 5.0)])
    prob.add_task("encode", [(("cpu0",), 3.0), (("cpu1",), 3.0)])
    prob.add_task("analyze", [(("cpu0", "cpu1"), 2.0), (("gpu",), 6.0)])
    prob.add_task("upload", [(("cpu1",), 1.0), (("cpu0",), 1.0)])

    schedule = solve(prob)  # picks the right algorithm automatically

    print(schedule.summary())
    print()
    print("Chosen configurations (alloc):")
    for task, procs in schedule.allocation().items():
        print(f"  {task:<8} -> {', '.join(map(str, procs))}")
    print()
    print(schedule.gantt(width=48))
    print()

    lb = averaged_work_bound(prob.to_hypergraph(), integral=False)
    print(f"Averaged-work lower bound (paper eq. (1)): {lb:.2f}")
    print(f"Achieved makespan:                         {schedule.makespan:g}")
    print()

    # The same solvers scale to thousands of tasks on the vectorized
    # kernel backend (the default); backend="python" keeps the original
    # loops around as a bit-identical oracle.
    backend_demo()


if __name__ == "__main__":
    main()
