#!/usr/bin/env python
"""Batch solving with the engine: solve_many, portfolio mode, caching.

A traffic-shaped workload: a stream of scheduling problems (here, random
MULTIPROC instances standing in for incoming requests) is solved in one
``solve_many`` call instead of a Python loop.  The engine distributes
chunks over a worker pool, races a portfolio of algorithms per instance
(keeping the best makespan), and memoises results by instance content so
a repeated sweep costs almost nothing.

Run:  python examples/batch_portfolio.py [n_instances] [workers]
"""

import sys
import time

import numpy as np

from repro import BatchSolver, ResultCache, solve_many
from repro.algorithms import averaged_work_bound
from repro.engine import DEFAULT_PORTFOLIO, solve_hypergraph
from repro.generators import generate_multiproc


def make_workload(n_instances: int, seed: int = 0):
    """Random MULTIPROC instances of mixed sizes and weight schemes."""
    rng = np.random.default_rng(seed)
    workload = []
    for k in range(n_instances):
        workload.append(
            generate_multiproc(
                int(rng.integers(30, 80)),
                2 * int(rng.integers(2, 5)),  # fewgmanyg needs g | p
                family="fewgmanyg",
                g=2,
                dv=int(rng.integers(2, 6)),
                dh=5,
                weights="related" if k % 2 else "unit",
                seed=rng,
            )
        )
    return workload


def main() -> None:
    n_instances = int(sys.argv[1]) if len(sys.argv) > 1 else 40
    workers = int(sys.argv[2]) if len(sys.argv) > 2 else None

    workload = make_workload(n_instances)
    print(f"workload: {n_instances} instances, "
          f"portfolio = {', '.join(DEFAULT_PORTFOLIO)}")

    # --- one call solves everything, portfolio-raced per instance -----
    t0 = time.perf_counter()
    results = solve_many(
        workload, method="portfolio", max_workers=workers, cache=False
    )
    dt = time.perf_counter() - t0
    print(f"solve_many(portfolio): {dt:.2f}s "
          f"({n_instances / dt:.1f} instances/s)")

    # portfolio never loses to the paper's recommended single heuristic
    evg_wins = port_wins = 0
    for hg, m in zip(workload, results):
        evg = solve_hypergraph(hg, method="EVG").makespan
        if m.makespan < evg:
            port_wins += 1
        elif m.makespan > evg:
            evg_wins += 1  # cannot happen: EVG is in the portfolio
    assert evg_wins == 0
    print(f"portfolio strictly beat EVG on {port_wins}/{n_instances} "
          "instances (never worse)")

    mean_q = float(np.mean([
        m.makespan / averaged_work_bound(hg)
        for hg, m in zip(workload, results)
    ]))
    print(f"mean quality (makespan / lower bound): {mean_q:.3f}")

    # --- SolveResult provenance: who actually won the races? ----------
    wins: dict[str, int] = {}
    for m in results:
        wins[m.winner] = wins.get(m.winner, 0) + 1
    print("portfolio winners: "
          + "  ".join(f"{k}={v}" for k, v in sorted(wins.items())))

    # --- repeated sweeps hit the result cache -------------------------
    cache = ResultCache()
    with BatchSolver(
        max_workers=workers, method="portfolio", cache=cache
    ) as engine:
        engine.solve_many(workload)          # cold: computes and fills
        t0 = time.perf_counter()
        again = engine.solve_many(workload)  # warm: pure cache hits
        dt_cached = time.perf_counter() - t0
    assert all(m.cache_hit for m in again)
    assert [m.makespan for m in again] == [m.makespan for m in results]
    print(f"re-sweep from cache: {dt_cached:.3f}s "
          f"({cache.hits} hits, {cache.misses} misses)")


if __name__ == "__main__":
    main()
