#!/usr/bin/env python
"""Online scheduling: placing jobs as they arrive (extension).

The offline heuristics of the paper see the whole workload and sort tasks
by their number of options; a real scheduler often cannot wait.  This
example streams a MULTIPROC workload through the library's online
scheduler and measures the *price of being online*: the makespan ratio
against the offline heuristics and the lower bound.

Run:  python examples/online_stream.py
"""

import numpy as np

from repro import (
    averaged_work_bound,
    expected_vector_greedy_hyp,
    generate_multiproc,
    sorted_greedy_hyp,
)
from repro.algorithms import OnlineScheduler


def main() -> None:
    hg = generate_multiproc(
        1280, 256, family="fewgmanyg", g=32, dv=5, dh=10,
        weights="related", seed=0,
    )
    lb = averaged_work_bound(hg)
    print(
        f"Workload: {hg.n_tasks} jobs, {hg.n_procs} processors, "
        f"LB = {lb:g}\n"
    )

    offline_sgh = sorted_greedy_hyp(hg).makespan
    offline_evg = expected_vector_greedy_hyp(hg).makespan

    rng = np.random.default_rng(1)
    arrival = rng.permutation(hg.n_tasks)  # adversary-free random stream

    print(f"{'policy':<28} {'makespan':>9} {'vs LB':>7} {'vs offline EVG':>15}")
    for policy in ("greedy", "vector"):
        sched = OnlineScheduler.replay_hypergraph(
            hg, policy=policy, order=arrival
        )
        print(
            f"online {policy:<21} {sched.makespan:>9g} "
            f"{sched.makespan / lb:>7.3f} "
            f"{sched.competitive_ratio(offline_evg):>15.3f}"
        )
    print(
        f"{'offline SGH':<28} {offline_sgh:>9g} {offline_sgh / lb:>7.3f}"
    )
    print(
        f"{'offline EVG':<28} {offline_evg:>9g} {offline_evg / lb:>7.3f}"
    )

    # peek at one decision record
    sched = OnlineScheduler(hg.n_procs)
    rec = sched.submit(
        [
            (hg.hedge_proc_set(int(h)), float(hg.hedge_w[int(h)]))
            for h in hg.task_hedge_ids(0)
        ],
        task="job-0",
    )
    print(
        f"\nFirst decision for job-0: configuration #{rec.config_index} "
        f"on {len(rec.processors)} processors, weight {rec.weight:g}"
    )


if __name__ == "__main__":
    main()
