#!/usr/bin/env python
"""Certified answers and instance kernels (library extensions).

Two things a production scheduler wants beyond a heuristic number:

1. **Certificates** — "no schedule of makespan D exists" should come with
   a checkable witness, not just a failed search.  The library's
   deadline certificates return either an assignment or a Hall violator
   (a task set provably too big for its eligible processors).
2. **Kernelisation** — commit the forced decisions (single-configuration
   tasks) and delete dominated configurations before running anything
   expensive.

Run:  python examples/certificates_and_kernels.py
"""

import numpy as np

from repro.algorithms import (
    deadline_certificate,
    exact_singleproc_unit,
    preprocess,
    sorted_greedy_hyp,
)
from repro.core import TaskHypergraph
from repro.generators import fewgmanyg_bipartite


def certificates_demo() -> None:
    print("=== deadline certificates (SINGLEPROC-UNIT) ===")
    graph = fewgmanyg_bipartite(640, 64, 8, 4, seed=3)
    opt = exact_singleproc_unit(graph).optimal_makespan
    print(f"{graph.n_tasks} tasks on {graph.n_procs} processors; "
          f"optimal makespan {opt}")

    cert = deadline_certificate(graph, opt)
    assert cert.feasible
    print(f"D = {opt}: FEASIBLE — assignment with makespan "
          f"{cert.matching.makespan:g} attached")

    cert = deadline_certificate(graph, opt - 1)
    tasks, procs = cert.violator
    print(
        f"D = {opt - 1}: INFEASIBLE — witness: {len(tasks)} tasks whose "
        f"every option lies in {len(procs)} processors "
        f"({len(tasks)} > {opt - 1} x {len(procs)}); implied lower bound "
        f"{cert.lower_bound()}"
    )
    cert.verify(graph)  # anyone can re-check the witness in linear time
    print("witness re-verified from scratch\n")


def kernel_demo() -> None:
    print("=== kernelisation (MULTIPROC) ===")
    # a workload where many tasks are pinned and some configurations are
    # strictly worse than others
    rng = np.random.default_rng(0)
    confs = []
    weights = []
    for i in range(400):
        if i % 3 == 0:  # pinned task: one configuration
            procs = rng.choice(64, size=2, replace=False)
            confs.append([procs.tolist()])
            weights.append([2.0])
        else:
            a = rng.choice(64, size=2, replace=False).tolist()
            b = a + rng.choice(
                [u for u in range(64) if u not in a], size=2, replace=False
            ).tolist()
            # the superset configuration is also slower: dominated
            confs.append([a, b])
            weights.append([2.0, 3.0])
    hg = TaskHypergraph.from_configurations(
        confs, n_procs=64, weights=weights
    )

    red = preprocess(hg)
    print(
        f"original: {hg.n_tasks} tasks, {hg.n_hedges} configurations\n"
        f"kernel:   {red.kernel.n_tasks if red.kernel else 0} free tasks, "
        f"{red.kernel.n_hedges if red.kernel else 0} configurations "
        f"({red.dropped_configurations} dominated dropped, "
        f"{hg.n_tasks - red.free_tasks.size} tasks forced)"
    )
    solved = red.lift(
        sorted_greedy_hyp(red.kernel) if red.kernel else None
    )
    direct = sorted_greedy_hyp(hg)
    print(
        f"makespan via kernel: {solved.makespan:g}; "
        f"direct greedy: {direct.makespan:g}"
    )


if __name__ == "__main__":
    certificates_demo()
    kernel_demo()
