#!/usr/bin/env python
"""Resource-constrained sequential tasks — the SINGLEPROC problem.

A batch of unit-time requests must be placed on servers, but each request
can only run where its data lives (the "resource constraints" of the
title).  This is SINGLEPROC-UNIT: solvable exactly in polynomial time.
We build an eligibility graph with the paper's HiLo generator, solve it
exactly, and show how close each greedy heuristic lands — reproducing the
Section V-B experiment at demo scale.

Run:  python examples/accelerator_offload.py
"""

import time

from repro import (
    basic_greedy,
    double_sorted,
    exact_singleproc_unit,
    expected_greedy,
    harvey_optimal_semi_matching,
    sorted_greedy,
)
from repro.generators import hilo_bipartite


def main() -> None:
    n_requests, n_servers = 1280, 256
    graph = hilo_bipartite(n_requests, n_servers, g=32, d=10)
    print(
        f"{n_requests} unit requests, {n_servers} servers, "
        f"{graph.n_edges} eligibility edges "
        f"(HiLo structure: contended neighbourhoods)"
    )

    t0 = time.perf_counter()
    report = exact_singleproc_unit(graph)
    t_exact = time.perf_counter() - t0
    opt = report.optimal_makespan
    print(
        f"\nexact algorithm: optimal makespan {opt} "
        f"({len(report.probes)} matching probes, {t_exact:.3f}s)"
    )

    t0 = time.perf_counter()
    harvey = harvey_optimal_semi_matching(graph)
    t_h = time.perf_counter() - t0
    print(
        f"Harvey et al. alternating-path algorithm agrees: "
        f"{harvey.makespan:g} ({t_h:.3f}s)"
    )

    print(f"\n{'heuristic':<18} {'makespan':>9} {'vs opt':>7} {'time':>9}")
    for name, fn in [
        ("basic-greedy", basic_greedy),
        ("sorted-greedy", sorted_greedy),
        ("double-sorted", double_sorted),
        ("expected-greedy", expected_greedy),
    ]:
        t0 = time.perf_counter()
        m = fn(graph)
        dt = time.perf_counter() - t0
        print(
            f"{name:<18} {m.makespan:>9g} {m.makespan / opt:>7.3f} "
            f"{dt * 1e3:>7.1f}ms"
        )

    print(
        "\nTakeaway (paper Section V-B): sorting by degree is nearly free"
        "\nand already strong; expected loads help most on HiLo-style"
        "\ncontention; the exact algorithm certifies optimality."
    )


if __name__ == "__main__":
    main()
