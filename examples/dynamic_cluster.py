#!/usr/bin/env python
"""A mutating cluster: join/leave/failure churn, repaired incrementally.

A production scheduler never sees a static instance: jobs finish and new
ones arrive, machines fail and rejoin, execution-time estimates drift.
This example streams such churn through the dynamic subsystem and shows
the two things it buys over re-solving from scratch after every change:

* **speed** — the `IncrementalSolver` repairs the assignment locally
  (greedy placement of the displaced tasks plus a bounded local search
  around the damage), so a mutation costs a region, not the world;
* **stability** — the makespan trajectory stays tight because repair
  starts from the previous assignment instead of rebuilding it.

Run:  python examples/dynamic_cluster.py [n_tasks n_procs n_events]
"""

import sys
import time

from repro import churn_trace, generate_multiproc
from repro.core.errors import InfeasibleError
from repro.dynamic import DynamicInstance, IncrementalSolver
from repro.engine.dispatch import solve_hypergraph


def main() -> None:
    n, p, events = (
        (int(a) for a in sys.argv[1:4]) if len(sys.argv) >= 4
        else (320, 64, 60)
    )
    hg = generate_multiproc(
        n, p, family="fewgmanyg", g=8, dv=5, dh=10,
        weights="related", seed=0,
    )
    trace = churn_trace(hg, events, seed=1)
    print(
        f"Cluster: {hg.n_tasks} tasks on {hg.n_procs} processors, "
        f"{len(trace)} mutations of churn\n"
    )

    # --- incremental: one solver follows the mutating instance --------
    inst = DynamicInstance.from_hypergraph(hg)
    solver = IncrementalSolver(inst)
    t0 = time.perf_counter()
    inst.replay(trace)
    t_inc = time.perf_counter() - t0
    s = solver.stats
    print(
        f"incremental engine   : {t_inc:.3f}s  "
        f"bottleneck {solver.bottleneck():g}  "
        f"({s.local_repairs} local repairs, {s.fallbacks} fallbacks, "
        f"{s.ls_moves} moves)"
    )

    # --- baseline: re-solve from scratch after every mutation ----------
    fresh = DynamicInstance.from_hypergraph(hg)
    t0 = time.perf_counter()
    scratch = solve_hypergraph(fresh.to_hypergraph(), method="auto")
    for m in trace:
        fresh.apply(m)
        scratch = solve_hypergraph(fresh.to_hypergraph(), method="auto")
    t_scratch = time.perf_counter() - t0
    print(
        f"from-scratch resolve : {t_scratch:.3f}s  "
        f"bottleneck {scratch.makespan:g}"
    )
    print(
        f"\nincremental repair is {t_scratch / max(t_inc, 1e-9):.1f}x "
        "faster at equal-or-better bottleneck"
    )

    # --- failure drill: snapshot, lose a machine, roll back ------------
    mark = inst.snapshot()
    digest_before = inst.digest()
    before = solver.bottleneck()
    for victim in inst.procs():
        try:
            inst.remove_processor(victim)
        except InfeasibleError:
            continue  # every task needs an alive configuration
        break
    else:
        print("\nfailure drill skipped: no processor is removable")
        return
    print(
        f"\nfailure drill: processor {victim} fails -> bottleneck "
        f"{before:g} -> {solver.bottleneck():g} (repaired in place)"
    )
    inst.rollback(mark)
    print(
        f"rollback to snapshot: bottleneck {solver.bottleneck():g}, "
        f"digest restored: {inst.digest() == digest_before}"
    )


if __name__ == "__main__":
    main()
