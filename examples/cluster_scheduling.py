#!/usr/bin/env python
"""Moldable parallel jobs on a cluster — the MULTIPROC problem at scale.

Models the workload of the paper's introduction: each job can run on
several *configurations* (different numbers of nodes), and running wider
makes the per-node time smaller (the paper's "related weights").  We
generate a cluster workload with the paper's own two-step generator,
compare all four hypergraph heuristics against the averaged-work lower
bound, and refine the best result with local search.

Run:  python examples/cluster_scheduling.py [n_jobs] [n_nodes]
"""

import sys
import time

from repro import (
    averaged_work_bound,
    expected_greedy_hyp,
    expected_vector_greedy_hyp,
    generate_multiproc,
    local_search,
    sorted_greedy_hyp,
    vector_greedy_hyp,
)


def main() -> None:
    n_jobs = int(sys.argv[1]) if len(sys.argv) > 1 else 1280
    n_nodes = int(sys.argv[2]) if len(sys.argv) > 2 else 256

    print(f"Cluster workload: {n_jobs} moldable jobs on {n_nodes} nodes")
    hg = generate_multiproc(
        n_jobs,
        n_nodes,
        family="fewgmanyg",
        g=32,
        dv=5,  # ~5 candidate configurations per job
        dh=10,  # ~10 nodes per configuration
        weights="related",  # wider configurations run faster per node
        seed=0,
    )
    print(
        f"  {hg.n_hedges} configurations, {hg.total_pins} job-node pins, "
        f"weights in [{hg.hedge_w.min():g}, {hg.hedge_w.max():g}]"
    )

    lb = averaged_work_bound(hg)
    print(f"  averaged-work lower bound: {lb:g}\n")

    algorithms = [
        ("sorted-greedy-hyp (SGH)", sorted_greedy_hyp),
        ("vector-greedy-hyp (VGH)", vector_greedy_hyp),
        ("expected-greedy-hyp (EGH)", expected_greedy_hyp),
        ("expected-vector-greedy-hyp (EVG)", expected_vector_greedy_hyp),
    ]
    print(f"{'algorithm':<34} {'makespan':>9} {'vs LB':>6} {'time':>8}")
    best = None
    for name, fn in algorithms:
        t0 = time.perf_counter()
        m = fn(hg)
        dt = time.perf_counter() - t0
        print(f"{name:<34} {m.makespan:>9g} {m.makespan / lb:>6.3f} "
              f"{dt:>7.2f}s")
        if best is None or m.makespan < best.makespan:
            best = m

    print("\nRefining the best solution with local search ...")
    t0 = time.perf_counter()
    report = local_search(best)
    dt = time.perf_counter() - t0
    print(
        f"  {report.initial_makespan:g} -> {report.final_makespan:g} "
        f"({report.moves} moves, {dt:.2f}s); "
        f"final quality {report.final_makespan / lb:.3f} vs LB"
    )


if __name__ == "__main__":
    main()
