#!/usr/bin/env python
"""The solve service end to end: boot, solve, dedup, session, metrics.

This example runs the whole serving stack inside one process — a
:class:`repro.service.SolveServer` on an ephemeral loopback port, real
TCP clients against it — and demonstrates the four things the service
layer adds on top of the library:

* **wire-faithful solving** — a remote solve answers bit-identically
  to a local `repro.api.solve` of the same `(instance, options)`;
* **single-flight dedup** — a burst of identical concurrent requests
  costs ONE engine solve;
* **sessions** — a server-side `DynamicInstance` follows streamed
  mutations, answering each with the incrementally repaired bottleneck;
* **observability** — the `metrics` op reports counters and
  latency/batch histograms over the same protocol.

Run:  python examples/service_roundtrip.py [n_tasks n_procs]
"""

import asyncio
import sys
import threading

import numpy as np

from repro import generate_multiproc, solve
from repro.engine import ResultCache
from repro.engine.batch import BatchSolver
from repro.service import AsyncServiceClient, ServiceClient, SolveServer


def start_server() -> tuple[SolveServer, asyncio.AbstractEventLoop]:
    """The server on a background event-loop thread (its own cache)."""
    server = SolveServer(
        port=0,
        engine=BatchSolver(
            max_workers=1, executor="serial", cache=ResultCache()
        ),
        allow_shutdown=True,
    )
    loop = asyncio.new_event_loop()
    started = threading.Event()

    def run() -> None:
        asyncio.set_event_loop(loop)
        loop.run_until_complete(server.start())
        started.set()
        loop.run_forever()

    threading.Thread(target=run, daemon=True).start()
    started.wait(10)
    return server, loop


def main() -> None:
    n, p = (
        (int(a) for a in sys.argv[1:3]) if len(sys.argv) >= 3 else (96, 24)
    )
    hg = generate_multiproc(
        n, p, family="fewgmanyg", g=4, dv=3, dh=5,
        weights="related", seed=0,
    )
    server, loop = start_server()
    print(f"service listening on 127.0.0.1:{server.port}\n")

    # --- 1. remote solve == local solve, bit for bit -------------------
    local = solve(hg, method="EVG+ls")
    with ServiceClient(port=server.port) as client:
        remote = client.solve(hg, method="EVG+ls")
        identical = np.array_equal(remote.assignment, local.hedge_of_task)
        print(
            f"remote solve         : makespan {remote.makespan:g} via "
            f"{remote.winner}"
        )
        print(
            f"bit-identical to local solve: {identical} "
            f"(local makespan {local.makespan:g})"
        )
        assert identical and remote.makespan == local.makespan

        # --- 2. single-flight dedup: N identical requests, ONE solve ---
        burst = 12

        async def identical_burst():
            aclient = await AsyncServiceClient.connect(port=server.port)
            try:
                return await asyncio.gather(
                    *(
                        aclient.solve(hg, method="grasp", seed=7)
                        for _ in range(burst)
                    )
                )
            finally:
                await aclient.close()

        misses_before = server.engine.cache.stats()["misses"]
        results = asyncio.run_coroutine_threadsafe(
            identical_burst(), loop
        ).result(120)
        shared = sum(r.deduped for r in results)
        solves = server.engine.cache.stats()["misses"] - misses_before
        # every request either shared the flight or hit the cache the
        # flight filled — exactly one engine solve either way
        print(
            f"\ndedup burst          : {burst} identical requests -> "
            f"{solves} engine solve ({shared} shared the flight, "
            f"{burst - 1 - shared} cache hits)"
        )
        assert solves == 1
        assert len({r.makespan for r in results}) == 1

        # --- 3. a sessioned dynamic instance over the wire --------------
        session = client.open_session(hg, method="auto")
        print(
            f"\nsession {session.info['session']}           : baseline "
            f"bottleneck {session.info['bottleneck']:g}"
        )
        task = hg.n_tasks  # next handle a from_hypergraph baseline assigns
        out = session.apply(
            {"op": "add_task", "task": task, "configs": [[[0, 1], 3.5]]}
        )
        print(
            f"after add_task       : bottleneck {out['bottleneck']:g} "
            f"({out['repair']['local_repairs']} local repairs)"
        )
        out = session.apply({"op": "remove_task", "task": task})
        print(f"after remove_task    : bottleneck {out['bottleneck']:g}")
        session.close()

        # --- 4. the metrics op ------------------------------------------
        snapshot = client.metrics()
        counters = snapshot["counters"]
        print(
            f"\nmetrics              : {counters['requests']} requests, "
            f"{counters.get('batches', 0)} engine batches, "
            f"dedup followers {snapshot['dedup']['followers']}, "
            f"p50 latency {snapshot['request_latency_s']['p50'] * 1e3:g}ms"
        )
        client.shutdown()
    print("\nserver stopped; every remote answer matched the local engine")


if __name__ == "__main__":
    main()
