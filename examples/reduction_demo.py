#!/usr/bin/env python
"""Theorem 1 live: solving Exact Cover by 3-Sets with a scheduler.

The NP-completeness reduction of Section III runs in both directions —
so a MULTIPROC solver *is* an X3C solver.  We plant an exact cover,
reduce to scheduling, certify makespan 1 with the exhaustive solver, and
read the cover back.  We also show the (2 - eps)-inapproximability gap:
on a no-instance the optimum jumps straight from 1 to 2.

Run:  python examples/reduction_demo.py
"""

from repro.algorithms import exhaustive_multiproc, sorted_greedy_hyp
from repro.generators import (
    X3CInstance,
    cover_from_matching,
    is_exact_cover,
    planted_x3c,
    x3c_to_multiproc,
)


def main() -> None:
    # --- a planted yes-instance --------------------------------------
    q = 4
    inst = planted_x3c(q, extra_triples=6, seed=7)
    print(f"X3C instance: {inst.n_elements} elements, "
          f"{len(inst.triples)} triples")
    for t in inst.triples:
        print(f"  {t}")

    hg = x3c_to_multiproc(inst)
    print(
        f"\nReduction: {hg.n_tasks} tasks (cover slots), "
        f"{hg.n_procs} processors (elements), "
        f"{hg.n_hedges} hyperedges (task x triple)"
    )

    m = exhaustive_multiproc(hg)
    print(f"optimal makespan: {m.makespan:g}")
    assert m.makespan == 1.0, "planted instance must have a cover"

    cover = cover_from_matching(inst, m)
    print("extracted exact cover:")
    for t in cover:
        print(f"  {t}")
    assert is_exact_cover(inst, cover)

    greedy_mk = sorted_greedy_hyp(hg).makespan
    print(
        f"\ngreedy heuristic on the same instance: makespan {greedy_mk:g} "
        f"(>= 2 means it missed the cover — this is exactly why no "
        f"(2 - eps)-approximation exists unless P=NP)"
    )

    # --- a no-instance -------------------------------------------------
    no_inst = X3CInstance(
        q=2, triples=((0, 1, 2), (0, 3, 4), (0, 4, 5), (0, 2, 5))
    )
    no_hg = x3c_to_multiproc(no_inst)
    no_mk = exhaustive_multiproc(no_hg).makespan
    print(
        f"\nno-instance (every triple contains element 0): optimum "
        f"{no_mk:g} — the Theorem 1 gap in the flesh"
    )


if __name__ == "__main__":
    main()
